#!/usr/bin/env python
"""Quickstart: the store-buffering litmus test under every fence design.

Two simulated threads run the Dekker pattern of the paper's Fig. 1d:

    P0:  x = 1 ; FENCE ; r0 = y        P1:  y = 1 ; FENCE ; r1 = x

Under sequential consistency (r0, r1) = (0, 0) is impossible.  TSO
allows it *without* fences; with fences every design must prevent it —
by stalling (S+), by bouncing conflicting writes off the Bypass Set
(WS+/SW+), by deadlock recovery (W+) or via the Global Reorder Table
(Wee).  The script shows the outcome, the cycle cost and the mechanism
activity of each design.

Run:  python examples/quickstart.py
"""

from repro import FenceDesign, FenceRole
from repro.sim.scv import find_scv
from repro.workloads.litmus import store_buffering


def main():
    print(__doc__)
    print(f"{'design':8s} {'outcome':>9s} {'cycles':>7s} {'bounces':>8s} "
          f"{'orders':>7s} {'recoveries':>11s}  SC?")
    print("-" * 60)

    # without fences first: TSO exhibits the forbidden outcome
    lit = store_buffering(FenceDesign.S_PLUS, fences=False, pad_stores=1)
    out = (lit.value(0, "r"), lit.value(1, "r"))
    scv = find_scv(lit.result.events) is not None
    print(f"{'none':8s} {str(out):>9s} {lit.result.cycles:7d} "
          f"{'-':>8s} {'-':>7s} {'-':>11s}  {'VIOLATED' if scv else 'ok'}")

    for design in FenceDesign:
        lit = store_buffering(
            design, roles=(FenceRole.CRITICAL, FenceRole.STANDARD),
            pad_stores=1,
        )
        s = lit.result.stats
        out = (lit.value(0, "r"), lit.value(1, "r"))
        scv = find_scv(lit.result.events) is not None
        print(f"{str(design):8s} {str(out):>9s} {lit.result.cycles:7d} "
              f"{s.bounces:8d} {s.order_ops:7d} {s.wplus_recoveries:11d}"
              f"  {'VIOLATED' if scv else 'ok'}")

    print("\n(0, 0) appears only in the fence-less run: every fence "
          "design preserves SC,\nthe weak ones without paying the "
          "conventional fence's drain stall.")


if __name__ == "__main__":
    main()
