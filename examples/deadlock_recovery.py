#!/usr/bin/env python
"""The deadlock story of the paper's Figure 3, step by step.

1. Naive global-state-free weak fences on *both* threads of a Dekker
   group prevent the SC violation by bouncing each other's writes —
   and deadlock (Fig. 3a).  Shown with W+ recovery disabled: the
   simulator's watchdog reports the mutual block.
2. The Asymmetric fix (Fig. 3b): make one of the fences a conventional
   sf — no global state needed, no deadlock possible.
3. The W+ fix (§3.3.3): keep both fences weak, detect the deadlock
   with the (bouncing ∧ being-bounced) timeout, roll back to the
   checkpoint and re-execute.
4. The WeeFence fix (Fig. 2): global GRT state stalls the one load
   that would close the cycle.

Run:  python examples/deadlock_recovery.py
"""

from repro import DeadlockError, FenceDesign, FenceRole
from repro.sim.scv import find_scv
from repro.workloads.litmus import store_buffering

CC = (FenceRole.CRITICAL, FenceRole.CRITICAL)
ASYM = (FenceRole.CRITICAL, FenceRole.STANDARD)


def show(label, lit):
    s = lit.result.stats
    out = (lit.value(0, "r"), lit.value(1, "r"))
    scv = find_scv(lit.result.events) is not None
    print(f"  -> outcome {out}, {lit.result.cycles} cycles, "
          f"{s.bounces} bounces, {s.wplus_recoveries} recoveries, "
          f"SC {'VIOLATED' if scv else 'preserved'}")


def main():
    print(__doc__)

    print("[1] naive wf-only group (no recovery): expect a deadlock")
    try:
        store_buffering(FenceDesign.W_PLUS, roles=CC, recovery=False)
        print("  -> unexpectedly completed?!")
    except DeadlockError as e:
        print(f"  -> DeadlockError: {e}")

    print("\n[2] Asymmetric group (wf + sf) under WS+: no global state,"
          " no deadlock")
    show("ws", store_buffering(FenceDesign.WS_PLUS, roles=ASYM))

    print("\n[3] wf-only group under W+: deadlock detected, rolled back,"
          " re-executed")
    show("w+", store_buffering(FenceDesign.W_PLUS, roles=CC))

    print("\n[4] wf-only group under WeeFence: the GRT breaks the cycle"
          " up front")
    show("wee", store_buffering(FenceDesign.WEE, roles=CC))


if __name__ == "__main__":
    main()
