#!/usr/bin/env python
"""Prioritizing one thread in Lamport's Bakery with WS+ (paper §4.3).

All threads run the same Bakery lock/unlock loop around a critical
section.  Under WS+ we give thread 0 the CRITICAL role (its fences are
wfs, everyone else's are sfs — every dynamic fence group contains at
most one wf, as WS+ requires).  Thread 0's lock acquisitions get
cheaper, so it completes its rounds earlier than its peers; under W+
every thread runs weak fences and they finish together.

Run:  python examples/bakery_priority.py
"""

from repro import FenceDesign, MachineParams, ops
from repro.runtime.bakery import Bakery
from repro.sim.machine import Machine

THREADS = 4
ROUNDS = 6


def run(design, priority):
    params = MachineParams(num_cores=THREADS, num_banks=THREADS)\
        .with_design(design)
    m = Machine(params, seed=7)
    bakery = Bakery(m.alloc, THREADS, priority_tid=priority)
    counter = m.alloc.word()

    def worker(ctx):
        for _round in range(ROUNDS):
            yield from bakery.lock(ctx.tid)
            v = yield ops.Load(counter)
            yield ops.Compute(60)
            yield ops.Store(counter, v + 1)
            yield from bakery.unlock(ctx.tid)
            yield ops.Compute(120)

    m.spawn_all(worker)
    m.run(max_cycles=5_000_000)
    totals = [round(m.stats.breakdown[t].total) for t in range(THREADS)]
    assert m.image.peek(counter) == THREADS * ROUNDS, "mutual exclusion!"
    return totals, m


def main():
    print(__doc__)
    for design, priority, label in (
        (FenceDesign.S_PLUS, None, "S+ (baseline, all sf)"),
        (FenceDesign.WS_PLUS, 0, "WS+ with priority thread 0"),
        (FenceDesign.W_PLUS, None, "W+ (all threads weak)"),
    ):
        totals, m = run(design, priority)
        stalls = [round(m.stats.breakdown[t].fence_stall)
                  for t in range(THREADS)]
        print(f"\n{label}: counter OK "
              f"({THREADS}x{ROUNDS} lock-protected increments)")
        for t in range(THREADS):
            tag = "  <- prioritized" if priority == t else ""
            print(f"  thread {t}: {totals[t]:7d} accounted cycles, "
                  f"{stalls[t]:6d} fence-stall{tag}")


if __name__ == "__main__":
    main()
