#!/usr/bin/env python
"""TLRW software transactional memory under asymmetric fences (§4.2).

Runs three of the paper's ustm microbenchmarks for a fixed simulated
time and prints the committed-transaction throughput per design.  The
asymmetric recipe: the read barrier's fence (store reader-flag; FENCE;
load writer) is CRITICAL — reads are ~3.5x more frequent than writes —
while the write-side fences are STANDARD.

Run:  python examples/stm_throughput.py [scale]
"""

import sys

from repro import FenceDesign
from repro.workloads.base import load_all_workloads, run_workload

BENCHES = ("ReadNWrite1", "Tree", "TreeOverwrite")


def main():
    print(__doc__)
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    load_all_workloads()

    for name in BENCHES:
        print(f"\n{name}:")
        print(f"  {'design':6s} {'txns/Mcyc':>10s} {'vs S+':>7s} "
              f"{'commits':>8s} {'aborts':>7s} {'fence stall':>12s}")
        base = None
        for design in (FenceDesign.S_PLUS, FenceDesign.WS_PLUS,
                       FenceDesign.W_PLUS, FenceDesign.WEE):
            run = run_workload(name, design, num_cores=8, scale=scale)
            s = run.stats
            if base is None:
                base = max(run.throughput, 1e-9)
            print(f"  {str(design):6s} {run.throughput:10.0f} "
                  f"{run.throughput/base:6.2f}x {s.txn_commits:8d} "
                  f"{s.txn_aborts:7d} {s.fence_stall_fraction:11.1%}")

    print("\npaper (Fig. 9, ustm average): WS+ +38%, W+ +58%, Wee +14% "
          "over S+")


if __name__ == "__main__":
    main()
