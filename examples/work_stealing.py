#!/usr/bin/env python
"""Work stealing with asymmetric fences (paper §4.1).

Runs the `fib` Cilk-style task graph on the THE work-stealing runtime
under all four evaluated designs and prints the execution-time
breakdown.  The asymmetric recipe: the owner's take() fence is
CRITICAL (a wf under WS+/SW+), the thief's steal() fence STANDARD (an
sf) — owners run every task, thieves steal <1 % of them, so weakening
the owner fence removes almost all of the fence stall.

Run:  python examples/work_stealing.py [scale]
"""

import sys

from repro import FenceDesign
from repro.workloads.base import load_all_workloads, run_workload


def main():
    print(__doc__)
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    load_all_workloads()

    print(f"{'design':6s} {'cycles':>9s} {'vs S+':>7s} {'busy':>7s} "
          f"{'fence':>7s} {'other':>7s} {'tasks':>6s} {'stolen':>7s}")
    print("-" * 62)
    base = None
    for design in (FenceDesign.S_PLUS, FenceDesign.WS_PLUS,
                   FenceDesign.W_PLUS, FenceDesign.WEE):
        run = run_workload("fib", design, num_cores=8, scale=scale,
                           check=True)
        s = run.stats
        t = s.total_breakdown()
        total = sum(t.values()) or 1
        if base is None:
            base = run.cycles
        print(f"{str(design):6s} {run.cycles:9d} {run.cycles/base:6.2f}x "
              f"{t['busy']/total:6.1%} {t['fence_stall']/total:6.1%} "
              f"{t['other_stall']/total:6.1%} {s.tasks_executed:6d} "
              f"{s.tasks_stolen:7d}")

    print("\nEvery task executed exactly once under every design — the "
          "THE protocol's\ncorrectness survives the weakened fences "
          "(a duplicated task would be the SCV symptom).")


if __name__ == "__main__":
    main()
