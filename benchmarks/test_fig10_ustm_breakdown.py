"""Figure 10 — per-transaction cycle breakdown of ustm.

Paper shape: S+ transactions spend ~54 % of their cycles in fence
stall; WS+ and W+ eliminate half and two thirds of that stall, making
the average transaction take 24 % / 35 % fewer cycles; Wee only 11 %
fewer because the GRT confinement rule demotes many of its fences.
"""

from repro.eval.figures import fig9_fig10_ustm, render_fig10

from conftest import bench_cores, bench_scale, run_once


def test_fig10_ustm_breakdown(benchmark, report_sink):
    data = run_once(
        benchmark, fig9_fig10_ustm,
        scale=bench_scale(), num_cores=bench_cores(),
    )
    text = render_fig10(data)
    report_sink("fig10_ustm_breakdown", text)
    txn = data["avg_txn_cycles_ratio"]
    benchmark.extra_info.update(
        {f"txn_cycles_{d}": round(v, 3) for d, v in txn.items()}
    )

    # the average transaction takes clearly fewer cycles under the
    # asymmetric designs
    assert txn["WS+"] <= 0.92, txn
    assert txn["W+"] <= 0.92, txn
    # fence stall is the dominant S+ overhead in this group (paper 54%)
    splus = [e for e in data["txn_entries"] if e["design"] == "S+"]
    stall_frac = sum(e["fence_stall"] for e in splus) / max(
        1e-9, sum(e["busy"] + e["fence_stall"] + e["other_stall"]
                  for e in splus))
    assert stall_frac >= 0.20, stall_frac
