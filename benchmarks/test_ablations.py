"""Ablations of the design knobs DESIGN.md calls out.

Not figures from the paper — these quantify the sensitivity of the
reproduction to its own modeling choices and the cost of the hardware
features each design adds:

* conventional-fence base cost (the calibration constant);
* Bypass Set capacity (Table 2's 32 entries);
* the W+ deadlock timeout;
* line size (false-sharing pressure on the line-granularity BS);
* *idealized* WeeFence with an atomically-consistent global GRT — the
  hardware the paper argues cannot be built (§2.3); the gap between it
  and the real (confined) Wee is the implementability tax the
  asymmetric designs avoid paying.
"""

from dataclasses import replace

from repro.common.params import FenceDesign, MachineParams
from repro.eval import report
from repro.workloads.base import load_all_workloads, run_workload

from conftest import bench_scale, run_once


def _run(name, design, scale, **overrides):
    load_all_workloads()
    params = MachineParams().with_cores(8)
    if overrides:
        params = replace(params, **overrides)
    return run_workload(name, design, num_cores=8, scale=scale,
                        params=params)


def test_ablation_sf_base_cost(benchmark, report_sink):
    """The sf pipeline-serialization constant: the S+/WS+ gap must grow
    with it, while WS+ itself stays insensitive (its wf pays none)."""
    scale = min(bench_scale(), 0.5)

    def run():
        rows = []
        for base in (0, 30, 90):
            sp = _run("fib", FenceDesign.S_PLUS, scale, sf_base_cycles=base)
            ws = _run("fib", FenceDesign.WS_PLUS, scale, sf_base_cycles=base)
            rows.append((base, sp.cycles, ws.cycles,
                         f"{ws.cycles / sp.cycles:.2f}x"))
        return rows

    rows = run_once(benchmark, run)
    text = report.format_table(
        ("sf_base_cycles", "S+ cycles", "WS+ cycles", "WS+/S+"), rows,
        title="Ablation — conventional-fence base cost (fib)")
    report_sink("ablation_sf_base", text)
    ratios = [r[2] / r[1] for r in rows]
    assert ratios[-1] <= ratios[0] + 0.02, \
        "WS+'s advantage should grow (ratio shrink) with the sf cost"


def test_ablation_bs_capacity(benchmark, report_sink):
    """Shrinking the BS forces overflow stalls on post-wf loads."""
    scale = min(bench_scale(), 0.5)

    def run():
        rows = []
        for entries in (2, 8, 32):
            r = _run("ReadNWrite1", FenceDesign.W_PLUS, scale,
                     bs_entries=entries)
            rows.append((entries, f"{r.throughput:.0f}",
                         r.stats.bs_overflow_stalls))
        return rows

    rows = run_once(benchmark, run)
    text = report.format_table(
        ("bs_entries", "txn/Mcyc", "overflow stalls"), rows,
        title="Ablation — Bypass Set capacity (ReadNWrite1, W+)")
    report_sink("ablation_bs_capacity", text)
    # the paper-sized BS (32) suffers no overflow; a 2-entry BS does
    assert rows[2][2] <= rows[0][2]


def test_ablation_wplus_timeout(benchmark, report_sink):
    """The W+ deadlock timeout trades detection latency for false
    positives; the defaults sit near the knee."""
    scale = min(bench_scale(), 0.5)

    def run():
        rows = []
        for timeout in (120, 250, 800):
            r = _run("fib", FenceDesign.W_PLUS, scale,
                     wplus_timeout_cycles=timeout)
            rows.append((timeout, r.cycles, r.stats.wplus_recoveries))
        return rows

    rows = run_once(benchmark, run)
    text = report.format_table(
        ("timeout", "cycles", "recoveries"), rows,
        title="Ablation — W+ deadlock timeout (fib)")
    report_sink("ablation_wplus_timeout", text)
    # a very long timeout costs cycles whenever collisions do happen
    assert rows[0][1] <= rows[2][1] * 1.2


def test_ablation_line_size_false_sharing(benchmark, report_sink):
    """Bigger lines widen the line-granularity BS conflict footprint:
    more bounces per wf under the weak designs."""
    scale = min(bench_scale(), 0.5)

    def run():
        rows = []
        for line in (32, 64):
            r = _run("ReadWriteN", FenceDesign.W_PLUS, scale,
                     line_bytes=line, l1_hit_cycles=2)
            rows.append((line, f"{r.throughput:.0f}", r.stats.bounces))
        return rows

    rows = run_once(benchmark, run)
    text = report.format_table(
        ("line bytes", "txn/Mcyc", "bounces"), rows,
        title="Ablation — line size / false sharing (ReadWriteN, W+)")
    report_sink("ablation_line_size", text)


def test_ablation_idealized_weefence(benchmark, report_sink):
    """Wee vs an impossible Wee with a consistent global GRT view.

    The idealized variant never demotes fences and never stalls
    cross-bank loads — its advantage over real Wee is exactly the
    implementability tax; the asymmetric designs (here WS+) recover
    most of it with none of the global state."""
    scale = min(bench_scale(), 0.5)

    def run():
        rows = []
        for name in ("ReadNWrite1", "Tree", "TreeOverwrite"):
            sp = _run(name, FenceDesign.S_PLUS, scale)
            wee = _run(name, FenceDesign.WEE, scale)
            ideal = _run(name, FenceDesign.WEE, scale, wee_ideal=True)
            ws = _run(name, FenceDesign.WS_PLUS, scale)
            base = max(sp.throughput, 1e-9)
            rows.append((name,
                         f"{wee.throughput / base:.2f}x",
                         f"{ideal.throughput / base:.2f}x",
                         f"{ws.throughput / base:.2f}x"))
        return rows

    rows = run_once(benchmark, run)
    text = report.format_table(
        ("ustm app", "Wee (real)", "Wee (ideal GRT)", "WS+"), rows,
        title="Ablation — the WeeFence implementability tax")
    report_sink("ablation_wee_ideal", text)
    # the idealized GRT should not lose to the confined one on average
    real = report.mean([float(r[1][:-1]) for r in rows])
    ideal = report.mean([float(r[2][:-1]) for r in rows])
    assert ideal >= real - 0.1
