"""Extension — l-mf vs the asymmetric designs on work stealing.

The paper compares against Location-based Memory Fences qualitatively
(§8); this bench makes the comparison quantitative on l-mf's natural
habitat, the THE work-stealing deque: the owner's deque words stay
exclusively cached between takes, so the l-mf's store-conditional
usually succeeds — until a thief touches them.  Expected shape:
S+ ≥ l-mf ≥ WS+/W+ in execution time, with l-mf's fallback count
tracking the steal traffic.
"""

from repro.common.params import FenceDesign
from repro.eval import report
from repro.workloads.base import load_all_workloads, run_workload

from conftest import bench_cores, bench_scale, run_once

APPS = ("fib", "bucket", "knapsack")


def test_ext_lmf_work_stealing(benchmark, report_sink):
    load_all_workloads()
    scale = min(bench_scale(), 0.5)
    cores = bench_cores()

    def run():
        rows = []
        for name in APPS:
            per = {}
            fallbacks = 0
            for design in (FenceDesign.S_PLUS, FenceDesign.LMF,
                           FenceDesign.WS_PLUS, FenceDesign.W_PLUS):
                r = run_workload(name, design, num_cores=cores,
                                 scale=scale, check=True)
                per[design] = r.cycles
                if design is FenceDesign.LMF:
                    fallbacks = r.stats.lmf_fallbacks
                    fast = r.stats.lmf_fast
            base = per[FenceDesign.S_PLUS]
            rows.append((
                name,
                f"{per[FenceDesign.LMF] / base:.2f}x",
                f"{per[FenceDesign.WS_PLUS] / base:.2f}x",
                f"{per[FenceDesign.W_PLUS] / base:.2f}x",
                f"{fast}/{fast + fallbacks}",
            ))
        return rows

    rows = run_once(benchmark, run)
    text = report.format_table(
        ("app", "l-mf vs S+", "WS+ vs S+", "W+ vs S+",
         "l-mf SC success"),
        rows,
        title="Extension — Location-based Memory Fences on CilkApps",
    )
    report_sink("ext_lmf", text)
    # l-mf never loses to S+ and the wf designs never lose to l-mf by
    # more than noise (the paper's qualitative §8 ordering)
    for name, lmf, ws, wp, _sc in rows:
        assert float(lmf[:-1]) <= 1.05, (name, lmf)
        assert float(ws[:-1]) <= float(lmf[:-1]) + 0.10, (name, ws, lmf)
