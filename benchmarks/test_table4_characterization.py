"""Table 4 — characterization of the Asymmetric fence designs.

Paper shape: fences are of order 0.5-6 per 1000 instructions; a wf's
BS holds a few line addresses (3-5); writes bounce rarely and retry
few times; the bounce-retry traffic increase is negligible; W+
recoveries are rare; Wee demotes a visible fraction of its fences to
sfs (about half for ustm, a third for STAMP, almost none for
CilkApps).
"""

from repro.eval.tables import render_table4, table4_characterization

from conftest import bench_cores, bench_scale, run_once


def test_table4_characterization(benchmark, report_sink):
    data = run_once(
        benchmark, table4_characterization,
        scale=bench_scale(), num_cores=bench_cores(),
    )
    text = render_table4(data)
    report_sink("table4_characterization", text)

    rows = {r["group"]: r for r in data["rows"]}
    assert set(rows) == {"CilkApps", "ustm", "STAMP"}
    for name, r in rows.items():
        # fences occur at a plausible rate (our synthetic kernels have
        # less surrounding compute than the real binaries, so the rate
        # runs higher than the paper's 0.6-5.7/ki)
        assert 0.05 <= r["splus_sf_per_ki"] <= 100, (name, r)
        # the BS holds a handful of lines (paper: 3-5)
        assert 0 <= r["ws_bs_lines"] <= 32, (name, r)
        # bounce-retry traffic is a small fraction of total traffic
        assert r["ws_traffic_pct"] <= 20.0, (name, r)
        assert r["w_traffic_pct"] <= 20.0, (name, r)
        # W+ recoveries are rare per wf
        assert r["w_recoveries_per_wf"] <= 0.2, (name, r)
    # ustm is the fence-heaviest group (paper: 5.7/ki vs ~1/ki)
    assert rows["ustm"]["splus_sf_per_ki"] >= rows["CilkApps"]["splus_sf_per_ki"]
