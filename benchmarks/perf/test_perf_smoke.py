"""Perf-harness smoke: run the tiny matrix and exercise the comparator.

This is *not* the regression gate (CI runs ``repro perf`` directly for
that); it proves the harness end-to-end — timing, snapshot round-trip,
comparison — stays runnable as part of the benchmark suite.
"""

from repro.perf import harness


def test_tiny_profile_and_comparator(tmp_path, benchmark):
    snap = benchmark.pedantic(
        harness.run_profile, args=("tiny",), kwargs={"reps": 1},
        rounds=1, iterations=1,
    )
    assert snap["cases"], "tiny profile produced no cases"
    for case in snap["cases"]:
        assert case["median_s"] > 0
        assert case["events_executed"] > 0

    path = tmp_path / "BENCH_perf.json"
    harness.write_snapshot(snap, str(path))
    reread = harness.load_snapshot(str(path))
    assert reread == snap

    comparison = harness.compare_snapshots(reread, snap, threshold=1.25)
    assert comparison["ok"]
    assert comparison["median_speedup"] == 1.0
    assert not comparison["unmatched_keys"]


def test_kernel_pinning_and_like_vs_like_keys(tmp_path):
    """The --kernel pin rewrites every case onto one backend, records
    it in the snapshot rows, and keys non-object kernels distinctly so
    the comparator can only ever match like-vs-like."""
    snap = harness.run_profile("tiny", reps=1, kernel="flat")
    for case in snap["cases"]:
        assert case["kernel"] == "flat"
        assert case["key"].endswith(":kflat")
        assert case["events_executed"] > 0

    # an object-kernel snapshot shares no keys with a flat one: a flat
    # speedup can never mask an object regression (or vice versa)
    obj = harness.run_profile("tiny", reps=1)
    assert all(c["kernel"] == "object" for c in obj["cases"])
    comparison = harness.compare_snapshots(obj, snap)
    assert not comparison["cases"]
    assert set(comparison["unmatched_keys"]) == {
        c["key"] for c in snap["cases"]
    }

    # like-vs-like: flat-vs-flat matches every case
    again = harness.compare_snapshots(snap, snap)
    assert not again["unmatched_keys"]
    assert again["ok"]
