"""Perf-harness smoke: run the tiny matrix and exercise the comparator.

This is *not* the regression gate (CI runs ``repro perf`` directly for
that); it proves the harness end-to-end — timing, snapshot round-trip,
comparison — stays runnable as part of the benchmark suite.
"""

from repro.perf import harness


def test_tiny_profile_and_comparator(tmp_path, benchmark):
    snap = benchmark.pedantic(
        harness.run_profile, args=("tiny",), kwargs={"reps": 1},
        rounds=1, iterations=1,
    )
    assert snap["cases"], "tiny profile produced no cases"
    for case in snap["cases"]:
        assert case["median_s"] > 0
        assert case["events_executed"] > 0

    path = tmp_path / "BENCH_perf.json"
    harness.write_snapshot(snap, str(path))
    reread = harness.load_snapshot(str(path))
    assert reread == snap

    comparison = harness.compare_snapshots(reread, snap, threshold=1.25)
    assert comparison["ok"]
    assert comparison["median_speedup"] == 1.0
    assert not comparison["unmatched_keys"]
