"""Table 2 — the architecture modeled.

Checks the simulator's default parameters against the paper's table
(8 cores, 4-issue OOO, 140-entry ROB, 64-entry WB, 32 KB 4-way L1,
128 KB 8-way L2 banks, 32-entry BS, 5-cycle mesh hops, 200-cycle
memory) and renders both side by side.
"""

from repro.common.params import MachineParams
from repro.eval.tables import table2

from conftest import run_once


def test_table2_architecture(benchmark, report_sink):
    text = run_once(benchmark, table2)
    report_sink("table2", text)
    p = MachineParams()
    assert p.num_cores == 8
    assert p.issue_width == 4
    assert p.rob_entries == 140
    assert p.write_buffer_entries == 64
    assert p.l1_size_bytes == 32 * 1024 and p.l1_ways == 4
    assert p.l1_hit_cycles == 2 and p.line_bytes == 32
    assert p.l2_bank_size_bytes == 128 * 1024 and p.l2_ways == 8
    assert p.l2_hit_cycles == 11
    assert p.bs_entries == 32
    assert p.mesh_hop_cycles == 5 and p.link_bytes == 32
    assert p.memory_cycles == 200
