"""Figure 12 — scalability of the fence-stall reduction.

Paper shape: for each workload group and design, the ratio
(design fence-stall / S+ fence-stall) stays flat or rises only
modestly from 4 to 32 cores — the designs keep their effectiveness as
the machine scales.

To keep the sweep affordable this bench uses a representative subset
of apps per group (FIG12_APPS) and a reduced default core-count list;
set REPRO_FULL_SCALING=1 to run the paper's full 4/8/16/32 sweep.
"""

import os

from repro.eval.figures import fig12_scalability, render_fig12

from conftest import bench_scale, run_once


def _core_counts():
    if os.environ.get("REPRO_FULL_SCALING"):
        return (4, 8, 16, 32)
    return (4, 8, 16)


def test_fig12_scalability(benchmark, report_sink):
    counts = _core_counts()
    data = run_once(
        benchmark, fig12_scalability,
        scale=min(bench_scale(), 0.5), core_counts=counts,
    )
    text = render_fig12(data)
    report_sink("fig12_scalability", text)

    by_key = {}
    for s in data["series"]:
        by_key.setdefault((s["group"], s["design"]), {})[s["cores"]] = \
            s["stall_ratio"]
    for (group, design), vals in by_key.items():
        ratios = [vals[c] for c in counts if c in vals]
        # the designs reduce fence stall at every core count...
        for c, r in zip(counts, ratios):
            assert r <= 1.0, (group, design, c, r)
        # ...and effectiveness does not collapse as the machine grows
        # (allow modest growth, as in the paper)
        assert ratios[-1] <= max(0.9, 3.0 * max(ratios[0], 0.05)), (
            group, design, ratios)
