"""Table 1 — the taxonomy of Asymmetric fence groups under TSO.

Static in the paper, but checked live here: the rendered rows must
agree with the actually-implemented policy classes (hardware features
each design declares).
"""

from repro.common.params import FenceDesign
from repro.eval.tables import table1
from repro.fences.base import make_policy

from conftest import run_once


class _FakeCore:
    pass


def test_table1_taxonomy(benchmark, report_sink):
    text = run_once(benchmark, table1)
    report_sink("table1", text)
    # the table's hardware-support column must reflect the code
    ws = make_policy(FenceDesign.WS_PLUS, _FakeCore())
    sw = make_policy(FenceDesign.SW_PLUS, _FakeCore())
    wp = make_policy(FenceDesign.W_PLUS, _FakeCore())
    assert not ws.fine_grain_bs and sw.fine_grain_bs
    assert wp.needs_checkpoint and wp.needs_deadlock_monitor
    assert not ws.needs_checkpoint and not sw.needs_checkpoint
    assert "Order" in text and "Conditional Order" in text
    assert "GRT" in text
