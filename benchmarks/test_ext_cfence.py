"""Extension — C-fence vs the asymmetric designs.

The §8 comparison made quantitative: C-fence skips its stall whenever
no associate fence executes concurrently (rare collisions = big wins),
but every dynamic fence pays the centralized-table round trip, and the
conservative everyone-is-an-associate classification makes the
fence-dense ustm group stall often.  Expected shape: C-fence between
S+ and the wf designs on CilkApps, clearly behind them on ustm.
"""

from repro.common.params import FenceDesign
from repro.eval import report
from repro.workloads.base import load_all_workloads, run_workload

from conftest import bench_cores, bench_scale, run_once

CILK = ("fib", "bucket")
USTM = ("ReadNWrite1", "TreeOverwrite")


def test_ext_cfence(benchmark, report_sink):
    load_all_workloads()
    scale = min(bench_scale(), 0.5)
    cores = bench_cores()

    def run():
        rows = []
        for name in CILK + USTM:
            per = {}
            skips = stalls = 0
            for design in (FenceDesign.S_PLUS, FenceDesign.CFENCE,
                           FenceDesign.WS_PLUS):
                r = run_workload(name, design, num_cores=cores,
                                 scale=scale)
                if name in USTM:
                    per[design] = r.throughput
                else:
                    per[design] = r.cycles
                if design is FenceDesign.CFENCE:
                    skips = r.stats.cfence_skips
                    stalls = r.stats.cfence_stalls
            base = per[FenceDesign.S_PLUS] or 1
            better_is_higher = name in USTM
            rows.append((
                name,
                "throughput" if better_is_higher else "time",
                f"{per[FenceDesign.CFENCE] / base:.2f}x",
                f"{per[FenceDesign.WS_PLUS] / base:.2f}x",
                f"{skips}/{skips + stalls}",
            ))
        return rows

    rows = run_once(benchmark, run)
    text = report.format_table(
        ("app", "metric", "C-fence vs S+", "WS+ vs S+",
         "skipped fences"),
        rows,
        title="Extension — Conditional Fences vs Asymmetric fences",
    )
    report_sink("ext_cfence", text)
    for name, metric, cf, ws, _sk in rows:
        cf, ws = float(cf[:-1]), float(ws[:-1])
        if metric == "time":
            assert cf <= 1.05, (name, cf)       # never much worse than S+
        else:
            assert cf >= 0.9, (name, cf)
