"""Figure 11 — execution time of the STAMP applications.

Paper shape: lots of per-app variation; on average WS+ cuts execution
time by 7 %, W+ by 19 % and Wee by 11 %.  The called-out behaviours:
write-heavy intruder gains more from W+ than from WS+, and labyrinth
(few, huge transactions) barely moves under any design.
"""

from repro.eval.figures import fig11_stamp, render_time_figure

from conftest import bench_cores, bench_scale, run_once


def _norm(data, app, design):
    for e in data["entries"]:
        if e["app"] == app and e["design"] == design:
            return e["normalized_time"]
    raise KeyError((app, design))


def test_fig11_stamp(benchmark, report_sink):
    data = run_once(
        benchmark, fig11_stamp,
        scale=bench_scale(), num_cores=bench_cores(),
    )
    text = render_time_figure(
        data, "Figure 11",
        "avg reduction: WS+ 7%, W+ 19%, Wee 11%; intruder favours W+; "
        "labyrinth flat",
    )
    report_sink("fig11_stamp", text)
    avg = data["avg_normalized_time"]
    benchmark.extra_info.update(
        {f"avg_time_{d}": round(v, 3) for d, v in avg.items()}
    )

    assert len(data["apps"]) == 6
    # the weak designs do not lose to S+ on average
    assert avg["WS+"] <= 1.02, avg
    assert avg["W+"] <= 1.0, avg
    # W+ beats WS+ on the write-heavy intruder (paper's observation)
    assert _norm(data, "intruder", "W+") <= \
        _norm(data, "intruder", "WS+") + 0.05
    # labyrinth barely moves under any design (few transactions)
    for d in ("WS+", "W+", "Wee"):
        assert 0.85 <= _norm(data, "labyrinth", d) <= 1.12, (
            d, _norm(data, "labyrinth", d))
