"""Figure 9 — transactional throughput of the ustm microbenchmarks.

Paper shape: normalized to S+, WS+ reaches +38 %, W+ +58 % and Wee only
+14 % (the GRT confinement rule demotes about half of its fences).
Shape assertions: every weak design clearly beats S+ on average, and
W+ ≥ WS+ (W+ weakens the writer-side fences too).
"""

from repro.eval.figures import fig9_fig10_ustm, render_fig9

from conftest import bench_cores, bench_scale, run_once


def test_fig9_ustm_throughput(benchmark, report_sink):
    data = run_once(
        benchmark, fig9_fig10_ustm,
        scale=bench_scale(), num_cores=bench_cores(),
    )
    text = render_fig9(data)
    report_sink("fig9_ustm_throughput", text)
    ratios = data["avg_throughput_ratio"]
    benchmark.extra_info.update(
        {f"tput_{d}": round(v, 3) for d, v in ratios.items()}
    )

    assert len(data["apps"]) == 10
    assert ratios["WS+"] >= 1.10, ratios
    assert ratios["W+"] >= 1.15, ratios
    assert ratios["Wee"] >= 1.05, ratios
    # W+ is the fastest design on ustm (paper: 58% vs 38%)
    assert ratios["W+"] >= ratios["WS+"] - 0.05, ratios
