"""Table 3 — applications used in the evaluation.

The registry must contain exactly the paper's three workload groups:
10 CilkApps, 10 ustm microbenchmarks and 6 STAMP applications.
"""

from repro.eval.tables import table3
from repro.workloads.base import load_all_workloads, workloads_in_group

from conftest import run_once

PAPER_CILK = {"bucket", "cholesky", "cilksort", "fft", "fib",
              "heat", "knapsack", "lu", "matmul", "plu"}
PAPER_USTM = {"Counter", "DList", "Forest", "Hash", "List", "MCAS",
              "ReadNWrite1", "ReadWriteN", "Tree", "TreeOverwrite"}
PAPER_STAMP = {"genome", "intruder", "kmeans", "labyrinth", "ssca2",
               "vacation"}


def test_table3_workloads(benchmark, report_sink):
    text = run_once(benchmark, table3)
    report_sink("table3", text)
    load_all_workloads()
    assert {c.name for c in workloads_in_group("cilk")} == PAPER_CILK
    assert {c.name for c in workloads_in_group("ustm")} == PAPER_USTM
    assert {c.name for c in workloads_in_group("stamp")} == PAPER_STAMP
