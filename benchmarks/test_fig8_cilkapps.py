"""Figure 8 — execution time of CilkApps under S+/WS+/W+/Wee.

Paper shape: with conventional fences the apps spend ~13 % of their
time in fence stall; WS+/W+/Wee eliminate most of it (2-4 % residual),
cutting execution time by ~9 % on average.  Shape assertions below are
deliberately loose (our substrate is a simulator, not their testbed):
the weak designs must remove most fence stall and must not lose to S+.
"""

from repro.eval.figures import fig8_cilkapps, render_time_figure

from conftest import bench_cores, bench_scale, run_once


def test_fig8_cilkapps(benchmark, report_sink):
    data = run_once(
        benchmark, fig8_cilkapps,
        scale=bench_scale(), num_cores=bench_cores(),
    )
    text = render_time_figure(
        data, "Figure 8",
        "S+ fence stall ~13%; WS+/W+/Wee cut execution time ~9% on avg",
    )
    report_sink("fig8_cilkapps", text)
    benchmark.extra_info.update(
        {f"avg_time_{d}": round(v, 3)
         for d, v in data["avg_normalized_time"].items()}
    )

    avg = data["avg_normalized_time"]
    stall = data["avg_fence_stall_fraction"]
    assert len(data["apps"]) == 10
    # S+ has a meaningful fence-stall component...
    assert 0.05 <= stall["S+"] <= 0.45
    # ...which WS+ and W+ mostly eliminate; Wee keeps a residual
    # (our model charges the GRT round trip against the fence, see
    # EXPERIMENTS.md)
    for d in ("WS+", "W+"):
        assert stall[d] <= 0.6 * stall["S+"], (d, stall)
    assert stall["Wee"] <= 0.85 * stall["S+"], stall
    # and the weak designs do not lose to conventional fences on average
    for d in ("WS+", "W+", "Wee"):
        assert avg[d] <= 1.02, (d, avg)
    # WS+ materially beats S+ (paper: ~9 % average reduction)
    assert avg["WS+"] <= 0.97
