"""Shared helpers for the figure/table regeneration benchmarks.

Each benchmark regenerates one table or figure of the paper: it runs
the experiment grid once (``benchmark.pedantic`` with a single round —
the interesting measurement is the simulated machine, not the harness),
prints the rendered report and writes it to ``benchmarks/out/``.

Environment knobs:

* ``REPRO_SCALE``  — workload scale factor (default 0.5 for benches).
* ``REPRO_JOBS``   — parallel simulation processes.
* ``REPRO_CORES``  — simulated core count (default 8, the paper's).
"""

from __future__ import annotations

import os
import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


def pytest_collection_modifyitems(items):
    """Every figure/table regeneration is a full experiment grid."""
    for item in items:
        item.add_marker(pytest.mark.slow)


def bench_scale(default: float = 0.5) -> float:
    try:
        return float(os.environ.get("REPRO_SCALE", default))
    except ValueError:
        return default


def bench_cores(default: int = 8) -> int:
    try:
        return int(os.environ.get("REPRO_CORES", default))
    except ValueError:
        return default


@pytest.fixture
def report_sink():
    """Write a rendered report to benchmarks/out/ and echo it."""
    OUT_DIR.mkdir(exist_ok=True)

    def sink(name: str, text: str) -> None:
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return sink


def run_once(benchmark, fn, *args, **kwargs):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
