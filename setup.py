"""Setuptools shim for environments without the `wheel` package.

`pip install -e .` needs `bdist_wheel` (the wheel package) with the
setuptools shipped here; this shim keeps `python setup.py develop`
working fully offline.

It also declares the *optional* compiled dispatch core for the flat
simulation kernel (``repro.common._flatcore``).  The extension is a
pure accelerator: if no C toolchain is available the build carries on
and the flat kernel runs its pure-Python loop instead, so the sdist
installs everywhere.  Build it in place with::

    python setup.py build_ext --inplace

See docs/PERF.md for details.
"""
from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class optional_build_ext(build_ext):
    """build_ext that degrades to a no-op when compilation fails."""

    def run(self):
        try:
            super().run()
        except Exception as exc:  # no toolchain: skip the accelerator
            self._warn(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:
            self._warn(exc)

    @staticmethod
    def _warn(exc):
        import sys

        print(
            "warning: skipping optional extension repro.common._flatcore "
            f"({exc!r}); the flat kernel will use its pure-Python loop",
            file=sys.stderr,
        )


setup(
    ext_modules=[
        Extension(
            "repro.common._flatcore",
            sources=["src/repro/common/_flatcore.c"],
            optional=True,
        )
    ],
    cmdclass={"build_ext": optional_build_ext},
)
