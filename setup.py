"""Setuptools shim for environments without the `wheel` package.

`pip install -e .` needs `bdist_wheel` (the wheel package) with the
setuptools shipped here; this shim keeps `python setup.py develop`
working fully offline.
"""
from setuptools import setup

setup()
