"""STM edge cases: read-only commits, re-reads, read-for-write
semantics, lock placement."""

import pytest

from repro.common.params import FenceDesign, MachineParams
from repro.core import isa as ops
from repro.sim.machine import Machine
from repro.stm.tlrw import TlrwStm
from repro.stm.txn import Txn


def make(cores=1, design=FenceDesign.WS_PLUS, colocate=0.5):
    params = MachineParams(num_cores=cores, num_banks=max(2, cores))\
        .with_design(design)
    m = Machine(params, seed=31)
    stm = TlrwStm(m.alloc, cores, colocate_prob=colocate)
    return m, stm


def run(m, gen_fn):
    m.spawn(gen_fn)
    return m.run()


def test_read_only_commit_has_no_commit_fence():
    m, stm = make()
    x = m.alloc.word()
    stm.register_region(x, 1)

    def t(ctx):
        txn = Txn(stm, 0)
        yield from txn.read(x)
        yield from txn.commit()

    run(m, t)
    # one read-barrier fence only — commit adds none for pure readers
    assert m.stats.total_wf + m.stats.total_sf == 1


def test_repeated_reads_acquire_once():
    m, stm = make()
    x = m.alloc.word()
    stm.register_region(x, 1)

    def t(ctx):
        txn = Txn(stm, 0)
        for _ in range(5):
            yield from txn.read(x)
        yield from txn.commit()

    run(m, t)
    assert m.stats.total_wf + m.stats.total_sf == 1  # single barrier


def test_read_after_write_skips_reader_flag():
    m, stm = make()
    x = m.alloc.word()
    stm.register_region(x, 1)

    def t(ctx):
        txn = Txn(stm, 0)
        yield from txn.write(x, 5)
        v = yield from txn.read(x)   # own write lock covers the read
        yield from txn.commit()
        yield ops.Note(("v", v))

    run(m, t)
    lock = stm.lock_for(x)
    assert m.image.peek(lock.reader_flags[0]) == 0
    assert m.cores[0].notes[0][1] == ("v", 5)


def test_read_for_write_records_undo():
    m, stm = make()
    x = m.alloc.word()
    m.image.poke(x, 40)
    stm.register_region(x, 1)

    def t(ctx):
        txn = Txn(stm, 0)
        v = yield from txn.read_for_write(x)
        yield from txn.write(x, v + 2)
        yield from txn.abort()       # must restore 40

    run(m, t)
    assert m.image.peek(x) == 40


def test_abort_undoes_in_reverse_order():
    m, stm = make()
    x = m.alloc.word()
    m.image.poke(x, 1)
    stm.register_region(x, 1)

    def t(ctx):
        txn = Txn(stm, 0)
        yield from txn.write(x, 2)
        yield from txn.write(x, 3)   # same word twice: one undo entry
        yield from txn.abort()

    run(m, t)
    assert m.image.peek(x) == 1


def test_register_region_is_idempotent():
    m, stm = make()
    x = m.alloc.word()
    stm.register_region(x, 1)
    lock1 = stm.lock_for(x)
    stm.register_region(x, 1)
    assert stm.lock_for(x) is lock1


def test_colocated_lock_shares_home_bank():
    m, stm = make(colocate=1.0)
    x = m.alloc.word()
    stm.register_region(x, 1)
    lock = stm.lock_for(x)
    bank = m.amap.home_bank(x)
    assert m.amap.home_bank(lock.writer_addr) == bank
    assert all(m.amap.home_bank(f) == bank for f in lock.reader_flags)


def test_noncolocated_lock_on_private_lines():
    m, stm = make(colocate=0.0)
    x = m.alloc.word()
    stm.register_region(x, 1)
    lock = stm.lock_for(x)
    # lock words never share a line with the data word
    assert all(not m.amap.same_line(x, f) for f in lock.reader_flags)
    assert not m.amap.same_line(x, lock.writer_addr)


def test_writer_field_encodes_tid_plus_one():
    m, stm = make(cores=2)
    x = m.alloc.word()
    stm.register_region(x, 1)

    def t(ctx):
        txn = Txn(stm, 0)
        yield from txn.write(x, 1)
        yield ops.Compute(200)
        held = yield ops.Load(stm.lock_for(x).writer_addr)
        yield ops.Note(("held", held))
        yield from txn.commit()

    run(m, t)
    assert m.cores[0].notes[0][1] == ("held", 1)  # tid 0 -> value 1
    assert m.image.peek(stm.lock_for(x).writer_addr) == 0
