"""Lamport's Bakery algorithm under the asymmetric designs (paper §4.3).

The invariant: mutual exclusion.  Each thread performs non-atomic
read-modify-write increments of a shared counter inside the critical
section; a lost update means two threads were inside simultaneously —
exactly the SCV symptom broken fences produce in Bakery.
"""

import pytest

from repro.common.params import FenceDesign, MachineParams
from repro.core import isa as ops
from repro.runtime.bakery import Bakery
from repro.sim.machine import Machine


def run_bakery(design, threads=3, rounds=4, priority=None, seed=11):
    params = MachineParams(num_cores=threads, num_banks=threads)\
        .with_design(design)
    m = Machine(params, seed=seed)
    bakery = Bakery(m.alloc, threads, priority_tid=priority)
    counter = m.alloc.word()

    def worker(ctx):
        for _ in range(rounds):
            yield from bakery.lock(ctx.tid)
            # non-atomic increment: only safe under mutual exclusion
            v = yield ops.Load(counter)
            yield ops.Compute(40)
            yield ops.Store(counter, v + 1)
            yield from bakery.unlock(ctx.tid)
            yield ops.Compute(60)

    m.spawn_all(worker)
    m.run(max_cycles=3_000_000)
    return m, counter, threads * rounds


@pytest.mark.parametrize("design", [FenceDesign.S_PLUS,
                                    FenceDesign.W_PLUS,
                                    FenceDesign.WEE])
def test_mutual_exclusion_symmetric_designs(design):
    m, counter, expected = run_bakery(design)
    assert m.image.peek(counter) == expected


def test_mutual_exclusion_ws_plus_with_priority_thread():
    """WS+ usage per the paper: one prioritized thread uses wfs, the
    others sfs — at most one wf per dynamic group."""
    m, counter, expected = run_bakery(FenceDesign.WS_PLUS, priority=0)
    assert m.image.peek(counter) == expected
    assert m.stats.total_wf >= 1 and m.stats.total_sf >= 1


def test_sw_plus_with_priority_thread():
    m, counter, expected = run_bakery(FenceDesign.SW_PLUS, priority=0)
    assert m.image.peek(counter) == expected


def test_wplus_all_threads_equal():
    """W+ lets every thread run wfs (the 'all threads equally fast'
    usage of §4.3)."""
    m, counter, expected = run_bakery(FenceDesign.W_PLUS)
    assert m.image.peek(counter) == expected
    assert m.stats.total_sf == 0


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_mutual_exclusion_seed_sweep(seed):
    m, counter, expected = run_bakery(FenceDesign.W_PLUS, seed=seed)
    assert m.image.peek(counter) == expected
