"""Spinlock and barrier primitives."""

import pytest

from repro.common.params import FenceDesign, MachineParams
from repro.core import isa as ops
from repro.runtime.sync import Barrier, SpinLock
from repro.sim.machine import Machine

from tests.support import tiny_params


def test_spinlock_mutual_exclusion():
    m = Machine(tiny_params(num_cores=4, exact=False), seed=5)
    lock = SpinLock(m.alloc)
    counter = m.alloc.word()
    N = 10

    def worker(ctx):
        for _ in range(N):
            yield from lock.acquire(ctx.tid)
            v = yield ops.Load(counter)
            yield ops.Compute(30)
            yield ops.Store(counter, v + 1)
            yield from lock.release(ctx.tid)
            yield ops.Compute(40)

    m.spawn_all(worker)
    m.run(max_cycles=3_000_000)
    assert m.image.peek(counter) == 4 * N
    assert m.image.peek(lock.addr) == 0  # released


def test_spinlock_reports_contention_attempts():
    m = Machine(tiny_params(num_cores=2, exact=False), seed=5)
    lock = SpinLock(m.alloc)
    attempts = []

    def holder(ctx):
        yield from lock.acquire(0)
        yield ops.Compute(3000)
        yield from lock.release(0)

    def contender(ctx):
        yield ops.Compute(200)
        n = yield from lock.acquire(1)
        attempts.append(n)
        yield from lock.release(1)

    m.spawn(holder)
    m.spawn(contender)
    m.run()
    assert attempts and attempts[0] >= 1


def test_barrier_synchronizes_all_threads():
    m = Machine(tiny_params(num_cores=4, exact=False), seed=5)
    barrier = Barrier(m.alloc, 4)
    after = m.alloc.alloc_words_padded(4)
    orders = []

    def worker(ctx):
        sense = [0]
        yield ops.Compute(100 * (ctx.tid + 1))  # skewed arrival
        yield from barrier.wait(sense)
        # everyone passed phase 1 before anyone starts phase 2
        orders.append(("p2", ctx.tid))
        yield ops.Store(after[ctx.tid], 1)
        yield from barrier.wait(sense)
        orders.append(("p3", ctx.tid))

    m.spawn_all(worker)
    m.run(max_cycles=2_000_000)
    phases = [p for p, _t in orders]
    assert phases[:4].count("p2") == 4, "a thread passed the barrier early"
    assert all(m.image.peek(a) == 1 for a in after)
