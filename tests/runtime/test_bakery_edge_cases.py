"""Bakery edge cases: ticket ordering, repeated acquisition, roles."""

import pytest

from repro.common.params import FenceDesign, MachineParams, FenceRole
from repro.core import isa as ops
from repro.runtime.bakery import Bakery
from repro.sim.machine import Machine


def make(threads=2, design=FenceDesign.S_PLUS, priority=None, seed=13):
    params = MachineParams(num_cores=threads, num_banks=threads)\
        .with_design(design)
    m = Machine(params, seed=seed)
    bakery = Bakery(m.alloc, threads, priority_tid=priority)
    return m, bakery


def test_single_thread_lock_unlock_repeats():
    m, bakery = make(threads=1)
    counter = m.alloc.word()

    def t(ctx):
        for _ in range(5):
            yield from bakery.lock(0)
            v = yield ops.Load(counter)
            yield ops.Store(counter, v + 1)
            yield from bakery.unlock(0)

    m.spawn(t)
    res = m.run(max_cycles=2_000_000)
    assert res.completed
    assert m.image.peek(counter) == 5
    assert m.image.peek(bakery.number[0]) == 0  # ticket returned


def test_critical_sections_never_overlap():
    m, bakery = make(threads=3, design=FenceDesign.W_PLUS)
    inside = m.alloc.word()
    max_seen = m.alloc.word()

    def t(ctx):
        for _ in range(3):
            yield from bakery.lock(ctx.tid)
            n = yield ops.AtomicRMW(inside, "add", 1)
            cur = yield ops.Load(max_seen)
            if n + 1 > cur:
                yield ops.Store(max_seen, n + 1)
            yield ops.Compute(80)
            yield ops.AtomicRMW(inside, "add", -1)
            yield from bakery.unlock(ctx.tid)
            yield ops.Compute(50)

    m.spawn_all(t)
    res = m.run(max_cycles=5_000_000)
    assert res.completed
    assert m.image.peek(max_seen) == 1, "two threads inside at once"
    assert m.image.peek(inside) == 0


def test_priority_role_mapping():
    m, bakery = make(threads=3, priority=1)
    assert bakery._role(1) is FenceRole.CRITICAL
    assert bakery._role(0) is FenceRole.STANDARD
    assert bakery._role(2) is FenceRole.STANDARD
    m2, bakery2 = make(threads=3, priority=None)
    assert all(bakery2._role(t) is FenceRole.CRITICAL for t in range(3))


def test_entries_are_line_padded():
    m, bakery = make(threads=4)
    lines = {m.amap.line_of(a) for a in bakery.choosing + bakery.number}
    assert len(lines) == 8  # each entry on its own line
