"""The TLRW STM: isolation, atomicity, undo, fence placement."""

import pytest

from repro.common.params import FenceDesign, MachineParams
from repro.core import isa as ops
from repro.sim.machine import Machine
from repro.stm.tlrw import TlrwStm, TxnAbort
from repro.stm.txn import Txn, run_transactions


def make_stm(design=FenceDesign.S_PLUS, cores=4, seed=21):
    params = MachineParams(num_cores=cores, num_banks=cores)\
        .with_design(design)
    m = Machine(params, seed=seed)
    stm = TlrwStm(m.alloc, cores)
    return m, stm


@pytest.mark.parametrize("design", list(FenceDesign))
def test_counter_increments_are_atomic(design):
    m, stm = make_stm(design)
    counter = m.alloc.word()
    stm.register_region(counter, 1)
    N = 12

    def make_body(ctx, i):
        def body(txn):
            v = yield from txn.read(counter)
            yield from txn.write(counter, v + 1)
        return body

    def thread(ctx):
        yield from run_transactions(ctx, stm, make_body, N,
                                    think_instructions=50)

    m.spawn_all(thread)
    m.run(max_cycles=5_000_000)
    assert m.image.peek(counter) == m.stats.txn_commits
    assert m.stats.txn_commits == 4 * N


def test_multiword_invariant_preserved():
    """Transfers between two cells: the sum is invariant under
    serializable execution."""
    m, stm = make_stm(FenceDesign.W_PLUS)
    a, b = m.alloc.word(), m.alloc.word()
    m.image.poke(a, 1000)
    stm.register_region(a, 1)
    stm.register_region(b, 1)
    sums = []

    def make_body(ctx, i):
        amount = ctx.rng.randrange(1, 10)

        def body(txn):
            va = yield from txn.read_for_write(a)
            vb = yield from txn.read_for_write(b)
            yield from txn.write(a, va - amount)
            yield from txn.write(b, vb + amount)
        return body

    def thread(ctx):
        yield from run_transactions(ctx, stm, make_body, 10,
                                    think_instructions=60)

    m.spawn_all(thread)
    m.run(max_cycles=5_000_000)
    assert m.image.peek(a) + m.image.peek(b) == 1000


def test_abort_restores_undo_log():
    m, stm = make_stm(cores=1)
    x = m.alloc.word()
    m.image.poke(x, 55)
    stm.register_region(x, 1)

    def thread(ctx):
        txn = Txn(stm, ctx.tid)
        yield from txn.write(x, 99)
        yield from txn.abort()

    m.spawn(thread)
    m.run()
    assert m.image.peek(x) == 55  # undone


def test_reader_aborts_when_writer_holds():
    m, stm = make_stm(cores=2)
    x = m.alloc.word()
    stm.register_region(x, 1)
    outcome = []

    def writer(ctx):
        txn = Txn(stm, 0)
        yield from txn.write(x, 1)
        yield ops.Compute(20_000)  # hold the write lock a long time
        yield from txn.commit()

    def reader(ctx):
        yield ops.Compute(2_000)
        txn = Txn(stm, 1)
        try:
            yield from txn.read(x)
            outcome.append("read")
        except TxnAbort:
            yield from txn.abort()
            outcome.append("abort")

    m.spawn(writer)
    m.spawn(reader)
    m.run()
    assert outcome == ["abort"]


def test_writer_waits_for_readers_then_aborts():
    m, stm = make_stm(cores=2)
    x = m.alloc.word()
    stm.register_region(x, 1)
    outcome = []

    def reader(ctx):
        txn = Txn(stm, 0)
        yield from txn.read(x)
        yield ops.Compute(30_000)  # pin the read lock
        yield from txn.commit()

    def writer(ctx):
        yield ops.Compute(2_000)
        txn = Txn(stm, 1)
        try:
            yield from txn.write(x, 9)
            outcome.append("wrote")
        except TxnAbort:
            yield from txn.abort()
            outcome.append("abort")

    m.spawn(reader)
    m.spawn(writer)
    m.run()
    assert outcome == ["abort"]
    assert m.image.peek(x) == 0


def test_read_barrier_uses_critical_fence_write_uses_standard():
    """Fence placement per the paper §4.2: under WS+ the read barrier
    runs a wf and writer-side fences run as sfs."""
    m, stm = make_stm(FenceDesign.WS_PLUS, cores=1)
    x = m.alloc.word()
    stm.register_region(x, 1)

    def thread(ctx):
        txn = Txn(stm, 0)
        v = yield from txn.read(x)
        yield from txn.write(x, v + 1)
        yield from txn.commit()

    m.spawn(thread)
    m.run()
    assert m.stats.total_wf >= 1   # read barrier
    assert m.stats.total_sf >= 2   # write barrier + commit


def test_upgrade_read_to_write_releases_both_locks():
    m, stm = make_stm(cores=1)
    x = m.alloc.word()
    stm.register_region(x, 1)

    def thread(ctx):
        txn = Txn(stm, 0)
        v = yield from txn.read(x)
        yield from txn.write(x, v + 1)
        yield from txn.commit()
        # everything released: a fresh writer acquires cleanly
        txn2 = Txn(stm, 0)
        yield from txn2.write(x, 7)
        yield from txn2.commit()

    m.spawn(thread)
    m.run()
    lock = stm.lock_for(x)
    assert m.image.peek(lock.writer_addr) == 0
    assert all(m.image.peek(f) == 0 for f in lock.reader_flags)
    assert m.image.peek(x) == 7


def test_flag_padding_keeps_lock_within_one_block():
    m, stm = make_stm(cores=8)
    x = m.alloc.word()
    stm.register_region(x, 1)
    lock = stm.lock_for(x)
    words = lock.reader_flags + [lock.writer_addr]
    block = m.params.bank_interleave_bytes
    assert len({w // block for w in words}) == 1
    # flags are spread over lines per FLAGS_PER_LINE
    lines = {m.amap.line_of(f) for f in lock.reader_flags}
    assert len(lines) >= 8 // stm.FLAGS_PER_LINE
