"""THE deque edge cases: wrap-around, empty steals, lock contention."""

import pytest

from repro.common.params import FenceDesign
from repro.core import isa as ops
from repro.runtime.workstealing import EMPTY, WorkDeque
from repro.sim.machine import Machine

from tests.support import notes_of, run_threads, tiny_params


def test_slot_index_wraps_around_capacity():
    m = Machine(tiny_params(num_cores=1))
    dq = WorkDeque(m.alloc, capacity=4, owner=0)
    out = []

    def t(ctx):
        # push/take cycles advance tail far past the capacity
        for round_ in range(6):
            yield from dq.push(100 + round_)
            task = yield from dq.take()
            out.append(task)

    run_threads(m, t)
    assert out == [100, 101, 102, 103, 104, 105]


def test_take_from_empty_deque():
    m = Machine(tiny_params(num_cores=1))
    dq = WorkDeque(m.alloc, capacity=4, owner=0)
    out = []

    def t(ctx):
        task = yield from dq.take()
        out.append(task)
        # the failed take must leave the deque usable
        yield from dq.push(7)
        task = yield from dq.take()
        out.append(task)

    run_threads(m, t)
    assert out == [EMPTY, 7]


def test_steal_from_empty_deque_undoes_head():
    m = Machine(tiny_params(num_cores=2))
    dq = WorkDeque(m.alloc, capacity=4, owner=0)
    out = []

    def thief(ctx):
        task = yield from dq.steal(thief=1)
        out.append(task)

    def owner(ctx):
        yield ops.Compute(3000)
        yield from dq.push(9)
        task = yield from dq.take()
        out.append(task)

    run_threads(m, thief, owner)
    assert out == [EMPTY, 9]
    # head restored: head == tail after everything
    assert m.image.peek(dq.head_addr) == m.image.peek(dq.tail_addr)


def test_two_thieves_share_one_victim():
    m = Machine(tiny_params(FenceDesign.WS_PLUS, num_cores=3,
                            exact=False), seed=8)
    dq = WorkDeque(m.alloc, capacity=16, owner=0)

    def owner(ctx):
        for i in range(1, 9):
            yield from dq.push(i)
        yield ops.Compute(8000)

    def thief(me):
        def fn(ctx):
            got = []
            yield ops.Compute(400 * me)
            for _ in range(3):
                task = yield from dq.steal(thief=me)
                if task is not EMPTY:
                    got.append(task)
                yield ops.Compute(200)
            yield ops.Note(("got", tuple(got)))
        return fn

    m.spawn(owner)
    m.spawn(thief(1))
    m.spawn(thief(2))
    m.run()
    got1 = dict(notes_of(m, 1))["got"]
    got2 = dict(notes_of(m, 2))["got"]
    stolen = list(got1) + list(got2)
    # no task stolen twice, and steals come from the head (FIFO)
    assert len(stolen) == len(set(stolen))
    assert sorted(got1 + got2) == sorted(stolen)
    assert set(stolen) <= set(range(1, 9))
