"""Correctness of the transactional data structures against reference
models (single-threaded: pure structure logic, no contention)."""

import pytest

from repro.common.params import FenceDesign, MachineParams
from repro.sim.machine import Machine
from repro.stm.tlrw import TlrwStm
from repro.stm.txn import Txn
from repro.workloads.ustm import DList, Hash, TxList, _TreeBase


def build(workload_cls, **attrs):
    params = MachineParams(num_cores=1, num_banks=1)
    m = Machine(params, seed=9)
    wl = workload_cls(scale=1.0)
    for k, v in attrs.items():
        setattr(wl, k, v)
    wl.stm = TlrwStm(m.alloc, 1)
    wl.build(m)
    return m, wl


def drive(m, gen_fn):
    """Run one generator as the single thread and return its value."""
    out = {}

    def thread(ctx):
        out["value"] = yield from gen_fn(ctx)

    m.spawn(thread)
    m.run()
    return out.get("value")


def test_list_against_reference_model():
    m, wl = build(TxList)
    pool = wl.heap.pool_for(0)
    reference = set(range(0, wl.key_range, wl.key_range // wl.initial_keys))
    script = [("insert", 33), ("lookup", 33), ("delete", 33),
              ("lookup", 33), ("insert", 5), ("insert", 5),
              ("delete", 0), ("lookup", 0), ("insert", 95),
              ("lookup", 95), ("delete", 95), ("delete", 95)]

    def gen(ctx):
        results = []
        for op, key in script:
            txn = Txn(wl.stm, 0)
            if op == "lookup":
                v = yield from wl.lookup(txn, key)
                results.append(v is not None)
            elif op == "insert":
                yield from wl.insert(txn, key, pool)
                results.append(True)
            else:
                v = yield from wl.delete(txn, key)
                results.append(v)
            yield from txn.commit()
        return results

    results = drive(m, gen)
    expected = []
    for op, key in script:
        if op == "lookup":
            expected.append(key in reference)
        elif op == "insert":
            reference.add(key)
            expected.append(True)
        else:
            expected.append(key in reference)
            reference.discard(key)
    assert results == expected


def _collect_list_keys(m, wl):
    """Walk the list non-transactionally via the image."""
    keys = []
    cur = m.image.peek(wl.head)
    while cur:
        keys.append(m.image.peek(wl.heap.field(cur, wl.KEY)))
        cur = m.image.peek(wl.heap.field(cur, wl.NXT))
    return keys


def test_list_stays_sorted():
    m, wl = build(TxList)
    pool = wl.heap.pool_for(0)

    def gen(ctx):
        for key in (3, 77, 41, 90, 1):
            txn = Txn(wl.stm, 0)
            yield from wl.insert(txn, key, pool)
            yield from txn.commit()

    drive(m, gen)
    keys = _collect_list_keys(m, wl)
    assert keys == sorted(keys)
    for key in (3, 77, 41, 90, 1):
        assert key in keys


def test_dlist_back_links_consistent():
    m, wl = build(DList)
    pool = wl.heap.pool_for(0)

    def gen(ctx):
        for key in (9, 3, 50):
            txn = Txn(wl.stm, 0)
            yield from wl.insert(txn, key, pool)
            yield from txn.commit()
        txn = Txn(wl.stm, 0)
        yield from wl.delete(txn, 9)
        yield from txn.commit()

    drive(m, gen)
    # walk forward checking prev pointers
    prev = 0
    cur = m.image.peek(wl.head)
    while cur:
        assert m.image.peek(wl.heap.field(cur, wl.PRV)) == prev
        prev = cur
        cur = m.image.peek(wl.heap.field(cur, wl.NXT))
    assert 9 not in _collect_list_keys(m, wl)


def test_tree_bst_property_after_inserts_and_deletes():
    m, wl = build(_TreeBase, key_range=128)
    pool = wl.heap.pool_for(0)

    def gen(ctx):
        found = []
        for key in (1, 127, 63, 2, 99):
            txn = Txn(wl.stm, 0)
            yield from wl.tree_insert(txn, key, pool)
            yield from txn.commit()
        for key in (1, 127, 63):
            txn = Txn(wl.stm, 0)
            v = yield from wl.tree_lookup(txn, key)
            found.append(v is not None)
            yield from txn.commit()
        txn = Txn(wl.stm, 0)
        yield from wl.tree_delete_leafish(txn, 1)
        yield from txn.commit()
        return found

    found = drive(m, gen)
    assert found == [True, True, True]

    def check_bst(idx, lo, hi):
        if not idx:
            return
        key = m.image.peek(wl.heap.field(idx, wl.KEY))
        assert lo <= key <= hi, f"BST violated at {key}"
        check_bst(m.image.peek(wl.heap.field(idx, wl.LEFT)), lo, key - 1)
        check_bst(m.image.peek(wl.heap.field(idx, wl.RIGHT)), key + 1, hi)

    check_bst(m.image.peek(wl.root), 0, 10 ** 9)


def test_hash_insert_lookup_delete():
    m, wl = build(Hash)
    pool = wl.heap.pool_for(0)

    def gen(ctx):
        results = []
        for key in (5, 5 + wl.buckets, 5 + 2 * wl.buckets):  # one bucket
            txn = Txn(wl.stm, 0)
            _field, cur = yield from wl._find_in_bucket(txn, key)
            if not cur and pool:
                node = pool[-1]
                head = wl.bucket_heads[key % wl.buckets]
                old = yield from txn.read(head)
                yield from txn.write(wl.heap.field(node, wl.KEY), key)
                yield from txn.write(wl.heap.field(node, wl.VAL), key)
                yield from txn.write(wl.heap.field(node, wl.NXT), old)
                yield from txn.write(head, node)
                pool.pop()
            yield from txn.commit()
        for key in (5, 5 + wl.buckets):
            txn = Txn(wl.stm, 0)
            _field, cur = yield from wl._find_in_bucket(txn, key)
            results.append(bool(cur))
            yield from txn.commit()
        return results

    assert drive(m, gen) == [True, True]
