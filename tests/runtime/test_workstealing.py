"""The THE work-stealing runtime: exactly-once execution under every
fence design, steal behaviour, deque protocol."""

import pytest

from repro.common.params import FenceDesign, MachineParams
from repro.core import isa as ops
from repro.runtime.workstealing import EMPTY, WorkDeque, WorkStealingRuntime
from repro.sim.machine import Machine

from tests.support import notes_of, run_threads, tiny_params


class BinaryTreeApp:
    """Simple complete binary task tree rooted at worker 0."""

    def __init__(self, depth, leaf_work=60):
        self.depth = depth
        self.leaf_work = leaf_work
        self.total_tasks = 2 ** (depth + 1) - 1

    def roots(self, worker):
        return [1] if worker == 0 else []

    def run_task(self, tid):
        yield ops.Compute(self.leaf_work)
        if tid.bit_length() - 1 < self.depth:
            return [2 * tid, 2 * tid + 1]
        return []


def run_app(design, workers=4, depth=6, seed=3):
    params = MachineParams(num_cores=workers, num_banks=workers)\
        .with_design(design)
    m = Machine(params, seed=seed)
    rt = WorkStealingRuntime(m.alloc, workers)
    app = BinaryTreeApp(depth)

    def worker(ctx):
        yield from rt.worker_loop(ctx, app)

    m.spawn_all(worker)
    m.run()
    return m, app


@pytest.mark.parametrize("design", list(FenceDesign))
def test_every_task_executes_exactly_once(design):
    m, app = run_app(design)
    assert m.stats.tasks_executed == app.total_tasks


@pytest.mark.parametrize("seed", [1, 2, 3, 4])
def test_wplus_exactly_once_across_seeds(seed):
    m, app = run_app(FenceDesign.W_PLUS, seed=seed)
    assert m.stats.tasks_executed == app.total_tasks


def test_stealing_happens_and_spreads_work():
    m, app = run_app(FenceDesign.S_PLUS, workers=4, depth=7)
    assert m.stats.tasks_stolen >= 1
    # more than one core did work
    busy_cores = sum(1 for b in m.stats.breakdown if b.busy > 0)
    assert busy_cores == 4


def test_owner_fences_weak_thief_fences_strong_under_ws_plus():
    m, app = run_app(FenceDesign.WS_PLUS, workers=4, depth=6)
    # takes (owner, critical->wf) vastly outnumber steals (sf)
    assert m.stats.total_wf > m.stats.total_sf
    assert m.stats.total_sf >= 1  # lock-path / steal fences exist


def test_deque_push_take_lifo():
    m = Machine(tiny_params(num_cores=1))
    dq = WorkDeque(m.alloc, capacity=16, owner=0)
    out = []

    def t(ctx):
        for task in (11, 22, 33):
            yield from dq.push(task)
        for _ in range(4):
            task = yield from dq.take()
            out.append(task)

    run_threads(m, t)
    assert out == [33, 22, 11, EMPTY]


def test_deque_steal_fifo_from_head():
    m = Machine(tiny_params(num_cores=2))
    dq = WorkDeque(m.alloc, capacity=16, owner=0)
    out = []

    def owner(ctx):
        for task in (11, 22, 33):
            yield from dq.push(task)
        yield ops.Compute(4000)  # let the thief work

    def thief(ctx):
        yield ops.Compute(600)
        for _ in range(2):
            task = yield from dq.steal(thief=1)
            out.append(task)

    run_threads(m, owner, thief)
    assert out == [11, 22]


def test_take_steal_race_on_last_task_is_safe():
    """The THE boundary case: one task, owner and thief race; the lock
    fallback must hand it to exactly one of them."""
    for seed in range(6):
        m = Machine(tiny_params(FenceDesign.WS_PLUS, num_cores=2))
        dq = WorkDeque(m.alloc, capacity=8, owner=0)
        got = []

        def owner(ctx):
            yield from dq.push(77)
            yield ops.Compute(300 + 40 * seed)
            task = yield from dq.take()
            yield ops.Note(("take", task))

        def thief(ctx):
            yield ops.Compute(280 + 45 * seed)
            task = yield from dq.steal(thief=1)
            yield ops.Note(("steal", task))

        run_threads(m, owner, thief)
        taken = [v for _k, v in notes_of(m, 0) + notes_of(m, 1)
                 if v is not EMPTY]
        assert taken == [77], f"seed {seed}: task duplicated or lost"
