"""Property-based tests of TSO write-buffer invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.writebuffer import WriteBuffer

words = st.integers(min_value=0, max_value=15).map(lambda i: i * 4)
values = st.integers(min_value=0, max_value=1000)
programs = st.lists(st.tuples(words, values), min_size=1, max_size=40)


@given(programs)
@settings(max_examples=150, deadline=None)
def test_drain_order_is_program_order(program):
    wb = WriteBuffer(64)
    pushed = []
    for word, value in program:
        pushed.append(wb.push(word, value, line=word - word % 32))
    drained = []
    while not wb.empty:
        drained.append(wb.pop_head())
    assert drained == pushed
    ids = [e.store_id for e in drained]
    assert ids == sorted(ids)


@given(programs, words)
@settings(max_examples=150, deadline=None)
def test_forwarding_returns_newest_matching_value(program, probe):
    wb = WriteBuffer(64)
    for word, value in program:
        wb.push(word, value, line=word - word % 32)
    expected = None
    for word, value in program:
        if word == probe:
            expected = value
    assert wb.forward(probe) == expected


@given(programs, st.integers(min_value=0, max_value=39))
@settings(max_examples=150, deadline=None)
def test_entries_upto_is_a_prefix(program, cut):
    wb = WriteBuffer(64)
    entries = [wb.push(w, v, line=w - w % 32) for w, v in program]
    cut = min(cut, len(entries) - 1)
    boundary = entries[cut].store_id
    prefix = wb.entries_upto(boundary)
    assert prefix == entries[:cut + 1]


@given(programs, st.integers(min_value=0, max_value=39))
@settings(max_examples=150, deadline=None)
def test_drop_after_keeps_exact_prefix(program, cut):
    wb = WriteBuffer(64)
    entries = [wb.push(w, v, line=w - w % 32) for w, v in program]
    cut = min(cut, len(entries) - 1)
    boundary = entries[cut].store_id
    dropped = wb.drop_after(boundary)
    assert dropped == len(entries) - cut - 1
    assert wb.snapshot() == entries[:cut + 1]


@given(programs)
@settings(max_examples=100, deadline=None)
def test_forwarding_equivalent_to_sequential_memory(program):
    """Draining into a memory dict must equal last-write-wins; at every
    intermediate point forwarding+memory equals the program's view."""
    wb = WriteBuffer(64)
    memory = {}
    history = {}
    for word, value in program:
        wb.push(word, value, line=word - word % 32)
        history[word] = value
        # the thread's own view: WB forwarding first, then memory
        view = wb.forward(word)
        assert (view if view is not None else memory.get(word)) == value
    while not wb.empty:
        e = wb.pop_head()
        memory[e.word] = e.value
    assert memory == history
