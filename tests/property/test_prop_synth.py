"""Property test: synthesis output is always oracle-acceptable.

For a randomly generated litmus program, whatever the synthesizer
returns must (a) be legal under the design's group taxonomy, (b) pass
a *fresh* oracle over the very adversary points the search used — a
stateful-oracle bug (stale counterexample hints, point-order leakage)
would show up as a returned placement a clean judge rejects — and
(c) form an antichain: no returned minimum may cover another, or the
covering one was never minimal.

The fast half keeps the example count small for the tier-1 lane; the
``slow``-marked battery drives the whole engine (report, audit,
double-budget re-verification) over more programs for the nightly
lane.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fences.base import synthesis_profile
from repro.synth import SynthConfig, run_synthesis
from repro.synth.search import PlacementOracle, synthesize
from repro.synth.sites import extract_sites
from repro.verify.generator import generate_program
from repro.verify.oracles import PAPER_DESIGNS
from repro.verify.perturb import adversary_points

import pytest

SEARCH_POINTS = 4


def _synthesize_random(seed: int, design):
    program = generate_program(seed, shape="random")
    stripped = program.stripped()
    sites = extract_sites(program, mode="auto")
    points = tuple(adversary_points(seed, SEARCH_POINTS))
    outcome = synthesize(stripped, sites, design, points)
    return stripped, sites, points, outcome


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**16),
       design=st.sampled_from(PAPER_DESIGNS))
def test_synth_returns_oracle_accepted_placements(seed, design):
    stripped, _sites, points, outcome = _synthesize_random(seed, design)
    assert outcome.status == "ok", (
        f"synthesis failed on rand seed {seed} / {design.value}: "
        f"{outcome.status} ({outcome.failure})"
    )
    assert outcome.minima
    profile = synthesis_profile(design)
    fresh = PlacementOracle(stripped, design, points)
    for minimum in outcome.minima:
        assert minimum.legal(profile)
        ce = fresh.check(minimum)
        assert ce is None, (
            f"fresh oracle rejects {minimum.key()} on rand seed "
            f"{seed} / {design.value}: {ce.reason}"
        )
    for a in outcome.minima:
        for b in outcome.minima:
            assert a is b or not a.covers(b), (
                f"{a.key()} covers {b.key()}: not an antichain"
            )


@pytest.mark.slow
@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**20))
def test_full_engine_on_random_programs(seed):
    """Nightly battery: the whole report pipeline — search, audit at
    double budget, weakening mutations, cost ranking — holds on
    generator output across every design at once."""
    config = SynthConfig(program=f"random:{seed}", designs=PAPER_DESIGNS,
                         seed=seed, num_points=SEARCH_POINTS)
    report = run_synthesis(config)
    assert report.ok, (
        f"random:{seed}: report not ok: "
        + str({d: e["status"] for d, e in report.designs.items()})
    )
