"""Property-based tests of the set-associative cache."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.cache import LineState, SetAssocCache

LINE = 32
SETS = 4
WAYS = 2

lines = st.integers(min_value=0, max_value=63).map(lambda i: i * LINE)
states = st.sampled_from(list(LineState))
operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), lines, states),
        st.tuples(st.just("lookup"), lines),
        st.tuples(st.just("invalidate"), lines),
    ),
    max_size=60,
)


def fresh():
    return SetAssocCache(SETS * WAYS * LINE, WAYS, LINE)


def apply_ops(cache, ops_list):
    model = {}  # line -> state, plus LRU via list per set
    for op in ops_list:
        if op[0] == "insert":
            _k, line, state = op
            evicted = cache.insert(line, state)
            model[line] = state
            if evicted is not None:
                del model[evicted[0]]
        elif op[0] == "lookup":
            cache.lookup(op[1])
        else:
            cache.invalidate(op[1])
            model.pop(op[1], None)
    return model


@given(operations)
@settings(max_examples=150, deadline=None)
def test_capacity_never_exceeded(ops_list):
    cache = fresh()
    apply_ops(cache, ops_list)
    for s in cache.sets:
        assert len(s) <= WAYS


@given(operations)
@settings(max_examples=150, deadline=None)
def test_contents_match_reference_model(ops_list):
    cache = fresh()
    model = apply_ops(cache, ops_list)
    assert dict(cache.lines()) == model


@given(operations)
@settings(max_examples=150, deadline=None)
def test_lines_stay_in_their_set(ops_list):
    cache = fresh()
    apply_ops(cache, ops_list)
    for idx, s in enumerate(cache.sets):
        for line in s:
            assert (line // LINE) % SETS == idx


@given(st.lists(lines, min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_most_recently_inserted_never_evicted(sequence):
    cache = fresh()
    for line in sequence:
        evicted = cache.insert(line, LineState.S)
        assert cache.lookup(line) is not None
        if evicted is not None:
            assert evicted[0] != line
