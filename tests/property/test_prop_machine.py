"""Property-based end-to-end machine invariants.

Random small multithreaded programs over a handful of shared words,
run under every fence design.  Checked invariants:

* **coherence / last-write-wins**: the final memory image equals the
  last merged store per word (tracked through the image's own tags);
* **TSO per-thread ordering**: a thread's own stores merge in program
  order (checked via the image observer);
* **fenced SB cores**: with an sf (or recovered wf) between a store
  and a conflicting load, the forbidden all-old outcome never appears
  across designs (covered exhaustively by the litmus suite; here we
  only require SC per the Shasha–Snir checker on *fenced* programs);
* **accounting**: busy + fence + other cycles are non-negative and the
  run terminates.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.params import FenceDesign, FenceRole
from repro.core import isa as ops
from repro.sim.machine import Machine
from repro.sim.scv import find_scv

from tests.support import tiny_params

NUM_WORDS = 4
designs = st.sampled_from(list(FenceDesign))

# op codes: (kind, word_idx, value)
op_strategy = st.one_of(
    st.tuples(st.just("load"), st.integers(0, NUM_WORDS - 1)),
    st.tuples(st.just("store"), st.integers(0, NUM_WORDS - 1),
              st.integers(1, 99)),
    st.tuples(st.just("fence")),
    st.tuples(st.just("compute"), st.integers(1, 60)),
)
thread_programs = st.lists(op_strategy, min_size=1, max_size=12)


def build_thread(program, words, role, fence_every_store=False):
    """*fence_every_store* places a fence after every store: under TSO
    that makes every execution sequentially consistent, so the checker
    may assert acyclicity.  Without it, TSO's store→load reordering
    legitimately produces non-SC executions (hypothesis found exactly
    that when this test originally asserted SC unconditionally)."""
    def fn(ctx):
        for op in program:
            if op[0] == "load":
                yield ops.Load(words[op[1]])
            elif op[0] == "store":
                yield ops.Store(words[op[1]], op[2])
                if fence_every_store:
                    yield ops.Fence(role)
            elif op[0] == "fence":
                yield ops.Fence(role)
            else:
                yield ops.Compute(op[1])
    return fn


@given(designs, thread_programs, thread_programs, st.integers(0, 5))
@settings(max_examples=60, deadline=None)
def test_random_programs_terminate_and_stay_coherent(design, p0, p1, seed):
    m = Machine(tiny_params(design, num_cores=2, track_dependences=True),
                seed=seed)
    words = [m.alloc.word() for _ in range(NUM_WORDS)]
    merge_order = {w: [] for w in words}
    per_core_stores = {0: [], 1: []}
    orig_observer = m.image.observer

    def observer(kind, core, word, value, tag):
        if orig_observer is not None:
            orig_observer(kind, core, word, value, tag)
        if kind == "store" and word in merge_order:
            merge_order[word].append((core, value, tag))
            per_core_stores[core].append(tag[1])

    m.image.observer = observer
    # roles per the designs' contracts: at most one critical thread
    m.spawn(build_thread(p0, words, FenceRole.CRITICAL))
    m.spawn(build_thread(p1, words, FenceRole.STANDARD))
    result = m.run(max_cycles=2_000_000)

    assert result.completed, "random program failed to terminate"
    # last-write-wins: image value equals the last merged store
    for w in words:
        if merge_order[w]:
            assert m.image.peek(w) == merge_order[w][-1][1]
    # TSO: each core's stores merged with monotonically increasing
    # serials (program order)
    for core, serials in per_core_stores.items():
        assert serials == sorted(serials)
    # accounting sanity (SC is only guaranteed for fully-fenced
    # programs — see the dedicated property below)
    t = m.stats.total_breakdown()
    assert all(v >= 0 for v in t.values())


@given(designs, thread_programs, thread_programs, st.integers(0, 5))
@settings(max_examples=40, deadline=None)
def test_fully_fenced_random_programs_are_sc(design, p0, p1, seed):
    """A fence after every store under TSO forbids the only relaxed
    reordering, so every execution must be sequentially consistent —
    for every fence design, with the at-most-one-wf role contract."""
    m = Machine(tiny_params(design, num_cores=2, track_dependences=True),
                seed=seed)
    words = [m.alloc.word() for _ in range(NUM_WORDS)]
    m.spawn(build_thread(p0, words, FenceRole.CRITICAL,
                         fence_every_store=True))
    m.spawn(build_thread(p1, words, FenceRole.STANDARD,
                         fence_every_store=True))
    result = m.run(max_cycles=2_000_000)
    assert result.completed
    assert find_scv(result.events) is None


@given(thread_programs, st.integers(0, 3))
@settings(max_examples=30, deadline=None)
def test_single_thread_matches_sequential_semantics(program, seed):
    """One thread: the simulator must behave like a plain interpreter."""
    m = Machine(tiny_params(FenceDesign.W_PLUS, num_cores=1), seed=seed)
    words = [m.alloc.word() for _ in range(NUM_WORDS)]
    observed = []

    def fn(ctx):
        for op in program:
            if op[0] == "load":
                v = yield ops.Load(words[op[1]])
                observed.append(v)
            elif op[0] == "store":
                yield ops.Store(words[op[1]], op[2])
            elif op[0] == "fence":
                yield ops.Fence(FenceRole.CRITICAL)
            else:
                yield ops.Compute(op[1])

    m.spawn(fn)
    m.run()
    # reference interpreter
    memory = {}
    expected = []
    for op in program:
        if op[0] == "load":
            expected.append(memory.get(words[op[1]], 0))
        elif op[0] == "store":
            memory[words[op[1]]] = op[2]
    assert observed == expected
    for w, v in memory.items():
        assert m.image.peek(w) == v
