"""Property test: the sanitizer's invariants hold under random traffic.

Two angles on the same claim.  First, random load/store/fence mixes
hammer the directory and the L1s on a tiny exact-interleaving machine
with a **strict** sanitizer attached on a tight cadence — any schedule
in which the protocol's own bookkeeping (sharer/owner lists, BS
episodes, WB FIFO order) drifts from the structural invariants raises
immediately.  Second, the verify generator's litmus programs run the
same way, covering the fence-heavy shapes the random mix under-samples.

Either test failing means one of two bugs: the protocol broke an
invariant, or the sanitizer's catalog has a false positive.  Both are
release blockers, which is what makes the property worth the runtime.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.params import FenceDesign, FenceRole
from repro.core import isa as ops
from repro.sanitizer import Sanitizer
from repro.sim.machine import Machine

from tests.support import ALL_DESIGNS, tiny_params


def _random_thread(rng, addrs, n_ops, role):
    """A deterministic op list drawn up-front (threads must replay).

    *role* is the thread's fence role: like the litmus generator, only
    one thread per program gets CRITICAL (wf) fences — two concurrent
    wf episodes bouncing each other's stores is the unsynchronized
    pattern the designs are not required to resolve (paper §3.3).
    """
    body = []
    stores_since_fence = 0
    for _ in range(n_ops):
        roll = rng.random()
        addr = rng.choice(addrs)
        if roll < 0.40:
            body.append(ops.Store(addr, rng.randrange(1, 100)))
            stores_since_fence += 1
        elif roll < 0.75:
            body.append(ops.Load(addr))
        elif roll < 0.90 and stores_since_fence:
            body.append(ops.Fence(role))
            stores_since_fence = 0
        else:
            body.append(ops.Compute(rng.randrange(1, 120)))

    def fn(ctx):
        for op in body:
            yield op

    return fn


@given(design=st.sampled_from(ALL_DESIGNS), seed=st.integers(0, 2**20))
@settings(max_examples=30, deadline=None)
def test_random_traffic_never_trips_the_sanitizer(design, seed):
    m = Machine(tiny_params(design, num_cores=2), seed=seed)
    sanitizer = Sanitizer(mode="strict", interval=200)
    m.attach_sanitizer(sanitizer)
    rng = random.Random(seed)
    # few addresses + two cores = constant sharer/owner churn
    addrs = [m.alloc.word() for _ in range(3)]
    m.spawn(_random_thread(rng, addrs, n_ops=20, role=FenceRole.CRITICAL))
    m.spawn(_random_thread(rng, addrs, n_ops=20, role=FenceRole.STANDARD))
    result = m.run(max_cycles=300_000)  # strict: raises on violation
    assert result.completed, "random traffic must quiesce"
    assert sanitizer.violations == []
    assert sanitizer.sweeps > 0


@given(design=st.sampled_from(ALL_DESIGNS), seed=st.integers(0, 2**20))
@settings(max_examples=15, deadline=None)
def test_generated_litmus_programs_uphold_the_invariants(design, seed):
    from repro.verify.generator import generate_program
    from repro.verify.oracles import run_program
    from repro.verify.perturb import SchedulePoint

    program = generate_program(seed)
    run = run_program(program, design, point=SchedulePoint(seed=seed),
                      sanitize="strict")
    assert run.sanitizer is None, run.sanitizer
    assert run.error is None, run.error


@given(seed=st.integers(0, 2**16))
@settings(max_examples=10, deadline=None)
def test_post_run_sweep_of_a_quiesced_machine_is_clean(seed):
    """A sanitizer bound *after* the fact must also find nothing: the
    quiesced end state satisfies every invariant, not just the sampled
    mid-run states."""
    m = Machine(tiny_params(FenceDesign.SW_PLUS, num_cores=2), seed=seed)
    rng = random.Random(seed)
    addrs = [m.alloc.word() for _ in range(3)]
    m.spawn(_random_thread(rng, addrs, n_ops=16, role=FenceRole.CRITICAL))
    m.spawn(_random_thread(rng, addrs, n_ops=16, role=FenceRole.STANDARD))
    assert m.run(max_cycles=300_000).completed
    sanitizer = Sanitizer(mode="warn").bind(m)
    sanitizer.check_all()
    assert sanitizer.violations == []
