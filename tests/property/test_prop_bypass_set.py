"""Property-based tests of the Bypass Set."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bypass_set import BypassSet

lines = st.integers(min_value=0, max_value=30).map(lambda i: i * 32)
fences = st.integers(min_value=1, max_value=6)
masks = st.integers(min_value=1, max_value=255)

adds = st.lists(st.tuples(lines, masks, fences), max_size=40)


@given(adds)
@settings(max_examples=150, deadline=None)
def test_no_false_negatives_vs_reference(entries):
    bs = BypassSet(capacity=64, fine_grain=True)
    reference = {}
    for line, mask, fence in entries:
        bs.add(line, mask, fence)
        old_mask, old_fence = reference.get(line, (0, 0))
        reference[line] = (old_mask | mask, max(old_fence, fence))
    for line, (mask, _fence) in reference.items():
        assert bs.match_line(line)
        assert bs.true_sharing(line, mask)
    # and nothing extra matches
    for probe in range(0, 31 * 32, 32):
        assert bs.match_line(probe) == (probe in reference)


@given(adds, fences)
@settings(max_examples=150, deadline=None)
def test_clear_upto_clears_exactly_old_fences(entries, clear_to):
    bs = BypassSet(capacity=64, fine_grain=True)
    reference = {}
    for line, mask, fence in entries:
        bs.add(line, mask, fence)
        old_mask, old_fence = reference.get(line, (0, 0))
        reference[line] = (old_mask | mask, max(old_fence, fence))
    bs.clear_upto(clear_to)
    for line, (_mask, fence) in reference.items():
        assert bs.match_line(line) == (fence > clear_to)


@given(adds)
@settings(max_examples=100, deadline=None)
def test_word_mask_union_is_monotone(entries):
    bs = BypassSet(capacity=64, fine_grain=True)
    seen = {}
    for line, mask, fence in entries:
        bs.add(line, mask, fence)
        seen[line] = seen.get(line, 0) | mask
        # every previously-seen word still reports true sharing
        for bit in range(8):
            if seen[line] & (1 << bit):
                assert bs.true_sharing(line, 1 << bit)


@given(adds)
@settings(max_examples=100, deadline=None)
def test_clear_all_empties(entries):
    bs = BypassSet(capacity=64)
    for line, mask, fence in entries:
        bs.add(line, mask, fence)
    bs.note_bounce()
    bs.clear_all()
    assert bs.empty and len(bs) == 0
    for line, _m, _f in entries:
        assert not bs.match_line(line)
