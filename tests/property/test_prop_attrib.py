"""Property-based conservation of the cycle-attribution tree.

Random small multithreaded programs under every paper design, on both
kernel backends.  Whatever the schedule does — bounces, promotions,
W+ recoveries, Wee demotions, cycle-budget cutoffs — the attribution
leaves must sum *exactly* to the coarse breakdown, and attaching the
profiler must not perturb the simulated machine.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.params import FenceDesign, FenceRole
from repro.core import isa as ops
from repro.obs import CycleAttribution
from repro.obs.attrib import conservation_errors
from repro.sim.machine import Machine

from tests.support import tiny_params

NUM_WORDS = 4
PAPER_DESIGNS = (
    FenceDesign.S_PLUS,
    FenceDesign.WS_PLUS,
    FenceDesign.SW_PLUS,
    FenceDesign.W_PLUS,
    FenceDesign.WEE,
)
designs = st.sampled_from(PAPER_DESIGNS)
kernels = st.sampled_from(("object", "flat"))

op_strategy = st.one_of(
    st.tuples(st.just("load"), st.integers(0, NUM_WORDS - 1)),
    st.tuples(st.just("store"), st.integers(0, NUM_WORDS - 1),
              st.integers(1, 99)),
    st.tuples(st.just("fence")),
    st.tuples(st.just("rmw"), st.integers(0, NUM_WORDS - 1)),
    st.tuples(st.just("compute"), st.integers(1, 60)),
)
thread_programs = st.lists(op_strategy, min_size=1, max_size=12)


def build_thread(program, words, role):
    def fn(ctx):
        for op in program:
            if op[0] == "load":
                yield ops.Load(words[op[1]])
            elif op[0] == "store":
                yield ops.Store(words[op[1]], op[2])
            elif op[0] == "fence":
                yield ops.Fence(role)
            elif op[0] == "rmw":
                yield ops.AtomicRMW(words[op[1]], "add", 1)
            else:
                yield ops.Compute(op[1])
    return fn


def _run(design, kernel, p0, p1, seed, max_cycles=2_000_000):
    m = Machine(tiny_params(design, num_cores=2), seed=seed, kernel=kernel)
    attrib = CycleAttribution()
    m.attach_attrib(attrib)
    words = [m.alloc.word() for _ in range(NUM_WORDS)]
    m.spawn(build_thread(p0, words, FenceRole.CRITICAL))
    m.spawn(build_thread(p1, words, FenceRole.STANDARD))
    result = m.run(max_cycles=max_cycles)
    return m, attrib, result


@given(designs, kernels, thread_programs, thread_programs,
       st.integers(0, 5))
@settings(max_examples=60, deadline=None)
def test_random_runs_conserve_cycles(design, kernel, p0, p1, seed):
    m, attrib, result = _run(design, kernel, p0, p1, seed)
    assert result.completed
    assert conservation_errors(attrib.tree()) == []


@given(designs, kernels, thread_programs, thread_programs,
       st.integers(0, 5))
@settings(max_examples=30, deadline=None)
def test_profiling_never_perturbs_random_runs(design, kernel, p0, p1, seed):
    m_prof, _, result_prof = _run(design, kernel, p0, p1, seed)
    m_plain = Machine(tiny_params(design, num_cores=2), seed=seed,
                      kernel=kernel)
    words = [m_plain.alloc.word() for _ in range(NUM_WORDS)]
    m_plain.spawn(build_thread(p0, words, FenceRole.CRITICAL))
    m_plain.spawn(build_thread(p1, words, FenceRole.STANDARD))
    result_plain = m_plain.run(max_cycles=2_000_000)
    assert result_prof.cycles == result_plain.cycles
    assert m_prof.stats.to_dict() == m_plain.stats.to_dict()


@given(designs, thread_programs, thread_programs, st.integers(0, 5),
       st.integers(100, 1500))
@settings(max_examples=30, deadline=None)
def test_cutoff_runs_still_conserve(design, p0, p1, seed, budget):
    """Conservation may not depend on the run completing: a cycle cap
    can land mid-fence, mid-chain, or mid-recovery."""
    _, attrib, _ = _run(design, "object", p0, p1, seed, max_cycles=budget)
    assert conservation_errors(attrib.tree()) == []
