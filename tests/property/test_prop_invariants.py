"""Cross-component invariants sampled during live runs.

The BS-monitoring invariant of §3.3.1/§5.1: while a core's Bypass Set
holds a line, the directory must still list that core among the line's
caching cores — otherwise a future conflicting write would never reach
the BS and could complete unordered.  We sample it at every directory
grant during randomized runs of the bounce-heavy litmus patterns.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.params import FenceDesign, FenceRole
from repro.core import isa as ops
from repro.sim.machine import Machine

from tests.support import tiny_params


def install_bs_invariant_probe(machine, violations):
    """Check the invariant just before every directory begins a write
    transaction (a stable point: no invalidations in flight for that
    line)."""
    for bank in machine.banks:
        orig_begin = bank._begin

        def begin(txn, bank=bank, orig=orig_begin):
            for core in machine.cores:
                for line in core.bs.lines():
                    home = machine.amap.home_bank(line)
                    entry = machine.banks[home].dir_state(line)
                    if core.core_id not in entry.caching_cores():
                        violations.append((core.core_id, hex(line)))
            orig(txn)

        bank._begin = begin


@given(st.sampled_from([FenceDesign.WS_PLUS, FenceDesign.SW_PLUS,
                        FenceDesign.W_PLUS]),
       st.integers(0, 7))
@settings(max_examples=24, deadline=None)
def test_bs_lines_always_visible_to_directory(design, seed):
    m = Machine(tiny_params(design, num_cores=2), seed=seed)
    violations = []
    install_bs_invariant_probe(m, violations)
    x, y = m.alloc.word(), m.alloc.word()
    pads = [m.alloc.word(), m.alloc.word()]

    def thread(me, mine, other, role):
        def fn(ctx):
            yield ops.Load(x)
            yield ops.Load(y)
            yield ops.Compute(1200 + 100 * seed)
            yield ops.Store(pads[me], 7)
            yield ops.Store(mine, 1)
            yield ops.Fence(role)
            yield ops.Load(other)
        return fn

    m.spawn(thread(0, x, y, FenceRole.CRITICAL))
    m.spawn(thread(1, y, x, FenceRole.STANDARD))
    m.run(max_cycles=500_000)
    assert not violations, violations[:5]


@given(st.integers(0, 7))
@settings(max_examples=12, deadline=None)
def test_bs_invariant_survives_evictions(seed):
    """Evicting a BS line (dirty, keep-sharer writeback) must preserve
    the invariant."""
    m = Machine(tiny_params(FenceDesign.WS_PLUS, num_cores=2), seed=seed)
    violations = []
    install_bs_invariant_probe(m, violations)
    set_stride = m.params.l1_sets * m.params.line_bytes
    ways = m.params.l1_ways
    base = m.alloc.alloc(4 * (ways + 2) * set_stride // 4,
                         align_bytes=set_stride)
    conflicting = [base + i * set_stride for i in range(ways + 1)]
    target = conflicting[0]
    pads = [m.alloc.word(), m.alloc.word()]

    def p0(ctx):
        yield ops.Store(target, 3)
        for addr in conflicting[1:-1]:
            yield ops.Load(addr)
        yield ops.Compute(900 + seed * 50)
        yield ops.Store(pads[0], 7)
        yield ops.Store(pads[1], 7)
        yield ops.Fence(FenceRole.CRITICAL)
        yield ops.Load(target)
        for addr in conflicting[1:-1]:
            yield ops.Load(addr)
        yield ops.Load(conflicting[-1])  # evicts the BS-held target

    def p1(ctx):
        yield ops.Compute(600)
        yield ops.Store(target, 9)       # conflicting write: must bounce
        yield ops.Load(conflicting[1])

    m.spawn(p0)
    m.spawn(p1)
    m.run(max_cycles=500_000)
    assert not violations, violations[:5]
