"""Property tests: the two event-queue backends are indistinguishable.

Hypothesis drives both kernels through identical random command
scripts — schedule (interned handler or closure, zero and positive
delays, labelled and not), cancel (live, already-fired, double, None),
nested scheduling from inside handlers, requeue-after-cancel, stop
requests — and asserts the full dispatch stream ``(cycle, tag,
payload)`` is identical, event for event, in order.

Also pinned here: the recycling discipline.  The object kernel
recycles Event records through a refcount-guarded free list; the flat
kernel never reuses seqs.  Both must agree on the *observable*
consequence — a stale handle (its event already fired or cancelled)
can never cancel a later event.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.events import EventQueue
from repro.common.flatevents import FlatEventQueue


class Script:
    """Replays one random command list against one queue backend."""

    def __init__(self, queue, commands):
        self.queue = queue
        self.commands = commands
        self.log = []          # the dispatch stream: (cycle, tag, payload)
        self.handles = []      # every handle schedule() ever returned
        self._tags = 0

    def _fire(self, tag, nested):
        queue = self.queue
        self.log.append((queue.now, tag, len(queue)))
        for cmd in nested:
            self.apply(cmd)

    def apply(self, cmd):
        kind = cmd[0]
        queue = self.queue
        if kind == "sched":
            _, delay, label, interned, nested = cmd
            self._tags += 1
            tag = self._tags
            fn = lambda tag=tag, nested=nested: self._fire(tag, nested)
            if interned:
                register = getattr(queue, "register_handler", None)
                if register is not None:
                    register(fn)
            self.handles.append(queue.schedule(delay, fn, label))
        elif kind == "cancel":
            _, idx = cmd
            if self.handles:
                queue.cancel(self.handles[idx % len(self.handles)])
        elif kind == "cancel_none":
            queue.cancel(None)
        elif kind == "stop":
            queue.request_stop()

    def run(self):
        for cmd in self.commands:
            self.apply(cmd)
        self.queue.clear_stop()
        self.queue.run()
        return self.log


def _nested_cmds(depth):
    """Commands a handler may issue mid-dispatch (bounded recursion)."""
    if depth <= 0:
        return st.lists(st.sampled_from([("cancel_none",)]), max_size=1)
    return st.lists(
        st.one_of(
            st.tuples(st.just("sched"), st.integers(0, 5),
                      st.sampled_from(["", "n"]), st.booleans(),
                      _nested_cmds(depth - 1)),
            st.tuples(st.just("cancel"), st.integers(0, 63)),
            st.just(("stop",)),
        ),
        max_size=3,
    )


TOP_CMDS = st.lists(
    st.one_of(
        st.tuples(st.just("sched"), st.integers(0, 40),
                  st.sampled_from(["", "a", "b"]), st.booleans(),
                  _nested_cmds(2)),
        st.tuples(st.just("cancel"), st.integers(0, 63)),
        st.just(("cancel_none",)),
    ),
    min_size=1, max_size=40,
)


@given(TOP_CMDS)
@settings(max_examples=200, deadline=None)
def test_dispatch_streams_identical(commands):
    obj = Script(EventQueue(), commands).run()
    flat = Script(FlatEventQueue(), commands).run()
    assert obj == flat


@given(TOP_CMDS, st.integers(0, 60))
@settings(max_examples=100, deadline=None)
def test_dispatch_streams_identical_with_until(commands, until):
    obj_q, flat_q = EventQueue(), FlatEventQueue()
    obj_s, flat_s = Script(obj_q, commands), Script(flat_q, commands)
    for cmd in commands:
        obj_s.apply(cmd)
        flat_s.apply(cmd)
    obj_q.clear_stop()
    flat_q.clear_stop()
    assert obj_q.run(until=until) == flat_q.run(until=until)
    assert obj_s.log == flat_s.log
    assert obj_q.now == flat_q.now
    # resuming past the clamp stays identical too
    assert obj_q.run() == flat_q.run()
    assert obj_s.log == flat_s.log


@given(TOP_CMDS)
@settings(max_examples=100, deadline=None)
def test_executed_and_clock_agree(commands):
    obj_q, flat_q = EventQueue(), FlatEventQueue()
    obj_log = Script(obj_q, commands).run()
    flat_log = Script(flat_q, commands).run()
    assert obj_log == flat_log
    assert obj_q.executed == flat_q.executed
    assert obj_q.now == flat_q.now
    assert len(obj_q) == len(flat_q)


@given(st.integers(1, 30), st.integers(0, 29))
@settings(max_examples=60, deadline=None)
def test_stale_handles_never_cancel_later_events(n, victim):
    """Recycling discipline: after an event fires, its handle is dead.

    The object kernel recycles Event records through a free list; the
    flat kernel retires seqs forever.  Either way, cancelling a handle
    whose event already ran must never kill a *different*, later event
    — here every cancel targets an already-fired handle, so all n
    events of the second wave must still run on both backends.
    """
    for queue in (EventQueue(), FlatEventQueue()):
        fired = []
        first_wave = [queue.schedule(i, lambda i=i: fired.append(i), "w1")
                      for i in range(n)]
        queue.run()
        assert len(fired) == n
        # second wave, then stale-cancel a first-wave handle
        fired.clear()
        for i in range(n):
            queue.schedule(i + 1, lambda i=i: fired.append(i), "w2")
        queue.cancel(first_wave[victim % n])
        queue.run()
        assert len(fired) == n, (
            f"{type(queue).__name__}: a stale handle cancelled a "
            f"later event"
        )


@given(st.integers(0, 20), st.integers(0, 20))
@settings(max_examples=60, deadline=None)
def test_cancel_then_requeue_same_slot(a, b):
    """Cancel an event, schedule a replacement at the same cycle: only
    the replacement fires, on both backends."""
    logs = []
    for queue in (EventQueue(), FlatEventQueue()):
        log = []
        h = queue.schedule(a, lambda: log.append("old"), "old")
        queue.cancel(h)
        queue.cancel(h)  # double-cancel is a no-op
        queue.schedule(a, lambda: log.append("new"), "new")
        queue.schedule(b, lambda: log.append("other"), "other")
        queue.run()
        logs.append((log, queue.now, queue.executed))
    assert logs[0] == logs[1]
    assert "old" not in logs[0][0]
