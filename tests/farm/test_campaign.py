"""Campaign semantics: farm sweeps are bit-identical to local ones,
re-submission is free (content-addressed cache), coordinator restarts
resume, and the legacy clients round-trip through the farm."""

import dataclasses
import json
import os

import pytest

from repro.common.errors import ConfigError
from repro.common.params import FenceDesign
from repro.farm import campaign as campaign_mod
from repro.farm import worker as worker_mod
from repro.farm.campaign import run_campaign
from repro.farm.spec import CampaignSpec
from repro.farm.store import FarmStore
from repro.farm.worker import FarmConfig, run_worker

DESIGNS = [FenceDesign.S_PLUS, FenceDesign.W_PLUS]
GRID = dict(core_counts=[2], scale=0.06)


@pytest.fixture(autouse=True)
def _pinned_rev(monkeypatch):
    monkeypatch.setenv("REPRO_CODE_REV", "test-rev")
    monkeypatch.delenv("REPRO_FARM_DB", raising=False)


def _spec(workloads=("fib",), designs=DESIGNS, seeds=(5,)):
    return CampaignSpec.make("matrix", workloads, designs, seeds=seeds,
                             **GRID)


# ----------------------------------------------------------------------
# inline campaigns, caching, resume
# ----------------------------------------------------------------------

def test_inline_campaign_produces_every_row(tmp_path):
    db = str(tmp_path / "farm.sqlite")
    spec = _spec(seeds=(5, 6))
    rows = run_campaign(db, spec, workers=0)
    assert len(rows) == 4
    for row in rows.values():
        assert row["completed"] is True
        assert row["num_cores"] == 2


def test_resubmitted_campaign_runs_zero_new_simulations(tmp_path,
                                                        monkeypatch):
    db = str(tmp_path / "farm.sqlite")
    spec = _spec()
    calls = []
    from repro.farm import exec as exec_mod

    real = exec_mod.execute_job

    def counting(spec_, diag_dir=None):
        calls.append(spec_.content_key())
        return real(spec_, diag_dir)

    monkeypatch.setattr(exec_mod, "execute_job", counting)
    monkeypatch.setattr(worker_mod, "execute_job", counting)
    first = run_campaign(db, spec, workers=0)
    assert len(calls) == 2
    again = run_campaign(db, spec, workers=0)
    assert len(calls) == 2  # cache hit: zero new simulations
    assert again == first


def test_cache_spans_campaigns_but_not_code_revisions(tmp_path,
                                                      monkeypatch):
    db = str(tmp_path / "farm.sqlite")
    calls = []
    from repro.farm import exec as exec_mod

    real = exec_mod.execute_job

    def counting(spec_, diag_dir=None):
        calls.append(spec_.content_key())
        return real(spec_, diag_dir)

    monkeypatch.setattr(worker_mod, "execute_job", counting)
    run_campaign(db, _spec(seeds=(5,)), workers=0)
    assert len(calls) == 2
    # a superset campaign only pays for the new seed
    run_campaign(db, _spec(seeds=(5, 6)), workers=0)
    assert len(calls) == 4
    # a new code revision is a different job identity: nothing cached
    monkeypatch.setenv("REPRO_CODE_REV", "other-rev")
    run_campaign(db, _spec(seeds=(5,)), workers=0)
    assert len(calls) == 6


def test_coordinator_restart_resumes_to_identical_rows(tmp_path):
    """Kill the coordinator after two jobs; re-running the identical
    campaign finishes exactly the rest, bit-identically."""
    db = str(tmp_path / "farm.sqlite")
    clean_db = str(tmp_path / "clean.sqlite")
    spec = _spec(seeds=(5, 6))  # 4 jobs
    clean = run_campaign(clean_db, spec, workers=0)

    cid, _ = campaign_mod.submit(db, spec)
    run_worker(db, cid, max_jobs=2)  # "coordinator died" after 2 jobs
    with FarmStore(db) as store:
        assert store.status(cid)["done"] == 2
        assert not store.campaign_done(cid)
    resumed = run_campaign(db, spec, workers=0)  # the restart
    assert resumed == clean
    with FarmStore(db) as store:
        st = store.status(cid)
        assert st["done"] == 4 and st["attempts"] == 4  # no re-runs


def test_worker_pool_campaign_matches_inline_rows(tmp_path):
    db = str(tmp_path / "farm.sqlite")
    inline_db = str(tmp_path / "inline.sqlite")
    spec = _spec(seeds=(5, 6, 7))
    cfg = FarmConfig(lease_secs=10.0, poll_secs=0.02)
    pooled = run_campaign(db, spec, workers=2, config=cfg,
                          poll_secs=0.02, timeout=120)
    inline = run_campaign(inline_db, spec, workers=0)
    assert pooled == inline  # scheduling cannot change the rows


# ----------------------------------------------------------------------
# stalled-but-alive worker: duplicate execution, exactly-once rows
# ----------------------------------------------------------------------

def test_stalled_worker_duplicate_execution_keeps_one_row(tmp_path):
    """w1 claims, stalls past its lease without heartbeating; w2 runs
    the job and completes; then w1 wakes up and completes too.  The
    result store must hold exactly one row, bit-identical no matter
    who wrote it — the deterministic-simulation contract."""
    import time

    from repro.farm.exec import execute_job

    db = str(tmp_path / "farm.sqlite")
    spec = _spec(seeds=(5,), designs=[FenceDesign.S_PLUS])
    with FarmStore(db) as store:
        cid, _ = store.submit_campaign(spec)
        key, job1 = store.claim(cid, "w1", lease_secs=0.0)  # stalls now
        reclaimed = store.claim(cid, "w2", 30.0,
                                now=time.time() + 0.001)
        assert reclaimed is not None and reclaimed[0] == key
        job2 = reclaimed[1]
        assert job1 == job2
        row2 = execute_job(job2)
        assert store.complete(key, cid, "w2", row2) == "inserted"
        row1 = execute_job(job1)  # w1 wakes and finishes anyway
        assert row1 == row2  # deterministic: same spec, same row
        assert store.complete(key, cid, "w1", row1) == "duplicate"
        assert store.rows(cid) == {key: row2}  # single row, bit-identical
        assert store.result_count() == 1
        assert store.duplicates_total() == 1
        assert store.status(cid)["done"] == 1


# ----------------------------------------------------------------------
# poison jobs drain through quarantine, not livelock
# ----------------------------------------------------------------------

def test_poison_job_quarantines_and_campaign_still_finishes(
        tmp_path, monkeypatch):
    db = str(tmp_path / "farm.sqlite")
    diag = tmp_path / "diag"
    spec = _spec(seeds=(5,), designs=DESIGNS)  # 2 jobs
    poison = spec.expand()[0].content_key()
    from repro.farm.exec import execute_job as real

    def sometimes_poisoned(job, diag_dir=None):
        if job.content_key() == poison:
            raise RuntimeError("synthetic poison")
        return real(job, diag_dir)

    monkeypatch.setattr(worker_mod, "execute_job", sometimes_poisoned)
    cid, _ = campaign_mod.submit(db, spec, diag_dir=str(diag))
    cfg = FarmConfig(quarantine_after=3, backoff_base=0.01,
                     diag_dir=str(diag))
    # three distinct workers each hit the poison job (the retry
    # backoff gates each worker off it after one failure)
    import time as time_mod

    for worker in ("w1", "w2", "w3"):
        run_worker(db, cid, config=cfg, worker=worker, once=True)
        time_mod.sleep(0.05)  # let the poison job's backoff expire
    with FarmStore(db) as store:
        assert store.campaign_done(cid)
        st = store.status(cid)
        assert st["quarantined"] == 1 and st["done"] == 1
        (q,) = store.quarantined(cid)
        assert "synthetic poison" in q["last_error"]
        assert set(q["failed_workers"]) == {"w1", "w2", "w3"}
    assert list(diag.glob("quarantine_*.json"))  # the watchdog bundle
    # the collector refuses to pretend the quarantined row exists
    from repro.farm.clients import farm_run_matrix

    with pytest.raises(ConfigError, match="unproduced"):
        farm_run_matrix(["fib"], DESIGNS, num_cores=2, scale=0.06,
                        seed=5, db=db, workers=0)


# ----------------------------------------------------------------------
# the run_matrix client: bit-identical rows, journal export
# ----------------------------------------------------------------------

def test_farm_run_matrix_matches_local_run_matrix(tmp_path):
    from repro.eval.runner import run_matrix

    db = str(tmp_path / "farm.sqlite")
    kwargs = dict(names=["fib"], designs=DESIGNS, num_cores=2,
                  scale=0.06, seed=5)
    local = run_matrix(jobs=1, **kwargs)
    farmed = run_matrix(farm_db=db, farm_workers=0, **kwargs)
    assert farmed.keys() == local.keys()
    for key in local:
        assert (dataclasses.asdict(farmed[key])
                == dataclasses.asdict(local[key]))


def test_run_matrix_honours_farm_db_env(tmp_path, monkeypatch):
    from repro.eval.runner import run_matrix

    db = str(tmp_path / "farm.sqlite")
    monkeypatch.setenv("REPRO_FARM_DB", db)
    monkeypatch.setenv("REPRO_FARM_WORKERS", "0")
    rows = run_matrix(["fib"], [FenceDesign.S_PLUS], num_cores=2,
                      scale=0.06, seed=5)
    assert os.path.exists(db)
    assert len(rows) == 1


def test_farm_journal_export_is_readable_by_load_journal(tmp_path):
    from repro.eval.runner import load_journal, run_matrix

    db = str(tmp_path / "farm.sqlite")
    journal = str(tmp_path / "sweep.jsonl")
    kwargs = dict(names=["fib"], designs=DESIGNS, num_cores=2,
                  scale=0.06, seed=5)
    farmed = run_matrix(farm_db=db, farm_workers=0, journal=journal,
                        **kwargs)
    loaded = load_journal(journal)
    assert len(loaded) == len(farmed) == 2
    by_key = {(s.name, s.design, s.num_cores): s for s in loaded.values()}
    for key, summary in farmed.items():
        assert dataclasses.asdict(by_key[key]) == dataclasses.asdict(summary)


def test_farm_journal_export_appends_missing_after_torn_tail(tmp_path):
    """A journal with a torn tail and one missing row is healed by the
    farm export, not rewritten: existing complete lines survive."""
    from repro.eval.runner import load_journal, run_matrix

    db = str(tmp_path / "farm.sqlite")
    journal = str(tmp_path / "sweep.jsonl")
    kwargs = dict(names=["fib"], designs=DESIGNS, num_cores=2,
                  scale=0.06, seed=5)
    run_matrix(farm_db=db, farm_workers=0, journal=journal, **kwargs)
    lines = open(journal).readlines()
    assert len(lines) == 2
    with open(journal, "w") as fh:
        fh.write(lines[0])
        fh.write('{"name": "fib", "design"')  # torn mid-append, no \n
    resumed = run_matrix(farm_db=db, farm_workers=0, journal=journal,
                         resume=True, **kwargs)
    loaded = load_journal(journal)
    assert len(loaded) == len(resumed) == 2
    # the surviving complete line was kept verbatim (append-missing)
    assert open(journal).readlines()[0] == lines[0]


def test_farm_run_matrix_respects_journal_overwrite_guard(tmp_path):
    from repro.eval.runner import run_matrix

    db = str(tmp_path / "farm.sqlite")
    journal = str(tmp_path / "sweep.jsonl")
    kwargs = dict(names=["fib"], designs=[FenceDesign.S_PLUS],
                  num_cores=2, scale=0.06, seed=5)
    run_matrix(farm_db=db, farm_workers=0, journal=journal, **kwargs)
    with pytest.raises(ConfigError, match="already exists"):
        run_matrix(farm_db=db, farm_workers=0, journal=journal, **kwargs)
    run_matrix(farm_db=db, farm_workers=0, journal=journal,
               overwrite_journal=True, **kwargs)
    assert os.path.exists(journal + ".bak")


# ----------------------------------------------------------------------
# the chaos and perf clients
# ----------------------------------------------------------------------

def test_farm_chaos_matrix_matches_local(tmp_path):
    from repro.faults.chaos import run_chaos_matrix

    db = str(tmp_path / "farm.sqlite")
    kwargs = dict(scenarios=["noc_jitter"],
                  designs=[FenceDesign.S_PLUS], seeds=[1, 2])
    local = run_chaos_matrix(**kwargs)
    farmed = run_chaos_matrix(farm_db=db, farm_workers=0, **kwargs)
    assert farmed["cases"] == local["cases"]
    assert farmed["total_cases"] == 2


def test_farm_chaos_journal_round_trips(tmp_path):
    from repro.faults.chaos import _load_journal, run_chaos_matrix

    db = str(tmp_path / "farm.sqlite")
    journal = str(tmp_path / "chaos.jsonl")
    report = run_chaos_matrix(
        scenarios=["noc_jitter"], designs=[FenceDesign.S_PLUS],
        seeds=[1], farm_db=db, farm_workers=0, journal=journal)
    done = _load_journal(journal)
    assert len(done) == report["total_cases"] == 1


def test_farm_perf_profile_serves_cache_on_resubmit(tmp_path):
    from repro.perf.harness import run_profile

    db = str(tmp_path / "farm.sqlite")
    first = run_profile("tiny", reps=1, farm_db=db, farm_workers=0)
    second = run_profile("tiny", reps=1, farm_db=db, farm_workers=0)
    assert [c["key"] for c in first["cases"]] == [
        c["key"] for c in second["cases"]]
    # cached rows are identical down to the recorded wall timings
    assert first["cases"] == second["cases"]
