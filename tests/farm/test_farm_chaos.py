"""The farm chaos battery: the robustness contract, end to end.

A 3-design × 2-workload × 10-seed campaign (60 jobs) must survive
workers SIGKILLed mid-job, a coordinator crash with a cold restart,
and orphaned duplicate executions — and still produce exactly the
result rows a clean inline sweep produces, each exactly once.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.common.params import FenceDesign
from repro.farm.campaign import run_campaign
from repro.farm.spec import CampaignSpec
from repro.farm.store import FarmStore
from repro.farm.worker import FarmConfig

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))

#: the battery grid: 3 designs x 2 workloads x 10 seeds = 60 jobs
BATTERY_DESIGNS = [FenceDesign.S_PLUS, FenceDesign.WS_PLUS,
                   FenceDesign.W_PLUS]
BATTERY_WORKLOADS = ["fib", "Counter"]
BATTERY_SEEDS = list(range(1, 11))


@pytest.fixture(autouse=True)
def _pinned_rev(monkeypatch):
    monkeypatch.setenv("REPRO_CODE_REV", "battery-rev")
    monkeypatch.delenv("REPRO_FARM_DB", raising=False)


def _battery_spec():
    return CampaignSpec.make(
        "matrix", BATTERY_WORKLOADS, BATTERY_DESIGNS,
        seeds=BATTERY_SEEDS, core_counts=[2], scale=0.04)


class _CoordinatorCrash(Exception):
    pass


def test_battery_survives_kills_and_coordinator_restart(tmp_path):
    """Workers are SIGKILLed throughout; the coordinator itself dies
    mid-campaign and is restarted cold.  The surviving farm must
    converge to the clean sweep's rows, exactly once each."""
    spec = _battery_spec()
    clean = run_campaign(str(tmp_path / "clean.sqlite"), spec, workers=0)
    assert len(clean) == 60

    db = str(tmp_path / "farm.sqlite")
    cfg = FarmConfig(lease_secs=1.0, poll_secs=0.02, quarantine_after=10)
    chaos = {"polls": 0, "kills": 0, "respawns_seen": 0}

    def killer(crash_at):
        def on_poll(store, pool):
            chaos["polls"] += 1
            chaos["respawns_seen"] = max(chaos["respawns_seen"],
                                         pool.respawns)
            if chaos["polls"] % 10 == 0 and pool.procs:
                victim = pool.procs[chaos["kills"] % len(pool.procs)]
                if victim.pid and victim.is_alive():
                    os.kill(victim.pid, signal.SIGKILL)
                    chaos["kills"] += 1
            if crash_at is not None and chaos["polls"] >= crash_at:
                raise _CoordinatorCrash("coordinator dies mid-campaign")
        return on_poll

    with pytest.raises(_CoordinatorCrash):
        run_campaign(db, spec, workers=2, config=cfg, poll_secs=0.02,
                     on_poll=killer(crash_at=25), timeout=600)
    with FarmStore(db) as store:
        st = store.status(spec.campaign_id())
        assert not store.campaign_done(spec.campaign_id())
        assert st["done"] < 60  # it really died mid-flight

    # cold restart: same spec, fresh coordinator, kills keep coming
    rows = run_campaign(db, spec, workers=2, config=cfg, poll_secs=0.02,
                        on_poll=killer(crash_at=None), timeout=600)

    assert chaos["kills"] >= 2  # the chaos actually happened
    assert chaos["respawns_seen"] >= 1  # and the pool self-healed
    # exactly-once, bit-identical: the full clean row set, nothing else
    assert rows == clean
    with FarmStore(db) as store:
        st = store.status(spec.campaign_id())
        assert st["done"] == 60
        assert st["quarantined"] == 0
        assert store.result_count() == 60  # one row per job, ever
        # kills force retries, never row rewrites
        assert st["attempts"] >= 60


_COORDINATOR = textwrap.dedent("""
    import sys
    from repro.common.params import FenceDesign
    from repro.farm.campaign import run_campaign
    from repro.farm.spec import CampaignSpec
    from repro.farm.worker import FarmConfig

    spec = CampaignSpec.make(
        "matrix", ["fib"], [FenceDesign.S_PLUS, FenceDesign.W_PLUS],
        seeds=range(1, 7), core_counts=[2], scale=0.04)
    cfg = FarmConfig(lease_secs=1.0, poll_secs=0.02)
    run_campaign(sys.argv[1], spec, workers=2, config=cfg,
                 poll_secs=0.02, timeout=600)
""")


def test_sigkilled_coordinator_resumes_exactly_once(tmp_path):
    """SIGKILL the whole coordinator process mid-campaign (its workers
    become orphans that may still complete jobs).  A cold in-process
    restart plus the orphans' duplicate completions must still yield
    single bit-identical rows."""
    spec = CampaignSpec.make(
        "matrix", ["fib"], [FenceDesign.S_PLUS, FenceDesign.W_PLUS],
        seeds=range(1, 7), core_counts=[2], scale=0.04)
    clean = run_campaign(str(tmp_path / "clean.sqlite"), spec, workers=0)
    assert len(clean) == 12

    db = str(tmp_path / "farm.sqlite")
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"),
               REPRO_CODE_REV="battery-rev")
    proc = subprocess.Popen([sys.executable, "-c", _COORDINATOR, db],
                            env=env, cwd=REPO)
    # let it claim and start some jobs, then kill it outright
    deadline = time.time() + 60
    started = False
    while time.time() < deadline:
        if os.path.exists(db):
            with FarmStore(db) as store:
                try:
                    st = store.status(spec.campaign_id())
                except Exception:
                    st = {"leased": 0, "done": 0}
            if st["leased"] or st["done"]:
                started = True
                break
        time.sleep(0.02)
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait(timeout=30)
    assert started, "coordinator never started claiming jobs"
    assert proc.returncode == -signal.SIGKILL

    cfg = FarmConfig(lease_secs=1.0, poll_secs=0.02)
    rows = run_campaign(db, spec, workers=2, config=cfg, poll_secs=0.02,
                        timeout=600)
    assert rows == clean
    with FarmStore(db) as store:
        assert store.result_count() == 12  # exactly once, orphans and all


def test_battery_journal_tail_tear_heals_on_resume(tmp_path):
    """Tear the exported journal's tail mid-record; a resumed export
    (served from the farm cache) appends only the lost rows and the
    healed journal loads the full battery."""
    from repro.eval.runner import load_journal
    from repro.farm.clients import farm_run_matrix

    db = str(tmp_path / "farm.sqlite")
    journal = str(tmp_path / "battery.jsonl")
    kw = dict(names=BATTERY_WORKLOADS, designs=BATTERY_DESIGNS,
              num_cores=2, scale=0.04, db=db, workers=0, journal=journal)
    last = {}
    for i, seed in enumerate(BATTERY_SEEDS):
        last = farm_run_matrix(seed=seed, resume=(i > 0), **kw)
    intact = load_journal(journal)
    assert len(intact) == 60

    lines = open(journal).readlines()
    with open(journal, "w") as fh:  # killed mid-append of row 60
        fh.writelines(lines[:59])
        fh.write(lines[59][: len(lines[59]) // 2])
    assert len(load_journal(journal)) == 59  # the tear really lost one
    healed = farm_run_matrix(seed=BATTERY_SEEDS[-1], resume=True, **kw)
    assert healed == last  # cache-served, bit-identical rows
    assert load_journal(journal) == intact  # only the lost row appended


def test_battery_resubmission_is_served_from_cache(tmp_path,
                                                   monkeypatch):
    """After the battery campaign exists, resubmitting the identical
    spec costs zero simulations: every job is a cache hit."""
    from repro.farm import worker as worker_mod

    db = str(tmp_path / "farm.sqlite")
    spec = _battery_spec()
    run_campaign(db, spec, workers=0)

    calls = []
    monkeypatch.setattr(
        worker_mod, "execute_job",
        lambda job, diag_dir=None: calls.append(job) or
        pytest.fail("cache miss: a simulation ran on resubmission"))
    rows = run_campaign(db, spec, workers=0)
    assert calls == []
    assert len(rows) == 60
    with FarmStore(db) as store:
        assert store.result_count() == 60
