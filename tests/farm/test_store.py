"""FarmStore semantics: leases, exactly-once results, retry backoff,
poison-job quarantine, and gc.  Pure store tests — no simulations."""

import json
import os
import time

import pytest

from repro.common.errors import ConfigError
from repro.common.params import FenceDesign
from repro.farm.spec import CampaignSpec, JobSpec
from repro.farm.store import FarmStore


@pytest.fixture(autouse=True)
def _pinned_rev(monkeypatch):
    # content keys must not drift with the working tree's git rev
    monkeypatch.setenv("REPRO_CODE_REV", "test-rev")


def _spec(workloads=("fib",), designs=(FenceDesign.S_PLUS,), seeds=(1,)):
    return CampaignSpec.make("matrix", workloads, designs, seeds=seeds,
                             core_counts=[2], scale=0.06)


def _store(tmp_path, **kw):
    return FarmStore(str(tmp_path / "farm.sqlite"), **kw)


# ----------------------------------------------------------------------
# content addressing / submission
# ----------------------------------------------------------------------

def test_content_key_is_stable_and_config_sensitive():
    a = JobSpec.make("matrix", "fib", FenceDesign.S_PLUS, 1, cores=2)
    b = JobSpec.make("matrix", "fib", FenceDesign.S_PLUS, 1, cores=2)
    c = JobSpec.make("matrix", "fib", FenceDesign.S_PLUS, 1, cores=2,
                     config={"sanitize": "strict"})
    d = JobSpec.make("matrix", "fib", FenceDesign.S_PLUS, 1, cores=2,
                     rev="other-rev")
    assert a.content_key() == b.content_key()
    assert a.content_key() != c.content_key()  # config is identity
    assert a.content_key() != d.content_key()  # code rev is identity


def test_design_identity_normalizes_names_and_values():
    by_enum = JobSpec.make("matrix", "fib", FenceDesign.S_PLUS, 1)
    by_name = JobSpec.make("matrix", "fib", "S_PLUS", 1)
    by_value = JobSpec.make("matrix", "fib", "S+", 1)
    assert by_enum == by_name == by_value
    assert by_enum.fence_design is FenceDesign.S_PLUS


def test_unknown_kind_is_rejected():
    with pytest.raises(ConfigError, match="unknown job kind"):
        JobSpec.make("mystery", "fib", FenceDesign.S_PLUS, 1)
    with pytest.raises(ConfigError, match="unknown job kind"):
        CampaignSpec.make("mystery", ["fib"], [FenceDesign.S_PLUS], [1])


def test_expand_order_is_deterministic():
    spec = _spec(workloads=("a", "b"), designs=(FenceDesign.S_PLUS,
                                                FenceDesign.W_PLUS),
                 seeds=(1, 2))
    keys = [j.content_key() for j in spec.expand()]
    assert keys == [j.content_key() for j in spec.expand()]
    assert len(set(keys)) == 8


def test_submit_is_idempotent(tmp_path):
    with _store(tmp_path) as store:
        cid, counts = store.submit_campaign(_spec(seeds=(1, 2)))
        assert counts == {"jobs": 2, "new": 2, "cached": 0, "existing": 0}
        cid2, counts2 = store.submit_campaign(_spec(seeds=(1, 2)))
        assert cid2 == cid
        assert counts2 == {"jobs": 2, "new": 0, "cached": 0, "existing": 2}
        assert store.status(cid)["total"] == 2


def test_submit_serves_cached_results_as_done(tmp_path):
    spec1 = _spec(seeds=(1,))
    with _store(tmp_path) as store:
        cid, _ = store.submit_campaign(spec1)
        key, job = store.claim(cid, "w1", 30.0)
        store.complete(key, cid, "w1", {"v": 1})
        # a second campaign sharing that job is born satisfied
        spec2 = _spec(seeds=(1, 2))
        cid2, counts = store.submit_campaign(spec2)
        assert cid2 != cid
        assert counts == {"jobs": 2, "new": 1, "cached": 1, "existing": 0}
        assert store.status(cid2)["done"] == 1


def test_campaign_spec_round_trips(tmp_path):
    spec = _spec(seeds=(1, 2))
    with _store(tmp_path) as store:
        cid, _ = store.submit_campaign(spec)
        assert store.campaign_spec(cid) == spec
        assert store.campaigns() == [(cid, spec)]
        with pytest.raises(ConfigError, match="unknown campaign"):
            store.campaign_spec("c-nope")


# ----------------------------------------------------------------------
# claiming and leases
# ----------------------------------------------------------------------

def test_claim_leases_one_job_at_a_time(tmp_path):
    with _store(tmp_path) as store:
        cid, _ = store.submit_campaign(_spec(seeds=(1, 2)))
        k1, j1 = store.claim(cid, "w1", 30.0)
        k2, j2 = store.claim(cid, "w2", 30.0)
        assert k1 != k2
        assert store.claim(cid, "w3", 30.0) is None  # both leased
        assert store.status(cid)["leased"] == 2


def test_expired_lease_is_reclaimed_and_charged_to_the_owner(tmp_path):
    with _store(tmp_path) as store:
        cid, _ = store.submit_campaign(_spec())
        key, _ = store.claim(cid, "w1", lease_secs=0.0)  # expires now
        reclaimed = store.claim(cid, "w2", 30.0,
                                now=time.time() + 0.001)
        assert reclaimed is not None and reclaimed[0] == key
        row = store._one(
            "SELECT failed_workers, attempts FROM jobs WHERE key=?", (key,))
        assert json.loads(row[0]) == ["w1"]  # evidence against w1
        assert row[1] == 2


def test_live_lease_is_not_stealable(tmp_path):
    with _store(tmp_path) as store:
        cid, _ = store.submit_campaign(_spec())
        store.claim(cid, "w1", lease_secs=30.0)
        assert store.claim(cid, "w2", 30.0) is None


def test_heartbeat_extends_only_the_owners_lease(tmp_path):
    with _store(tmp_path) as store:
        cid, _ = store.submit_campaign(_spec())
        key, _ = store.claim(cid, "w1", lease_secs=0.5)
        assert store.heartbeat(key, cid, "w1", lease_secs=60.0)
        assert not store.heartbeat(key, cid, "w2", lease_secs=60.0)
        # the renewed lease now outlives the original expiry
        assert store.claim(cid, "w2", 30.0,
                           now=time.time() + 1.0) is None


def test_claim_completes_queued_job_whose_cache_filled_in(tmp_path):
    spec_a = _spec(seeds=(1,))
    spec_b = CampaignSpec.make("matrix", ["fib"], [FenceDesign.S_PLUS],
                               seeds=[1, 2], core_counts=[2], scale=0.06)
    with _store(tmp_path) as store:
        cid_a, _ = store.submit_campaign(spec_a)
        cid_b, _ = store.submit_campaign(spec_b)
        key, _ = store.claim(cid_a, "w1", 30.0)
        store.complete(key, cid_a, "w1", {"v": 1})
        # campaign B's copy of seed-1 was pending; claiming from B must
        # skip it (serve the cache) and lease the seed-2 job instead
        k2, job2 = store.claim(cid_b, "w2", 30.0)
        assert k2 != key and job2.seed == 2
        assert store.status(cid_b)["done"] == 1


# ----------------------------------------------------------------------
# exactly-once completion
# ----------------------------------------------------------------------

def test_duplicate_completion_keeps_first_row(tmp_path):
    """Two workers finish the same job (expired lease): one row, bit
    for bit, plus an audit counter — never two rows."""
    with _store(tmp_path) as store:
        cid, _ = store.submit_campaign(_spec())
        key, _ = store.claim(cid, "w1", lease_secs=0.0)
        store.claim(cid, "w2", 30.0, now=time.time() + 0.001)
        row = {"v": 42, "nested": {"a": [1, 2]}}
        assert store.complete(key, cid, "w2", row) == "inserted"
        assert store.complete(key, cid, "w1", dict(row)) == "duplicate"
        assert store.rows(cid) == {key: row}
        assert store.duplicates_total() == 1
        assert store.result_count() == 1


def test_mismatched_duplicate_is_flagged_not_absorbed(tmp_path):
    with _store(tmp_path) as store:
        cid, _ = store.submit_campaign(_spec())
        key, _ = store.claim(cid, "w1", lease_secs=0.0)
        store.claim(cid, "w2", 30.0, now=time.time() + 0.001)
        store.complete(key, cid, "w2", {"v": 1})
        assert store.complete(key, cid, "w1", {"v": 2}) == "mismatch"
        assert store.rows(cid) == {key: {"v": 1}}  # first writer wins
        errors = [e for (e,) in store._conn.execute(
            "SELECT error FROM failures WHERE key=?", (key,))]
        assert any("result-mismatch" in e for e in errors)


def test_completion_marks_the_key_done_across_campaigns(tmp_path):
    spec_a = _spec(seeds=(1,))
    spec_b = _spec(seeds=(1, 2))
    with _store(tmp_path) as store:
        cid_a, _ = store.submit_campaign(spec_a)
        cid_b, _ = store.submit_campaign(spec_b)
        key, _ = store.claim(cid_a, "w1", 30.0)
        store.complete(key, cid_a, "w1", {"v": 1})
        assert store.status(cid_b)["done"] == 1
        assert store.campaign_done(cid_a)
        assert not store.campaign_done(cid_b)


# ----------------------------------------------------------------------
# failure, backoff, quarantine
# ----------------------------------------------------------------------

def test_failed_job_backs_off_exponentially(tmp_path):
    with _store(tmp_path) as store:
        cid, _ = store.submit_campaign(_spec())
        key, _ = store.claim(cid, "w1", 30.0)
        assert store.fail(key, cid, "w1", "boom", quarantine_after=99,
                          backoff_base=10.0) == "pending"
        # backoff gate: not claimable right now...
        assert store.claim(cid, "w2", 30.0) is None
        # ...but claimable past the gate
        assert store.claim(cid, "w2", 30.0,
                           now=time.time() + 11.0) is not None
        nb1 = store._one("SELECT not_before FROM jobs WHERE key=?",
                         (key,))[0]
        store.fail(key, cid, "w2", "boom", quarantine_after=99,
                   backoff_base=10.0)
        nb2 = store._one("SELECT not_before FROM jobs WHERE key=?",
                         (key,))[0]
        assert nb2 - nb1 > 5.0  # attempt 2 backed off ~2x attempt 1


def test_backoff_is_capped(tmp_path):
    with _store(tmp_path) as store:
        cid, _ = store.submit_campaign(_spec())
        key, _ = store.claim(cid, "w1", 30.0)
        t0 = time.time()
        store._conn.execute("UPDATE jobs SET attempts=50 WHERE key=?",
                            (key,))
        store.fail(key, cid, "w1", "boom", quarantine_after=99,
                   backoff_base=0.25, backoff_cap=3.0)
        nb = store._one("SELECT not_before FROM jobs WHERE key=?",
                        (key,))[0]
        assert nb - t0 < 4.0  # capped, not 0.25 * 2**49


def test_quarantine_after_distinct_worker_failures(tmp_path):
    """Failures from the *same* worker never quarantine; N distinct
    workers do, and a diagnostic bundle is written."""
    diag = tmp_path / "diag"
    with _store(tmp_path, diag_dir=str(diag)) as store:
        cid, _ = store.submit_campaign(_spec())
        for attempt in range(5):  # one flaky worker, many failures
            key, _ = store.claim(cid, "w1", 30.0,
                                 now=time.time() + 100.0 * attempt)
            assert store.fail(key, cid, "w1", f"boom {attempt}",
                              quarantine_after=3) == "pending"
        far = time.time() + 1000.0
        key, _ = store.claim(cid, "w2", 30.0, now=far)
        assert store.fail(key, cid, "w2", "boom w2",
                          quarantine_after=3) == "pending"
        key, _ = store.claim(cid, "w3", 30.0, now=far + 100.0)
        assert store.fail(key, cid, "w3", "boom w3",
                          quarantine_after=3) == "quarantined"

        assert store.status(cid)["quarantined"] == 1
        assert store.campaign_done(cid)  # quarantine is terminal
        assert store.claim(cid, "w4", 30.0, now=far + 200.0) is None

        (q,) = store.quarantined(cid)
        assert set(q["failed_workers"]) == {"w1", "w2", "w3"}
        bundles = list(diag.glob("quarantine_*.json"))
        assert len(bundles) == 1
        bundle = json.loads(bundles[0].read_text())
        assert bundle["kind"] == "farm-quarantine"
        assert bundle["spec"]["workload"] == "fib"
        assert sorted(bundle["distinct_failed_workers"]) == ["w1", "w2", "w3"]
        assert len(bundle["failures"]) == 7
        assert bundle["last_error"] == "boom w3"


def test_expired_leases_count_toward_quarantine(tmp_path):
    """Three distinct workers dying mid-job (lease expiry, no explicit
    fail call) quarantine the job at the next claim."""
    with _store(tmp_path) as store:
        cid, _ = store.submit_campaign(_spec())
        now = time.time()
        for i, worker in enumerate(("w1", "w2", "w3")):
            claimed = store.claim(cid, worker, lease_secs=0.0,
                                  now=now + i)
            assert claimed is not None
        # w1..w3 all died; the 4th claim attempt quarantines instead
        assert store.claim(cid, "w4", 30.0, now=now + 10.0) is None
        assert store.status(cid)["quarantined"] == 1


def test_fail_unknown_job_raises(tmp_path):
    with _store(tmp_path) as store:
        cid, _ = store.submit_campaign(_spec())
        with pytest.raises(ConfigError, match="unknown job"):
            store.fail("nope", cid, "w1", "boom")


# ----------------------------------------------------------------------
# gc
# ----------------------------------------------------------------------

def test_gc_releases_expired_leases_and_drops_done_campaigns(tmp_path):
    spec_a = _spec(seeds=(1,))
    spec_b = _spec(seeds=(2,))
    with _store(tmp_path) as store:
        cid_a, _ = store.submit_campaign(spec_a)
        cid_b, _ = store.submit_campaign(spec_b)
        key_a, _ = store.claim(cid_a, "w1", 30.0)
        store.complete(key_a, cid_a, "w1", {"v": 1})
        store.claim(cid_b, "w2", lease_secs=0.0)  # expired, unfinished
        summary = store.gc()
        assert summary["released"] == 1
        assert summary["campaigns_dropped"] == 1  # A done, B kept
        assert [cid for cid, _ in store.campaigns()] == [cid_b]
        assert store.result_count() == 1  # cache survives by default
        summary2 = store.gc(prune_cache=True)
        assert summary2["results_pruned"] == 1  # A's row, unreferenced


def test_gc_prune_keeps_referenced_cache_rows(tmp_path):
    spec = _spec(seeds=(1, 2))
    with _store(tmp_path) as store:
        cid, _ = store.submit_campaign(spec)
        key, _ = store.claim(cid, "w1", 30.0)
        store.complete(key, cid, "w1", {"v": 1})
        summary = store.gc(prune_cache=True)  # campaign unfinished
        assert summary["campaigns_dropped"] == 0
        assert summary["results_pruned"] == 0
        assert store.result_count() == 1
