"""The exploration engine: acceptance campaign, report, budget."""

import json

import pytest

from repro.common.params import FenceDesign
from repro.verify.engine import VerifyConfig, run_verification
from repro.verify.oracles import PAPER_DESIGNS


@pytest.fixture(scope="module")
def acceptance_report(tmp_path_factory):
    """The acceptance campaign: ``repro verify --designs all
    --budget 200`` (shared across the assertions below)."""
    out = tmp_path_factory.mktemp("verify") / "report.json"
    report = run_verification(VerifyConfig(budget=200),
                              out_path=str(out))
    return report, out


def test_acceptance_finds_scvs_on_stripped_programs(acceptance_report):
    report, _ = acceptance_report
    assert report.stripped_scvs >= 1


def test_acceptance_no_scv_under_correct_fences(acceptance_report):
    report, _ = acceptance_report
    assert report.fenced_scvs == 0
    assert report.violations == []
    # every design of the paper actually ran
    assert set(report.per_design) == {str(d) for d in PAPER_DESIGNS}
    assert all(row["runs"] > 0 for row in report.per_design.values())


def test_acceptance_shrinks_failure_to_ten_ops(acceptance_report):
    report, _ = acceptance_report
    assert report.shrunk is not None
    assert report.shrunk["converged"]
    assert report.shrunk["to_ops"] <= 10
    assert report.shrunk["to_ops"] <= report.shrunk["from_ops"]


def test_acceptance_exercises_wplus_recovery(acceptance_report):
    report, _ = acceptance_report
    assert report.per_design["W+"]["recoveries"] > 0


def test_report_json_round_trips(acceptance_report):
    report, out = acceptance_report
    data = json.loads(out.read_text())
    assert data["runs"] == report.runs == 200
    assert data["config"]["budget"] == 200
    assert data["stripped_scvs"] == report.stripped_scvs
    assert data["shrunk"]["to_ops"] == report.shrunk["to_ops"]
    # findings carry enough to reproduce: generator seed + point
    finding = data["scv_findings"][0]
    assert {"gen_seed", "point", "ops", "design"} <= set(finding)


def test_budget_is_respected_exactly():
    report = run_verification(
        VerifyConfig(budget=7, designs=(FenceDesign.S_PLUS,
                                        FenceDesign.W_PLUS)),
        out_path=None,
    )
    assert report.runs == 7


def test_campaigns_are_reproducible():
    cfg = VerifyConfig(budget=30, designs=(FenceDesign.S_PLUS,),
                       shrink=False)
    a = run_verification(cfg, out_path=None)
    b = run_verification(cfg, out_path=None)
    assert a.to_dict() == b.to_dict()


def test_shape_restriction():
    report = run_verification(
        VerifyConfig(budget=12, designs=(FenceDesign.S_PLUS,),
                     shape="mp", shrink=False),
        out_path=None,
    )
    # mp is TSO-safe: no SCVs fenced or stripped, nothing to shrink
    assert report.fenced_scvs == 0
    assert report.stripped_scvs == 0
    assert report.shrunk is None
