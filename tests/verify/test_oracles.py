"""The design oracles: SC with fences, SCV without, recovery soundness."""

import pytest

from repro.common.params import FenceDesign
from repro.verify.generator import generate_program
from repro.verify.oracles import (
    PAPER_DESIGNS,
    ProgramRun,
    check_invariants,
    run_program,
)
from repro.verify.perturb import SchedulePoint


def _sb2(seed=0):
    """A deterministic 2-thread store-buffering program."""
    for s in range(seed, seed + 50):
        prog = generate_program(s, shape="sb")
        if prog.num_threads == 2:
            return prog
    raise AssertionError("no 2-thread sb program in 50 seeds")


@pytest.mark.parametrize("design", PAPER_DESIGNS)
def test_fenced_sb_is_sc_under_every_design(design):
    run = run_program(_sb2(), design)
    assert check_invariants(run) == []
    assert run.completed
    assert not run.scv_found


def test_stripped_sb_violates_sc():
    run = run_program(_sb2().stripped(), FenceDesign.S_PLUS)
    assert run.completed
    assert run.scv_found
    # an SCV on a fence-stripped program is a finding, not a violation
    assert check_invariants(run) == []


def test_wplus_recovery_preserves_sc():
    """W+ executes every fence as a wf; colliding groups roll back.
    Whatever the recovery count, the surviving execution must be SC."""
    recovered = False
    for seed in range(30):
        prog = generate_program(seed, shape="sb")
        run = run_program(prog, FenceDesign.W_PLUS)
        assert check_invariants(run) == []
        assert not run.scv_found
        recovered = recovered or run.recoveries > 0
    assert recovered, "no seed exercised the W+ recovery path"


def test_naive_wplus_deadlock_is_classified():
    """recovery=False reproduces the Fig. 3a deadlock; the oracle
    records it rather than crashing the explorer."""
    deadlocked = False
    for seed in range(30):
        prog = generate_program(seed, shape="sb")
        run = run_program(prog, FenceDesign.W_PLUS, recovery=False)
        if run.deadlock is not None:
            deadlocked = True
            assert "blocked cores" in run.deadlock
            assert "deadlock" in " ".join(check_invariants(run))
            break
    assert deadlocked, "no seed deadlocked the naive design"


def test_observed_values_recorded():
    prog = _sb2()
    run = run_program(prog, FenceDesign.S_PLUS)
    # every Load in the program reported a value
    expected = {
        (tid, idx)
        for tid, body in enumerate(prog.threads)
        for idx, op in enumerate(body)
        if type(op).__name__ == "Load"
    }
    assert set(run.observed) == expected


def test_schedule_point_changes_timing():
    prog = _sb2()
    base = run_program(prog, FenceDesign.S_PLUS, SchedulePoint())
    slow = run_program(
        prog, FenceDesign.S_PLUS, SchedulePoint(mesh_hop_cycles=11)
    )
    assert slow.cycles > base.cycles


def test_check_invariants_flags_livelock():
    run = ProgramRun(program=_sb2(), design=FenceDesign.S_PLUS,
                     point=SchedulePoint(), completed=False, cycles=999)
    assert any("livelock" in v for v in check_invariants(run))


def test_check_invariants_flags_scv_under_fences():
    run = ProgramRun(program=_sb2(), design=FenceDesign.WS_PLUS,
                     point=SchedulePoint(), completed=True,
                     scv=[(0, 1), (1, 0)])
    assert any("scv-under-fences" in v for v in check_invariants(run))


def test_check_invariants_flags_unsound_recovery():
    run = ProgramRun(program=_sb2().stripped(),
                     design=FenceDesign.W_PLUS,
                     point=SchedulePoint(), completed=True,
                     scv=[(0, 1), (1, 0)], recoveries=2)
    assert any("recovery-left-non-sc" in v for v in check_invariants(run))


# ---------------------------------------------------------------------------
# regressions: two W+ SC holes the verifier found (both random-shape)
# ---------------------------------------------------------------------------

#: campaign seed 4, program 2: the critical thread's post-wf load was
#: satisfied by write-buffer forwarding and never entered the BS, so
#: the conflicting remote store never bounced and SC silently broke.
_FWD_BS_POINT = SchedulePoint(seed=247515, mesh_hop_cycles=5,
                              write_buffer_entries=2, bs_entries=32,
                              bounce_retry_cycles=20)

#: campaign seed 5, program: an invalidation arrived between a post-wf
#: load reading its line and the BS insertion becoming visible — the
#: INV was acked, the load kept the stale value, no bounce happened.
_REPLAY_POINT = SchedulePoint(seed=1, mesh_hop_cycles=5,
                              write_buffer_entries=64, bs_entries=32,
                              bounce_retry_cycles=20)


def _campaign_program(campaign_seed, name, shape=None):
    for idx in range(40):
        prog = generate_program(campaign_seed * 7919 + idx, shape=shape)
        if prog.name == name:
            return prog
    raise AssertionError(f"program {name} not reachable from seed")


def test_forwarded_post_wf_load_enters_the_bs():
    prog = _campaign_program(4, "rand4v2-s31677", shape="random")
    run = run_program(prog, FenceDesign.W_PLUS, _FWD_BS_POINT)
    assert check_invariants(run) == []
    assert not run.scv_found


def test_inv_racing_bs_insertion_replays_the_load():
    prog = _campaign_program(5, "rand3v4-s39601")
    run = run_program(prog, FenceDesign.W_PLUS, _REPLAY_POINT)
    assert check_invariants(run) == []
    assert not run.scv_found
