"""The litmus-program generator: shapes, determinism, fence discipline."""

import pytest

from repro.common.params import FenceRole
from repro.core import isa as ops
from repro.verify.generator import (
    RACY_SHAPES,
    SHAPES,
    generate_program,
)


@pytest.mark.parametrize("shape", SHAPES)
def test_every_shape_builds(shape):
    prog = generate_program(1, shape=shape)
    assert prog.shape == shape
    assert 2 <= prog.num_threads <= 4
    assert prog.op_count > 0
    assert prog.num_vars >= 1


def test_generation_is_deterministic():
    a = generate_program(42)
    b = generate_program(42)
    assert a == b
    assert generate_program(43) != a


def test_at_most_one_critical_thread():
    """WS+/SW+ support at most one wf per group; the generator must
    never assign two CRITICAL roles (that would be a *misused* group
    whose SCV is the paper's documented caveat, not a bug)."""
    for seed in range(60):
        prog = generate_program(seed)
        critical_threads = sum(
            1 for t in prog.threads
            if any(isinstance(op, ops.Fence)
                   and op.role is FenceRole.CRITICAL for op in t)
        )
        assert critical_threads <= 1, prog.name


def test_random_shape_fully_fenced():
    """Full-fencing recipe: in the random shape no load may follow a
    store without an intervening fence (Shasha–Snir SC recovery)."""
    for seed in range(40):
        prog = generate_program(seed, shape="random")
        for body in prog.threads:
            pending_store = False
            for op in body:
                if isinstance(op, ops.Store):
                    pending_store = True
                elif isinstance(op, ops.Fence):
                    pending_store = False
                elif isinstance(op, ops.Load):
                    assert not pending_store, prog.name


def test_stripped_removes_all_fences():
    prog = generate_program(5, shape="sb")
    assert prog.has_fences
    bare = prog.stripped()
    assert not bare.has_fences
    assert bare.op_count < prog.op_count
    assert bare.shape in RACY_SHAPES
    # non-fence ops survive unchanged, in order
    for orig, strip in zip(prog.threads, bare.threads):
        assert [o for o in orig if not isinstance(o, ops.Fence)] == list(strip)


def test_sb_shape_is_a_ring():
    prog = generate_program(9, shape="sb")
    n = prog.num_threads
    for i, body in enumerate(prog.threads):
        stores = [op for op in body if isinstance(op, ops.Store)]
        loads = [op for op in body if isinstance(op, ops.Load)]
        assert stores[-1].addr == i          # own ring variable last
        assert loads == [ops.Load((i + 1) % n)]


def test_describe_is_readable():
    prog = generate_program(3, shape="mp")
    listing = prog.describe()
    assert len(listing) == 2
    assert any("St v0=42" in op for op in listing[0])
    assert any(op.startswith("Fence(") for op in listing[0])


def test_unknown_shape_rejected():
    with pytest.raises(ValueError):
        generate_program(1, shape="bogus")
