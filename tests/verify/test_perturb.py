"""Schedule perturbation: reproducible sweeps, parameter plumbing."""

from repro.common.params import FenceDesign
from repro.verify.perturb import (
    DEFAULT_POINT,
    VERIFY_MAX_CYCLES,
    VERIFY_WATCHDOG_INTERVAL,
    SchedulePoint,
    schedule_points,
)


def test_points_are_reproducible():
    assert schedule_points(7, 10) == schedule_points(7, 10)
    assert schedule_points(7, 10) != schedule_points(8, 10)


def test_default_timing_explored_first():
    points = schedule_points(1, 4)
    assert points[0] == DEFAULT_POINT
    assert len(points) == 4
    # the sweep actually moves the knobs
    assert len({p.seed for p in points}) > 1


def test_point_builds_interleaving_exact_params():
    point = SchedulePoint(seed=3, mesh_hop_cycles=11,
                          write_buffer_entries=8, bs_entries=4,
                          bounce_retry_cycles=45)
    params = point.params(FenceDesign.W_PLUS, num_cores=3)
    assert params.fence_design is FenceDesign.W_PLUS
    assert params.num_cores == params.num_banks == 3
    assert params.batch_cycles == 0          # interleaving-exact
    assert params.track_dependences          # SCV checker armed
    assert params.mesh_hop_cycles == 11
    assert params.write_buffer_entries == 8
    assert params.bs_entries == 4
    assert params.bounce_retry_cycles == 45
    assert params.watchdog_interval == VERIFY_WATCHDOG_INTERVAL
    assert params.max_cycles == VERIFY_MAX_CYCLES
    assert params.wplus_recovery_enabled


def test_point_can_disable_recovery():
    params = SchedulePoint().params(FenceDesign.W_PLUS, 2, recovery=False)
    assert not params.wplus_recovery_enabled


# ----------------------------------------------------------------------
# adversary points (fence synthesis)
# ----------------------------------------------------------------------

from repro.verify.perturb import DEFAULT_POINT, adversary_points  # noqa: E402


def test_adversary_points_reproducible_and_prefix_stable():
    assert adversary_points(5, 8) == adversary_points(5, 8)
    assert adversary_points(5, 16)[:8] == adversary_points(5, 8)


def test_adversary_points_lead_with_default_and_mix_jitter():
    points = adversary_points(1, 12)
    assert points[0] == DEFAULT_POINT
    armed = [p for p in points if p.jittered]
    plain = [p for p in points[1:] if not p.jittered]
    assert armed and plain  # both kinds of adversary present


def test_unarmed_point_has_no_injector():
    assert not DEFAULT_POINT.jittered
    assert DEFAULT_POINT.injector() is None


def test_armed_point_builds_fresh_injectors():
    armed = next(p for p in adversary_points(1, 12) if p.jittered)
    first, second = armed.injector(), armed.injector()
    # injectors are single-run objects: each call must build a new one
    assert first is not None and first is not second
    assert first.plan.noc_delay_rate == armed.noc_jitter_rate
    assert first.plan.noc_delay_max_cycles == armed.noc_jitter_max_cycles


def test_plain_verify_points_never_jittered():
    from repro.verify.perturb import schedule_points

    assert all(not p.jittered for p in schedule_points(3, 20))
