"""Schedule perturbation: reproducible sweeps, parameter plumbing."""

from repro.common.params import FenceDesign
from repro.verify.perturb import (
    DEFAULT_POINT,
    VERIFY_MAX_CYCLES,
    VERIFY_WATCHDOG_INTERVAL,
    SchedulePoint,
    schedule_points,
)


def test_points_are_reproducible():
    assert schedule_points(7, 10) == schedule_points(7, 10)
    assert schedule_points(7, 10) != schedule_points(8, 10)


def test_default_timing_explored_first():
    points = schedule_points(1, 4)
    assert points[0] == DEFAULT_POINT
    assert len(points) == 4
    # the sweep actually moves the knobs
    assert len({p.seed for p in points}) > 1


def test_point_builds_interleaving_exact_params():
    point = SchedulePoint(seed=3, mesh_hop_cycles=11,
                          write_buffer_entries=8, bs_entries=4,
                          bounce_retry_cycles=45)
    params = point.params(FenceDesign.W_PLUS, num_cores=3)
    assert params.fence_design is FenceDesign.W_PLUS
    assert params.num_cores == params.num_banks == 3
    assert params.batch_cycles == 0          # interleaving-exact
    assert params.track_dependences          # SCV checker armed
    assert params.mesh_hop_cycles == 11
    assert params.write_buffer_entries == 8
    assert params.bs_entries == 4
    assert params.bounce_retry_cycles == 45
    assert params.watchdog_interval == VERIFY_WATCHDOG_INTERVAL
    assert params.max_cycles == VERIFY_MAX_CYCLES
    assert params.wplus_recovery_enabled


def test_point_can_disable_recovery():
    params = SchedulePoint().params(FenceDesign.W_PLUS, 2, recovery=False)
    assert not params.wplus_recovery_enabled
