"""The ``repro verify`` CLI subcommand."""

import json

from repro.cli import main


def test_verify_cli_writes_report(tmp_path, capsys):
    out = tmp_path / "report.json"
    rc = main(["verify", "--designs", "S+,W+", "--budget", "20",
               "--seed", "7", "--out", str(out)])
    assert rc == 0
    text = capsys.readouterr().out
    assert "verify: 20 runs" in text
    assert "verdict: OK" in text
    data = json.loads(out.read_text())
    assert data["runs"] == 20
    assert data["config"]["designs"] == ["S+", "W+"]


def test_verify_cli_all_designs_no_report(capsys):
    rc = main(["verify", "--budget", "12", "--no-shrink", "--out", "-"])
    assert rc == 0
    text = capsys.readouterr().out
    assert "S+" in text and "Wee" in text
    assert "[report written" not in text


def test_verify_cli_rejects_unknown_design(capsys):
    rc = main(["verify", "--designs", "nope", "--budget", "5"])
    assert rc == 2
    assert "unknown design" in capsys.readouterr().err
