"""The shrinker: minimization, 1-minimality, budget discipline."""

from repro.common.params import FenceDesign
from repro.core import isa as ops
from repro.verify.generator import LitmusProgram, generate_program
from repro.verify.oracles import run_program
from repro.verify.shrink import shrink_program


def _noisy_program():
    """A 3-thread program whose SCV kernel is a padded 2-thread SB.

    The cold pad stores (v3/v4, never warmed) keep each write buffer
    draining long enough for both post-store loads to read stale
    values — the same trick the litmus kernels use."""
    t0 = (ops.Compute(40), ops.Store(3, 7), ops.Store(0, 1),
          ops.Load(1), ops.Compute(8))
    t1 = (ops.Store(4, 7), ops.Store(1, 1), ops.Load(0),
          ops.Compute(120))
    t2 = (ops.Load(2), ops.Compute(40), ops.Store(2, 5))  # bystander
    return LitmusProgram(
        name="noisy-sb", shape="sb", num_vars=5,
        threads=(t0, t1, t2), warm_vars=(0, 1, 2), seed=0,
    )


def _scv_property(design=FenceDesign.S_PLUS):
    def still_fails(candidate):
        return run_program(candidate, design).scv_found
    return still_fails


def test_shrinks_seeded_failure_to_small_kernel():
    """Acceptance: a seeded SCV failure shrinks to <= 10 ops."""
    prog = _noisy_program()
    still_fails = _scv_property()
    assert still_fails(prog)  # the seeded failure reproduces
    result = shrink_program(prog, still_fails)
    assert result.converged
    assert still_fails(result.program)
    assert result.program.op_count <= 10
    # the SB kernel (two stores, two loads) must survive
    kinds = [type(op).__name__
             for t in result.program.threads for op in t]
    assert kinds.count("Store") >= 2 and kinds.count("Load") >= 2


def test_shrink_drops_bystander_thread():
    result = shrink_program(_noisy_program(), _scv_property())
    assert result.program.num_threads == 2


def test_shrink_is_one_minimal():
    """Removing any single op from the shrunk program loses the SCV."""
    still_fails = _scv_property()
    result = shrink_program(_noisy_program(), still_fails)
    small = result.program
    for tid in range(small.num_threads):
        for i in range(len(small.threads[tid])):
            threads = [list(t) for t in small.threads]
            del threads[tid][i]
            assert not still_fails(small.with_threads(threads))


def test_shrink_respects_run_budget():
    calls = []

    def costly(candidate):
        calls.append(1)
        return True  # everything "fails": worst case churn

    result = shrink_program(_noisy_program(), costly, max_runs=5)
    assert len(calls) <= 5
    assert not result.converged


def test_generated_stripped_sb_shrinks():
    """End to end on generator output, as the engine does it."""
    prog = generate_program(12345 * 7919, shape="sb").stripped()
    still_fails = _scv_property()
    if not still_fails(prog):  # pragma: no cover - seed drift guard
        return
    result = shrink_program(prog, still_fails)
    assert result.program.op_count <= 10


# ----------------------------------------------------------------------
# generic ddmin: one shrinker, both predicate directions
# ----------------------------------------------------------------------
#
# The predicate signature is deliberately direction-agnostic.  The
# chaos harness shrinks a *failing* set ("this subset still breaks the
# machine"); the fence synthesizer shrinks a *passing* set ("this
# subset still satisfies the SC oracle").  Both directions get a
# regression test so neither caller ever needs a copied-and-flipped
# shrinker again.

from repro.verify.shrink import ddmin  # noqa: E402


def test_ddmin_failing_direction_chaos_style():
    """Chaos semantics: minimize injections while the crash persists
    (here: the 'crash' needs injections 3 and 7 together)."""
    def still_fails(subset):
        return 3 in subset and 7 in subset

    minimized, runs = ddmin(list(range(10)), predicate=still_fails)
    assert minimized == [3, 7]
    assert runs > 0


def test_ddmin_passing_direction_synth_style():
    """Synth semantics on the real simulator: shrink a passing fence
    set down to the sites that actually guard the SB race."""
    from repro.common.params import FenceDesign
    from repro.synth.programs import program_for_spec
    from repro.synth.search import PlacementOracle
    from repro.synth.sites import FenceSite, Placement
    from repro.common.params import FenceFlavour
    from repro.verify.perturb import adversary_points

    stripped = program_for_spec("sb").stripped()
    racy = (FenceSite(0, 2), FenceSite(1, 2))
    useless = (FenceSite(0, 3), FenceSite(1, 3))  # after the loads
    oracle = PlacementOracle(
        stripped, FenceDesign.S_PLUS, tuple(adversary_points(1, 6)))

    def still_passes(subset):
        placement = Placement.of(
            {site: FenceFlavour.SF for site in subset})
        return oracle.check(placement) is None

    assert still_passes(list(racy + useless))
    minimized, _runs = ddmin(list(racy + useless),
                             predicate=still_passes)
    assert sorted(minimized) == sorted(racy)


def test_ddmin_collapses_to_empty_when_predicate_allows():
    """The final singleton check: a set whose property needs no items
    at all shrinks to []."""
    minimized, _runs = ddmin([1, 2, 3], predicate=lambda s: True)
    assert minimized == []


def test_ddmin_budget_stops_early():
    calls = []

    def predicate(subset):
        calls.append(1)
        return 0 in subset

    minimized, runs = ddmin(list(range(16)), predicate=predicate,
                            max_runs=3)
    assert runs <= 3 and len(calls) <= 3
    assert 0 in minimized  # never returns a subset violating the predicate
