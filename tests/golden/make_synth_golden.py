"""Regenerate the golden synthesis report.

Usage::

    PYTHONPATH=src python tests/golden/make_synth_golden.py

Pins the full SB x five-designs ``repro synth`` report (CLI defaults,
seed 1) as ``tests/golden/data/synth_sb.json``.  Only regenerate for a
*deliberate* change to the search, the cost model, or the report
schema — never to paper over drift.
"""

from __future__ import annotations

import os
import sys

from repro.synth import SynthConfig, run_synthesis
from repro.verify.oracles import PAPER_DESIGNS

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")


def main() -> int:
    config = SynthConfig(program="sb", designs=PAPER_DESIGNS, seed=1)
    report = run_synthesis(config)
    if not report.ok:
        print("refusing to pin a not-ok report", file=sys.stderr)
        return 1
    path = os.path.join(DATA_DIR, "synth_sb.json")
    report.write(path)
    print(f"wrote {path} ({report.total_runs} simulator runs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
