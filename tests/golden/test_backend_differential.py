"""Explicit object-vs-flat backend differential tests.

The golden/conformance/sanitizer suites become differential when run
with ``--kernel-backend=both``; the tests here go further and compare
the two kernels *directly in one process*, so a divergence names the
first differing field instead of failing against a checked-in file:

* full ``MachineStats`` for every paper design (stats cover cycles,
  bounces, retries, per-core breakdowns, traffic — the machine-visible
  universe);
* the *complete* observability trace — every span and instant the
  simulator emits, in order, with timestamps and durations;
* deterministic chaos-case replays (fault injection + verify oracles);
* the flat kernel's compiled dispatch core against its pure-Python
  loop (skipped when the extension is not built).
"""

import json

import pytest

from repro.common.kernels import KERNELS
from repro.common.params import FenceDesign
from repro.obs import Observability
from repro.workloads.base import load_all_workloads, run_workload

DESIGNS = (
    FenceDesign.S_PLUS,
    FenceDesign.WS_PLUS,
    FenceDesign.SW_PLUS,
    FenceDesign.W_PLUS,
    FenceDesign.WEE,
)


def _reset_global_id_streams():
    """Rewind the process-global txn/store id counters.

    The ids land in trace-event args; without the rewind, the second
    run of a back-to-back comparison picks up where the first left off
    and every id differs — run-order noise, not a kernel divergence.
    """
    import itertools

    from repro.mem import messages, writebuffer

    messages._txn_ids = itertools.count(1)
    writebuffer._store_ids = itertools.count(1)


def _first_diff(a, b, path=""):
    """Path and values of the first leaf where *a* and *b* differ."""
    if isinstance(a, dict) and isinstance(b, dict):
        for k in sorted(set(a) | set(b)):
            if a.get(k) != b.get(k):
                return _first_diff(a.get(k), b.get(k), f"{path}.{k}")
    elif isinstance(a, list) and isinstance(b, list):
        for i, (x, y) in enumerate(zip(a, b)):
            if x != y:
                return _first_diff(x, y, f"{path}[{i}]")
        return f"{path}: length {len(a)} != {len(b)}"
    return f"{path}: {a!r} != {b!r}"


def _assert_same(obj, flat, what):
    """Equality assert that reports the first divergence compactly.

    Feeding two multi-megabyte JSON strings to pytest's difflib-based
    assertion repr is quadratic; this pinpoints the leaf instead.
    """
    if obj != flat:
        pytest.fail(f"{what} diverged between kernels at "
                    f"{_first_diff(obj, flat)}")


def _traced_run(kernel: str, design: FenceDesign, workload: str = "fib"):
    """One pinned run on *kernel*; returns (summary, trace) dicts."""
    load_all_workloads()
    _reset_global_id_streams()
    obs = Observability(trace=True)
    run = run_workload(workload, design, num_cores=4, scale=0.2,
                       seed=2024, kernel=kernel, obs=obs)
    summary = {
        "cycles": run.cycles,
        "completed": run.result.completed,
        "stats": run.stats.to_dict(),
    }
    trace = [ev.to_dict() for ev in obs.tracer.events]
    return summary, trace


@pytest.mark.parametrize("design", DESIGNS, ids=[d.name for d in DESIGNS])
def test_stats_and_full_trace_identical_across_kernels(design):
    obj_summary, obj_trace = _traced_run("object", design)
    flat_summary, flat_trace = _traced_run("flat", design)
    _assert_same(obj_summary, flat_summary, f"{design} MachineStats")
    _assert_same(obj_trace, flat_trace, f"{design} observability trace")


@pytest.mark.parametrize("workload", ["Counter", "matmul"])
def test_other_workload_groups_identical_across_kernels(workload):
    # Counter is cycle-budget-cut (ustm), matmul runs to completion
    # (cilk) — both halves of the fig 8/9 matrix.
    obj = _traced_run("object", FenceDesign.W_PLUS, workload)
    flat = _traced_run("flat", FenceDesign.W_PLUS, workload)
    _assert_same(obj, flat, f"{workload} run")


@pytest.mark.parametrize("scenario,seed", [
    ("chaos_combo", 3),
    ("illegal_drop", 2),
])
def test_chaos_replay_identical_across_kernels(scenario, seed, monkeypatch):
    """A chaos case replays from (scenario, design, seed) alone; both
    kernels must reproduce the same oracle verdicts, fault fire counts
    and cycle counts — including for the deliberately broken scenario
    where the interesting behaviour *is* the failure."""
    from repro.faults.chaos import run_chaos_case

    def replay(kernel):
        monkeypatch.setenv("REPRO_KERNEL", kernel)
        case = run_chaos_case(scenario, FenceDesign.W_PLUS, seed)
        return case.to_dict()

    _assert_same(replay("object"), replay("flat"),
                 f"chaos {scenario}/{seed} replay")


def test_sanitized_run_identical_across_kernels():
    """Sanitizer sweeps ride the queue protocol; a warn-mode run must
    count the same sweeps and violations on both backends."""
    def run_sanitized(kernel):
        load_all_workloads()
        run = run_workload("fib", FenceDesign.S_PLUS, num_cores=4,
                           scale=0.2, seed=11, kernel=kernel,
                           sanitize="warn")
        return {
            "cycles": run.cycles,
            "completed": run.result.completed,
            "violations": run.result.sanitizer_violations,
            "stats": run.stats.to_dict(),
        }

    _assert_same(run_sanitized("object"), run_sanitized("flat"),
                 "sanitized run")


def test_compiled_core_matches_pure_python_flat_loop(monkeypatch):
    from repro.common import flatevents

    if flatevents._flatcore is None:
        pytest.skip("compiled _flatcore not built in this environment")
    monkeypatch.delenv("REPRO_FLAT_NO_C", raising=False)
    with_c = _traced_run("flat", FenceDesign.WS_PLUS)
    monkeypatch.setenv("REPRO_FLAT_NO_C", "1")
    without_c = _traced_run("flat", FenceDesign.WS_PLUS)
    _assert_same(json.loads(json.dumps(with_c)),
                 json.loads(json.dumps(without_c)),
                 "flat kernel C-vs-Python dispatch")


def test_kernels_catalog_is_exactly_the_two_backends():
    assert KERNELS == ("object", "flat")
