"""Pinned runs for the golden-trace determinism tests.

One golden file per fence design; each file holds the **full**
``MachineStats.to_dict()`` of three pinned runs at seed 12345:

* ``fib``      — a CilkApps workload that runs to completion,
* ``Counter``  — a ustm workload cut at its cycle budget,
* ``litmus_sb``— the store-buffering litmus with an all-critical
  fence group (exercises bounces, and W+ recovery/replay).

The goldens were generated from the pre-rewrite event kernel; they are
the safety net proving a kernel rewrite changed timing of *Python*,
not timing of the *simulated machine*.  Regenerate (only for a
deliberate simulated-behaviour change, with justification in the PR)
via ``PYTHONPATH=src python tests/golden/make_goldens.py``.
"""

from __future__ import annotations

import os

from repro.common.params import FenceDesign, FenceRole
from repro.workloads import litmus
from repro.workloads.base import load_all_workloads, run_workload

SEED = 12345
DATA_DIR = os.path.join(os.path.dirname(__file__), "data")

#: the paper's five designs (Table 1), each with a golden file
GOLDEN_DESIGNS = (
    FenceDesign.S_PLUS,
    FenceDesign.WS_PLUS,
    FenceDesign.SW_PLUS,
    FenceDesign.W_PLUS,
    FenceDesign.WEE,
)


def golden_path(design: FenceDesign) -> str:
    return os.path.join(DATA_DIR, f"{design.name.lower()}.json")


def golden_run(design: FenceDesign) -> dict:
    """Execute the pinned runs for *design*; returns the golden dict."""
    load_all_workloads()
    out = {}
    for workload in ("fib", "Counter"):
        run = run_workload(workload, design, num_cores=4, scale=0.25,
                           seed=SEED)
        out[workload] = {
            "cycles": run.cycles,
            "completed": run.result.completed,
            "stats": run.stats.to_dict(),
        }
    # SW+ supports any *asymmetric* group (one side sf); an all-wf SB
    # group genuinely deadlocks under it (the situation W+ recovers
    # from), so its golden litmus uses the supported shape.
    roles = (
        (FenceRole.CRITICAL, FenceRole.STANDARD)
        if design is FenceDesign.SW_PLUS
        else (FenceRole.CRITICAL, FenceRole.CRITICAL)
    )
    lit = litmus.store_buffering(design, roles=roles, seed=SEED)
    out["litmus_sb"] = {
        "cycles": lit.result.cycles,
        "completed": lit.result.completed,
        "observed": {
            f"P{tid}.{label}": value
            for (tid, label), value in sorted(lit.observed.items())
        },
        "stats": lit.result.stats.to_dict(),
    }
    return out
