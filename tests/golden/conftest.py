"""Golden-trace suite rides the kernel-backend axis.

Every test here builds machines through ``run_workload`` / ``Machine``
without naming a kernel, so the autouse shim below routes the whole
suite through the backend(s) selected with ``--kernel-backend``.  The
goldens themselves are backend-free: a flat-kernel run must reproduce
them bit-for-bit or the differential run fails.
"""

import pytest


@pytest.fixture(autouse=True)
def _kernel_backend(kernel):
    """Autouse: pins REPRO_KERNEL for every golden test."""
    return kernel
