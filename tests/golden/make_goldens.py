"""Regenerate the golden trace files.

Usage::

    PYTHONPATH=src python tests/golden/make_goldens.py

Only regenerate for a *deliberate* change to simulated behaviour; a
pure performance change must leave every golden bit-identical.
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from cases import DATA_DIR, GOLDEN_DESIGNS, golden_path, golden_run  # noqa: E402


def main() -> int:
    os.makedirs(DATA_DIR, exist_ok=True)
    for design in GOLDEN_DESIGNS:
        path = golden_path(design)
        data = golden_run(design)
        with open(path, "w") as fh:
            json.dump(data, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {path} ({data['fib']['cycles']} fib cycles, "
              f"{data['litmus_sb']['cycles']} litmus cycles)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
