"""Golden-trace determinism tests.

For each of the five fence designs, run the pinned workloads at seed
12345 and assert the **full** ``MachineStats`` dict — cycles, bounces,
retries, load_replays, per-core breakdowns, traffic, everything —
matches the checked-in golden JSON bit for bit.

These tests pin the *simulated machine's* behaviour.  Kernel rewrites
and micro-optimizations must keep them green; if one fails, the change
altered simulated timing, not just Python wall-clock time.  Regenerate
deliberately with ``PYTHONPATH=src python tests/golden/make_goldens.py``.
"""

import json

import pytest

from tests.golden.cases import GOLDEN_DESIGNS, golden_path, golden_run


def _diff(expected: dict, actual: dict, prefix=""):
    """Human-readable list of leaf-level differences."""
    out = []
    keys = sorted(set(expected) | set(actual))
    for key in keys:
        here = f"{prefix}.{key}" if prefix else str(key)
        if key not in expected:
            out.append(f"{here}: unexpected (= {actual[key]!r})")
        elif key not in actual:
            out.append(f"{here}: missing (golden {expected[key]!r})")
        elif isinstance(expected[key], dict) and isinstance(actual[key], dict):
            out.extend(_diff(expected[key], actual[key], here))
        elif expected[key] != actual[key]:
            out.append(f"{here}: golden {expected[key]!r} != {actual[key]!r}")
    return out


@pytest.mark.parametrize(
    "design", GOLDEN_DESIGNS, ids=[d.name for d in GOLDEN_DESIGNS]
)
def test_golden_trace(design):
    path = golden_path(design)
    with open(path) as fh:
        golden = json.load(fh)
    actual = golden_run(design)
    diffs = _diff(golden, actual)
    assert not diffs, (
        f"{design} diverged from its golden trace ({path}):\n  "
        + "\n  ".join(diffs[:40])
    )
