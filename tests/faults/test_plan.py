"""FaultPlan construction, the scenario catalog, serialization."""

import pytest

from repro.faults.plan import (
    DROP_CYCLES,
    FaultPlan,
    LEGAL_SCENARIOS,
    SCENARIOS,
    make_plan,
)


def test_every_scenario_builds_a_plan():
    for name in SCENARIOS:
        plan = make_plan(name, 7)
        assert plan.scenario == name
        assert plan.seed == 7


def test_unknown_scenario_raises_with_choices():
    with pytest.raises(ValueError, match="unknown fault scenario"):
        make_plan("not-a-scenario", 1)


def test_legal_scenarios_exclude_the_broken_one():
    assert "illegal_drop" not in LEGAL_SCENARIOS
    assert set(LEGAL_SCENARIOS) == {
        name for name, over in SCENARIOS.items()
        if over.get("legal", True)
    }
    # CI sweeps must have something to sweep
    assert len(LEGAL_SCENARIOS) >= 5


def test_only_the_illegal_scenario_may_drop_messages():
    for name in SCENARIOS:
        plan = make_plan(name, 1)
        if plan.legal:
            assert plan.noc_drop_rate == 0.0, name
        else:
            assert plan.noc_drop_rate > 0.0, name


def test_legal_knobs_are_budget_or_magnitude_bounded():
    for name in LEGAL_SCENARIOS:
        plan = make_plan(name, 1)
        if plan.noc_delay_rate:
            assert plan.noc_delay_max_cycles > 0, name
        if plan.dir_nack_rate:
            assert plan.dir_nack_budget > 0, name
        if plan.bs_amp_rate:
            assert plan.bs_amp_budget > 0, name
        if plan.retry_backoff_base:
            assert plan.retry_backoff_cap >= plan.retry_backoff_base, name
        assert plan.wplus_timeout_scale > 0, name


def test_plan_round_trips_through_dict():
    for name in SCENARIOS:
        plan = make_plan(name, 42)
        assert FaultPlan.from_dict(plan.to_dict()) == plan


def test_drop_cycles_exceed_any_verify_horizon():
    from repro.verify.perturb import VERIFY_MAX_CYCLES

    assert DROP_CYCLES > 100 * VERIFY_MAX_CYCLES


def test_recovery_storm_enables_the_storm_monitor():
    plan = make_plan("recovery_storm", 1)
    assert plan.params_overrides["wplus_storm_k"] >= 1
