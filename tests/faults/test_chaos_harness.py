"""The chaos harness: illegal-scenario detection, ddmin shrinking,
journal resume, and the ``repro chaos`` CLI."""

import json
import os

import pytest

from repro.cli import main as cli_main
from repro.common.params import FenceDesign
from repro.faults.chaos import (
    run_chaos_case,
    run_chaos_matrix,
    shrink_failing_case,
)
from repro.verify.shrink import ddmin


# ----------------------------------------------------------------------
# generic ddmin
# ----------------------------------------------------------------------

class TestDdmin:
    def test_shrinks_to_the_single_culprit(self):
        items = list(range(20))
        minimized, runs = ddmin(items, lambda s: 13 in s)
        assert minimized == [13]
        assert runs > 0

    def test_keeps_a_conjunction_of_culprits(self):
        items = list(range(30))
        minimized, _ = ddmin(items, lambda s: 4 in s and 17 in s)
        assert minimized == [4, 17]

    def test_preserves_item_order(self):
        minimized, _ = ddmin(list(range(10)),
                             lambda s: 7 in s and 2 in s)
        assert minimized == [2, 7]

    def test_collapses_to_empty_when_failure_is_unconditional(self):
        minimized, _ = ddmin(list(range(8)), lambda s: True)
        assert minimized == []

    def test_respects_max_runs(self):
        calls = []

        def prop(s):
            calls.append(1)
            return 5 in s

        ddmin(list(range(100)), prop, max_runs=7)
        assert len(calls) <= 7


# ----------------------------------------------------------------------
# illegal scenario: caught, shrunk, replayed
# ----------------------------------------------------------------------

def _first_failing_illegal_case(designs=(FenceDesign.S_PLUS,),
                                sanitize="strict"):
    for design in designs:
        for seed in range(1, 10):
            case = run_chaos_case("illegal_drop", design, seed,
                                  sanitize=sanitize)
            if case.failed:
                return case
    pytest.fail("illegal_drop never tripped the oracles")


def test_illegal_drop_is_caught():
    caught = sum(
        run_chaos_case("illegal_drop", FenceDesign.S_PLUS, seed).failed
        for seed in range(1, 11)
    )
    # dropped messages hang the protocol almost always at these rates
    assert caught >= 8


def test_illegal_drop_is_caught_by_the_sanitizer_at_first_violation():
    # the default (strict) sanitizer classifies the dropped message at
    # the first sampling tick that sees an undeliverable event — long
    # before the watchdog's no-progress timeout would fire
    case = _first_failing_illegal_case()
    assert case.sanitizer is not None
    assert any(v.startswith("sanitizer") for v in case.violations)
    assert "event-horizon" in case.sanitizer


def test_illegal_drop_without_sanitizer_reproduces_the_late_deadlock():
    # sanitize="off" preserves the legacy behaviour: the failure only
    # surfaces when the watchdog times the hung run out, much later
    strict = _first_failing_illegal_case()
    off = run_chaos_case("illegal_drop", FenceDesign(strict.design),
                         strict.seed, sanitize="off")
    assert off.failed
    assert any(v.startswith(("deadlock", "livelock"))
               for v in off.violations)
    assert off.sanitizer is None
    assert strict.cycles < off.cycles


def test_shrink_finds_a_minimal_injection_subset():
    case = _first_failing_illegal_case()
    shrunk = shrink_failing_case(case)
    assert shrunk.shrunk is not None
    assert 1 <= len(shrunk.shrunk) < 8  # well under the drop budget
    assert all(site == "noc_drop" for site, _n in shrunk.shrunk)
    assert shrunk.shrink_runs >= 1


def test_shrunk_subset_still_reproduces_the_failure():
    from repro.faults import FaultInjector, make_plan
    from repro.faults.chaos import _case_violations, _execute

    case = shrink_failing_case(_first_failing_illegal_case())
    plan = make_plan(case.scenario, case.seed)
    # replay under the same oracle set the case was detected with: a
    # minimal drop subset may not deadlock, but the sanitizer still
    # flags the undeliverable message
    run, injector = _execute(plan, FenceDesign(case.design), case.seed,
                             allowed=case.shrunk, sanitize=case.sanitize)
    assert _case_violations(run, plan)
    assert set(injector.log) <= set(case.shrunk)


def test_matrix_separates_legal_failures_from_caught_illegal():
    report = run_chaos_matrix(
        ["noc_jitter", "illegal_drop"],
        [FenceDesign.S_PLUS],
        seeds=range(1, 6),
    )
    assert report["total_cases"] == 10
    assert report["failed_legal"] == 0
    assert report["caught_illegal"] >= 4


# ----------------------------------------------------------------------
# journal / resume
# ----------------------------------------------------------------------

def test_matrix_journal_resume_skips_done_cases(tmp_path):
    journal = str(tmp_path / "chaos.jsonl")
    kwargs = dict(
        scenarios=["noc_jitter", "dir_nack"],
        designs=[FenceDesign.S_PLUS, FenceDesign.W_PLUS],
        seeds=range(1, 4),
    )
    full = run_chaos_matrix(journal=journal, **kwargs)
    assert len(open(journal).readlines()) == full["total_cases"]

    # truncate the journal to half, as if the sweep died mid-way
    lines = open(journal).readlines()
    with open(journal, "w") as fh:
        fh.writelines(lines[: len(lines) // 2])

    executed = []
    resumed = run_chaos_matrix(
        journal=journal, resume=True,
        progress=lambda case: executed.append(case), **kwargs
    )
    # only the missing half re-ran, and the report is identical
    assert len(executed) == full["total_cases"] - len(lines) // 2
    assert resumed["cases"] == full["cases"]


def test_matrix_resume_tolerates_a_torn_journal_tail(tmp_path):
    journal = str(tmp_path / "chaos.jsonl")
    kwargs = dict(scenarios=["noc_jitter"], designs=[FenceDesign.S_PLUS],
                  seeds=range(1, 4))
    full = run_chaos_matrix(journal=journal, **kwargs)
    with open(journal, "a") as fh:
        fh.write('{"scenario": "noc_jitter", "des')  # torn write
    resumed = run_chaos_matrix(journal=journal, resume=True, **kwargs)
    assert resumed["cases"] == full["cases"]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def test_cli_chaos_green_path(tmp_path, capsys):
    out = str(tmp_path / "report.json")
    rc = cli_main([
        "chaos", "--scenarios", "noc_jitter", "--designs", "S+,W+",
        "--seeds", "3", "--out", out,
    ])
    assert rc == 0
    report = json.load(open(out))
    assert report["total_cases"] == 6
    assert report["failed_legal"] == 0
    assert "ok" in capsys.readouterr().out


def test_cli_chaos_shrink_flags_illegal_scenario(tmp_path, capsys):
    out = str(tmp_path / "report.json")
    rc = cli_main([
        "chaos", "--scenarios", "illegal_drop", "--designs", "S+",
        "--seeds", "3", "--shrink", "--out", out,
    ])
    # catching the deliberately broken scenario is the harness working:
    # exit 1 is reserved for legal failures and *missed* illegal cases
    assert rc == 0
    report = json.load(open(out))
    assert report["caught_illegal"] >= 1
    shrunk = [c for c in report["cases"] if c["shrunk"] is not None]
    assert shrunk and all(len(c["shrunk"]) >= 1 for c in shrunk)
    assert "shrunk to" in capsys.readouterr().out


def test_cli_chaos_rejects_unknown_scenario(capsys):
    rc = cli_main(["chaos", "--scenarios", "nope"])
    assert rc == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_failing_case_writes_attribution_postmortem(tmp_path):
    """With a diag_dir, a failing chaos case gets a cycle-attribution
    postmortem next to its diagnostics — where the cycles went, with
    the conservation check still holding on the aborted run."""
    import json as _json

    diag = str(tmp_path / "diag")
    case = run_chaos_case("illegal_drop", FenceDesign.W_PLUS, 3,
                          diag_dir=diag, sanitize="strict")
    assert case.failed
    assert case.attrib_path and case.attrib_path.startswith(diag)
    report = _json.load(open(case.attrib_path))
    assert report["schema"] == "repro.profile/1"
    assert report["conservation"]["ok"]
    prov = report["provenance"]
    assert prov["fault_scenario"] == "illegal_drop"
    assert prov["design"] == "W+"


def test_passing_case_writes_no_attribution_postmortem(tmp_path):
    diag = str(tmp_path / "diag")
    case = run_chaos_case("noc_jitter", FenceDesign.S_PLUS, 3,
                          diag_dir=diag)
    assert not case.failed
    assert case.attrib_path is None
