"""Graceful degradation: the W+ recovery-storm monitor and the
watchdog's post-mortem diagnostics."""

import json
import os

import pytest

from repro.common.errors import DeadlockError
from repro.common.params import FenceDesign, FenceFlavour, FenceRole
from repro.faults import FaultInjector, make_plan
from repro.sim.machine import Machine

from tests.support import tiny_params
from tests.unit.test_watchdog import _all_wf_deadlock_machine

STORM = dict(wplus_storm_k=3, wplus_storm_window_cycles=1_000,
             wplus_storm_cooldown_cycles=5_000)


def _wplus_machine(**over):
    return Machine(tiny_params(design=FenceDesign.W_PLUS, num_cores=2,
                               **over))


# ----------------------------------------------------------------------
# storm monitor unit behaviour (driven directly through the policy)
# ----------------------------------------------------------------------

def test_k_recoveries_in_window_demote_wf_to_sf():
    m = _wplus_machine(**STORM)
    pol = m.cores[0].policy
    for t in (100, 200, 300):
        m.queue.schedule(t, pol.on_recovery, "test.recovery")
    m.queue.run(until=400)
    assert m.stats.storm_demotions[0] == 1
    assert m.stats.storm_demotions[1] == 0  # per-core, not global
    assert pol.flavour(FenceRole.CRITICAL) is FenceFlavour.SF


def test_recoveries_outside_window_do_not_demote():
    m = _wplus_machine(**STORM)
    pol = m.cores[0].policy
    for t in (100, 1_500, 3_000):  # spaced wider than the window
        m.queue.schedule(t, pol.on_recovery, "test.recovery")
    m.queue.run(until=4_000)
    assert m.stats.storm_demotions[0] == 0
    assert pol.flavour(FenceRole.CRITICAL) is FenceFlavour.WF


def test_demotion_expires_after_cooldown():
    m = _wplus_machine(**STORM)
    pol = m.cores[0].policy
    for t in (100, 200, 300):
        m.queue.schedule(t, pol.on_recovery, "test.recovery")
    # an idle tick past the cooldown advances the queue clock there
    end = 300 + STORM["wplus_storm_cooldown_cycles"] + 100
    m.queue.schedule(end, lambda: None, "test.tick")
    m.queue.run(until=end + 1)
    # the queue clock is now past demoted_until: wfs are wfs again
    assert pol.flavour(FenceRole.CRITICAL) is FenceFlavour.WF
    assert m.stats.storm_demotions[0] == 1


def test_monitor_off_by_default():
    m = _wplus_machine()  # wplus_storm_k defaults to 0
    pol = m.cores[0].policy
    for t in (100, 110, 120, 130):
        m.queue.schedule(t, pol.on_recovery, "test.recovery")
    m.queue.run(until=200)
    assert m.stats.storm_demotions == [0, 0]
    assert pol.flavour(FenceRole.CRITICAL) is FenceFlavour.WF


# ----------------------------------------------------------------------
# storm monitor end to end
# ----------------------------------------------------------------------

def _storm_collision_machine():
    """The Fig. 3a all-wf collision with a hair-trigger storm monitor
    (demote after the very first recovery)."""
    import dataclasses

    m = _all_wf_deadlock_machine(recovery=True)
    # _all_wf_deadlock_machine pins its own params; graft the storm
    # knobs on (the monitor reads them per recovery, nothing is cached)
    params = dataclasses.replace(m.params, wplus_storm_k=1,
                                 wplus_storm_window_cycles=20_000,
                                 wplus_storm_cooldown_cycles=20_000)
    m.params = params
    for core in m.cores:
        core.params = params
    return m


def test_real_recovery_feeds_the_monitor_and_demotes():
    """The Fig. 3a collision with a hair-trigger monitor: the first
    rollback demotes, the re-executed fence runs as an sf, and the
    machine completes without thrashing."""
    m = _storm_collision_machine()
    result = m.run()
    assert result.completed
    assert m.stats.wplus_recoveries >= 1
    assert sum(m.stats.storm_demotions) >= 1


def test_baseline_run_records_no_demotions():
    m = _all_wf_deadlock_machine(recovery=True)
    result = m.run()
    assert result.completed
    assert m.stats.wplus_recoveries >= 1
    assert sum(m.stats.storm_demotions) == 0


def test_chaos_recovery_storm_scenario_demotes_somewhere():
    """The built-in recovery_storm scenario (storm monitor enabled via
    params_overrides) produces at least one demotion across seeds."""
    from repro.faults.chaos import run_chaos_case

    total = 0
    for seed in range(1, 40):
        case = run_chaos_case("recovery_storm", FenceDesign.W_PLUS, seed)
        assert not case.violations, case.violations
        total += case.storm_demotions
    assert total >= 1


# ----------------------------------------------------------------------
# cutoff_in_recovery x storm demotion: stats stay consistent
# ----------------------------------------------------------------------

def test_cutoff_in_recovery_and_demotion_flags_are_consistent():
    """A budget cutoff inside the recovery drain of a storm-demoted
    core must leave BOTH markers visible and coherent in to_dict()."""
    full = _storm_collision_machine().run()
    assert full.completed
    flagged = False
    for budget in range(10, full.cycles + 1, 10):
        m = _storm_collision_machine()
        result = m.run(max_cycles=budget)
        d = m.stats.to_dict()
        assert d["cutoff_in_recovery"] == m.stats.cutoff_in_recovery
        assert d["storm_demotions"] == list(m.stats.storm_demotions)
        if m.stats.cutoff_in_recovery:
            assert not result.completed
            # the demotion happens at rollback start, before the drain
            # window the cutoff landed in — it must already be recorded
            assert sum(m.stats.storm_demotions) >= 1
            flagged = True
    assert flagged, "no budget landed inside the recovery drain"


# ----------------------------------------------------------------------
# watchdog post-mortem diagnostics
# ----------------------------------------------------------------------

def test_deadlock_error_carries_a_diagnostic_bundle():
    m = _all_wf_deadlock_machine(recovery=False)
    with pytest.raises(DeadlockError) as exc:
        m.run()
    diag = exc.value.diagnostics
    assert diag is not None
    assert sorted(diag["blocked_cores"]) == [0, 1]
    assert diag["design"] == "W+"
    assert diag["cycle"] == m.queue.now
    by_core = {c["core"]: c for c in diag["cores"]}
    for cid in (0, 1):
        assert by_core[cid]["blocked"]
        # the collision leaves each core a bouncing store and a BS line
        assert any(e["bouncing"] for e in by_core[cid]["wb"])
        assert by_core[cid]["bs_lines"]
        assert by_core[cid]["pending_fences"]
    # the bounce-retry timers of the deadlocked stores are in flight
    assert any("store_retry" in e["label"]
               for e in diag["in_flight_events"])
    assert exc.value.diagnostics_path is None  # no diag_dir configured


def test_diag_dir_writes_a_json_artifact(tmp_path):
    m = _all_wf_deadlock_machine(recovery=False)
    m.diag_dir = str(tmp_path / "diag")
    with pytest.raises(DeadlockError) as exc:
        m.run()
    path = exc.value.diagnostics_path
    assert path is not None and os.path.exists(path)
    on_disk = json.load(open(path))
    assert on_disk["blocked_cores"] == list(exc.value.blocked_cores)
    assert on_disk["cores"] == exc.value.diagnostics["cores"]


def test_bundle_includes_trace_tail_and_fault_plan(tmp_path):
    from repro.obs.tracer import Tracer

    m = _all_wf_deadlock_machine(recovery=False)
    m.attach_tracer(Tracer())
    m.attach_faults(FaultInjector(make_plan("noc_jitter", 3)))
    with pytest.raises(DeadlockError) as exc:
        m.run()
    diag = exc.value.diagnostics
    assert diag["trace_tail"], "tracer attached but no tail captured"
    assert diag["faults"]["plan"]["scenario"] == "noc_jitter"
    assert "consulted" in diag["faults"]["summary"]


def test_no_artifact_written_without_diag_dir(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # any stray writes would land here
    m = _all_wf_deadlock_machine(recovery=False)
    with pytest.raises(DeadlockError):
        m.run()
    assert os.listdir(tmp_path) == []
