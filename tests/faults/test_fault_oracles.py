"""The chaos acceptance sweep and the fault-free bit-identity contract.

Every *legal* scenario is a protocol-legal perturbation: the SC,
forward-progress and bounded-recovery oracles must hold for all five
paper designs across many seeds.  And an attached injector whose plan
never fires must leave the machine bit-identical to one with no
injector at all (the golden-trace contract).
"""

import pytest

from repro.common.params import FenceDesign
from repro.faults import FaultInjector, FaultPlan, LEGAL_SCENARIOS
from repro.faults.chaos import run_chaos_case, run_chaos_matrix
from repro.verify.generator import generate_program
from repro.verify.oracles import PAPER_DESIGNS, run_program
from repro.verify.perturb import SchedulePoint

ACCEPTANCE_SEEDS = range(1, 21)


@pytest.mark.parametrize("scenario", LEGAL_SCENARIOS)
@pytest.mark.parametrize("design", PAPER_DESIGNS,
                         ids=[d.value for d in PAPER_DESIGNS])
def test_legal_scenarios_hold_all_oracles_across_seeds(scenario, design):
    """Acceptance: scenario x design across >= 20 seeds, zero violations."""
    for seed in ACCEPTANCE_SEEDS:
        case = run_chaos_case(scenario, design, seed)
        assert not case.violations, (
            f"{scenario}/{design.value}/seed={seed}: {case.violations}"
        )


def test_every_legal_scenario_actually_injects_somewhere():
    """Rates are high enough that each scenario's sites fire across the
    sweep — an inert scenario would vacuously pass the oracles."""
    report = run_chaos_matrix(LEGAL_SCENARIOS, PAPER_DESIGNS,
                              seeds=ACCEPTANCE_SEEDS)
    assert report["failed_legal"] == 0
    fired_by_scenario = {}
    perturbing = set()
    for case in report["cases"]:
        fired = sum(case["faults"]["fired"].values())
        fired_by_scenario[case["scenario"]] = (
            fired_by_scenario.get(case["scenario"], 0) + fired
        )
        if case["recoveries"] or case["bounces"]:
            perturbing.add(case["scenario"])
    for scenario in ("noc_jitter", "dir_nack", "bounce_storm",
                     "recovery_storm", "chaos_combo"):
        assert fired_by_scenario[scenario] > 0, scenario
    # the timeout scenarios perturb W+ behaviour without a fired site
    assert "timeout_shrink" in perturbing
    assert "timeout_inflate" in perturbing


def _observed(seed, design, faults=None):
    program = generate_program(seed)
    run = run_program(program, design, point=SchedulePoint(seed=seed),
                      faults=faults)
    return run


@pytest.mark.parametrize("design", PAPER_DESIGNS,
                         ids=[d.value for d in PAPER_DESIGNS])
def test_zero_rate_injector_is_bit_identical_to_none(design):
    """A wired injector with nothing to inject must not move a single
    cycle: the hook sites only branch on fired decisions."""
    for seed in (3, 11):
        bare = _observed(seed, design)
        inert = _observed(
            seed, design,
            faults=FaultInjector(FaultPlan(scenario="inert", seed=seed)),
        )
        assert inert.cycles == bare.cycles
        assert inert.observed == bare.observed
        assert inert.recoveries == bare.recoveries
        assert inert.bounces == bare.bounces


def test_fault_runs_replay_exactly():
    """(scenario, seed) fully determines a chaos run — byte-equal
    outcome dicts on repeat."""
    a = run_chaos_case("chaos_combo", FenceDesign.W_PLUS, 13)
    b = run_chaos_case("chaos_combo", FenceDesign.W_PLUS, 13)
    assert a.to_dict() == b.to_dict()


def test_bounded_recovery_oracle_trips():
    """A plan with a tiny recovery bound flags even a healthy W+ run
    that recovered once — the oracle is actually wired in."""
    from repro.faults.chaos import _case_violations
    from repro.faults.plan import make_plan

    import dataclasses

    plan = dataclasses.replace(make_plan("recovery_storm", 1),
                               recovery_bound=0)
    for seed in range(1, 40):
        inj = FaultInjector(plan)
        run = _observed(seed, FenceDesign.W_PLUS, faults=inj)
        if run.recoveries > 0:
            violations = _case_violations(run, plan)
            assert any("unbounded-recovery" in v for v in violations)
            return
    pytest.fail("no seed produced a W+ recovery under recovery_storm")
