"""FaultInjector: decision determinism, budgets, allow-list replay."""

from repro.faults.injector import (
    SITE_BS_AMP,
    SITE_DIR_NACK,
    SITE_NOC_DELAY,
    SITE_NOC_DROP,
    FaultInjector,
)
from repro.faults.plan import DROP_CYCLES, FaultPlan, make_plan


def _drive(inj, n=200):
    """Consult every hook site *n* times with varied arguments."""
    for i in range(n):
        inj.noc_perturb(i % 4, (i + 1) % 4, "GetX")
        inj.dir_nack(i % 2, 64 * i, i % 4, "Order")
        inj.bs_amplify(i % 4, 64 * i)


def test_same_seed_same_decisions():
    a = FaultInjector(make_plan("chaos_combo", 9))
    b = FaultInjector(make_plan("chaos_combo", 9))
    _drive(a)
    _drive(b)
    assert a.log == b.log
    assert a.log  # the scenario actually fired something
    assert a.counts == b.counts


def test_different_seeds_diverge():
    a = FaultInjector(make_plan("chaos_combo", 1))
    b = FaultInjector(make_plan("chaos_combo", 2))
    _drive(a)
    _drive(b)
    assert a.log != b.log


def test_decisions_ignore_call_arguments():
    """Identity is (site, n): the same consultation sequence fires the
    same faults no matter what src/dst/line values flow past."""
    a = FaultInjector(make_plan("noc_jitter", 5))
    b = FaultInjector(make_plan("noc_jitter", 5))
    for i in range(100):
        a.noc_perturb(0, 1, "GetS")
        b.noc_perturb(i % 3, 3 - i % 3, "PutM")
    assert a.log == b.log


def test_allowed_subset_fires_only_that_subset():
    full = FaultInjector(make_plan("chaos_combo", 9))
    _drive(full)
    assert len(full.log) >= 4
    subset = full.log[::2]
    replay = FaultInjector(make_plan("chaos_combo", 9), allowed=subset)
    _drive(replay)
    assert replay.log == subset
    # counters advance identically whether or not faults fired
    assert replay.counts == full.counts


def test_empty_allowlist_fires_nothing_but_counts_advance():
    inj = FaultInjector(make_plan("chaos_combo", 9), allowed=[])
    _drive(inj)
    assert inj.log == []
    assert sum(inj.counts.values()) > 0


def test_budgets_cap_fired_injections():
    plan = FaultPlan(scenario="x", seed=3, dir_nack_rate=1.0,
                     dir_nack_budget=5, bs_amp_rate=1.0, bs_amp_budget=2)
    inj = FaultInjector(plan)
    _drive(inj, n=50)
    fired = inj.summary()["fired"]
    assert fired[SITE_DIR_NACK] == 5
    assert fired[SITE_BS_AMP] == 2


def test_drop_returns_drop_cycles_and_respects_budget():
    plan = FaultPlan(scenario="x", seed=3, noc_drop_rate=1.0,
                     noc_drop_budget=2)
    inj = FaultInjector(plan)
    extras = [inj.noc_perturb(0, 1, "GetX") for _ in range(10)]
    assert extras.count(DROP_CYCLES) == 2
    assert all(e in (0, DROP_CYCLES) for e in extras)


def test_delay_magnitude_is_bounded_and_nonzero():
    plan = FaultPlan(scenario="x", seed=3, noc_delay_rate=1.0,
                     noc_delay_max_cycles=17)
    inj = FaultInjector(plan)
    extras = [inj.noc_perturb(0, 1, "GetX") for _ in range(100)]
    assert all(1 <= e <= 17 for e in extras)
    assert len(set(extras)) > 1  # actual jitter, not a constant


def test_zero_rates_never_fire_or_count():
    inj = FaultInjector(FaultPlan(scenario="none", seed=1))
    _drive(inj)
    assert inj.log == []
    assert inj.summary()["fired"] == {}


def test_retry_backoff_caps_exponential_growth():
    plan = FaultPlan(scenario="x", seed=1, retry_backoff_base=8,
                     retry_backoff_cap=256)
    inj = FaultInjector(plan)
    delays = [inj.retry_backoff(r, default=20) for r in range(1, 12)]
    assert delays[0] == 8
    assert delays[:6] == [8, 16, 32, 64, 128, 256]
    assert all(d == 256 for d in delays[5:])


def test_retry_backoff_disabled_returns_default():
    inj = FaultInjector(FaultPlan(scenario="x", seed=1))
    assert inj.retry_backoff(7, default=20) == 20


def test_wplus_timeout_scaling():
    shrink = FaultInjector(FaultPlan(scenario="x", seed=1,
                                     wplus_timeout_scale=0.2))
    inflate = FaultInjector(FaultPlan(scenario="x", seed=1,
                                      wplus_timeout_scale=4.0))
    neutral = FaultInjector(FaultPlan(scenario="x", seed=1))
    assert shrink.wplus_timeout(1000) == 200
    assert inflate.wplus_timeout(1000) == 4000
    assert neutral.wplus_timeout(1000) == 1000
    assert shrink.wplus_timeout(1) == 1  # floor at one cycle


def test_summary_reports_fired_and_consulted():
    inj = FaultInjector(make_plan("noc_jitter", 9))
    for _ in range(50):
        inj.noc_perturb(0, 1, "GetX")
    s = inj.summary()
    assert s["consulted"][SITE_NOC_DELAY] == 50
    assert 0 < s["fired"][SITE_NOC_DELAY] < 50
