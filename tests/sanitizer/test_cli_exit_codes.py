"""The CLI exit-code contract (README "Exit codes" table).

0 = success, 1 = correctness-oracle failure, 2 = usage error,
3 = perf regression, 4 = simulated-machine deadlock, 5 = sanitizer
violation.  Scripts and CI branch on these, so each mapping is pinned
here — including the exception handlers in ``main()``, exercised by
monkeypatching a command handler to raise.
"""

import pytest

import repro.cli as cli
from repro.common.errors import DeadlockError, SanitizerError, SCViolationError


def run_cli(capsys, *argv):
    code = cli.main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


RUN_ARGS = ("run", "fib", "--design", "S+", "--cores", "2",
            "--scale", "0.06")


def test_clean_sanitized_run_exits_zero(capsys):
    code, out, _ = run_cli(capsys, *RUN_ARGS, "--sanitize", "strict")
    assert code == 0
    assert "completed" in out


def test_budget_cutoff_reports_degraded_but_exits_zero(capsys):
    # a budget cutoff is the governor *working*, not a failure
    code, out, _ = run_cli(capsys, *RUN_ARGS, "--max-events", "500")
    assert code == 0
    assert "degraded: event budget exhausted" in out


def test_usage_error_exits_two(capsys):
    code, _, _ = run_cli(capsys, "run", "nope", "--cores", "2")
    assert code == 2


def test_bad_sanitize_mode_is_a_usage_error():
    with pytest.raises(SystemExit) as excinfo:
        cli.main([*RUN_ARGS, "--sanitize", "paranoid"])
    assert excinfo.value.code == 2  # argparse choices


@pytest.mark.parametrize("exc,code,marker", [
    (SanitizerError("dir-owner-in-sharers at cycle 3000",
                    diagnostics_path="/tmp/x.json"), 5, "sanitizer"),
    (DeadlockError("no progress for 50000 cycles"), 4, "deadlock"),
    (SCViolationError("cycle of length 4"), 1, "SC violation"),
])
def test_escaped_simulator_errors_map_to_documented_codes(
        monkeypatch, capsys, exc, code, marker):
    def boom(args):
        raise exc

    monkeypatch.setitem(cli.__dict__, "cmd_run", boom)
    got = cli.main(list(RUN_ARGS))
    assert got == code
    err = capsys.readouterr().err
    assert marker in err
    if getattr(exc, "diagnostics_path", None):
        assert "diagnostics written to" in err


def test_warn_mode_violations_exit_five(monkeypatch, capsys):
    """``--sanitize warn`` finishes the run but still reports failure:
    a violating run must not look green to scripts."""
    from repro.sanitizer import Sanitizer

    orig = Sanitizer.check_all

    def poisoned(self):
        orig(self)
        if self.machine.queue.now > 0 and not self.violations:
            self._report("wb-fifo", core=0, detail="synthetic")

    monkeypatch.setattr(Sanitizer, "check_all", poisoned)
    code, out, err = run_cli(capsys, *RUN_ARGS, "--sanitize", "warn")
    assert code == 5
    assert "sanitizer" in err or "violation" in out


def test_chaos_catching_the_illegal_scenario_is_success(capsys, tmp_path):
    code, out, _ = run_cli(
        capsys, "chaos", "--scenarios", "illegal_drop", "--designs", "S+",
        "--seeds", "2", "--out", str(tmp_path / "r.json"),
    )
    assert code == 0  # caught_illegal is the harness working
    assert "caught" in out
