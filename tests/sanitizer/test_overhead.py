"""Sanitizer-overhead report plumbing (the timing itself runs in CI)."""

import pytest

from repro.sanitizer import overhead


def test_find_case_rejects_unknown_keys():
    with pytest.raises(SystemExit, match="unknown fig89 case"):
        overhead._find_case("nope:S+:c8:s0.5:r12345")


def test_run_once_reports_sanitizer_activity():
    from repro.workloads.base import load_all_workloads

    load_all_workloads()
    case = overhead._find_case(overhead.DEFAULT_CASE)
    plain = overhead._run_once(case, sanitized=False)
    warned = overhead._run_once(case, sanitized=True)
    assert plain["violations"] == 0 and plain["sweeps"] == 0
    assert warned["violations"] == 0
    assert warned["sweeps"] > 0 and warned["transition_checks"] > 0
    # the non-negotiable part of the report: warn mode is invisible
    assert warned["stats"] == plain["stats"]


def test_render_report_failure_and_success():
    report = {
        "case": overhead.DEFAULT_CASE,
        "baseline_median_s": 0.1,
        "off": {"min_s": 0.12, "reps": 3},
        "warn": {"min_s": 0.15, "reps": 3, "sweeps": 4,
                 "transition_checks": 900},
        "sanitizer_overhead_x": 1.25,
        "off_vs_baseline_x": 1.2,
        "failures": ["sanitizer perturbed the simulation: ..."],
        "ok": False,
    }
    text = overhead.render_report(report)
    assert "FAIL" in text and "verdict: FAILED" in text
    assert "1.25x" in text
    report["failures"] = []
    report["ok"] = True
    assert "verdict: OK" in overhead.render_report(report)


def test_missing_baseline_is_reported_not_fatal(tmp_path):
    report = overhead.run_check(
        baseline_path=str(tmp_path / "absent.json"),
        case_key=overhead.DEFAULT_CASE,
        reps=1,
    )
    assert report["baseline_median_s"] is None
    assert report["off_vs_baseline_x"] is None
    # the off-vs-warn comparison still ran and held
    assert report["ok"], report["failures"]
    assert report["sanitizer_overhead_x"] is not None
    assert "baseline : MISSING" in overhead.render_report(report)
