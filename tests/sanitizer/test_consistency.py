"""The sanitizer's zero-perturbation contract.

Mirrors ``tests/obs/test_trace_consistency.py``: attaching the
sanitizer (any mode) must leave the simulation **bit-identical** — the
checks are read-only (peeking cache lookups, no directory-entry
creation) and the sampling pump is stopped before the quiesce drain, so
``stats.to_dict()`` and the final cycle count cannot move.  This is
what lets CI run the whole tier-1 suite under ``REPRO_SANITIZE=strict``
against the same goldens.
"""

import pytest

from repro.common.params import FenceDesign
from repro.workloads.base import load_all_workloads, run_workload

DESIGNS = (
    FenceDesign.S_PLUS,
    FenceDesign.WS_PLUS,
    FenceDesign.SW_PLUS,
    FenceDesign.W_PLUS,
    FenceDesign.WEE,
)


def _run(design, **kw):
    load_all_workloads()
    return run_workload("fib", design, num_cores=4, scale=0.2,
                        seed=12345, **kw)


@pytest.mark.parametrize("design", DESIGNS, ids=lambda d: str(d))
def test_strict_sanitizer_does_not_perturb_the_simulation(design):
    plain = _run(design)
    sanitized = _run(design, sanitize="strict")
    assert sanitized.stats.to_dict() == plain.stats.to_dict()
    assert sanitized.cycles == plain.cycles
    assert sanitized.result.completed
    assert sanitized.result.sanitizer_violations == 0


def test_warn_mode_is_equally_invisible():
    plain = _run(FenceDesign.SW_PLUS)
    warned = _run(FenceDesign.SW_PLUS, sanitize="warn")
    assert warned.stats.to_dict() == plain.stats.to_dict()
    assert warned.cycles == plain.cycles


def test_sanitizer_env_does_not_change_the_goldens(monkeypatch):
    """The CI job sets ``REPRO_SANITIZE=strict`` globally; the env path
    must be exactly as invisible as the explicit argument."""
    plain = _run(FenceDesign.WEE)
    monkeypatch.setenv("REPRO_SANITIZE", "strict")
    sanitized = _run(FenceDesign.WEE)
    assert sanitized.stats.to_dict() == plain.stats.to_dict()
    assert sanitized.cycles == plain.cycles
