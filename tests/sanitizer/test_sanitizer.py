"""The runtime protocol sanitizer: detection, escalation, diagnostics.

Corruption is *seeded* here — a scheduled event reaches into live
machine state mid-run and breaks one structural invariant — so every
test pins down not just that the sanitizer fires but **when** (at the
first check after the violating cycle, not at a watchdog timeout) and
**what** it names (invariant, cycle, core, line).
"""

import json

import pytest

from repro.common.errors import SanitizerError
from repro.common.params import FenceDesign
from repro.sanitizer import MODES, Sanitizer
from repro.workloads.base import load_all_workloads, run_workload

from tests.support import tiny_params

CORRUPT_AT = 3_000


def _sanitized_machine(mode, design=FenceDesign.S_PLUS, interval=500,
                       seed=12345, num_cores=4):
    """A fib-workload machine with a sanitizer attached (not yet run)."""
    from repro.sim.machine import Machine
    from repro.workloads.base import REGISTRY

    load_all_workloads()
    workload = REGISTRY["fib"](scale=0.2)
    params = tiny_params(design, num_cores=num_cores, exact=False)
    machine = Machine(params, seed=seed)
    sanitizer = Sanitizer(mode=mode, interval=interval)
    machine.attach_sanitizer(sanitizer)
    workload.setup(machine)
    return machine, sanitizer, workload


def _seed_dir_corruption(machine, at=CORRUPT_AT):
    """At cycle *at*, add a line's owner to its own sharer list — the
    single-writer bookkeeping violation a protocol bug would produce."""
    corrupted = []

    def corrupt():
        for bank in machine.banks:
            for line, entry in bank.entries.items():
                if entry.owner is not None and line not in bank._busy:
                    entry.sharers.add(entry.owner)
                    corrupted.append((bank.bank_id, line, entry.owner))
                    return
        # no owned line yet: retry shortly (never observed for fib)
        machine.queue.schedule(100, corrupt, "corrupt")

    machine.queue.schedule(at, corrupt, "corrupt")
    return corrupted


def test_rejects_unknown_mode():
    with pytest.raises(ValueError, match="unknown sanitizer mode"):
        Sanitizer(mode="paranoid")
    assert "off" not in MODES  # off means "don't attach one"


def test_clean_run_is_silent_and_counts_its_checks():
    machine, sanitizer, workload = _sanitized_machine("strict")
    result = machine.run(max_cycles=workload.cycle_budget)
    assert result.completed
    assert sanitizer.violations == [] and sanitizer.dropped == 0
    assert result.sanitizer_violations == 0
    assert sanitizer.sweeps > 1  # sampling pump + final sweep
    assert sanitizer.transition_checks > 0  # fence/dir/wb hooks fired


def test_strict_catches_seeded_corruption_at_first_violating_cycle():
    machine, sanitizer, workload = _sanitized_machine("strict")
    corrupted = _seed_dir_corruption(machine)
    with pytest.raises(SanitizerError) as excinfo:
        machine.run(max_cycles=workload.cycle_budget)
    assert corrupted, "corruption event never found an owned line"
    violation = excinfo.value.violation
    assert violation["invariant"] == "dir-owner-in-sharers"
    # caught at the first check after the corrupting cycle: within one
    # sampling interval, not at a much later deadlock/watchdog horizon
    assert CORRUPT_AT <= violation["cycle"] <= CORRUPT_AT + sanitizer.interval
    bank_id, line, owner = corrupted[0]
    assert violation["line"] == line
    assert violation["core"] == owner
    message = str(excinfo.value)
    assert "dir-owner-in-sharers" in message
    assert f"cycle {violation['cycle']}" in message
    assert f"line {line:#x}" in message


def test_warn_mode_records_the_violation_and_finishes_the_run(capsys):
    machine, sanitizer, workload = _sanitized_machine("warn")
    _seed_dir_corruption(machine)
    result = machine.run(max_cycles=workload.cycle_budget)
    assert result.completed and not result.degraded
    assert result.sanitizer_violations >= 1
    assert sanitizer.first_violation["invariant"] == "dir-owner-in-sharers"
    # only the first violation is printed; the rest just accumulate
    err = capsys.readouterr().err
    assert err.count("sanitizer: dir-owner-in-sharers") == 1


def test_degrade_mode_stands_down_and_marks_the_result():
    machine, sanitizer, workload = _sanitized_machine("degrade")
    _seed_dir_corruption(machine)
    result = machine.run(max_cycles=workload.cycle_budget)
    assert result.completed  # the simulation itself keeps going
    assert result.degraded
    assert "stood down" in result.degraded_reason
    assert "dir-owner-in-sharers" in result.degraded_reason
    assert sanitizer.degraded
    # stood down means exactly one violation was recorded, then silence
    assert len(sanitizer.violations) == 1
    sweeps_at_stop = sanitizer.sweeps
    sanitizer.check_all()  # no-op once degraded
    assert sanitizer.sweeps == sweeps_at_stop


def test_first_violation_writes_a_watchdog_format_bundle(tmp_path):
    machine, sanitizer, workload = _sanitized_machine("strict")
    machine.diag_dir = str(tmp_path)
    _seed_dir_corruption(machine)
    with pytest.raises(SanitizerError) as excinfo:
        machine.run(max_cycles=workload.cycle_budget)
    path = excinfo.value.diagnostics_path
    assert path is not None and path.endswith(".json")
    assert "sanitizer_S+" in path
    bundle = json.load(open(path))
    # the watchdog post-mortem keys (PR 4 tooling reads these)...
    for key in ("cycle", "design", "num_cores", "cores",
                "in_flight_events"):
        assert key in bundle
    # ...plus the violation record itself
    assert bundle["violation"]["invariant"] == "dir-owner-in-sharers"
    assert bundle == excinfo.value.diagnostics


def test_event_horizon_flags_an_undeliverable_event():
    machine, sanitizer, _ = _sanitized_machine("warn")
    machine.queue.schedule(2_000_000, lambda: None, "lost_putm")
    sanitizer.check_all()
    first = sanitizer.first_violation
    assert first["invariant"] == "event-horizon"
    assert "lost_putm" in first["detail"]
    assert "undeliverable" in first["detail"]


def test_queue_time_monotonicity_is_checked():
    machine, sanitizer, _ = _sanitized_machine("warn")
    # plant a behind-the-clock ghost via the backend-portable hook (the
    # queue itself would reject a negative delay)
    machine.queue.unsafe_schedule_at(-5, lambda: None, "ghost")
    sanitizer.check_all()
    assert sanitizer.first_violation["invariant"] == "queue-time-monotonic"


def test_wb_fifo_inversion_is_caught_on_push():
    machine, sanitizer, _ = _sanitized_machine("warn")
    core = machine.cores[0]
    a = core.wb.push(0x100, 1, 0x100)
    a.store_id += 10  # corrupt the id stream
    core.wb.push(0x140, 2, 0x140)  # push-hook sees the inversion
    assert sanitizer.first_violation["invariant"] == "wb-fifo"
    assert sanitizer.first_violation["core"] == 0


def test_bs_grain_mismatch_names_the_design_contract():
    machine, sanitizer, _ = _sanitized_machine("warn")
    machine.cores[1].bs.fine_grain = True  # word-granularity BS on S+
    sanitizer.check_all()
    first = sanitizer.first_violation
    assert first["invariant"] == "bs-grain-mismatch"
    assert first["core"] == 1
    assert "SW+ only" in first["detail"]


def test_violation_cap_counts_overflow_instead_of_storing_it():
    machine, sanitizer, workload = _sanitized_machine("warn")
    sanitizer.max_violations = 2
    for _ in range(5):
        sanitizer._report("wb-fifo", core=0, detail="synthetic")
    assert len(sanitizer.violations) == 2
    assert sanitizer.dropped == 3
    result = machine.run(max_cycles=workload.cycle_budget)
    assert result.sanitizer_violations == 5  # cap never loses the count


def test_final_check_sweeps_the_quiesced_machine():
    # an interval longer than the whole run: the only sweep is the
    # closing one after the quiesce drain
    machine, sanitizer, workload = _sanitized_machine(
        "strict", interval=10**9)
    result = machine.run(max_cycles=workload.cycle_budget)
    assert result.completed
    assert sanitizer.sweeps == 1


def test_watchdog_and_pumps_stop_when_the_workload_raises():
    """Regression: an exception inside the run loop must not leak a
    live watchdog or sanitizer pump into the next run (try/finally in
    Machine.run)."""
    from repro.core import isa as ops
    from repro.sim.machine import Machine

    machine = Machine(tiny_params(num_cores=2), seed=7)
    sanitizer = Sanitizer(mode="warn", interval=100)
    machine.attach_sanitizer(sanitizer)

    def bad_thread(ctx):
        yield ops.Compute(200)
        raise RuntimeError("workload bug")

    machine.spawn(bad_thread)
    with pytest.raises(RuntimeError, match="workload bug"):
        machine.run(max_cycles=10_000)
    assert machine._watchdog._event is None
    assert sanitizer._event is None


@pytest.mark.parametrize("mode", ["warn", "strict"])
def test_run_workload_sanitize_plumbs_through(mode):
    load_all_workloads()
    run = run_workload("fib", FenceDesign.WS_PLUS, num_cores=2,
                       scale=0.1, seed=3, sanitize=mode)
    assert run.result.completed
    assert run.result.sanitizer_violations == 0


def test_run_workload_reads_the_sanitize_env(monkeypatch):
    load_all_workloads()
    seen = {}

    class Probe(Sanitizer):
        def __init__(self, mode="strict", **kw):
            seen["mode"] = mode
            super().__init__(mode=mode, **kw)

    monkeypatch.setenv("REPRO_SANITIZE", "warn")
    monkeypatch.setattr("repro.sanitizer.Sanitizer", Probe)
    run = run_workload("fib", FenceDesign.S_PLUS, num_cores=2,
                       scale=0.1, seed=3)
    assert seen["mode"] == "warn"
    assert run.result.completed
