"""Sanitizer suite rides the kernel-backend axis.

The sanitizer walks the queue through the backend-portable protocol
(peek_time / pending_events / unsafe_schedule_at), so every detection,
escalation and diagnostics test must behave identically on both
kernels; the autouse shim routes the suite through the backend(s)
selected with ``--kernel-backend``.
"""

import pytest


@pytest.fixture(autouse=True)
def _kernel_backend(kernel):
    """Autouse: pins REPRO_KERNEL for every sanitizer test."""
    return kernel
