"""Resource-governed runs: budgets cut off gracefully, never hang.

A breached budget must unwind through the normal stop path — stats
finalized, watchdog stopped, a ``degraded`` result with the reason —
so a runaway case in a big matrix costs its budget and nothing more.
"""

import pytest

from repro.common.params import FenceDesign
from repro.sim.governor import RunBudget
from repro.workloads.base import load_all_workloads, run_workload


def _run(budget=None, **kw):
    load_all_workloads()
    kw.setdefault("num_cores", 4)
    kw.setdefault("scale", 0.5)
    kw.setdefault("seed", 12345)
    return run_workload("fib", FenceDesign.S_PLUS, budget=budget, **kw)


def test_event_budget_cuts_off_into_a_degraded_result():
    run = _run(budget=RunBudget(max_events=5_000))
    result = run.result
    assert result.degraded
    assert not result.completed
    assert "event budget exhausted" in result.degraded_reason
    assert result.cycles > 0  # it ran, then stopped — no hard kill


def test_wall_clock_budget_degrades_immediately_at_zero():
    result = _run(budget=RunBudget(max_wall_secs=0.0)).result
    assert result.degraded
    assert "wall" in result.degraded_reason


def test_generous_budget_changes_nothing():
    plain = _run()
    governed = _run(budget=RunBudget(max_events=100_000_000,
                                     max_wall_secs=3_600.0))
    assert governed.result.completed and not governed.result.degraded
    assert governed.stats.to_dict() == plain.stats.to_dict()
    assert governed.cycles == plain.cycles


def test_empty_budget_is_disabled():
    budget = RunBudget()
    assert not budget.enabled
    result = _run(budget=budget).result
    assert result.completed and not result.degraded


def test_budget_from_env(monkeypatch):
    for var in ("REPRO_MAX_WALL_SECS", "REPRO_MAX_EVENTS",
                "REPRO_MAX_RSS_MB"):
        monkeypatch.delenv(var, raising=False)
    assert RunBudget.from_env() is None
    monkeypatch.setenv("REPRO_MAX_EVENTS", "5000")
    monkeypatch.setenv("REPRO_MAX_WALL_SECS", "2.5")
    budget = RunBudget.from_env()
    assert budget.max_events == 5000
    assert budget.max_wall_secs == 2.5
    assert budget.enabled


def test_run_workload_inherits_the_env_budget(monkeypatch):
    monkeypatch.setenv("REPRO_MAX_EVENTS", "5000")
    result = _run().result  # budget=None -> RunBudget.from_env()
    assert result.degraded
    assert "event budget exhausted" in result.degraded_reason


def test_runner_journals_a_budget_cutoff_as_a_first_class_outcome(
        monkeypatch):
    """``run_matrix`` workers report degraded runs in the RunSummary
    (and thus the JSONL journal) instead of hanging or crashing."""
    from repro.eval.runner import _run_one

    monkeypatch.setenv("REPRO_MAX_EVENTS", "5000")
    summary = _run_one(("fib", "S_PLUS", 4, 0.5, 12345))
    assert summary.degraded
    assert "event budget exhausted" in summary.degraded_reason
    assert not summary.completed
    d = summary.to_dict() if hasattr(summary, "to_dict") else vars(summary)
    assert d["degraded"] is True  # journal row carries the outcome


def test_cut_off_run_can_be_rerun_unbudgeted():
    """A budget breach leaves no residue: the same coordinates re-run
    without a budget still complete and match an undisturbed run."""
    _run(budget=RunBudget(max_events=5_000))
    rerun = _run()
    assert rerun.result.completed
    assert rerun.stats.to_dict() == _run().stats.to_dict()
