"""The ``repro profile`` CLI: report schema, renderers, exit codes."""

import json

import pytest

from repro import cli
from repro.common.params import FenceDesign
from repro.obs.profile import (
    PROFILE_SCHEMA,
    build_report,
    collapsed_stacks,
    profile_run,
    render_diff_text,
    render_text,
    report_from_trace,
)


@pytest.fixture(scope="module")
def run_report():
    return profile_run("fib", FenceDesign.W_PLUS, num_cores=4, scale=0.2,
                       seed=12345)


def test_profile_run_report_schema(run_report):
    report = run_report
    assert report["schema"] == PROFILE_SCHEMA
    assert report["source"] == "run"
    assert report["conservation"]["ok"]
    assert report["conservation"]["errors"] == []
    prov = report["provenance"]
    assert prov["workload"] == "fib" and prov["design"] == "W+"
    tree = report["tree"]
    assert tree["num_cores"] == 4 and len(tree["cores"]) == 4
    assert report["hot_lines"], "hot-line metadata missing"
    assert len(report["wb_peak"]) == 4


def test_render_text(run_report):
    text = render_text(run_report)
    assert "profile: fib:W+" in text
    assert "conservation: OK" in text
    assert "per-core" in text


def test_collapsed_stacks_format(run_report):
    lines = collapsed_stacks(run_report["tree"])
    assert lines
    for line in lines:
        stack, _, count = line.rpartition(" ")
        assert int(count) > 0
        parts = stack.split(";")
        assert parts[0].startswith("core")
        assert not any(p == "total" for p in parts)
    # busy must be present for every core that did work
    assert any(line.startswith("core0;busy ") for line in lines)


def test_failed_conservation_is_reported():
    tree = profile_run("fib", FenceDesign.S_PLUS, num_cores=2,
                       scale=0.1, seed=1)["tree"]
    tree["cores"][0]["fence_stall"]["total"] += 1.0  # corrupt it
    report = build_report(tree, "run")
    assert not report["conservation"]["ok"]
    assert "FAILED" in render_text(report)


def test_from_trace_report_includes_analytics(tmp_path):
    from repro.obs import Observability
    from repro.obs.export import run_provenance, write_jsonl
    from repro.workloads.base import load_all_workloads, run_workload

    load_all_workloads()
    obs = Observability(attrib=True)
    run = run_workload("fib", FenceDesign.S_PLUS, num_cores=4, scale=0.2,
                       seed=12345, obs=obs)
    path = str(tmp_path / "t.jsonl")
    write_jsonl(path, obs.tracer, provenance=run_provenance(run))
    report = report_from_trace(path)
    assert report["source"] == "trace"
    assert report["conservation"]["ok"]
    assert "episodes" in report["analytics"]
    # the replayed tree equals the online tree of the same run
    assert report["tree"] == obs.attrib.tree(
        label=report["tree"]["label"])


# ---------------------------------------------------------------------------
# CLI end to end
# ---------------------------------------------------------------------------


ARGS = ["--cores", "2", "--scale", "0.1", "--seed", "1"]


def test_cli_run_json(tmp_path, capsys):
    out = str(tmp_path / "p.json")
    rc = cli.main(["profile", "run", "fib", "--design", "wplus",
                   "--format", "json", "--out", out] + ARGS)
    assert rc == 0
    with open(out) as fh:
        report = json.load(fh)
    assert report["schema"] == PROFILE_SCHEMA
    assert report["conservation"]["ok"]


def test_cli_run_collapsed(capsys):
    rc = cli.main(["profile", "run", "fib", "--format", "collapsed"] + ARGS)
    assert rc == 0
    out = capsys.readouterr().out.strip().splitlines()
    assert all(line.rsplit(" ", 1)[1].isdigit() for line in out)


def test_cli_diff_designs(tmp_path, capsys):
    out = str(tmp_path / "d.json")
    rc = cli.main(["profile", "diff", "splus", "wplus",
                   "--format", "json", "--out", out] + ARGS)
    assert rc == 0
    with open(out) as fh:
        diff = json.load(fh)
    assert diff["schema"] == "repro.attrib.diff/1"
    assert diff["base"]["design"] == "S+"
    assert diff["other"]["design"] == "W+"
    assert diff["rows"]


def test_cli_diff_accepts_report_files(tmp_path, capsys):
    a = str(tmp_path / "a.json")
    b = str(tmp_path / "b.json")
    assert cli.main(["profile", "run", "fib", "--design", "splus",
                     "--format", "json", "--out", a] + ARGS) == 0
    assert cli.main(["profile", "run", "fib", "--design", "wee",
                     "--format", "json", "--out", b] + ARGS) == 0
    rc = cli.main(["profile", "diff", a, b] + ARGS)
    assert rc == 0
    assert "attribution diff" in capsys.readouterr().out


def test_cli_from_trace(tmp_path, capsys):
    trace = str(tmp_path / "t.jsonl")
    rc = cli.main(["trace", "fib", "--design", "splus", "--cores", "2",
                   "--scale", "0.1", "--seed", "1", "--out", trace,
                   "--format", "jsonl"])
    assert rc == 0
    rc = cli.main(["profile", "from-trace", trace])
    assert rc == 0
    assert "conservation: OK" in capsys.readouterr().out


def test_cli_rejects_bad_trace(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"type": "meta"}\n')  # no provenance
    rc = cli.main(["profile", "from-trace", str(bad)])
    assert rc == 2
    assert "provenance" in capsys.readouterr().err


def test_render_diff_text_names_components(run_report):
    from repro.obs.attrib import diff_trees

    base = profile_run("fib", FenceDesign.S_PLUS, num_cores=4, scale=0.2,
                       seed=12345)
    diff = diff_trees(base["tree"], run_report["tree"])
    text = render_diff_text(diff)
    assert "fence_stall.sf." in text
