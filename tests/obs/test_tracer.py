"""Unit tests of the :class:`repro.obs.tracer.Tracer` record model."""

from repro.obs.tracer import (
    NULL_TRACER,
    TRACK_DIR_BASE,
    TRACK_NOC,
    TraceEvent,
    Tracer,
)


class FakeQueue:
    def __init__(self):
        self.now = 0


def make_tracer(**kw):
    tracer = Tracer(**kw)
    queue = FakeQueue()
    tracer.bind(queue)
    return tracer, queue


def test_null_tracer_is_none():
    # hot paths guard with `tracer is None`; the disabled tracer must
    # be that exact sentinel, not a null object
    assert NULL_TRACER is None


def test_span_open_then_close_records_duration():
    tracer, queue = make_tracer()
    tracer.sf_begin(0)
    (ev,) = tracer.spans("sf")
    assert ev.open and ev.dur is None
    queue.now = 40
    tracer.sf_end(0, extra=8)
    assert ev.dur == 48 and not ev.open


def test_wf_episode_lifecycle():
    tracer, queue = make_tracer()
    tracer.wf_retire(0, fence_id=1, pending_stores=3)
    queue.now = 25
    tracer.wf_complete(0, fence_id=1, bs_lines=2)
    (ev,) = tracer.spans("wf")
    assert ev.dur == 25
    assert ev.args["pending_stores"] == 3 and ev.args["bs_lines"] == 2


def test_wf_trivial_is_a_zero_length_span():
    tracer, _ = make_tracer()
    tracer.wf_trivial(0)
    (ev,) = tracer.spans("wf")
    assert ev.dur == 0 and ev.args["trivial"]


def test_wf_unwind_all_closes_everything_and_counts():
    tracer, queue = make_tracer()
    tracer.wf_retire(1, 1, 2)
    tracer.wf_retire(1, 2, 4)
    tracer.wf_retire(0, 9, 1)  # other core: untouched
    queue.now = 10
    assert tracer.wf_unwind_all(1) == 2
    unwound = [ev for ev in tracer.spans("wf")
               if ev.args.get("outcome") == "recovery"]
    assert len(unwound) == 2
    assert all(ev.dur == 10 for ev in unwound)
    assert tracer.spans("wf")[2].open  # core 0's fence still open


def test_bounce_chain_accumulates_retries():
    tracer, queue = make_tracer()
    tracer.store_bounce(0, store_id=7, word=64, line=64,
                        retries=1, ordered=False)
    queue.now = 30
    tracer.store_bounce(0, store_id=7, word=64, line=64,
                        retries=2, ordered=True)
    queue.now = 55
    tracer.store_chain_end(0, store_id=7)
    (chain,) = tracer.spans("bounce_chain")
    assert chain.ts == 0 and chain.dur == 55
    assert chain.args["retries"] == 2
    assert chain.args["ordered"] is True
    assert chain.args["outcome"] == "merged"


def test_recovery_span_and_timeout_instant():
    tracer, queue = make_tracer()
    tracer.timeout_armed(2, delay=100)
    queue.now = 100
    tracer.recovery_begin(2, fence_id=3, checkpoint=17,
                          dropped_stores=4, bs_cleared=2, fences_unwound=1)
    queue.now = 160
    tracer.recovery_end(2, extra=5)
    (rec,) = tracer.spans("recovery")
    assert rec.dur == 65
    assert rec.args["dropped_stores"] == 4
    assert tracer.count("wplus_timeout") == 1


def test_dir_txn_uses_bank_track():
    tracer, queue = make_tracer()
    tracer.dir_begin(bank=3, txn_id=11, kind="GetX", line=128, requester=1)
    queue.now = 12
    tracer.dir_end(bank=3, txn_id=11, reply="DataE")
    (ev,) = tracer.spans("dir_txn")
    assert ev.track == TRACK_DIR_BASE + 3
    assert ev.dur == 12 and ev.args["reply"] == "DataE"


def test_noc_span_duration_is_latency():
    tracer, _ = make_tracer()
    tracer.noc_msg(src=0, dst=2, kind="GetS", nbytes=8, lat=9, retry=False)
    (ev,) = tracer.spans("msg")
    assert ev.track == TRACK_NOC and ev.dur == 9
    assert "retry" not in ev.args


def test_finalize_closes_open_spans_as_incomplete():
    tracer, queue = make_tracer()
    tracer.wf_retire(0, 1, 2)
    tracer.sf_begin(1)
    tracer.dir_begin(0, 5, "GetX", 64, 0)
    queue.now = 77
    tracer.finalize()
    assert not any(ev.open for ev in tracer.events)
    assert all(ev.args["incomplete"] and ev.dur == 77
               for ev in tracer.events)


def test_max_events_drops_new_records_but_closes_open_spans():
    tracer, queue = make_tracer(max_events=1)
    tracer.sf_begin(0)           # stored (event #1)
    tracer.wf_retire(0, 1, 2)    # over the cap: dropped
    tracer.rmw_retry(0, 64)      # dropped
    queue.now = 20
    tracer.sf_end(0)             # still closes the stored span
    assert len(tracer.events) == 1
    assert tracer.dropped == 2
    assert tracer.events[0].dur == 20


def test_query_helpers_filter_by_name_and_cat():
    tracer, _ = make_tracer()
    tracer.dir_bounce(0, 64, 1)
    tracer.rmw_retry(1, 64)
    tracer.noc_msg(0, 1, "GetS", 8, 5, False)
    assert tracer.count("bounce") == 1
    assert len(tracer.instants(cat="bounce")) == 1    # rmw_retry
    assert len(tracer.instants("bounce", cat="dir")) == 1
    assert len(tracer.spans(cat="noc")) == 1


def test_to_dict_omits_empty_fields():
    ev = TraceEvent("i", 0, "x", "y", ts=5)
    d = ev.to_dict()
    assert "dur" not in d and "args" not in d
    assert d["ts"] == 5
