"""Cycle-attribution engine: conservation, online == offline replay,
and the zero-perturbation contract.

The two central claims of the profiler are pinned here:

* **conservation** — on every run, for every core, the fine-grained
  leaves sum *exactly* (``==``, not approximately) to the coarse
  three-bucket breakdown the simulator has always kept, and
  busy + fence + other + idle equals the run's cycles;
* **online == offline** — the accumulator tree built during the run
  and the tree replayed from the exported JSONL trace of the same run
  are equal dict-for-dict, which cross-checks the tracer's span
  arguments, the exporter round trip, and the interval arithmetic of
  the replay against the live accounting.
"""

import json
import os

import pytest

from repro.common.params import FenceDesign
from repro.obs import Observability
from repro.obs.analyze import load_jsonl, replay_attribution
from repro.obs.attrib import conservation_errors, diff_trees, flatten_node
from repro.obs.export import run_provenance, write_jsonl
from repro.workloads.base import load_all_workloads, run_workload

from tests.golden.cases import GOLDEN_DESIGNS, golden_path

ALL_DESIGNS = tuple(FenceDesign)  # the paper's five + l-mf + C-fence


def _profiled(design, workload="fib", trace=False, scale=0.2, **kw):
    load_all_workloads()
    obs = Observability(trace=trace, attrib=True)
    run = run_workload(workload, design, num_cores=4, scale=scale,
                       seed=12345, obs=obs, **kw)
    return run, obs


@pytest.mark.parametrize("design", ALL_DESIGNS, ids=lambda d: str(d))
@pytest.mark.parametrize("workload", ("fib", "Counter"))
def test_conservation_on_every_design(design, workload):
    run, obs = _profiled(design, workload)
    tree = obs.attrib.tree()
    assert conservation_errors(tree) == []
    # the tree's coarse buckets are the stats' coarse buckets
    t = run.stats.total_breakdown()
    machine = tree["machine"]
    assert machine["busy"] == t["busy"]
    assert machine["fence_stall"]["total"] == t["fence_stall"]
    assert machine["other_stall"]["total"] == t["other_stall"]


@pytest.mark.parametrize("design", ALL_DESIGNS, ids=lambda d: str(d))
@pytest.mark.parametrize("workload", ("fib", "Counter"))
def test_online_equals_offline_replay(design, workload, tmp_path):
    run, obs = _profiled(design, workload, trace=True)
    path = str(tmp_path / "trace.jsonl")
    write_jsonl(path, obs.tracer, obs.metrics,
                provenance=run_provenance(run))
    online = obs.attrib.tree(label="x")
    offline = replay_attribution(load_jsonl(path), label="x")
    assert online == offline


def test_machine_node_is_elementwise_core_sum():
    _, obs = _profiled(FenceDesign.WEE)
    tree = obs.attrib.tree()
    flat_cores = [flatten_node(node) for node in tree["cores"]]
    flat_machine = flatten_node(tree["machine"])
    for path, value in flat_machine.items():
        assert value == sum(f.get(path, 0.0) for f in flat_cores), path


@pytest.mark.parametrize("design", GOLDEN_DESIGNS, ids=lambda d: str(d))
def test_profiling_off_is_bit_identical(design):
    """Mirror of the tracing-off test: attaching the profiler must
    leave the simulated run bit-identical."""
    load_all_workloads()
    plain = run_workload("fib", design, num_cores=4, scale=0.2, seed=12345)
    profiled, _ = _profiled(design)
    assert profiled.stats.to_dict() == plain.stats.to_dict()
    assert profiled.cycles == plain.cycles


@pytest.mark.parametrize("design", GOLDEN_DESIGNS, ids=lambda d: str(d))
def test_profiled_run_still_matches_goldens(design):
    """A profiled run of the golden recipe reproduces the committed
    golden stats — profiling cannot shift the machine's timing."""
    path = golden_path(design)
    if not os.path.exists(path):  # pragma: no cover - goldens committed
        pytest.skip(f"no golden for {design}")
    with open(path) as fh:
        golden = json.load(fh)
    run, _ = _profiled(design, scale=0.25)
    assert run.stats.to_dict() == golden["fib"]["stats"]
    assert run.cycles == golden["fib"]["cycles"]


def test_cutoff_run_still_conserves():
    """A cycle-budget cutoff may leave negative idle (trailing
    serialization charge) but never breaks leaf-vs-bucket equality."""
    from repro.common.params import MachineParams
    from repro.obs import CycleAttribution
    from repro.sim.machine import Machine
    from repro.workloads.base import REGISTRY

    load_all_workloads()
    workload = REGISTRY["fib"](scale=0.2)
    params = MachineParams().with_cores(4).with_design(FenceDesign.S_PLUS)
    machine = Machine(params, seed=12345)
    attrib = CycleAttribution()
    machine.attach_attrib(attrib)
    workload.setup(machine)
    result = machine.run(max_cycles=800)
    assert not result.completed
    assert conservation_errors(attrib.tree()) == []


def test_diff_of_identical_trees_moves_nothing():
    _, obs = _profiled(FenceDesign.S_PLUS)
    tree = obs.attrib.tree(label="a")
    diff = diff_trees(tree, tree, label_base="a", label_other="a")
    assert diff["schema"] == "repro.attrib.diff/1"
    assert all(row["delta"] == 0 for row in diff["rows"])


def test_diff_names_moved_components():
    _, obs_s = _profiled(FenceDesign.S_PLUS)
    _, obs_w = _profiled(FenceDesign.W_PLUS)
    diff = diff_trees(obs_s.attrib.tree(), obs_w.attrib.tree())
    paths = [row["path"] for row in diff["rows"]]
    # S+ serializes every sf; W+ has no sf at all — the diff must name
    # the component that moved, not just the coarse bucket
    assert any(p.startswith("fence_stall.sf.") for p in paths)
    rows = {row["path"]: row for row in diff["rows"]}
    sf_row = rows["fence_stall.sf.serialize"]
    assert sf_row["base"] > 0 and sf_row["other"] == 0


def test_design_events_and_metadata_ride_outside_the_tree():
    run, obs = _profiled(FenceDesign.WEE, workload="Tree")
    tree = obs.attrib.tree()
    events = obs.attrib.design_events()
    # Wee's Table-4 accounting is visible as event counts...
    assert events.get("wee_demotions", 0) + events.get(
        "wee_conversions", 0) > 0
    # ...but never as tree keys (the tree is the conserved quantity)
    assert "wee_demotions" not in flatten_node(tree["machine"])
    assert obs.attrib.top_lines(), "L1 contention metadata missing"
