"""Trace analytics: loader round trip, provenance contract, tables,
top-K queries, and the replay preconditions."""

import pytest

from repro.common.params import FenceDesign
from repro.obs import Observability
from repro.obs.analyze import (
    AnalysisError,
    Table,
    TraceData,
    episode_latency_distribution,
    episode_table,
    load_jsonl,
    replay_attribution,
    top_lines,
    top_stores,
)
from repro.obs.export import (
    run_provenance,
    to_chrome_trace,
    write_jsonl,
)
from repro.workloads.base import load_all_workloads, run_workload


@pytest.fixture(scope="module")
def traced(tmp_path_factory):
    load_all_workloads()
    obs = Observability(metrics_interval=500, attrib=True)
    run = run_workload("Tree", FenceDesign.WS_PLUS, num_cores=4,
                       scale=0.2, seed=12345, obs=obs)
    path = str(tmp_path_factory.mktemp("trace") / "t.jsonl")
    write_jsonl(path, obs.tracer, obs.metrics,
                label="Tree:WS+", provenance=run_provenance(run))
    return run, obs, path


# ---------------------------------------------------------------------------
# loader round trip
# ---------------------------------------------------------------------------


def test_jsonl_round_trip_is_bit_identical(traced):
    run, obs, path = traced
    data = load_jsonl(path)
    original = obs.tracer.events
    assert len(data.events) == len(original)
    for orig, loaded in zip(original, data.events):
        assert loaded.ph == orig.ph
        assert loaded.track == orig.track
        assert loaded.name == orig.name
        assert loaded.cat == orig.cat
        assert loaded.ts == orig.ts
        assert loaded.dur == orig.dur
        assert loaded.args == orig.args
    # metrics samples survive too
    assert len(data.metrics) == len(obs.metrics.samples)


def test_float_charges_round_trip_exactly(traced):
    """mem/rmw stall charges are dyadic floats; JSON repr round-trip
    must preserve them bit-for-bit (the conservation proof leans on
    exact equality, not tolerance)."""
    _, obs, path = traced
    data = load_jsonl(path)
    orig = [ev.args["charge"] for ev in obs.tracer.events
            if ev.name in ("mem_stall", "rmw_stall") and ev.args]
    loaded = [ev.args["charge"] for ev in data.events
              if ev.name in ("mem_stall", "rmw_stall") and ev.args]
    assert orig and orig == loaded


def test_meta_header_carries_full_provenance(traced):
    run, _, path = traced
    prov = load_jsonl(path).provenance
    assert prov["workload"] == "Tree"
    assert prov["design"] == "WS+"
    assert prov["seed"] == 12345
    assert prov["cores"] == 4
    assert prov["scale"] == 0.2
    assert prov["kernel"] == run.kernel
    assert prov["sanitize"] == "off"
    assert prov["fault_scenario"] is None
    assert prov["degraded"] is False
    assert prov["degraded_reason"] is None


def test_chrome_other_data_carries_provenance(traced):
    run, obs, _ = traced
    trace = to_chrome_trace(obs.tracer, provenance=run_provenance(run))
    assert trace["otherData"]["provenance"]["design"] == "WS+"


def test_provenance_is_required(tmp_path):
    load_all_workloads()
    obs = Observability()
    run_workload("fib", FenceDesign.S_PLUS, num_cores=2, scale=0.1,
                 seed=1, obs=obs)
    path = str(tmp_path / "bare.jsonl")
    write_jsonl(path, obs.tracer)  # legacy export: no provenance
    data = load_jsonl(path)
    with pytest.raises(AnalysisError, match="provenance"):
        data.provenance
    with pytest.raises(AnalysisError, match="provenance"):
        replay_attribution(data)


def test_loader_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"type": "meta"}\nnot json\n')
    with pytest.raises(AnalysisError, match="bad JSON"):
        load_jsonl(str(bad))
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(AnalysisError, match="no meta header"):
        load_jsonl(str(empty))


# ---------------------------------------------------------------------------
# tables and analytics
# ---------------------------------------------------------------------------


def test_table_helpers():
    t = Table([{"a": 1, "b": "x"}, {"a": 3, "b": "y"}, {"a": 2, "b": "x"}])
    assert len(t.where(b="x")) == 2
    assert t.sum("a") == 6
    groups = t.groupby("b")
    assert sorted(groups) == ["x", "y"]
    assert len(groups["x"]) == 2
    assert t.percentile("a", 0) == 1
    assert t.percentile("a", 100) == 3
    assert t.percentile("a", 50) == 2
    assert Table([]).percentile("a", 50) is None
    assert t.top("a", 1).column("a") == [3]


def test_episode_table_and_latency_distribution(traced):
    _, obs, path = traced
    data = load_jsonl(path)
    table = episode_table(data)
    assert len(table.where(name="sf")) == len(data.spans("sf"))
    dist = episode_latency_distribution(data)
    assert "sf" in dist
    d = dist["sf"]
    assert d["count"] > 0
    assert d["p50"] <= d["p90"] <= d["p99"] <= d["max"]


def test_top_lines_and_top_stores(traced):
    _, _, path = traced
    data = load_jsonl(path)
    lines = top_lines(data, k=3)
    assert lines == sorted(lines, key=lambda r: -r["wait_cycles"])
    assert all(r["transactions"] > 0 for r in lines)
    stores = top_stores(data, k=5)
    assert stores == sorted(stores, key=lambda r: -r["dur"])
    # the Tree workload bounces under WS+, so chains exist
    assert stores and all(r["store_id"] for r in stores)


# ---------------------------------------------------------------------------
# replay preconditions
# ---------------------------------------------------------------------------


def _prov(cores=2):
    return {"design": "S+", "cores": cores}


def test_replay_requires_complete_trace():
    data = TraceData({"dropped": 7, "provenance": _prov()}, [], [])
    with pytest.raises(AnalysisError, match="dropped 7 events"):
        replay_attribution(data)


def test_replay_requires_core_summaries():
    data = TraceData({"dropped": 0, "provenance": _prov()}, [], [])
    with pytest.raises(AnalysisError, match="core_summary"):
        replay_attribution(data)


def test_replay_requires_design_and_cores():
    data = TraceData({"dropped": 0, "provenance": {"seed": 1}}, [], [])
    with pytest.raises(AnalysisError, match="design/cores"):
        replay_attribution(data)


def test_capped_trace_is_rejected(tmp_path):
    load_all_workloads()
    obs = Observability(max_events=50, attrib=True)
    run = run_workload("fib", FenceDesign.S_PLUS, num_cores=2, scale=0.1,
                       seed=1, obs=obs)
    assert obs.tracer.dropped > 0
    path = str(tmp_path / "capped.jsonl")
    write_jsonl(path, obs.tracer, provenance=run_provenance(run))
    with pytest.raises(AnalysisError, match="complete trace"):
        replay_attribution(load_jsonl(path))
