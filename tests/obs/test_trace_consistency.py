"""Trace <-> stats reconciliation: the tracer's consistency contract.

Every hook fires at the same site that bumps the corresponding
``MachineStats`` counter, so episode counts derived from a trace must
reconcile **exactly** with the stats of the same run — that is what
makes a surprising aggregate (``bounces``, ``wplus_recoveries``)
traceable back to the schedule that produced it.

All runs are pinned (fib, 4 cores, scale 0.2, seed 12345) so these are
deterministic, and the same fixture run feeds every assertion.
"""

import pytest

from repro.common.params import FenceDesign
from repro.obs import Observability
from repro.workloads.base import load_all_workloads, run_workload

DESIGNS = (
    FenceDesign.S_PLUS,
    FenceDesign.WS_PLUS,
    FenceDesign.SW_PLUS,
    FenceDesign.W_PLUS,
    FenceDesign.WEE,
)


def _traced(design, workload="fib", **kw):
    load_all_workloads()
    obs = Observability(metrics_interval=500)
    run = run_workload(workload, design, num_cores=4, scale=0.2,
                       seed=12345, obs=obs, **kw)
    return run, obs


@pytest.fixture(scope="module", params=DESIGNS, ids=lambda d: str(d))
def traced_run(request):
    run, obs = _traced(request.param)
    assert run.result.completed, "pinned fib run must complete"
    return run, obs.tracer


def _converted_wfs(tracer):
    return sum(1 for ev in tracer.spans("wf")
               if ev.args and ev.args.get("converted"))


def test_fence_episodes_reconcile(traced_run):
    run, tracer = traced_run
    stats = run.stats
    converted = _converted_wfs(tracer)
    # a Wee dynamic conversion is re-counted as an sf but traced as its
    # original wf span (marked converted=True); demotions at retirement
    # are sf spans with demoted=True
    assert len(tracer.spans("sf")) + converted == stats.total_sf
    assert len(tracer.spans("wf")) - converted == stats.total_wf


def test_bounce_machinery_reconciles(traced_run):
    run, tracer = traced_run
    stats = run.stats
    assert len(tracer.instants("bounce", cat="dir")) == stats.bounces
    chains = tracer.spans("bounce_chain")
    assert len(chains) == stats.bounced_writes
    chain_retries = sum(ev.args["retries"] for ev in chains)
    rmw_retries = len(tracer.instants("rmw_retry"))
    assert chain_retries + rmw_retries == stats.write_retries


def test_order_operations_reconcile(traced_run):
    run, tracer = traced_run
    stats = run.stats
    assert len(tracer.instants("order")) == stats.order_ops
    assert len(tracer.instants("cond_order")) == stats.cond_order_ops
    assert len(tracer.instants("co_fail")) == stats.cond_order_failures


def test_recovery_timeline_reconciles(traced_run):
    run, tracer = traced_run
    stats = run.stats
    assert len(tracer.spans("recovery")) == stats.wplus_recoveries
    assert len(tracer.instants("wplus_timeout")) == stats.wplus_timeouts


def test_memory_system_reconciles(traced_run):
    run, tracer = traced_run
    stats = run.stats
    assert (len(tracer.spans("dir_txn")) + len(tracer.instants("putm"))
            == stats.coherence_transactions)
    # completed runs quiesce, so every miss round trip closed
    assert len(tracer.spans("l1_miss")) == stats.l1_misses
    # (no writeback==dirty_writebacks equality: the stat also counts
    # dirty data carried on INV_ACKs, which have no L1 PutM issue)


def test_completed_run_has_no_open_or_incomplete_spans(traced_run):
    _, tracer = traced_run
    assert not any(ev.open for ev in tracer.events)
    assert not any(ev.args and ev.args.get("incomplete")
                   for ev in tracer.events)
    assert tracer.dropped == 0


@pytest.mark.parametrize("design", DESIGNS, ids=lambda d: str(d))
def test_tracing_does_not_perturb_the_simulation(design):
    """Attaching tracer + metrics must leave the run bit-identical."""
    load_all_workloads()
    plain = run_workload("fib", design, num_cores=4, scale=0.2, seed=12345)
    traced, _ = _traced(design)
    assert traced.stats.to_dict() == plain.stats.to_dict()
    assert traced.cycles == plain.cycles


def test_wee_demotions_and_conversions_are_visible():
    """Wee's Table-4 accounting: demoted-at-retirement fences appear as
    sf spans with demoted=True; dynamic conversions stay wf spans with
    converted=True; together they equal wee_sf_conversions."""
    run, obs = _traced(FenceDesign.WEE)
    tracer = obs.tracer
    demoted = [ev for ev in tracer.spans("sf")
               if ev.args and ev.args.get("demoted")]
    converted = _converted_wfs(tracer)
    assert len(demoted) + converted == sum(run.stats.wee_sf_conversions)


def test_cutoff_run_marks_incomplete_episodes():
    """A cycle-budget cutoff must close open spans as incomplete, not
    lose them."""
    from repro.common.params import MachineParams
    from repro.sim.machine import Machine
    from repro.workloads.base import REGISTRY

    load_all_workloads()
    workload = REGISTRY["fib"](scale=0.2)
    params = MachineParams().with_cores(4).with_design(FenceDesign.W_PLUS)
    machine = Machine(params, seed=12345)
    obs = Observability().attach(machine)
    workload.setup(machine)
    result = machine.run(max_cycles=800)
    assert not result.completed
    tracer = obs.tracer
    assert not any(ev.open for ev in tracer.events)
    assert any(ev.args and ev.args.get("incomplete")
               for ev in tracer.events), "cutoff left no open episode?"
