"""Trace-overhead gate plumbing (the timing itself runs in CI)."""

import pytest

from repro.obs import overhead


def test_find_case_rejects_unknown_keys():
    with pytest.raises(SystemExit, match="unknown fig89 case"):
        overhead._find_case("nope:S+:c8:s0.5:r12345")


def test_find_case_resolves_default():
    case = overhead._find_case(overhead.DEFAULT_CASE)
    assert case.workload == "fib" and case.cores == 8


def test_render_report_failure_and_success():
    report = {
        "case": overhead.DEFAULT_CASE,
        "threshold": 1.03,
        "baseline_median_s": 0.1,
        "disabled": {"min_s": 0.12, "reps": 3},
        "enabled": {"min_s": 0.15, "reps": 3},
        "profiled": {"min_s": 0.13, "reps": 3},
        "tracing_overhead_x": 1.25,
        "profiling_overhead_x": 1.08,
        "trace_events": 100,
        "schema_errors": [],
        "attrib_errors": [],
        "failures": ["tracing-DISABLED path regressed: ..."],
        "ok": False,
    }
    text = overhead.render_report(report)
    assert "FAIL" in text and "verdict: FAILED" in text
    assert "profiling overhead" in text
    report["failures"] = []
    report["ok"] = True
    assert "verdict: OK" in overhead.render_report(report)


def test_run_gate_reports_missing_baseline(tmp_path):
    report = overhead.run_gate(
        baseline_path=str(tmp_path / "absent.json"),
        case_key=overhead.DEFAULT_CASE,
        reps=1,
        max_reps=1,
    )
    assert not report["ok"]
    assert any("has no case" in f or "baseline" in f
               for f in report["failures"])
    # the measurement itself still ran and produced a valid trace
    assert report["schema_errors"] == []
    assert report["trace_events"] > 0
    # tracing/profiling must not have perturbed the simulated run
    assert not any("perturbed" in f for f in report["failures"])
    # the profiled leg ran and its attribution tree conserved cycles
    assert report["attrib_errors"] == []
    assert report["profiling_overhead_x"] is not None
