"""Exporter tests: Chrome trace_event JSON, JSONL, and the validator."""

import json

import pytest

from repro.common.params import FenceDesign
from repro.obs import Observability
from repro.obs.export import (
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.workloads.base import load_all_workloads, run_workload


@pytest.fixture(scope="module")
def traced():
    load_all_workloads()
    obs = Observability(metrics_interval=500)
    run = run_workload("fib", FenceDesign.W_PLUS, num_cores=4, scale=0.2,
                       seed=12345, obs=obs)
    return run, obs


def test_chrome_trace_is_schema_valid(traced):
    run, obs = traced
    trace = to_chrome_trace(obs.tracer, metrics=obs.metrics, label="fib:W+")
    assert validate_chrome_trace(trace) == []


def test_chrome_trace_has_named_tracks_per_core(traced):
    _, obs = traced
    trace = to_chrome_trace(obs.tracer)
    names = {ev["args"]["name"] for ev in trace["traceEvents"]
             if ev["ph"] == "M" and ev["name"] == "thread_name"}
    for core in range(4):
        assert f"core {core}" in names
    assert any(n.startswith("dir") for n in names)
    assert "noc" in names


def test_chrome_trace_spans_carry_duration_and_cycle_clock(traced):
    _, obs = traced
    trace = to_chrome_trace(obs.tracer)
    spans = [ev for ev in trace["traceEvents"] if ev["ph"] == "X"]
    assert spans and all(ev["dur"] >= 0 for ev in spans)
    assert trace["otherData"]["clock"] == "1 simulated cycle = 1us"


def test_chrome_trace_counters_from_metrics(traced):
    _, obs = traced
    trace = to_chrome_trace(obs.tracer, metrics=obs.metrics)
    counters = [ev for ev in trace["traceEvents"] if ev["ph"] == "C"]
    assert any(ev["name"] == "wb_depth" for ev in counters)
    assert any(ev["name"] == "activity" for ev in counters)


def test_write_chrome_trace_round_trips(tmp_path, traced):
    _, obs = traced
    path = tmp_path / "trace.json"
    write_chrome_trace(str(path), obs.tracer, obs.metrics, label="x")
    trace = json.loads(path.read_text())
    assert validate_chrome_trace(trace) == []
    assert trace["otherData"]["label"] == "x"


def test_write_jsonl_stream(tmp_path, traced):
    _, obs = traced
    path = tmp_path / "trace.jsonl"
    n = write_jsonl(str(path), obs.tracer, obs.metrics, label="fib:W+")
    lines = path.read_text().splitlines()
    assert len(lines) == n
    records = [json.loads(line) for line in lines]
    assert records[0]["type"] == "meta"
    assert records[0]["events"] == len(obs.tracer.events)
    kinds = {r["type"] for r in records}
    assert kinds == {"meta", "event", "metrics"}


# ---------------------------------------------------------------------------
# validator negatives: it must actually catch malformed traces
# ---------------------------------------------------------------------------


def _valid_minimal():
    return {
        "traceEvents": [
            {"ph": "M", "name": "thread_name", "pid": 1, "tid": 0, "ts": 0,
             "args": {"name": "core 0"}},
            {"ph": "X", "name": "wf", "cat": "fence", "pid": 1, "tid": 0,
             "ts": 0, "dur": 5},
        ],
        "displayTimeUnit": "ms",
        "otherData": {},
    }


def test_validator_accepts_minimal_trace():
    assert validate_chrome_trace(_valid_minimal()) == []


def test_validator_rejects_non_dict():
    assert validate_chrome_trace([]) != []


def test_validator_rejects_missing_dur_on_span():
    trace = _valid_minimal()
    del trace["traceEvents"][1]["dur"]
    assert any("dur" in e for e in validate_chrome_trace(trace))


def test_validator_rejects_unknown_phase():
    trace = _valid_minimal()
    trace["traceEvents"][1]["ph"] = "Z"
    assert any("ph" in e for e in validate_chrome_trace(trace))


def test_validator_rejects_unnamed_track():
    trace = _valid_minimal()
    trace["traceEvents"][1]["tid"] = 42   # no thread_name metadata
    assert any("thread_name" in e for e in validate_chrome_trace(trace))


def test_validator_rejects_non_numeric_counter():
    trace = _valid_minimal()
    trace["traceEvents"].append(
        {"ph": "C", "name": "depth", "pid": 1, "tid": 0, "ts": 0,
         "args": {"v": "not-a-number"}},
    )
    assert any("counter" in e for e in validate_chrome_trace(trace))
