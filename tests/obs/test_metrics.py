"""MetricsCollector: interval sampling, bounded decimation, no drift."""

import pytest

from repro.common.params import FenceDesign, MachineParams
from repro.obs import Observability
from repro.obs.metrics import MetricsCollector, _merge
from repro.sim.machine import Machine
from repro.workloads.base import REGISTRY, load_all_workloads


def _run_with_metrics(interval=200, max_samples=512, design=FenceDesign.W_PLUS):
    load_all_workloads()
    workload = REGISTRY["fib"](scale=0.2)
    params = MachineParams().with_cores(4).with_design(design)
    machine = Machine(params, seed=12345)
    obs = Observability(metrics_interval=interval, max_samples=max_samples)
    obs.attach(machine)
    workload.setup(machine)
    result = machine.run(max_cycles=workload.cycle_budget)
    return result, obs.metrics


def test_interval_must_be_positive():
    machine = object()
    with pytest.raises(ValueError):
        MetricsCollector(machine, interval=0)


def test_samples_cover_the_run():
    result, metrics = _run_with_metrics(interval=200)
    assert metrics.samples, "run long enough to tick at least once"
    assert metrics.ticks == len(metrics.samples)  # no decimation here
    ts = [s["ts"] for s in metrics.samples]
    assert ts == sorted(ts)
    assert ts[0] == 200 and ts[-1] <= result.cycles
    for s in metrics.samples:
        assert len(s["wb_depth"]) == 4
        assert len(s["instructions_delta"]) == 4
        assert 0 <= s["outstanding_bounces"] <= 4


def test_deltas_are_nonnegative_and_bounded_by_totals():
    result, metrics = _run_with_metrics(interval=200)
    stats = result.stats
    assert all(s["bounces_delta"] >= 0 for s in metrics.samples)
    assert sum(s["bounces_delta"] for s in metrics.samples) <= stats.bounces
    insn = [sum(s["instructions_delta"]) for s in metrics.samples]
    assert sum(insn) <= stats.total_instructions


def test_decimation_bounds_buffer_and_doubles_stride():
    _, metrics = _run_with_metrics(interval=20, max_samples=8)
    assert metrics.ticks > 8, "pinned run must overflow the buffer"
    assert len(metrics.samples) <= 8
    assert metrics.interval > metrics.base_interval
    # stride doubles: final interval is base * 2^k
    ratio = metrics.interval // metrics.base_interval
    assert ratio & (ratio - 1) == 0


def test_decimation_preserves_delta_sums():
    """Folding adjacent epochs must not lose counted work: the same
    pinned run, decimated hard vs not at all, sums its delta columns to
    values that agree up to the tail after the coarser collector's last
    tick (whose timestamp it also retains)."""
    _, fine = _run_with_metrics(interval=20, max_samples=10_000)
    _, coarse = _run_with_metrics(interval=20, max_samples=8)
    last = coarse.samples[-1]["ts"]
    fine_sum = sum(s["bounces_delta"] for s in fine.samples
                   if s["ts"] <= last)
    coarse_sum = sum(s["bounces_delta"] for s in coarse.samples)
    assert coarse_sum == fine_sum


def test_merge_sums_deltas_and_keeps_latest_instantaneous():
    older = {"ts": 100, "wb_depth": [5, 5], "bs_lines": [1, 0],
             "pending_fences": [2, 0], "outstanding_bounces": 2,
             "busy_delta": [10, 10], "fence_stall_delta": [1, 1],
             "other_stall_delta": [0, 0], "instructions_delta": [7, 7],
             "bounces_delta": 3, "write_retries_delta": 4,
             "recoveries_delta": 0, "network_bytes_delta": 64,
             "l1_misses_delta": 2}
    newer = dict(older, ts=200, wb_depth=[1, 1], outstanding_bounces=0,
                 bounces_delta=5, busy_delta=[20, 20])
    merged = _merge(older, newer)
    assert merged["ts"] == 200                 # instantaneous: later wins
    assert merged["wb_depth"] == [1, 1]
    assert merged["outstanding_bounces"] == 0
    assert merged["bounces_delta"] == 8        # deltas: summed
    assert merged["busy_delta"] == [30, 30]
    assert merged["write_retries_delta"] == 8


def test_metrics_do_not_perturb_the_simulation():
    load_all_workloads()
    from repro.workloads.base import run_workload

    plain = run_workload("fib", FenceDesign.WEE, num_cores=4, scale=0.2,
                         seed=12345)
    obs = Observability(trace=False, metrics_interval=64)
    sampled = run_workload("fib", FenceDesign.WEE, num_cores=4, scale=0.2,
                           seed=12345, obs=obs)
    assert obs.metrics.samples
    assert sampled.stats.to_dict() == plain.stats.to_dict()
    assert sampled.cycles == plain.cycles


def test_summary_reports_headline_aggregates():
    _, metrics = _run_with_metrics(interval=200)
    summary = metrics.summary()
    assert summary["retained"] == len(metrics.samples)
    assert summary["mean_wb_depth"] >= 0
    assert summary["peak_outstanding_bounces"] >= 0


def test_empty_summary_when_never_ticked():
    load_all_workloads()
    workload = REGISTRY["fib"](scale=0.2)
    params = MachineParams().with_cores(4).with_design(FenceDesign.S_PLUS)
    machine = Machine(params, seed=12345)
    collector = MetricsCollector(machine, interval=10_000_000)
    machine.metrics = collector
    workload.setup(machine)
    machine.run(max_cycles=workload.cycle_budget)
    assert collector.samples == []
    assert collector.summary() == {"retained": 0}
