"""Root conftest: re-exports the shared fixtures from tests.support."""

import pytest

from tests.support import tiny_params


@pytest.fixture
def machine():
    """A 2-core S+ machine with exact interleaving."""
    from repro.sim.machine import Machine
    return Machine(tiny_params(), seed=99)
