"""Root conftest: shared fixtures plus the kernel-backend axis.

The simulator has two interchangeable event-queue backends (see
:mod:`repro.common.kernels`).  ``--kernel-backend`` re-runs the
behavioural suites on a chosen backend — or on *both*, parameterizing
every test that uses the ``kernel`` fixture:

    pytest --kernel-backend=both tests/golden tests/fences

The fixture exports the choice through ``REPRO_KERNEL``, which every
``Machine`` built without an explicit ``kernel=`` argument honours, so
whole suites (goldens, litmus conformance, chaos replay, sanitizer)
become differential tests without touching each test body.  Suites
that opt in do so with an autouse shim in their own conftest.
"""

import pytest

from tests.support import tiny_params

KERNELS = ("object", "flat")


def pytest_addoption(parser):
    parser.addoption(
        "--kernel-backend",
        action="store",
        default="object",
        choices=KERNELS + ("both",),
        help="simulation kernel backend(s) for tests using the 'kernel' "
        "fixture: object (default), flat, or both (parameterizes each "
        "test across the two backends)",
    )


def pytest_generate_tests(metafunc):
    if "kernel" in metafunc.fixturenames:
        choice = metafunc.config.getoption("--kernel-backend")
        backends = KERNELS if choice == "both" else (choice,)
        metafunc.parametrize("kernel", backends, indirect=True)


@pytest.fixture
def kernel(request, monkeypatch):
    """The selected kernel backend name, exported via REPRO_KERNEL.

    Any ``Machine`` the test (or code under test) builds without an
    explicit ``kernel=`` argument runs on this backend.
    """
    name = getattr(request, "param", "object")
    monkeypatch.setenv("REPRO_KERNEL", name)
    return name


@pytest.fixture
def machine():
    """A 2-core S+ machine with exact interleaving."""
    from repro.sim.machine import Machine
    return Machine(tiny_params(), seed=99)
