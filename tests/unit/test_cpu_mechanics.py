"""Core-model mechanics: accounting identity, WB-full stalls, batching
equivalence, determinism, epoch guards."""

import pytest

from repro.common.params import FenceDesign, FenceRole
from repro.core import isa as ops
from repro.sim.machine import Machine

from tests.support import notes_of, run_threads, tiny_params


def test_cycle_accounting_identity():
    """Every accounted cycle is busy, fence stall or other stall, and
    the per-core total is close to the core's active wall time."""
    m = Machine(tiny_params(FenceDesign.S_PLUS, num_cores=1))
    x, y = m.alloc.word(), m.alloc.word()

    def t(ctx):
        yield ops.Compute(400)
        yield ops.Store(x, 1)
        yield ops.Fence(FenceRole.CRITICAL)
        yield ops.Load(y)
        yield ops.Compute(100)

    res = run_threads(m, t)
    b = m.stats.breakdown[0]
    assert b.busy > 0 and b.fence_stall > 0 and b.other_stall > 0
    # the accounted time cannot exceed the simulated wall clock (plus
    # the scheduling slack of the final continuation events)
    assert b.total <= res.cycles + 10


def test_instruction_counting():
    m = Machine(tiny_params(num_cores=1))
    x = m.alloc.word()

    def t(ctx):
        yield ops.Compute(100)   # 100 instructions
        yield ops.Store(x, 1)    # 1
        yield ops.Load(x)        # 1 (forwarded)
        yield ops.Fence()        # 1
        yield ops.AtomicRMW(x, "add", 1)  # 1

    run_threads(m, t)
    assert m.stats.total_instructions == 104


def test_write_buffer_full_stalls_the_core():
    m = Machine(tiny_params(num_cores=1, write_buffer_entries=2))
    words = [m.alloc.word() for _ in range(6)]

    def t(ctx):
        for w in words:
            yield ops.Store(w, 1)  # cold stores: drain ~200cy each

    run_threads(m, t)
    assert m.stats.total_breakdown()["other_stall"] > 400
    for w in words:
        assert m.image.peek(w) == 1


def test_batching_preserves_results():
    """The micro-batch fast path may only change timing details, never
    values or final memory state."""
    def program(words):
        def t(ctx):
            acc = 0
            for i, w in enumerate(words):
                yield ops.Store(w, i + 1)
                v = yield ops.Load(w)
                acc += v
                yield ops.Compute(7)
            yield ops.Note(("acc", acc))
        return t

    results = {}
    for batch in (0, 24):
        m = Machine(tiny_params(num_cores=1, batch_cycles=batch))
        words = [m.alloc.word() for _ in range(8)]
        m.spawn(program(words))
        m.run()
        results[batch] = (notes_of(m, 0), [m.image.peek(w) for w in words])
    assert results[0] == results[24]


@pytest.mark.parametrize("design", [FenceDesign.S_PLUS, FenceDesign.W_PLUS])
def test_same_seed_is_deterministic(design):
    def run_once():
        m = Machine(tiny_params(design, num_cores=2, exact=False), seed=42)
        x, y = m.alloc.word(), m.alloc.word()

        def t0(ctx):
            for i in range(20):
                yield ops.Store(x, i)
                yield ops.Fence(FenceRole.CRITICAL)
                yield ops.Load(y)
                yield ops.Compute(ctx.rng.randrange(10, 60))

        def t1(ctx):
            for i in range(20):
                yield ops.Store(y, i)
                yield ops.Fence(FenceRole.STANDARD)
                yield ops.Load(x)
                yield ops.Compute(ctx.rng.randrange(10, 60))

        m.spawn(t0)
        m.spawn(t1)
        res = m.run()
        return res.cycles, m.stats.total_instructions, m.stats.bounces

    assert run_once() == run_once()


def test_note_payloads_in_program_order():
    m = Machine(tiny_params(num_cores=1))

    def t(ctx):
        for i in range(5):
            yield ops.Note(("i", i))
            yield ops.Compute(10)

    run_threads(m, t)
    assert notes_of(m, 0) == [("i", i) for i in range(5)]


def test_unknown_op_raises():
    m = Machine(tiny_params(num_cores=1))

    def t(ctx):
        yield "not an op"

    m.spawn(t)
    with pytest.raises(TypeError):
        m.run()


def test_unknown_mark_kind_raises():
    m = Machine(tiny_params(num_cores=1))

    def t(ctx):
        yield ops.Mark("bogus")

    m.spawn(t)
    with pytest.raises(ValueError):
        m.run()


def test_spawn_more_threads_than_cores_rejected():
    from repro.common.errors import ConfigError
    m = Machine(tiny_params(num_cores=1))
    m.spawn(lambda ctx: iter(()))
    with pytest.raises(ConfigError):
        m.spawn(lambda ctx: iter(()))


def test_txn_cycle_marks_measure_span():
    m = Machine(tiny_params(num_cores=1))

    def t(ctx):
        yield ops.Mark("txn_cycles_begin")
        yield ops.Compute(400)  # 100 cycles at issue width 4
        yield ops.Mark("txn_cycles_end")

    run_threads(m, t)
    assert 90 <= m.stats.txn_cycles <= 140
