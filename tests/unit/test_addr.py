"""Unit tests for address arithmetic and NUMA home mapping."""

import pytest

from repro.common.addr import AddressMap
from repro.common.errors import ConfigError


@pytest.fixture
def amap():
    return AddressMap(line_bytes=32, word_bytes=4, num_banks=8,
                      interleave_bytes=256)


def test_line_of(amap):
    assert amap.line_of(0) == 0
    assert amap.line_of(31) == 0
    assert amap.line_of(32) == 32
    assert amap.line_of(100) == 96


def test_word_of(amap):
    assert amap.word_of(0) == 0
    assert amap.word_of(3) == 0
    assert amap.word_of(4) == 4
    assert amap.word_of(33) == 32


def test_word_index_and_mask(amap):
    assert amap.word_index(0) == 0
    assert amap.word_index(4) == 1
    assert amap.word_index(28) == 7
    assert amap.word_index(32) == 0  # next line
    assert amap.word_mask(8) == 0b100
    assert amap.words_per_line == 8


def test_words_in_line(amap):
    words = list(amap.words_in_line(70))
    assert words == [64, 68, 72, 76, 80, 84, 88, 92]


def test_home_bank_interleaving(amap):
    # addresses inside one 256-byte block share a bank
    assert amap.home_bank(0) == amap.home_bank(255)
    assert amap.home_bank(256) == 1
    assert amap.home_bank(256 * 8) == 0  # wraps around 8 banks
    assert amap.home_bank(256 * 9 + 17) == 1


def test_same_line(amap):
    assert amap.same_line(0, 31)
    assert not amap.same_line(31, 32)


def test_default_interleave_is_line():
    amap = AddressMap(line_bytes=32, word_bytes=4, num_banks=4)
    assert amap.interleave_bytes == 32
    assert amap.home_bank(32) == 1


def test_invalid_geometry_rejected():
    with pytest.raises(ConfigError):
        AddressMap(line_bytes=30, word_bytes=4, num_banks=2)
    with pytest.raises(ConfigError):
        AddressMap(line_bytes=32, word_bytes=4, num_banks=2,
                   interleave_bytes=48)
    with pytest.raises(ConfigError):
        AddressMap(line_bytes=0, word_bytes=4, num_banks=2)
