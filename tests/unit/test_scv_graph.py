"""Unit tests for the Shasha–Snir dependence-graph checker."""

import pytest

from repro.common.errors import SCViolationError
from repro.mem.memory import INIT_TAG
from repro.sim.scv import (
    AccessEvent,
    assert_sequentially_consistent,
    build_dependence_graph,
    find_scv,
)


def ev(i, kind, core, word, tag, po, value=0):
    return AccessEvent(i, kind, core, word, value, tag, po)


def test_sequential_trace_is_sc():
    # P0 writes x, P1 reads it afterwards
    events = [
        ev(0, "store", 0, 0x10, (0, 1), po=1),
        ev(1, "load", 1, 0x10, (0, 1), po=1),
    ]
    assert find_scv(events) is None
    assert_sequentially_consistent(events)


def test_store_buffering_cycle_detected():
    # classic SB outcome (0,0): each load reads the initial value while
    # the other core's store is po-earlier
    events = [
        ev(0, "store", 0, 0x10, (0, 1), po=1),
        ev(1, "load", 0, 0x20, INIT_TAG, po=2),
        ev(2, "store", 1, 0x20, (1, 2), po=1),
        ev(3, "load", 1, 0x10, INIT_TAG, po=2),
    ]
    cycle = find_scv(events)
    assert cycle is not None
    with pytest.raises(SCViolationError):
        assert_sequentially_consistent(events)


def test_sb_with_one_fresh_read_is_sc():
    events = [
        ev(0, "store", 0, 0x10, (0, 1), po=1),
        ev(1, "load", 0, 0x20, (1, 2), po=2),   # reads P1's store
        ev(2, "store", 1, 0x20, (1, 2), po=1),
        ev(3, "load", 1, 0x10, INIT_TAG, po=2),  # reads old x
    ]
    assert find_scv(events) is None


def test_graph_edge_kinds():
    events = [
        ev(0, "store", 0, 0x10, (0, 1), po=1),
        ev(1, "store", 1, 0x10, (1, 2), po=1),
        ev(2, "load", 0, 0x10, (0, 1), po=2),
    ]
    g = build_dependence_graph(events)
    kinds = {d["kind"] for _u, _v, d in g.edges(data=True)}
    # co (store order), po (within P0), fr (load -> co-later store)
    assert {"co", "po", "fr"} <= kinds


def test_rf_edge_cross_core_only():
    events = [
        ev(0, "store", 0, 0x10, (0, 1), po=1),
        ev(1, "load", 1, 0x10, (0, 1), po=1),
        ev(2, "load", 0, 0x10, (0, 1), po=2),
    ]
    g = build_dependence_graph(events)
    rf = [(u, v) for u, v, d in g.edges(data=True) if d["kind"] == "rf"]
    assert rf == [(0, 1)]  # the same-core read is covered by po


def test_three_thread_cycle_detected():
    # P0: st x, ld y(old); P1: st y, ld z(old); P2: st z, ld x(old)
    events = [
        ev(0, "store", 0, 0x10, (0, 1), po=1),
        ev(1, "load", 0, 0x20, INIT_TAG, po=2),
        ev(2, "store", 1, 0x20, (1, 2), po=1),
        ev(3, "load", 1, 0x30, INIT_TAG, po=2),
        ev(4, "store", 2, 0x30, (2, 3), po=1),
        ev(5, "load", 2, 0x10, INIT_TAG, po=2),
    ]
    assert find_scv(events) is not None


# ---------------------------------------------------------------------------
# write-buffer-forwarded loads (regression: previously unrecorded)
# ---------------------------------------------------------------------------


def test_forwarded_load_resolves_to_source_store_tag():
    # P0: st x (merged later, recorded with po=1), forwarded ld x
    # (provisional tag); P1: co-later st x.  The forwarded load must
    # gain an fr edge to P1's store once its tag resolves.
    events = [
        ev(0, "load", 0, 0x10, ("fwd", 0, 1), po=2, value=1),
        ev(1, "store", 0, 0x10, (0, 1), po=1, value=1),
        ev(2, "store", 1, 0x10, (1, 2), po=1, value=2),
    ]
    g = build_dependence_graph(events)
    fr = [(u, v) for u, v, d in g.edges(data=True) if d["kind"] == "fr"]
    assert (0, 2) in fr


def test_forwarded_load_unresolved_tag_keeps_po_only():
    # the source store never merged (W+ squash): no rf/fr edges, but
    # the forwarded load still participates in program order
    events = [
        ev(0, "load", 0, 0x10, ("fwd", 0, 1), po=2, value=1),
        ev(1, "load", 0, 0x20, INIT_TAG, po=3),
    ]
    g = build_dependence_graph(events)
    kinds = {d["kind"] for _u, _v, d in g.edges(data=True)}
    assert kinds == {"po"}


def test_same_address_store_load_litmus_records_forwarded_read():
    """Regression for the documented SCV blind spot: a load satisfied
    by the core's own write buffer must appear in the event trace as a
    po-ordered access (it used to bypass recording entirely)."""
    from repro.core import isa as ops
    from repro.sim.machine import Machine
    from tests.support import tiny_params

    m = Machine(tiny_params(track_dependences=True), seed=7)
    x, y = m.alloc.word(), m.alloc.word()

    def t0(ctx):
        yield ops.Store(x, 1)
        r1 = yield ops.Load(x)       # forwarded from the write buffer
        yield ops.Note(("r1", r1))
        r2 = yield ops.Load(y)
        yield ops.Note(("r2", r2))

    def t1(ctx):
        yield ops.Store(y, 1)
        r3 = yield ops.Load(x)

    m.spawn(t0)
    m.spawn(t1)
    result = m.run()
    assert result.completed

    word_x = m.amap.word_of(x)
    fwd = [e for e in result.events
           if e.kind == "load" and e.core == 0 and e.word == word_x]
    assert fwd, "forwarded same-address load went unrecorded"
    assert fwd[0].value == 1
    # the forwarded load is po-after P0's store to x
    p0_store = next(e for e in result.events
                    if e.kind == "store" and e.core == 0
                    and e.word == word_x)
    assert fwd[0].po > p0_store.po
    # and the graph stays analyzable (no crash on the provisional tag)
    build_dependence_graph(result.events)
