"""Unit tests for the Shasha–Snir dependence-graph checker."""

import pytest

from repro.common.errors import SCViolationError
from repro.mem.memory import INIT_TAG
from repro.sim.scv import (
    AccessEvent,
    assert_sequentially_consistent,
    build_dependence_graph,
    find_scv,
)


def ev(i, kind, core, word, tag, po, value=0):
    return AccessEvent(i, kind, core, word, value, tag, po)


def test_sequential_trace_is_sc():
    # P0 writes x, P1 reads it afterwards
    events = [
        ev(0, "store", 0, 0x10, (0, 1), po=1),
        ev(1, "load", 1, 0x10, (0, 1), po=1),
    ]
    assert find_scv(events) is None
    assert_sequentially_consistent(events)


def test_store_buffering_cycle_detected():
    # classic SB outcome (0,0): each load reads the initial value while
    # the other core's store is po-earlier
    events = [
        ev(0, "store", 0, 0x10, (0, 1), po=1),
        ev(1, "load", 0, 0x20, INIT_TAG, po=2),
        ev(2, "store", 1, 0x20, (1, 2), po=1),
        ev(3, "load", 1, 0x10, INIT_TAG, po=2),
    ]
    cycle = find_scv(events)
    assert cycle is not None
    with pytest.raises(SCViolationError):
        assert_sequentially_consistent(events)


def test_sb_with_one_fresh_read_is_sc():
    events = [
        ev(0, "store", 0, 0x10, (0, 1), po=1),
        ev(1, "load", 0, 0x20, (1, 2), po=2),   # reads P1's store
        ev(2, "store", 1, 0x20, (1, 2), po=1),
        ev(3, "load", 1, 0x10, INIT_TAG, po=2),  # reads old x
    ]
    assert find_scv(events) is None


def test_graph_edge_kinds():
    events = [
        ev(0, "store", 0, 0x10, (0, 1), po=1),
        ev(1, "store", 1, 0x10, (1, 2), po=1),
        ev(2, "load", 0, 0x10, (0, 1), po=2),
    ]
    g = build_dependence_graph(events)
    kinds = {d["kind"] for _u, _v, d in g.edges(data=True)}
    # co (store order), po (within P0), fr (load -> co-later store)
    assert {"co", "po", "fr"} <= kinds


def test_rf_edge_cross_core_only():
    events = [
        ev(0, "store", 0, 0x10, (0, 1), po=1),
        ev(1, "load", 1, 0x10, (0, 1), po=1),
        ev(2, "load", 0, 0x10, (0, 1), po=2),
    ]
    g = build_dependence_graph(events)
    rf = [(u, v) for u, v, d in g.edges(data=True) if d["kind"] == "rf"]
    assert rf == [(0, 1)]  # the same-core read is covered by po


def test_three_thread_cycle_detected():
    # P0: st x, ld y(old); P1: st y, ld z(old); P2: st z, ld x(old)
    events = [
        ev(0, "store", 0, 0x10, (0, 1), po=1),
        ev(1, "load", 0, 0x20, INIT_TAG, po=2),
        ev(2, "store", 1, 0x20, (1, 2), po=1),
        ev(3, "load", 1, 0x30, INIT_TAG, po=2),
        ev(4, "store", 2, 0x30, (2, 3), po=1),
        ev(5, "load", 2, 0x10, INIT_TAG, po=2),
    ]
    assert find_scv(events) is not None
