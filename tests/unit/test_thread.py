"""Unit tests for replayable threads (the W+ checkpoint machinery)."""

import pytest

from repro.common.errors import ThreadReplayError
from repro.core import isa as ops
from repro.core.thread import SimThread, ThreadContext


def ctx(seed=5, tid=0):
    return ThreadContext(tid=tid, num_threads=1, seed=seed)


def test_next_op_sequence_and_results():
    def fn(c):
        a = yield ops.Load(0x10)
        b = yield ops.Load(0x20)
        yield ops.Store(0x30, a + b)

    t = SimThread(fn, ctx())
    assert t.next_op(None) == ops.Load(0x10)
    assert t.next_op(3) == ops.Load(0x20)
    assert t.next_op(4) == ops.Store(0x30, 7)
    assert t.next_op(None) is None
    assert t.finished


def test_rollback_replays_prefix_and_reexecutes_suffix():
    trace = []

    def fn(c):
        a = yield ops.Load(0x10)
        trace.append(("pre", a))
        yield ops.Fence()
        b = yield ops.Load(0x20)
        trace.append(("post", b))

    t = SimThread(fn, ctx())
    t.next_op(None)          # yields Load(0x10)
    t.next_op(11)            # commits a=11, yields Fence
    token = t.checkpoint()
    t.next_op(None)          # commits fence, yields Load(0x20)
    t.next_op(99)            # commits b=99 -> thread would finish next
    assert trace == [("pre", 11), ("post", 99)]

    t.rollback(token)
    # the prefix replayed: "pre" is re-appended with the same value,
    # then live execution resumes after the fence
    assert trace[-1] == ("pre", 11)
    op = t.next_op(None)     # fence result, yields Load(0x20) again
    assert op == ops.Load(0x20)
    t.next_op(42)
    assert trace[-1] == ("post", 42)
    assert t.rollbacks == 1


def test_rollback_resets_rng_for_determinism():
    draws = []

    def fn(c):
        x = c.rng.randrange(1000)
        draws.append(x)
        yield ops.Load(0x10)
        yield ops.Fence()
        y = c.rng.randrange(1000)
        draws.append(y)
        yield ops.Load(0x20)

    t = SimThread(fn, ctx(seed=77))
    t.next_op(None)
    t.next_op(1)
    token = t.checkpoint()
    t.next_op(None)
    first_draws = list(draws)
    t.rollback(token)
    t.next_op(None)
    # both draws re-played identically
    assert draws[2] == first_draws[0]
    assert draws[3] == first_draws[1]


def test_replay_divergence_detected():
    flip = []

    def fn(c):
        # nondeterministic: consults state outside (seed, results)
        if flip:
            yield ops.Load(0xBAD)
        else:
            yield ops.Load(0x10)
        yield ops.Fence()
        yield ops.Load(0x20)

    t = SimThread(fn, ctx())
    t.next_op(None)
    t.next_op(1)
    token = t.checkpoint()
    flip.append(True)
    with pytest.raises(ThreadReplayError):
        t.rollback(token)


def test_rollback_past_end_rejected():
    def fn(c):
        yield ops.Load(0x10)

    t = SimThread(fn, ctx())
    with pytest.raises(ThreadReplayError):
        t.rollback(5)


def test_rollback_of_finished_thread_revives_it():
    def fn(c):
        yield ops.Store(0x10, 1)
        yield ops.Fence()
        yield ops.Load(0x20)

    t = SimThread(fn, ctx())
    t.next_op(None)
    t.next_op(None)
    token = t.checkpoint()
    t.next_op(None)
    assert t.next_op(7) is None and t.finished
    t.rollback(token)
    assert not t.finished
    assert t.next_op(None) == ops.Load(0x20)
