"""Unit tests for the discrete-event kernel."""

import pytest

from repro.common.errors import SimulatorError
from repro.common.events import EventQueue


def test_events_fire_in_time_order():
    q = EventQueue()
    fired = []
    q.schedule(10, lambda: fired.append("b"))
    q.schedule(5, lambda: fired.append("a"))
    q.schedule(20, lambda: fired.append("c"))
    q.run()
    assert fired == ["a", "b", "c"]
    assert q.now == 20


def test_same_cycle_events_fire_in_schedule_order():
    q = EventQueue()
    fired = []
    for i in range(5):
        q.schedule(7, lambda i=i: fired.append(i))
    q.run()
    assert fired == [0, 1, 2, 3, 4]


def test_negative_delay_rejected():
    q = EventQueue()
    with pytest.raises(SimulatorError):
        q.schedule(-1, lambda: None)


def test_cancelled_event_does_not_fire():
    q = EventQueue()
    fired = []
    ev = q.schedule(5, lambda: fired.append("x"))
    q.schedule(3, lambda: fired.append("y"))
    ev.cancel()
    q.run()
    assert fired == ["y"]


def test_events_scheduled_during_execution():
    q = EventQueue()
    fired = []

    def first():
        fired.append("first")
        q.schedule(5, lambda: fired.append("nested"))

    q.schedule(1, first)
    q.run()
    assert fired == ["first", "nested"]
    assert q.now == 6


def test_run_until_stops_clock_at_limit():
    q = EventQueue()
    fired = []
    q.schedule(5, lambda: fired.append("a"))
    q.schedule(50, lambda: fired.append("b"))
    q.run(until=10)
    assert fired == ["a"]
    assert q.now == 10
    q.run()
    assert fired == ["a", "b"]


def test_stop_when_predicate():
    q = EventQueue()
    count = []

    def tick():
        count.append(1)
        q.schedule(1, tick)

    q.schedule(0, tick)
    q.run(stop_when=lambda: len(count) >= 3)
    assert len(count) == 3


def test_schedule_at_absolute_time():
    q = EventQueue()
    fired = []
    q.schedule(3, lambda: q.schedule_at(10, lambda: fired.append(q.now)))
    q.run()
    assert fired == [10]


def test_len_counts_pending_not_cancelled():
    q = EventQueue()
    e1 = q.schedule(1, lambda: None)
    q.schedule(2, lambda: None)
    assert len(q) == 2
    e1.cancel()
    assert len(q) == 1


def test_empty_and_peek():
    q = EventQueue()
    assert q.empty()
    assert q.peek_time() is None
    q.schedule(4, lambda: None)
    assert not q.empty()
    assert q.peek_time() == 4
