"""Unit tests for the discrete-event kernel."""

import pytest

from repro.common.errors import SimulatorError
from repro.common.events import EventQueue


def test_events_fire_in_time_order():
    q = EventQueue()
    fired = []
    q.schedule(10, lambda: fired.append("b"))
    q.schedule(5, lambda: fired.append("a"))
    q.schedule(20, lambda: fired.append("c"))
    q.run()
    assert fired == ["a", "b", "c"]
    assert q.now == 20


def test_same_cycle_events_fire_in_schedule_order():
    q = EventQueue()
    fired = []
    for i in range(5):
        q.schedule(7, lambda i=i: fired.append(i))
    q.run()
    assert fired == [0, 1, 2, 3, 4]


def test_negative_delay_rejected():
    q = EventQueue()
    with pytest.raises(SimulatorError):
        q.schedule(-1, lambda: None)


def test_cancelled_event_does_not_fire():
    q = EventQueue()
    fired = []
    ev = q.schedule(5, lambda: fired.append("x"))
    q.schedule(3, lambda: fired.append("y"))
    ev.cancel()
    q.run()
    assert fired == ["y"]


def test_events_scheduled_during_execution():
    q = EventQueue()
    fired = []

    def first():
        fired.append("first")
        q.schedule(5, lambda: fired.append("nested"))

    q.schedule(1, first)
    q.run()
    assert fired == ["first", "nested"]
    assert q.now == 6


def test_run_until_stops_clock_at_limit():
    q = EventQueue()
    fired = []
    q.schedule(5, lambda: fired.append("a"))
    q.schedule(50, lambda: fired.append("b"))
    q.run(until=10)
    assert fired == ["a"]
    assert q.now == 10
    q.run()
    assert fired == ["a", "b"]


def test_stop_when_predicate():
    q = EventQueue()
    count = []

    def tick():
        count.append(1)
        q.schedule(1, tick)

    q.schedule(0, tick)
    q.run(stop_when=lambda: len(count) >= 3)
    assert len(count) == 3


def test_schedule_at_absolute_time():
    q = EventQueue()
    fired = []
    q.schedule(3, lambda: q.schedule_at(10, lambda: fired.append(q.now)))
    q.run()
    assert fired == [10]


def test_len_counts_pending_not_cancelled():
    q = EventQueue()
    e1 = q.schedule(1, lambda: None)
    q.schedule(2, lambda: None)
    assert len(q) == 2
    e1.cancel()
    assert len(q) == 1


def test_empty_and_peek():
    q = EventQueue()
    assert q.empty()
    assert q.peek_time() is None
    q.schedule(4, lambda: None)
    assert not q.empty()
    assert q.peek_time() == 4


def test_step_runs_one_event_and_advances_clock():
    q = EventQueue()
    fired = []
    q.schedule(2, lambda: fired.append("a"))
    q.schedule(5, lambda: fired.append("b"))
    assert q.step()
    assert (fired, q.now) == (["a"], 2)
    assert q.step()
    assert (fired, q.now) == (["a", "b"], 5)
    assert not q.step()  # drained


def test_step_skips_cancelled_events():
    q = EventQueue()
    fired = []
    ev = q.schedule(1, lambda: fired.append("x"))
    q.schedule(2, lambda: fired.append("y"))
    ev.cancel()
    assert q.step()
    assert fired == ["y"]


def test_event_accessors():
    q = EventQueue()
    fn = lambda: None  # noqa: E731
    ev = q.schedule(3, fn, label="test.ev")
    assert ev.time == 3
    assert ev.seq == 1
    assert ev.fn is fn
    assert ev.label == "test.ev"
    assert not ev.cancelled
    ev.cancel()
    assert ev.cancelled
    assert ev.fn is None


def test_executed_counter_tracks_dispatches():
    q = EventQueue()
    for _ in range(4):
        q.schedule(1, lambda: None)
    cancelled = q.schedule(1, lambda: None)
    cancelled.cancel()
    q.run()
    assert q.executed == 4


# ---------------------------------------------------------------------------
# wake-on-event (request_stop / clear_stop)
# ---------------------------------------------------------------------------


def test_request_stop_halts_before_next_event():
    q = EventQueue()
    fired = []
    q.schedule(1, lambda: (fired.append("a"), q.request_stop()))
    q.schedule(2, lambda: fired.append("b"))
    q.run()
    assert fired == ["a"]
    assert q.stop_requested


def test_clear_stop_resumes_where_it_left_off():
    q = EventQueue()
    fired = []
    q.schedule(1, lambda: (fired.append("a"), q.request_stop()))
    q.schedule(2, lambda: fired.append("b"))
    q.run()
    assert fired == ["a"]
    # wake-after-deschedule: clearing the flag and re-running resumes
    # with the remaining events, clock monotone
    q.clear_stop()
    q.run()
    assert fired == ["a", "b"]
    assert q.now == 2


def test_stop_requested_midbatch_preserves_remaining_events():
    """Stopping during a same-cycle batch must not lose batch-mates."""
    q = EventQueue()
    fired = []
    q.schedule(3, lambda: (fired.append("a"), q.request_stop()))
    q.schedule(3, lambda: fired.append("b"))
    q.run()
    assert fired == ["a"]
    q.clear_stop()
    q.run()
    assert fired == ["a", "b"]


# ---------------------------------------------------------------------------
# slot reuse (free-list recycling)
# ---------------------------------------------------------------------------


def test_held_handle_is_not_recycled():
    """An Event handle the caller kept must stay valid (cancellable)
    after it fires — recycling may only claim dropped handles."""
    q = EventQueue()
    fired = []
    held = q.schedule(1, lambda: fired.append("held"))
    # a burst of dropped-handle events to churn the free list
    for i in range(32):
        q.schedule(2, lambda i=i: fired.append(i))
    q.run(until=1)
    assert fired == ["held"]
    # the held entry must not have been recycled into a pending event:
    # cancelling it now must not cancel anything scheduled above
    held.cancel()
    q.run()
    assert fired == ["held"] + list(range(32))


def test_recycled_slots_preserve_fifo_order():
    """Slot reuse must never perturb same-cycle FIFO order."""
    q = EventQueue()
    order = []
    # phase 1: fire-and-drop events to populate the free list
    for i in range(8):
        q.schedule(1, lambda: None)
    q.run()
    # phase 2: recycled slots must still dispatch in schedule order
    for i in range(16):
        q.schedule(5, lambda i=i: order.append(i))
    q.run()
    assert order == list(range(16))


def test_cancel_after_fire_is_harmless():
    q = EventQueue()
    fired = []
    ev = q.schedule(1, lambda: fired.append("x"))
    q.run()
    ev.cancel()  # no-op: already fired
    q.schedule(1, lambda: fired.append("y"))
    q.run()
    assert fired == ["x", "y"]


# ---------------------------------------------------------------------------
# property test: dispatch is a stable sort by (cycle, insertion seq)
# ---------------------------------------------------------------------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


@settings(max_examples=200, deadline=None)
@given(
    delays=st.lists(st.integers(min_value=0, max_value=30),
                    min_size=1, max_size=60),
    cancel_mask=st.lists(st.booleans(), min_size=60, max_size=60),
)
def test_dispatch_is_stable_sort_by_cycle_then_seq(delays, cancel_mask):
    """Random schedules dispatch exactly as the stable sort of
    (absolute cycle, insertion order), with cancelled events removed."""
    q = EventQueue()
    fired = []
    handles = []
    for i, d in enumerate(delays):
        handles.append(q.schedule(d, lambda i=i: fired.append(i)))
    cancelled = set()
    for i, (h, kill) in enumerate(zip(handles, cancel_mask)):
        if kill:
            h.cancel()
            cancelled.add(i)
    q.run()
    expected = [
        i for _, i in sorted(
            (d, i) for i, d in enumerate(delays) if i not in cancelled
        )
    ]
    assert fired == expected


@settings(max_examples=100, deadline=None)
@given(
    spec=st.lists(
        st.tuples(st.integers(min_value=0, max_value=10),   # outer delay
                  st.integers(min_value=0, max_value=10)),  # nested delay
        min_size=1, max_size=25,
    ),
)
def test_nested_schedules_keep_global_order(spec):
    """Events scheduled from inside callbacks obey the same (cycle,
    seq) order as everything else — including same-cycle re-entry."""
    q = EventQueue()
    fired = []
    expected_times = []

    def make_nested(tag, t_abs):
        def nested():
            fired.append((q.now, tag))
        return nested

    def make_outer(i, nested_delay):
        def outer():
            t_nested = q.now + nested_delay
            expected_times.append((q.now, ("outer", i)))
            expected_times.append((t_nested, ("nested", i)))
            fired.append((q.now, ("outer", i)))
            q.schedule(nested_delay, make_nested(("nested", i), t_nested))
        return outer

    for i, (outer_delay, nested_delay) in enumerate(spec):
        q.schedule(outer_delay, make_outer(i, nested_delay))
    q.run()
    # every event fired at its scheduled absolute time...
    assert sorted(fired) == sorted(expected_times)
    # ...and the dispatch sequence is non-decreasing in time
    times = [t for t, _ in fired]
    assert times == sorted(times)
