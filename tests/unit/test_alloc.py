"""Unit tests for the simulated-memory allocator."""

import pytest

from repro.common.addr import AddressMap
from repro.common.errors import ConfigError
from repro.runtime.alloc import Allocator


@pytest.fixture
def alloc():
    amap = AddressMap(line_bytes=32, word_bytes=4, num_banks=8,
                      interleave_bytes=512)
    return Allocator(amap)


def test_alloc_is_word_aligned_and_disjoint(alloc):
    a = alloc.alloc(3)
    b = alloc.alloc(5)
    assert a % 4 == 0 and b % 4 == 0
    assert b >= a + 3 * 4


def test_alloc_line_padding(alloc):
    a = alloc.alloc_line(2)     # 2 words but pads to a full line
    b = alloc.alloc_line(1)
    assert a % 32 == 0 and b % 32 == 0
    assert b - a >= 32
    assert not alloc.amap.same_line(a, b)


def test_alloc_words_padded_private_lines(alloc):
    words = alloc.alloc_words_padded(4)
    lines = {alloc.amap.line_of(w) for w in words}
    assert len(lines) == 4


def test_alloc_same_bank_targets_bank(alloc):
    data = alloc.word()
    lock = alloc.alloc_same_bank(data, 9)
    assert alloc.amap.home_bank(lock) == alloc.amap.home_bank(data)
    # line-aligned and the allocation stays inside one interleave block
    assert lock % 32 == 0
    end = lock + 9 * 4 - 1
    assert lock // 512 == end // 512


def test_alloc_same_bank_never_overlaps_prior_allocations(alloc):
    data = alloc.alloc_line(64)  # 8 lines
    lock = alloc.alloc_same_bank(data, 8)
    assert lock >= data + 64 * 4


def test_alloc_same_bank_rejects_oversized(alloc):
    data = alloc.word()
    with pytest.raises(ConfigError):
        alloc.alloc_same_bank(data, 1000)


def test_words_of(alloc):
    base = alloc.alloc(4)
    assert alloc.words_of(base, 3) == [base, base + 4, base + 8]


def test_bad_alloc_rejected(alloc):
    with pytest.raises(ConfigError):
        alloc.alloc(0)
