"""Direct unit tests of the fence-policy classes."""

import pytest

from repro.common.params import FenceDesign, FenceFlavour, FenceRole
from repro.fences.base import PendingFence, make_policy
from repro.fences.cfence import CFenceTable
from repro.sim.machine import Machine

from tests.support import tiny_params


def core_for(design, num_cores=2):
    m = Machine(tiny_params(design, num_cores=num_cores))
    return m.cores[0]


def test_make_policy_covers_every_design():
    core = core_for(FenceDesign.S_PLUS)
    for design in FenceDesign:
        policy = make_policy(design, core)
        assert policy.design is design


def test_ws_plus_promotes_only_pre_fence_bouncing_entries():
    core = core_for(FenceDesign.WS_PLUS)
    e1 = core.wb.push(0x20, 1, 0x20)
    e2 = core.wb.push(0x40, 1, 0x40)
    e1.bouncing = True
    pf = PendingFence(fence_id=1, last_store_id=e1.store_id)
    core.pending_fences.append(pf)
    assert core.policy.on_wf_retire(pf) is True
    assert e1.ordered and not e2.ordered
    # a later bounce of a covered entry promotes too
    e1b = core.wb.push(0x60, 1, 0x60)
    e1b.bouncing = True
    core.policy.on_pre_store_bounce(e1b)
    assert not e1b.ordered  # post-fence entry: not covered
    e1.ordered = False
    core.policy.on_pre_store_bounce(e1)
    assert e1.ordered


def test_sw_plus_promotion_carries_word_mask():
    core = core_for(FenceDesign.SW_PLUS)
    entry = core.wb.push(0x24, 1, 0x20)  # word 1 of the line
    entry.bouncing = True
    pf = PendingFence(fence_id=1, last_store_id=entry.store_id)
    core.pending_fences.append(pf)
    core.policy.on_wf_retire(pf)
    assert entry.ordered and entry.word_mask == 0b10


def test_w_plus_flags():
    core = core_for(FenceDesign.W_PLUS)
    assert core.policy.needs_checkpoint
    assert core.policy.needs_deadlock_monitor
    assert core.policy.on_wf_retire(PendingFence(1, 1)) is True


def test_wee_demotes_multibank_pending_set():
    core = core_for(FenceDesign.WEE)
    block = core.params.bank_interleave_bytes
    core.wb.push(0x0, 1, 0x0)            # bank 0
    core.wb.push(block, 1, block)        # bank 1
    pf = PendingFence(fence_id=1, last_store_id=core.wb.newest_store_id())
    assert core.policy.on_wf_retire(pf) is False


def test_wee_completion_blocked_until_grt_reply():
    core = core_for(FenceDesign.WEE)
    core.wb.push(0x0, 1, 0x0)
    pf = PendingFence(fence_id=1, last_store_id=core.wb.newest_store_id())
    assert core.policy.on_wf_retire(pf) is True
    assert core.policy.completion_blocked(pf)
    pf.wee_remote_ps = set()
    assert not core.policy.completion_blocked(pf)


def test_lmf_cost_tracks_line_state():
    from repro.fences.lmf import LMF_FAST_CYCLES
    from repro.mem.cache import LineState
    core = core_for(FenceDesign.LMF)
    # empty WB: fast
    assert core.policy.sf_base_cost() == LMF_FAST_CYCLES
    entry = core.wb.push(0x20, 1, 0x20)
    # line not cached writable: fallback
    assert core.policy.sf_base_cost() == core.params.sf_base_cycles
    core.l1.cache.insert(0x20, LineState.M)
    assert core.policy.sf_base_cost() == LMF_FAST_CYCLES


def test_cfence_table_serializes_and_notifies():
    table = CFenceTable()
    assert table.associates_of(0) == []
    table.register(0, 10)
    assert table.associates_of(1) == [0]
    assert table.associates_of(0) == []  # never your own associate
    fired = []
    table.wait(lambda: fired.append(1))
    table.clear(0)
    assert fired == [1]
    assert table.associates_of(1) == []
    table.clear(0)  # idempotent
