"""Unit tests for the coherent memory image."""

from repro.mem.memory import INIT_TAG, MemoryImage


def test_untouched_memory_reads_zero():
    img = MemoryImage()
    assert img.read(0x1000) == 0
    assert img.last_writer(0x1000) == INIT_TAG


def test_write_then_read():
    img = MemoryImage()
    tag = img.write(0x40, 7, core=2)
    assert img.read(0x40) == 7
    assert img.last_writer(0x40) == tag
    assert tag[0] == 2


def test_write_serials_are_monotone():
    img = MemoryImage()
    t1 = img.write(0x0, 1, core=0)
    t2 = img.write(0x4, 2, core=1)
    t3 = img.write(0x0, 3, core=0)
    assert t1[1] < t2[1] < t3[1]


def test_rmw_is_one_event():
    img = MemoryImage()
    img.write(0x8, 10, core=0)
    old, new = img.rmw(0x8, lambda v: v + 5, core=1)
    assert (old, new) == (10, 15)
    assert img.read(0x8) == 15


def test_observer_sees_loads_and_stores():
    img = MemoryImage()
    seen = []
    img.observer = lambda *args: seen.append(args)
    img.write(0x4, 9, core=1)
    img.read(0x4, core=0)
    kinds = [s[0] for s in seen]
    assert kinds == ["store", "load"]
    # the load reports the tag of the store it read
    assert seen[1][4] == seen[0][4]


def test_poke_peek_bypass_observer():
    img = MemoryImage()
    seen = []
    img.observer = lambda *args: seen.append(args)
    img.poke(0x4, 42)
    assert img.peek(0x4) == 42
    assert seen == []


def test_len_counts_distinct_words():
    img = MemoryImage()
    img.write(0x0, 1)
    img.write(0x0, 2)
    img.write(0x4, 3)
    assert len(img) == 2
