"""Unit tests for the Bypass Set."""

from repro.core.bypass_set import BloomFilter, BypassSet


def test_add_and_line_match():
    bs = BypassSet(capacity=4)
    bs.add(0x100, word_mask=0b1, fence_id=1)
    assert bs.match_line(0x100)
    assert not bs.match_line(0x120)
    assert len(bs) == 1


def test_duplicate_line_merges_masks_and_keeps_youngest_fence():
    bs = BypassSet(capacity=2, fine_grain=True)
    bs.add(0x100, 0b001, fence_id=1)
    bs.add(0x100, 0b100, fence_id=2)
    assert len(bs) == 1
    assert bs.true_sharing(0x100, 0b001)
    assert bs.true_sharing(0x100, 0b100)
    assert not bs.true_sharing(0x100, 0b010)
    # entry tagged with the youngest covering fence: fence 1 completing
    # must not clear it
    assert bs.clear_upto(1) == 0
    assert bs.match_line(0x100)
    assert bs.clear_upto(2) == 1
    assert not bs.match_line(0x100)


def test_coarse_grain_treats_any_match_as_true_sharing():
    bs = BypassSet(capacity=2, fine_grain=False)
    bs.add(0x100, 0b001, fence_id=1)
    assert bs.true_sharing(0x100, 0b1000)
    assert not bs.true_sharing(0x200, 0b1)


def test_capacity_and_full():
    bs = BypassSet(capacity=2)
    bs.add(0x100, 0b1, 1)
    bs.add(0x120, 0b1, 1)
    assert bs.full
    # re-adding a present line is allowed even when full
    bs.add(0x100, 0b10, 1)
    assert len(bs) == 2


def test_clear_upto_is_selective():
    bs = BypassSet(capacity=8)
    bs.add(0x100, 0b1, fence_id=1)
    bs.add(0x200, 0b1, fence_id=2)
    bs.add(0x300, 0b1, fence_id=3)
    assert bs.clear_upto(2) == 2
    assert not bs.match_line(0x100)
    assert not bs.match_line(0x200)
    assert bs.match_line(0x300)


def test_bounce_flag_lifecycle():
    bs = BypassSet(capacity=4)
    bs.add(0x100, 0b1, 1)
    assert not bs.bounced_since_clear
    bs.note_bounce()
    assert bs.bounced_since_clear
    bs.clear_upto(1)
    # set emptied: the deadlock-suspicion signal resets
    assert bs.empty and not bs.bounced_since_clear


def test_clear_all():
    bs = BypassSet(capacity=4)
    bs.add(0x100, 0b1, 1)
    bs.add(0x200, 0b1, 2)
    bs.note_bounce()
    assert bs.clear_all() == 2
    assert bs.empty and not bs.bounced_since_clear
    assert not bs.match_line(0x100)


def test_bloom_filter_no_false_negatives():
    bf = BloomFilter(bits=64, hashes=2)
    lines = [i * 32 for i in range(50)]
    for line in lines:
        bf.add(line)
    assert all(bf.maybe_contains(line) for line in lines)


def test_bloom_rebuild_after_clear():
    bs = BypassSet(capacity=8)
    for i in range(6):
        bs.add(0x100 + i * 32, 0b1, fence_id=1 + (i % 2))
    bs.clear_upto(1)
    # survivors still match after the bloom rebuild
    for i in range(6):
        expected = (i % 2) == 1
        assert bs.match_line(0x100 + i * 32) is expected
