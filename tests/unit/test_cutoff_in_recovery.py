"""A ``max_cycles`` cutoff that lands inside a W+ recovery drain is a
budget artifact, not a hang — ``SimResult.completed`` goes False and
``stats.cutoff_in_recovery`` distinguishes it from a genuine timeout.
"""

from repro.common.params import FenceDesign, FenceRole
from repro.core import isa as ops
from repro.sim.machine import Machine
from repro.workloads import litmus


def _sb_all_wf():
    """SB with an all-wf fence group under W+: deterministically
    deadlocks and recovers (paper §3.3.3)."""
    machine = Machine(litmus.litmus_params(FenceDesign.W_PLUS), seed=1)
    x, y = machine.alloc.word(), machine.alloc.word()
    pads = [machine.alloc.word() for _ in range(2)]

    def thread(me, my_var, other_var):
        def fn(ctx):
            yield from litmus._warmup([x, y])
            yield ops.Store(pads[me], 7)
            yield ops.Store(my_var, 1)
            yield ops.Fence(FenceRole.CRITICAL)
            value = yield ops.Load(other_var)
            yield ops.Note(("r", value))
        return fn

    machine.spawn(thread(0, x, y))
    machine.spawn(thread(1, y, x))
    return machine


def test_full_run_recovers_and_is_not_flagged():
    result = _sb_all_wf().run()
    assert result.completed
    assert result.stats.wplus_recoveries >= 1
    assert not result.stats.cutoff_in_recovery


def test_cutoff_during_recovery_drain_is_flagged():
    full = _sb_all_wf().run()
    # sweep budgets across the whole run; at least one must land inside
    # the recovery drain window (rollback done, write buffer still
    # draining), and every flagged run must also report incomplete
    flagged = []
    for budget in range(10, full.cycles + 1, 10):
        result = _sb_all_wf().run(max_cycles=budget)
        if result.stats.cutoff_in_recovery:
            assert not result.completed, (
                f"budget {budget}: cutoff_in_recovery with completed=True"
            )
            flagged.append(budget)
    assert flagged, "no budget cut the run inside its recovery window"
    # the window is an interval: recovery is one contiguous drain here
    assert flagged == list(range(flagged[0], flagged[-1] + 10, 10))


def test_cutoff_outside_recovery_is_not_flagged():
    # a budget long before the deadlock (mid-warmup): incomplete,
    # but not a recovery cutoff
    result = _sb_all_wf().run(max_cycles=200)
    assert not result.completed
    assert not result.stats.cutoff_in_recovery
