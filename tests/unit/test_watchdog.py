"""The global no-progress watchdog."""

import pytest

from repro.common.errors import DeadlockError
from repro.common.params import FenceDesign, FenceRole
from repro.core import isa as ops
from repro.sim.machine import Machine

from tests.support import run_threads, tiny_params


def test_watchdog_silent_on_healthy_runs():
    m = Machine(tiny_params(num_cores=2, watchdog_interval=500))
    x = m.alloc.word()

    def t(ctx):
        for i in range(40):
            yield ops.Store(x + 64 * (ctx.tid + 1), i)
            yield ops.Compute(100)

    res = run_threads(m, t, t)
    assert res.completed


def test_watchdog_tolerates_long_legitimate_stalls():
    """A memory-latency stall is progress-free for ~200 cycles but the
    default interval is far larger; no false positive."""
    m = Machine(tiny_params(num_cores=1))
    words = [m.alloc.word() for _ in range(20)]

    def t(ctx):
        for w in words:
            yield ops.Load(w)  # cold misses back to back

    res = run_threads(m, t)
    assert res.completed


def test_watchdog_reports_blocked_core_details():
    with pytest.raises(DeadlockError) as exc:
        from repro.workloads.litmus import store_buffering
        store_buffering(
            FenceDesign.W_PLUS,
            roles=(FenceRole.CRITICAL, FenceRole.CRITICAL),
            recovery=False,
        )
    message = str(exc.value)
    assert "bouncing" in message or "BS holds" in message
    assert exc.value.blocked_cores


def _all_wf_deadlock_machine(recovery: bool, interval: int = 2000):
    """A real W+ all-wf fence-group collision (paper Fig. 3a): both
    threads' pre-fence writes bounce off the other core's Bypass Set.
    With ``recovery=False`` (the naive design) the machine deadlocks;
    with recovery enabled W+ rolls back and completes."""
    m = Machine(tiny_params(
        design=FenceDesign.W_PLUS, num_cores=2,
        watchdog_interval=interval,
        wplus_recovery_enabled=recovery,
    ))
    x, y = m.alloc.word(), m.alloc.word()
    pads = [m.alloc.word() for _ in range(2)]

    def thread(me, mine, other):
        def fn(ctx):
            yield ops.Load(x)
            yield ops.Load(y)
            yield ops.Compute(1600)       # align after warmup
            yield ops.Store(pads[me], 7)  # cold pad keeps the wf open
            yield ops.Store(mine, 1)
            yield ops.Fence(FenceRole.CRITICAL)
            yield ops.Load(other)
        return fn

    m.spawn(thread(0, x, y))
    m.spawn(thread(1, y, x))
    return m


def test_watchdog_fires_within_its_interval():
    """Once progress stops, at most two watchdog periods may elapse
    before the error surfaces (one to sample, one to confirm)."""
    interval = 2000
    m = _all_wf_deadlock_machine(recovery=False, interval=interval)
    with pytest.raises(DeadlockError):
        m.run()
    # warmup ends well under one interval; the deadlock forms right
    # after, so the run must die within a few periods of its start
    assert m.queue.now <= 4 * interval


def test_watchdog_describe_names_the_bouncing_cores():
    m = _all_wf_deadlock_machine(recovery=False)
    with pytest.raises(DeadlockError) as exc:
        m.run()
    message = str(exc.value)
    assert "P0[" in message and "P1[" in message
    assert "store bouncing" in message
    assert sorted(exc.value.blocked_cores) == [0, 1]


def test_recovery_counters_increment_instead_of_deadlock():
    """Same collision, recovery on: the watchdog stays silent and the
    MachineStats recovery counters record the rollback."""
    m = _all_wf_deadlock_machine(recovery=True)
    result = m.run()
    assert result.completed
    assert m.stats.wplus_timeouts >= 1
    assert m.stats.wplus_recoveries >= 1


def test_stop_is_idempotent_after_all_cores_finish():
    """Regression: when every core finished, _tick used to leave
    self._event pointing at its own already-fired event, so a later
    stop() cancelled a dead event."""
    m = Machine(tiny_params(num_cores=2, watchdog_interval=500))
    x = m.alloc.word()

    def t(ctx):
        for i in range(40):
            yield ops.Store(x + 64 * (ctx.tid + 1), i)
            yield ops.Compute(100)

    res = run_threads(m, t, t)
    assert res.completed
    # Machine.run already called stop(); the handle must be cleared and
    # repeated stops must be no-ops
    assert m._watchdog._event is None
    m._watchdog.stop()
    m._watchdog.stop()


def test_stop_is_idempotent_after_a_deadlock_raise():
    """Regression: _tick raised DeadlockError while _event still
    pointed at the fired event."""
    m = _all_wf_deadlock_machine(recovery=False)
    with pytest.raises(DeadlockError):
        m.run()
    assert m._watchdog._event is None
    m._watchdog.stop()  # must not touch a fired event
    m._watchdog.stop()


def test_watchdog_restarts_after_stop():
    """start() after stop() re-arms cleanly (one fresh live event)."""
    m = Machine(tiny_params(num_cores=1, watchdog_interval=500))
    wd = m._watchdog
    wd.start()
    first = wd._event
    wd.stop()
    assert wd._event is None
    wd.start()
    assert wd._event is not None and wd._event is not first
    wd.stop()


def test_watchdog_counts_drain_as_progress():
    """A finished thread with a draining write buffer is progress, not
    deadlock (regression: the watchdog once only looked at op counts)."""
    m = Machine(tiny_params(num_cores=1, watchdog_interval=300))
    words = [m.alloc.word() for _ in range(8)]

    def t(ctx):
        for w in words:
            yield ops.Store(w, 1)  # thread ends with a full buffer

    res = run_threads(m, t)
    assert res.completed
    assert all(m.image.peek(w) == 1 for w in words)
