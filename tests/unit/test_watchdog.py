"""The global no-progress watchdog."""

import pytest

from repro.common.errors import DeadlockError
from repro.common.params import FenceDesign, FenceRole
from repro.core import isa as ops
from repro.sim.machine import Machine

from tests.support import run_threads, tiny_params


def test_watchdog_silent_on_healthy_runs():
    m = Machine(tiny_params(num_cores=2, watchdog_interval=500))
    x = m.alloc.word()

    def t(ctx):
        for i in range(40):
            yield ops.Store(x + 64 * (ctx.tid + 1), i)
            yield ops.Compute(100)

    res = run_threads(m, t, t)
    assert res.completed


def test_watchdog_tolerates_long_legitimate_stalls():
    """A memory-latency stall is progress-free for ~200 cycles but the
    default interval is far larger; no false positive."""
    m = Machine(tiny_params(num_cores=1))
    words = [m.alloc.word() for _ in range(20)]

    def t(ctx):
        for w in words:
            yield ops.Load(w)  # cold misses back to back

    res = run_threads(m, t)
    assert res.completed


def test_watchdog_reports_blocked_core_details():
    with pytest.raises(DeadlockError) as exc:
        from repro.workloads.litmus import store_buffering
        store_buffering(
            FenceDesign.W_PLUS,
            roles=(FenceRole.CRITICAL, FenceRole.CRITICAL),
            recovery=False,
        )
    message = str(exc.value)
    assert "bouncing" in message or "BS holds" in message
    assert exc.value.blocked_cores


def test_watchdog_counts_drain_as_progress():
    """A finished thread with a draining write buffer is progress, not
    deadlock (regression: the watchdog once only looked at op counts)."""
    m = Machine(tiny_params(num_cores=1, watchdog_interval=300))
    words = [m.alloc.word() for _ in range(8)]

    def t(ctx):
        for w in words:
            yield ops.Store(w, 1)  # thread ends with a full buffer

    res = run_threads(m, t)
    assert res.completed
    assert all(m.image.peek(w) == 1 for w in words)
