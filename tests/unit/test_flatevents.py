"""Unit tests for the flat (table-driven) event kernel.

Mirrors :mod:`tests.unit.test_events` through the backend-portable
protocol — handles are opaque, cancellation goes through
``queue.cancel`` — plus the flat-specific machinery: handler
interning, packed-key layout, seq renumbering, the big-key escape
hatch, and the compiled/pure-Python loop boundary.
"""

import pytest

from repro.common.errors import SimulatorError
from repro.common.flatevents import (
    _C_KEY_LIMIT,
    _SEQ_BITS,
    _SEQ_MASK,
    FlatEventQueue,
)


def test_events_fire_in_time_order():
    q = FlatEventQueue()
    fired = []
    q.schedule(10, lambda: fired.append("b"))
    q.schedule(5, lambda: fired.append("a"))
    q.schedule(20, lambda: fired.append("c"))
    q.run()
    assert fired == ["a", "b", "c"]
    assert q.now == 20


def test_same_cycle_events_fire_in_schedule_order():
    q = FlatEventQueue()
    fired = []
    for i in range(5):
        q.schedule(7, lambda i=i: fired.append(i))
    q.run()
    assert fired == [0, 1, 2, 3, 4]


def test_negative_delay_rejected():
    q = FlatEventQueue()
    with pytest.raises(SimulatorError):
        q.schedule(-1, lambda: None)


def test_cancelled_event_does_not_fire():
    q = FlatEventQueue()
    fired = []
    h = q.schedule(5, lambda: fired.append("x"))
    q.schedule(3, lambda: fired.append("y"))
    q.cancel(h)
    q.run()
    assert fired == ["y"]


def test_cancel_none_is_a_noop():
    q = FlatEventQueue()
    q.cancel(None)


def test_events_scheduled_during_execution():
    q = FlatEventQueue()
    fired = []

    def first():
        fired.append("first")
        q.schedule(5, lambda: fired.append("nested"))

    q.schedule(1, first)
    q.run()
    assert fired == ["first", "nested"]
    assert q.now == 6


def test_run_until_stops_clock_at_limit():
    q = FlatEventQueue()
    fired = []
    q.schedule(5, lambda: fired.append("a"))
    q.schedule(50, lambda: fired.append("b"))
    q.run(until=10)
    assert fired == ["a"]
    assert q.now == 10
    q.run()
    assert fired == ["a", "b"]


def test_stop_when_predicate():
    q = FlatEventQueue()
    count = []

    def tick():
        count.append(1)
        q.schedule(1, tick)

    q.schedule(0, tick)
    q.run(stop_when=lambda: len(count) >= 3)
    assert len(count) == 3


def test_schedule_at_absolute_time():
    q = FlatEventQueue()
    fired = []
    q.schedule(3, lambda: q.schedule_at(10, lambda: fired.append(q.now)))
    q.run()
    assert fired == [10]


def test_len_counts_pending_not_cancelled():
    q = FlatEventQueue()
    h1 = q.schedule(1, lambda: None)
    q.schedule(2, lambda: None)
    assert len(q) == 2
    q.cancel(h1)
    assert len(q) == 1


def test_empty_and_peek():
    q = FlatEventQueue()
    assert q.empty()
    assert q.peek_time() is None
    q.schedule(4, lambda: None)
    assert not q.empty()
    assert q.peek_time() == 4


def test_pending_events_reports_live_labelled_times():
    q = FlatEventQueue()
    q.schedule(4, lambda: None, "keep")
    dead = q.schedule(6, lambda: None, "dead")
    q.schedule(9, lambda: None)  # unlabelled
    q.cancel(dead)
    assert sorted(q.pending_events()) == [(4, "keep"), (9, "")]


def test_step_runs_one_event_and_advances_clock():
    q = FlatEventQueue()
    fired = []
    q.schedule(2, lambda: fired.append("a"))
    q.schedule(5, lambda: fired.append("b"))
    assert q.step()
    assert (fired, q.now) == (["a"], 2)
    assert q.step()
    assert (fired, q.now) == (["a", "b"], 5)
    assert not q.step()  # drained


def test_step_skips_cancelled_events():
    q = FlatEventQueue()
    fired = []
    h = q.schedule(1, lambda: fired.append("x"))
    q.schedule(2, lambda: fired.append("y"))
    q.cancel(h)
    assert q.step()
    assert fired == ["y"]


def test_executed_counter_tracks_dispatches():
    q = FlatEventQueue()
    for _ in range(4):
        q.schedule(1, lambda: None)
    cancelled = q.schedule(1, lambda: None)
    q.cancel(cancelled)
    q.run()
    assert q.executed == 4


def test_executed_is_current_inside_handlers():
    """Pumps read ``executed`` mid-run to detect idle windows; the
    counter must include the event being dispatched."""
    q = FlatEventQueue()
    seen = []
    for _ in range(3):
        q.schedule(1, lambda: seen.append(q.executed))
    q.run()
    assert seen == [1, 2, 3]


# ---------------------------------------------------------------------------
# wake-on-event (request_stop / clear_stop)
# ---------------------------------------------------------------------------


def test_request_stop_halts_before_next_event():
    q = FlatEventQueue()
    fired = []
    q.schedule(1, lambda: (fired.append("a"), q.request_stop()))
    q.schedule(2, lambda: fired.append("b"))
    q.run()
    assert fired == ["a"]
    assert q.stop_requested


def test_clear_stop_resumes_where_it_left_off():
    q = FlatEventQueue()
    fired = []
    q.schedule(1, lambda: (fired.append("a"), q.request_stop()))
    q.schedule(2, lambda: fired.append("b"))
    q.run()
    assert fired == ["a"]
    q.clear_stop()
    q.run()
    assert fired == ["a", "b"]
    assert q.now == 2


def test_stop_requested_midbatch_preserves_remaining_events():
    """Stopping during a same-cycle batch must not lose batch-mates."""
    q = FlatEventQueue()
    fired = []
    q.schedule(3, lambda: (fired.append("a"), q.request_stop()))
    q.schedule(3, lambda: fired.append("b"))
    q.run()
    assert fired == ["a"]
    q.clear_stop()
    q.run()
    assert fired == ["a", "b"]


# ---------------------------------------------------------------------------
# flat-specific machinery
# ---------------------------------------------------------------------------


def test_handler_interning_dispatches_by_table_index():
    q = FlatEventQueue()
    fired = []

    def hot():
        fired.append(q.now)

    hid = q.register_handler(hot)
    assert q.register_handler(hot) == hid  # idempotent
    h = q.schedule(3, hot)
    # the record is the integer id, not the callable
    assert q._fn[h & _SEQ_MASK] == hid
    q.schedule(5, lambda: fired.append("closure"))  # uninterned path
    q.run()
    assert fired == [3, "closure"]


def test_packed_key_layout():
    q = FlatEventQueue()
    h = q.schedule(7, lambda: None)
    assert h >> _SEQ_BITS == 7
    assert h & _SEQ_MASK == 1


def test_handles_never_reused():
    """Seqs retire forever: a stale handle can never cancel a later
    event (the flat kernel's answer to free-list recycling)."""
    q = FlatEventQueue()
    fired = []
    stale = q.schedule(1, lambda: fired.append("one"))
    q.run()
    q.cancel(stale)  # already fired: must be a no-op
    for i in range(8):
        q.schedule(1, lambda i=i: fired.append(i))
    q.cancel(stale)
    q.run()
    assert fired == ["one"] + list(range(8))


def test_resequence_preserves_order_and_labels():
    q = FlatEventQueue()
    fired = []
    # push _seq close to the renumbering threshold
    q._seq = _SEQ_MASK - 2
    handles = [
        q.schedule(5, lambda i=i: fired.append(i), f"lab{i}")
        for i in range(6)  # crosses the 2^32 boundary mid-burst
    ]
    assert q._seq <= 8  # renumbering happened and reset the counter
    q.cancel(handles[2])
    labels = {label for _, label in q.pending_events()}
    assert labels == {f"lab{i}" for i in range(6) if i != 2}
    q.run()
    assert fired == [i for i in range(6) if i != 2]


def test_unsafe_schedule_at_plants_past_events():
    q = FlatEventQueue()
    q.schedule(10, lambda: None, "future")
    q.unsafe_schedule_at(-5, lambda: None, "ghost")
    assert q.peek_time() == -5
    assert (-5, "ghost") in q.pending_events()


def test_big_keys_fall_back_to_the_python_loop():
    """Keys beyond the C int64 range flip ``_big``; the run must still
    dispatch correctly through the pure-Python loop."""
    q = FlatEventQueue()
    fired = []
    far = 1 << 40  # time << 32 is beyond 2^62
    q.schedule(far, lambda: fired.append("far"))
    assert q._big
    q.schedule(1, lambda: fired.append("near"))
    q.run(until=2)
    assert fired == ["near"]
    q.run()
    assert fired == ["near", "far"]
    assert q.now == far


def test_big_key_mid_run_hands_off_cleanly():
    """A handler scheduling a beyond-int64 key mid-run must not derail
    dispatch (the compiled loop delegates the rest of the run)."""
    q = FlatEventQueue()
    fired = []
    far = 1 << 40

    def plant():
        fired.append("plant")
        q.schedule(far, lambda: fired.append("far"))
        q.schedule(1, lambda: fired.append("near"))

    q.schedule(1, plant)
    q.run()
    assert fired == ["plant", "near", "far"]
    assert q.now == 1 + far


def test_idle_horizon_sees_past_elastic_events():
    q = FlatEventQueue()
    assert q.idle_horizon() is None
    pump = q.schedule(5, lambda: None, "pump")
    q.mark_elastic(pump)
    assert q.idle_horizon() is None  # only elastic work pends
    q.schedule(40, lambda: None, "work")
    assert q.idle_horizon() == 40
    cancelled = q.schedule(20, lambda: None, "gone")
    q.cancel(cancelled)
    assert q.idle_horizon() == 40  # cancelled events are not a horizon


def test_mark_elastic_prunes_dead_seqs():
    q = FlatEventQueue()
    for i in range(80):  # > the 64-entry pruning threshold
        h = q.schedule(1, lambda: None)
        q.mark_elastic(h)
    q.run()
    live = q.schedule(5, lambda: None)
    q.mark_elastic(live)
    assert len(q._elastic) <= 65


# ---------------------------------------------------------------------------
# compiled core boundary
# ---------------------------------------------------------------------------


def test_env_pin_disables_the_compiled_core(monkeypatch):
    monkeypatch.setenv("REPRO_FLAT_NO_C", "1")
    assert FlatEventQueue()._use_c is False


def test_exception_in_handler_leaves_consistent_state():
    """An exception propagates with now/executed already published and
    the remaining events intact — on whichever loop is active."""
    q = FlatEventQueue()
    fired = []

    def boom():
        raise RuntimeError("handler bug")

    q.schedule(2, lambda: fired.append("a"))
    q.schedule(4, boom)
    q.schedule(6, lambda: fired.append("b"))
    with pytest.raises(RuntimeError, match="handler bug"):
        q.run()
    assert fired == ["a"]
    assert q.now == 4
    assert q.executed == 2  # boom itself was dispatched
    q.run()  # the queue remains usable
    assert fired == ["a", "b"]


# ---------------------------------------------------------------------------
# property test: dispatch is a stable sort by (cycle, insertion seq)
# ---------------------------------------------------------------------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


@settings(max_examples=200, deadline=None)
@given(
    delays=st.lists(st.integers(min_value=0, max_value=30),
                    min_size=1, max_size=60),
    cancel_mask=st.lists(st.booleans(), min_size=60, max_size=60),
)
def test_dispatch_is_stable_sort_by_cycle_then_seq(delays, cancel_mask):
    """Random schedules dispatch exactly as the stable sort of
    (absolute cycle, insertion order), with cancelled events removed."""
    q = FlatEventQueue()
    fired = []
    handles = []
    for i, d in enumerate(delays):
        handles.append(q.schedule(d, lambda i=i: fired.append(i)))
    cancelled = set()
    for i, (h, kill) in enumerate(zip(handles, cancel_mask)):
        if kill:
            q.cancel(h)
            cancelled.add(i)
    q.run()
    expected = [
        i for _, i in sorted(
            (d, i) for i, d in enumerate(delays) if i not in cancelled
        )
    ]
    assert fired == expected


@settings(max_examples=100, deadline=None)
@given(
    spec=st.lists(
        st.tuples(st.integers(min_value=0, max_value=10),   # outer delay
                  st.integers(min_value=0, max_value=10)),  # nested delay
        min_size=1, max_size=25,
    ),
)
def test_nested_schedules_keep_global_order(spec):
    """Events scheduled from inside callbacks obey the same (cycle,
    seq) order as everything else — including same-cycle re-entry."""
    q = FlatEventQueue()
    fired = []
    expected_times = []

    def make_nested(tag, t_abs):
        def nested():
            fired.append((q.now, tag))
        return nested

    def make_outer(i, nested_delay):
        def outer():
            t_nested = q.now + nested_delay
            expected_times.append((q.now, ("outer", i)))
            expected_times.append((t_nested, ("nested", i)))
            fired.append((q.now, ("outer", i)))
            q.schedule(nested_delay, make_nested(("nested", i), t_nested))
        return outer

    for i, (outer_delay, nested_delay) in enumerate(spec):
        q.schedule(outer_delay, make_outer(i, nested_delay))
    q.run()
    # every event fired at its scheduled absolute time...
    assert sorted(fired) == sorted(expected_times)
    # ...and the dispatch sequence is non-decreasing in time
    times = [t for t, _ in fired]
    assert times == sorted(times)
