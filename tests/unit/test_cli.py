"""CLI smoke tests (``python -m repro``)."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_list(capsys):
    code, out = run_cli(capsys, "list")
    assert code == 0
    assert "fib" in out and "TreeOverwrite" in out and "vacation" in out
    assert "S+" in out and "Wee" in out


def test_run_single_design(capsys):
    code, out = run_cli(capsys, "run", "fib", "--design", "S+",
                        "--cores", "2", "--scale", "0.06")
    assert code == 0
    assert "fib under S+" in out
    assert "tasks executed" in out


def test_run_unknown_workload(capsys):
    code = main(["run", "nope", "--cores", "2"])
    assert code == 2


def test_litmus_sb(capsys):
    code, out = run_cli(capsys, "litmus", "sb", "--design", "W+")
    assert code == 0
    assert "SC preserved" in out


def test_litmus_mp_all_designs(capsys):
    from repro.common.params import FenceDesign
    code, out = run_cli(capsys, "litmus", "mp")
    assert code == 0
    assert out.count("SC preserved") == len(FenceDesign)


def test_table_static(capsys):
    for n, marker in ((1, "WS+"), (2, "140 entries"), (3, "cilksort")):
        code, out = run_cli(capsys, "table", str(n))
        assert code == 0 and marker in out


def test_table_out_of_range(capsys):
    assert main(["table", "9"]) == 2


def test_figure_out_of_range(capsys):
    assert main(["figure", "1"]) == 2


def test_design_argument_accepts_both_spellings():
    parser = build_parser()
    args = parser.parse_args(["run", "fib", "--design", "WS_PLUS"])
    assert str(args.design) == "WS+"
    args = parser.parse_args(["run", "fib", "--design", "WS+"])
    assert str(args.design) == "WS+"


def test_design_argument_rejects_unknown():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "fib", "--design", "XX"])
