"""CLI smoke tests (``python -m repro``)."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_list(capsys):
    code, out = run_cli(capsys, "list")
    assert code == 0
    assert "fib" in out and "TreeOverwrite" in out and "vacation" in out
    assert "S+" in out and "Wee" in out


def test_run_single_design(capsys):
    code, out = run_cli(capsys, "run", "fib", "--design", "S+",
                        "--cores", "2", "--scale", "0.06")
    assert code == 0
    assert "fib under S+" in out
    assert "tasks executed" in out


def test_run_unknown_workload(capsys):
    code = main(["run", "nope", "--cores", "2"])
    assert code == 2


def test_litmus_sb(capsys):
    code, out = run_cli(capsys, "litmus", "sb", "--design", "W+")
    assert code == 0
    assert "SC preserved" in out


def test_litmus_mp_all_designs(capsys):
    from repro.common.params import FenceDesign
    code, out = run_cli(capsys, "litmus", "mp")
    assert code == 0
    assert out.count("SC preserved") == len(FenceDesign)


def test_table_static(capsys):
    for n, marker in ((1, "WS+"), (2, "140 entries"), (3, "cilksort")):
        code, out = run_cli(capsys, "table", str(n))
        assert code == 0 and marker in out


def test_table_out_of_range(capsys):
    assert main(["table", "9"]) == 2


def test_figure_out_of_range(capsys):
    assert main(["figure", "1"]) == 2


def test_design_argument_accepts_both_spellings():
    parser = build_parser()
    args = parser.parse_args(["run", "fib", "--design", "WS_PLUS"])
    assert str(args.design) == "WS+"
    args = parser.parse_args(["run", "fib", "--design", "WS+"])
    assert str(args.design) == "WS+"


def test_design_argument_rejects_unknown():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "fib", "--design", "XX"])


def test_run_prints_completed_line(capsys):
    code, out = run_cli(capsys, "run", "fib", "--design", "S+",
                        "--cores", "2", "--scale", "0.06")
    assert code == 0
    assert "completed     : yes" in out


def test_print_run_distinguishes_cutoff_in_recovery(capsys):
    from repro.cli import _print_run
    from repro.common.params import FenceDesign
    from repro.common.stats import MachineStats
    from repro.sim.machine import SimResult
    from repro.workloads.base import WorkloadRun

    def fake_run(completed, in_recovery):
        stats = MachineStats(2)
        stats.cutoff_in_recovery = in_recovery
        result = SimResult(stats=stats, cycles=1000, completed=completed)
        return WorkloadRun(name="fib", group="cilk",
                           design=FenceDesign.W_PLUS, num_cores=2,
                           result=result)

    _print_run(fake_run(completed=True, in_recovery=False))
    assert "completed     : yes" in capsys.readouterr().out

    _print_run(fake_run(completed=False, in_recovery=False))
    assert "no (cycle budget hit)" in capsys.readouterr().out

    _print_run(fake_run(completed=False, in_recovery=True))
    out = capsys.readouterr().out
    assert "no (cycle budget hit during W+ recovery)" in out


def test_design_accepts_normalized_aliases():
    parser = build_parser()
    for spelling in ("wplus", "W+", "w_plus", "WPLUS"):
        args = parser.parse_args(["run", "fib", "--design", spelling])
        assert str(args.design) == "W+"
    args = parser.parse_args(["run", "fib", "--design", "wee"])
    assert str(args.design) == "Wee"


def test_run_trace_out_writes_chrome_trace(capsys, tmp_path):
    import json

    from repro.obs.export import validate_chrome_trace

    out_path = tmp_path / "t.json"
    code, out = run_cli(capsys, "run", "fib", "--design", "wplus",
                        "--cores", "2", "--scale", "0.06",
                        "--trace-out", str(out_path))
    assert code == 0
    assert "trace written to" in out
    trace = json.loads(out_path.read_text())
    assert validate_chrome_trace(trace) == []


def test_run_trace_out_all_designs_gets_per_design_files(capsys, tmp_path):
    from repro.common.params import FenceDesign

    out_path = tmp_path / "t.json"
    code, _ = run_cli(capsys, "run", "fib", "--all-designs",
                      "--cores", "2", "--scale", "0.06",
                      "--trace-out", str(out_path))
    assert code == 0
    written = sorted(p.name for p in tmp_path.iterdir())
    assert len(written) == len(list(FenceDesign))
    assert "t.w.json" in written and "t.wee.json" in written


def test_trace_subcommand_prints_timeline_summary(capsys):
    code, out = run_cli(capsys, "trace", "fib", "--design", "W+",
                        "--cores", "2", "--scale", "0.06")
    assert code == 0
    assert "trace summary" in out
    assert "event counts" in out
    assert "stats cross-check" in out
    assert "interval metrics" in out


def test_trace_subcommand_jsonl_export(capsys, tmp_path):
    out_path = tmp_path / "t.jsonl"
    code, out = run_cli(capsys, "trace", "fib", "--design", "S+",
                        "--cores", "2", "--scale", "0.06",
                        "--out", str(out_path), "--format", "jsonl")
    assert code == 0
    first = out_path.read_text().splitlines()[0]
    assert '"type":"meta"' in first.replace(" ", "")


def test_trace_unknown_workload(capsys):
    assert main(["trace", "nope"]) == 2
