"""Unit tests for statistics accounting."""

from repro.common.stats import MachineStats


def test_breakdown_accumulates_per_core():
    s = MachineStats(2)
    s.add_busy(0, 10)
    s.add_fence_stall(0, 5)
    s.add_other_stall(1, 3)
    assert s.breakdown[0].total == 15
    assert s.breakdown[1].total == 3
    t = s.total_breakdown()
    assert t == {"busy": 10, "fence_stall": 5, "other_stall": 3}
    assert abs(s.fence_stall_fraction - 5 / 18) < 1e-12


def test_per_kilo_inst_rates():
    s = MachineStats(2)
    s.instructions[0] = 1500
    s.instructions[1] = 500
    s.sf_executed[0] = 4
    s.wf_executed[1] = 6
    assert s.sf_per_kilo_inst == 2.0
    assert s.wf_per_kilo_inst == 3.0


def test_rates_safe_with_zero_denominators():
    s = MachineStats(1)
    assert s.sf_per_kilo_inst == 0.0
    assert s.bounces_per_wf == 0.0
    assert s.retries_per_bounced_write == 0.0
    assert s.recoveries_per_wf == 0.0
    assert s.traffic_increase_pct == 0.0
    assert s.mean_bs_lines == 0.0


def test_bounce_and_retry_rates():
    s = MachineStats(1)
    s.wf_executed[0] = 10
    s.bounced_writes = 2
    s.write_retries = 6
    assert s.bounces_per_wf == 0.2
    assert s.retries_per_bounced_write == 3.0


def test_traffic_increase():
    s = MachineStats(1)
    s.network_bytes = 1100
    s.retry_bytes = 100
    assert abs(s.traffic_increase_pct - 10.0) < 1e-12


def test_bs_occupancy_mean():
    s = MachineStats(1)
    for v in (2, 4, 6):
        s.sample_bs_occupancy(v)
    assert s.mean_bs_lines == 4.0


def test_summary_keys_present():
    s = MachineStats(1)
    summary = s.summary()
    for key in ("cycles", "busy", "fence_stall", "other_stall",
                "sf_per_ki", "wf_per_ki", "bs_lines", "bounces_per_wf",
                "recoveries_per_wf", "txn_commits", "tasks_executed"):
        assert key in summary


def test_bs_sampling_is_bounded_but_aggregates_stay_exact():
    """Long runs must not grow bs_occupancy_samples without limit, and
    mean/max must come from exact running aggregates, not the thinned
    retained list."""
    from repro.common.stats import BS_SAMPLE_CAP

    s = MachineStats(1)
    n = 3 * BS_SAMPLE_CAP
    values = [i % 7 for i in range(n)]
    for v in values:
        s.sample_bs_occupancy(v)
    assert len(s.bs_occupancy_samples) < BS_SAMPLE_CAP
    assert s.bs_occupancy_count == n
    assert s.bs_occupancy_sum == sum(values)
    assert s.mean_bs_lines == sum(values) / n
    assert s.max_bs_lines == 6
    # the retained list is a uniformly-strided subsample of the stream
    assert set(s.bs_occupancy_samples) <= set(values)


def test_bs_sampling_mean_not_derived_from_retained_list():
    from repro.common.stats import BS_SAMPLE_CAP

    s = MachineStats(1)
    # first half all zeros, second half all tens: pairwise thinning
    # skews the retained list, the running mean must not move
    n = 2 * BS_SAMPLE_CAP
    for i in range(n):
        s.sample_bs_occupancy(0 if i < n // 2 else 10)
    assert s.mean_bs_lines == 5.0
    assert s.max_bs_lines == 10


def test_bs_sampling_below_cap_retains_everything():
    s = MachineStats(1)
    for v in (1, 2, 3):
        s.sample_bs_occupancy(v)
    assert s.bs_occupancy_samples == [1, 2, 3]
    assert s.mean_bs_lines == 2.0
