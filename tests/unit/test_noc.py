"""Unit tests for the mesh NoC latency/traffic model."""

from repro.common.params import MachineParams
from repro.common.stats import MachineStats
from repro.mem.messages import HEADER_BYTES, Msg, message_bytes
from repro.mem.noc import MeshNoc


def make_noc(num_cores=8):
    params = MachineParams().with_cores(num_cores)
    return MeshNoc(params, MachineStats(num_cores)), params


def test_message_sizes():
    assert message_bytes(Msg.GETS, 32) == HEADER_BYTES
    assert message_bytes(Msg.DATA, 32) == HEADER_BYTES + 32
    assert message_bytes(Msg.ORDER, 32) == HEADER_BYTES + 8
    assert message_bytes(Msg.INV, 32) == HEADER_BYTES


def test_hop_count_xy_routing():
    noc, _ = make_noc(8)  # 3x3 mesh
    assert noc.hops(0, 0) == 0
    assert noc.hops(0, 1) == 1
    assert noc.hops(0, 4) == 2   # (0,0) -> (1,1)
    assert noc.hops(0, 8) == 4   # (0,0) -> (2,2)
    assert noc.hops(2, 6) == 4   # (2,0) -> (0,2)


def test_latency_scales_with_hops_and_size():
    noc, p = make_noc(8)
    near = noc.latency(0, 1, Msg.GETS)
    far = noc.latency(0, 8, Msg.GETS)
    assert far > near
    control = noc.latency(0, 1, Msg.GETS)
    data = noc.latency(0, 1, Msg.DATA)
    assert data > control  # serialization of the extra flit(s)


def test_local_delivery_still_costs_a_hop():
    noc, p = make_noc(4)
    assert noc.latency(2, 2, Msg.ACK) >= p.mesh_hop_cycles


def test_traffic_accounting_and_retry_attribution():
    noc, _ = make_noc(4)
    noc.send_cost(0, 1, Msg.GETX)
    assert noc.stats.network_bytes == HEADER_BYTES
    assert noc.stats.retry_bytes == 0
    noc.send_cost(0, 1, Msg.GETX, retry=True)
    assert noc.stats.network_bytes == 2 * HEADER_BYTES
    assert noc.stats.retry_bytes == HEADER_BYTES


def test_memory_node_maps_to_tile_zero():
    noc, _ = make_noc(8)
    assert noc.coords(MeshNoc.MEMORY_NODE) == noc.coords(0)
