"""Quiescence fast-forward: pumps skip idle windows, nothing else.

When the machine is idle — no non-elastic work before some horizon —
the sampling pumps (sanitizer, governor) reschedule themselves just
past the horizon instead of ticking vacantly through the gap.  The
contract pinned here:

* a jump lands on the pump's own cadence grid (multiples of its
  interval), so post-window tick cycles are exactly the cycles a
  non-fast-forwarded run would have ticked at;
* no scheduled wakeup, watchdog deadline, metrics epoch or sanitizer
  horizon check is ever skipped — machine-visible behaviour (cycles,
  stats, violations, deadlock cycle) is identical with the feature off
  (``REPRO_NO_FASTFORWARD=1``);
* what *does* change is vacuous work: idle-window sweeps collapse.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import DeadlockError
from repro.common.params import FenceDesign
from repro.core import isa as ops
from repro.sanitizer import Sanitizer
from repro.sim.machine import Machine

from tests.support import tiny_params

#: a long, completely idle stretch (one Compute, no memory traffic)
IDLE = 200_000


def _idle_machine(no_ff, monkeypatch, interval=500, kernel="object",
                  tail_ops=3):
    """One thread computes through a long idle window, then does a few
    stores (so the run does not end *at* the window's edge)."""
    if no_ff:
        monkeypatch.setenv("REPRO_NO_FASTFORWARD", "1")
    else:
        monkeypatch.delenv("REPRO_NO_FASTFORWARD", raising=False)
    m = Machine(tiny_params(num_cores=2), seed=5, kernel=kernel)
    san = Sanitizer(mode="warn", interval=interval)
    m.attach_sanitizer(san)
    x = m.alloc.word()

    def t(ctx):
        yield ops.Compute(IDLE)
        for i in range(tail_ops):
            yield ops.Store(x + 64 * (ctx.tid + 1), i)
            yield ops.Load(x + 64 * (ctx.tid + 1))

    m.spawn(t)
    m.spawn(t)
    return m, san


@pytest.mark.parametrize("kern", ["object", "flat"])
def test_idle_window_collapses_but_behaviour_is_identical(
        kern, monkeypatch):
    runs = {}
    for no_ff in (False, True):
        m, san = _idle_machine(no_ff, monkeypatch, kernel=kern)
        result = m.run()
        runs[no_ff] = {
            "cycles": result.cycles,
            "stats": result.stats.to_dict(),
            "violations": san.violations,
            "dropped": san.dropped,
            "sweeps": san.sweeps,
            "pump_ticks": m.pump_ticks,
        }
    ff, no_ff = runs[False], runs[True]
    # machine-visible behaviour identical...
    assert ff["cycles"] == no_ff["cycles"]
    assert ff["stats"] == no_ff["stats"]
    assert ff["violations"] == no_ff["violations"] == []
    # ...but the vacant idle-window sweeps collapsed: without ff the
    # pump ticks once per interval across the whole run, with ff it
    # takes only a handful of ticks at the window edges
    assert no_ff["sweeps"] >= ff["cycles"] // 500 - 2
    assert ff["sweeps"] < no_ff["sweeps"] // 10


def test_jump_lands_on_the_pump_cadence_grid(monkeypatch):
    """Fast-forwarded tick cycles are a subset of the non-ff tick
    cycles: jumps are whole multiples of the interval, so the grid is
    preserved (this is what makes detection timing provably equal)."""
    grids = {}
    for no_ff in (False, True):
        m, san = _idle_machine(no_ff, monkeypatch)
        ticks = []
        orig = san._tick

        def probe(san=san, ticks=ticks, orig=orig):
            ticks.append(san.machine.queue.now)
            orig()

        san._tick = probe
        # re-point is safe: start() schedules bound method by attribute
        m.run()
        grids[no_ff] = ticks
    assert set(grids[False]) <= set(grids[True])
    interval = 500
    assert all(t % interval == 0 for t in grids[False])


@pytest.mark.parametrize("kern", ["object", "flat"])
def test_watchdog_fires_at_the_same_cycle_with_and_without_ff(
        kern, monkeypatch):
    """The watchdog never fast-forwards: an idle-but-live machine is
    the deadlock it exists to flag.  A genuine W+ all-wf deadlock
    (paper Fig. 3a) must be caught at the identical cycle either way."""
    from repro.common.params import FenceRole
    from repro.workloads.litmus import store_buffering

    cycles = {}
    for no_ff in (False, True):
        if no_ff:
            monkeypatch.setenv("REPRO_NO_FASTFORWARD", "1")
        else:
            monkeypatch.delenv("REPRO_NO_FASTFORWARD", raising=False)
        monkeypatch.setenv("REPRO_KERNEL", kern)
        with pytest.raises(DeadlockError) as exc:
            store_buffering(
                FenceDesign.W_PLUS,
                roles=(FenceRole.CRITICAL, FenceRole.CRITICAL),
                recovery=False,
            )
        cycles[no_ff] = (str(exc.value), exc.value.blocked_cores)
    assert cycles[False] == cycles[True]


def test_metrics_epochs_are_never_skipped(monkeypatch):
    """The metrics pump is deliberately *not* elastic: its epoch
    boundaries are observable output.  With a collector attached, the
    fast-forwarded timeline must sample the same epochs with the same
    deltas as the non-ff run."""
    from repro.obs import Observability

    samples = {}
    for no_ff in (False, True):
        if no_ff:
            monkeypatch.setenv("REPRO_NO_FASTFORWARD", "1")
        else:
            monkeypatch.delenv("REPRO_NO_FASTFORWARD", raising=False)
        m, san = _idle_machine(no_ff, monkeypatch)
        obs = Observability(trace=False, metrics_interval=1000)
        obs.attach(m)
        result = m.run()
        samples[no_ff] = (obs.metrics.ticks, obs.metrics.samples)
    assert samples[False] == samples[True]
    # the idle window really was sampled epoch by epoch
    assert samples[False][0] >= result.cycles // 1000 - 1


def test_event_horizon_violation_survives_fast_forward(monkeypatch):
    """A lost message parked beyond the event horizon must be reported
    identically: the sanitizer only jumps after a *clean* sweep, so a
    standing horizon violation pins the pump to its normal cadence."""
    counts = {}
    for no_ff in (False, True):
        m, san = _idle_machine(no_ff, monkeypatch)
        m.queue.schedule(1_500_000, lambda: None, "lost_putm")
        result = m.run()
        assert result.completed
        horizon = [v for v in san.violations
                   if v["invariant"] == "event-horizon"]
        counts[no_ff] = (len(horizon), san.dropped, result.cycles)
        assert horizon, "the lost message was never flagged"
    assert counts[False] == counts[True]


def test_no_fastforward_env_pins_the_flag(monkeypatch):
    monkeypatch.setenv("REPRO_NO_FASTFORWARD", "1")
    assert Machine(tiny_params()).fast_forward is False
    monkeypatch.delenv("REPRO_NO_FASTFORWARD", raising=False)
    assert Machine(tiny_params()).fast_forward is True


@given(idle=st.integers(10_000, 120_000), seed=st.integers(0, 9),
       interval=st.sampled_from([250, 500, 1000]),
       kernel=st.sampled_from(["object", "flat"]))
@settings(max_examples=12, deadline=None)
def test_ff_equivalence_property(idle, seed, interval, kernel):
    """Random idle-window shapes: fast-forward never changes cycles,
    stats, or violation counts, on either kernel backend."""
    import os

    def one(no_ff):
        if no_ff:
            os.environ["REPRO_NO_FASTFORWARD"] = "1"
        else:
            os.environ.pop("REPRO_NO_FASTFORWARD", None)
        try:
            m = Machine(tiny_params(num_cores=2), seed=seed, kernel=kernel)
            san = Sanitizer(mode="warn", interval=interval)
            m.attach_sanitizer(san)
            x = m.alloc.word()

            def t(ctx):
                yield ops.Compute(idle // (ctx.tid + 1))
                yield ops.Store(x + 64 * (ctx.tid + 1), ctx.tid)
                yield ops.Compute(idle // 2)
                yield ops.Load(x + 64 * (ctx.tid + 1))

            m.spawn(t)
            m.spawn(t)
            result = m.run()
            return (result.cycles, result.stats.to_dict(),
                    len(san.violations), san.dropped)
        finally:
            os.environ.pop("REPRO_NO_FASTFORWARD", None)

    assert one(False) == one(True)
