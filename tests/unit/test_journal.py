"""The shared JSONL journal: torn tails, last-writer-wins dedup,
fsync policies, and the no-silent-destruction prepare guard."""

import json
import os

import pytest

from repro.common import journal
from repro.common.errors import ConfigError


def _write_lines(path, lines):
    with open(path, "w") as fh:
        for line in lines:
            fh.write(line + "\n")


# ----------------------------------------------------------------------
# iter_records / torn tails
# ----------------------------------------------------------------------

def test_iter_records_missing_file_yields_nothing(tmp_path):
    assert list(journal.iter_records(str(tmp_path / "absent.jsonl"))) == []
    assert list(journal.iter_records(None)) == []


def test_iter_records_skips_torn_tail(tmp_path):
    path = str(tmp_path / "j.jsonl")
    with open(path, "w") as fh:
        fh.write(json.dumps({"k": "a", "v": 1}) + "\n")
        fh.write(json.dumps({"k": "b", "v": 2}) + "\n")
        fh.write('{"k": "c", "v"')  # killed mid-append
    recs = list(journal.iter_records(path))
    assert [r["k"] for r in recs] == ["a", "b"]


def test_iter_records_skips_corrupt_middle_line_and_blanks(tmp_path):
    path = str(tmp_path / "j.jsonl")
    _write_lines(path, [
        json.dumps({"k": "a"}),
        "",
        "not json at all {{{",
        json.dumps(["a", "bare", "list"]),  # parseable but not a record
        json.dumps({"k": "b"}),
    ])
    assert [r["k"] for r in journal.iter_records(path)] == ["a", "b"]


# ----------------------------------------------------------------------
# load_keyed: the duplicate-keys + torn-tail regression
# ----------------------------------------------------------------------

def test_load_keyed_resolves_duplicates_last_writer_wins(tmp_path):
    path = str(tmp_path / "j.jsonl")
    with open(path, "w") as fh:
        fh.write(json.dumps({"_key": "a", "v": 1}) + "\n")
        fh.write(json.dumps({"_key": "b", "v": 2}) + "\n")
        fh.write(json.dumps({"_key": "a", "v": 3}) + "\n")  # re-run job
        fh.write('{"_key": "b", "v": 9')  # torn tail must NOT win
    done = journal.load_keyed(path, key=lambda r: r.get("_key"))
    assert done == {"a": {"_key": "a", "v": 3}, "b": {"_key": "b", "v": 2}}
    # first-seen key order is preserved
    assert list(done) == ["a", "b"]


def test_load_keyed_skips_records_without_a_key(tmp_path):
    path = str(tmp_path / "j.jsonl")
    _write_lines(path, [json.dumps({"v": 1}), json.dumps({"_key": "a"})])
    done = journal.load_keyed(path, key=lambda r: r.get("_key"))
    assert list(done) == ["a"]


def test_load_keyed_tolerates_key_fn_raising(tmp_path):
    path = str(tmp_path / "j.jsonl")
    _write_lines(path, [json.dumps({"v": 1}), json.dumps({"k": "a"})])
    done = journal.load_keyed(path, key=lambda r: r["k"])  # KeyError on 1st
    assert list(done) == ["a"]


# ----------------------------------------------------------------------
# JournalWriter
# ----------------------------------------------------------------------

@pytest.mark.parametrize("fsync", journal.FSYNC_POLICIES)
def test_writer_round_trips_under_every_fsync_policy(tmp_path, fsync):
    path = str(tmp_path / "j.jsonl")
    with journal.JournalWriter(path, fsync=fsync) as writer:
        writer.append({"k": "a"})
        writer.append({"k": "b"})
    assert [r["k"] for r in journal.iter_records(path)] == ["a", "b"]


def test_writer_rejects_unknown_fsync_policy(tmp_path):
    with pytest.raises(ValueError, match="fsync policy"):
        journal.JournalWriter(str(tmp_path / "j.jsonl"), fsync="sometimes")


def test_writer_appends_to_an_existing_journal(tmp_path):
    path = str(tmp_path / "j.jsonl")
    with journal.JournalWriter(path) as writer:
        writer.append({"k": "a"})
    with journal.JournalWriter(path) as writer:
        writer.append({"k": "b"})
    assert [r["k"] for r in journal.iter_records(path)] == ["a", "b"]


def test_writer_creates_parent_directories(tmp_path):
    path = str(tmp_path / "deep" / "er" / "j.jsonl")
    with journal.JournalWriter(path) as writer:
        writer.append({"k": "a"})
    assert os.path.exists(path)


def test_writer_close_is_idempotent(tmp_path):
    writer = journal.JournalWriter(str(tmp_path / "j.jsonl"))
    writer.append({"k": "a"})
    writer.close()
    writer.close()  # second close is a no-op, not a crash


# ----------------------------------------------------------------------
# prepare: the overwrite guard
# ----------------------------------------------------------------------

def test_prepare_noops_when_nothing_exists(tmp_path):
    assert journal.prepare(str(tmp_path / "j.jsonl")) is None
    assert journal.prepare(None) is None


def test_prepare_keeps_journal_for_resume(tmp_path):
    path = str(tmp_path / "j.jsonl")
    _write_lines(path, [json.dumps({"k": "a"})])
    assert journal.prepare(path, resume=True) is None
    assert os.path.exists(path)


def test_prepare_refuses_existing_journal_without_overwrite(tmp_path):
    path = str(tmp_path / "j.jsonl")
    _write_lines(path, [json.dumps({"k": "a"})])
    with pytest.raises(ConfigError, match="already exists"):
        journal.prepare(path)
    assert os.path.exists(path)  # untouched


def test_prepare_overwrite_rotates_to_bak(tmp_path):
    path = str(tmp_path / "j.jsonl")
    _write_lines(path, [json.dumps({"k": "a"})])
    backup = journal.prepare(path, overwrite=True)
    assert backup == path + ".bak"
    assert not os.path.exists(path)
    assert [r["k"] for r in journal.iter_records(backup)] == ["a"]


def test_prepare_overwrite_replaces_an_older_backup(tmp_path):
    path = str(tmp_path / "j.jsonl")
    _write_lines(path + ".bak", [json.dumps({"k": "old"})])
    _write_lines(path, [json.dumps({"k": "new"})])
    journal.prepare(path, overwrite=True)
    assert [r["k"] for r in journal.iter_records(path + ".bak")] == ["new"]
