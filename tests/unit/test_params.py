"""Unit tests for machine parameters and the fence-role mapping."""

import pytest

from repro.common.errors import ConfigError
from repro.common.params import (
    FenceDesign,
    FenceFlavour,
    FenceRole,
    MachineParams,
    flavour_for,
)


def test_defaults_match_paper_table2():
    p = MachineParams()
    assert p.num_cores == 8
    assert p.rob_entries == 140
    assert p.write_buffer_entries == 64
    assert p.words_per_line == 8
    assert p.l1_sets == 256  # 32KB / (32B * 4 ways)


def test_with_design_and_with_cores_are_copies():
    p = MachineParams()
    q = p.with_design(FenceDesign.W_PLUS)
    assert q.fence_design is FenceDesign.W_PLUS
    assert p.fence_design is FenceDesign.S_PLUS
    r = p.with_cores(16)
    assert r.num_cores == 16 and r.num_banks == 16
    assert p.num_cores == 8


@pytest.mark.parametrize("bad", [
    dict(num_cores=0),
    dict(line_bytes=30),
    dict(issue_width=0),
    dict(bs_entries=0),
])
def test_invalid_params_rejected(bad):
    with pytest.raises(ConfigError):
        MachineParams(**bad)


def test_flavour_mapping_s_plus_all_strong():
    for role in FenceRole:
        assert flavour_for(FenceDesign.S_PLUS, role) is FenceFlavour.SF


@pytest.mark.parametrize("design", [FenceDesign.WS_PLUS, FenceDesign.SW_PLUS])
def test_flavour_mapping_asymmetric(design):
    assert flavour_for(design, FenceRole.CRITICAL) is FenceFlavour.WF
    assert flavour_for(design, FenceRole.STANDARD) is FenceFlavour.SF


@pytest.mark.parametrize("design", [FenceDesign.W_PLUS, FenceDesign.WEE])
def test_flavour_mapping_all_weak(design):
    for role in FenceRole:
        assert flavour_for(design, role) is FenceFlavour.WF


def test_mesh_dim_grows_with_cores():
    assert MachineParams(num_cores=1, num_banks=1).mesh_dim == 1
    assert MachineParams(num_cores=4, num_banks=4).mesh_dim == 2
    assert MachineParams(num_cores=8).mesh_dim == 3
    assert MachineParams(num_cores=16, num_banks=16).mesh_dim == 4
