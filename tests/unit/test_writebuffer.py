"""Unit tests for the TSO write buffer."""

import pytest

from repro.mem.writebuffer import WriteBuffer


def push(wb, word, value=0):
    return wb.push(word, value, line=word - word % 32)


def test_fifo_order():
    wb = WriteBuffer(4)
    e1 = push(wb, 0x20, 1)
    e2 = push(wb, 0x40, 2)
    assert wb.head() is e1
    assert wb.pop_head() is e1
    assert wb.head() is e2


def test_capacity_and_full():
    wb = WriteBuffer(2)
    push(wb, 0x20)
    assert not wb.full
    push(wb, 0x40)
    assert wb.full
    # overflow protection is the caller's contract: the core checks
    # ``full`` and stalls before retiring a store; push never checks.


def test_forwarding_newest_value_wins():
    wb = WriteBuffer(8)
    push(wb, 0x20, 1)
    push(wb, 0x40, 2)
    push(wb, 0x20, 3)
    assert wb.forward(0x20) == 3
    assert wb.forward(0x40) == 2
    assert wb.forward(0x80) is None
    assert wb.has_word(0x20) and not wb.has_word(0x80)


def test_newest_store_id_marks_fence_boundary():
    wb = WriteBuffer(8)
    assert wb.newest_store_id() == 0
    e1 = push(wb, 0x20)
    e2 = push(wb, 0x40)
    assert wb.newest_store_id() == e2.store_id
    assert wb.contains_id(e1.store_id)
    assert wb.entries_upto(e1.store_id) == [e1]
    assert wb.entries_upto(e2.store_id) == [e1, e2]


def test_mark_ordered_promotes_only_bouncing_pre_fence_entries():
    wb = WriteBuffer(8)
    e1 = push(wb, 0x20)
    e2 = push(wb, 0x40)
    e3 = push(wb, 0x60)  # post-fence
    e1.bouncing = True
    e3.bouncing = True
    promoted = wb.mark_ordered_upto(e2.store_id)
    assert promoted == 1
    assert e1.ordered and not e2.ordered and not e3.ordered


def test_mark_ordered_with_word_mask():
    wb = WriteBuffer(8)
    e1 = push(wb, 0x24)
    e1.bouncing = True
    wb.mark_ordered_upto(e1.store_id, word_mask_fn=lambda w: 1 << ((w % 32) // 4))
    assert e1.ordered
    assert e1.word_mask == 0b10


def test_drop_after_discards_post_fence_suffix():
    wb = WriteBuffer(8)
    e1 = push(wb, 0x20)
    e2 = push(wb, 0x40)
    e3 = push(wb, 0x60)
    dropped = wb.drop_after(e1.store_id)
    assert dropped == 2
    assert wb.snapshot() == [e1]
    assert wb.drop_after(e1.store_id) == 0


def test_drop_after_refuses_issued_suffix():
    wb = WriteBuffer(8)
    e1 = push(wb, 0x20)
    e2 = push(wb, 0x40)
    e2.issued = True
    with pytest.raises(AssertionError):
        wb.drop_after(e1.store_id)


def test_any_bouncing_and_clear():
    wb = WriteBuffer(4)
    e = push(wb, 0x20)
    assert not wb.any_bouncing()
    e.bouncing = True
    assert wb.any_bouncing()
    entries = wb.clear()
    assert entries == [e]
    assert wb.empty
