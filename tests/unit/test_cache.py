"""Unit tests for the set-associative tag store."""

import pytest

from repro.common.errors import ConfigError
from repro.mem.cache import LineState, SetAssocCache


def make_cache(sets=4, ways=2, line=32):
    return SetAssocCache(size_bytes=sets * ways * line, ways=ways,
                         line_bytes=line)


def addr_for_set(cache, set_idx, tag):
    """A line address mapping to *set_idx* with a distinct tag."""
    return (tag * cache.num_sets + set_idx) * cache.line_bytes


def test_insert_and_lookup():
    c = make_cache()
    c.insert(0x100 - 0x100 % 32, LineState.S)
    assert c.lookup(0x100 - 0x100 % 32) is LineState.S
    assert c.lookup(0x2000) is None


def test_invalidate():
    c = make_cache()
    line = addr_for_set(c, 0, 0)
    c.insert(line, LineState.M)
    assert c.invalidate(line) is LineState.M
    assert c.lookup(line) is None
    assert c.invalidate(line) is None


def test_lru_eviction_order():
    c = make_cache(sets=1, ways=2)
    a = addr_for_set(c, 0, 0)
    b = addr_for_set(c, 0, 1)
    d = addr_for_set(c, 0, 2)
    c.insert(a, LineState.S)
    c.insert(b, LineState.S)
    # touch a so b becomes LRU
    assert c.lookup(a) is LineState.S
    evicted = c.insert(d, LineState.S)
    assert evicted == (b, LineState.S)
    assert c.lookup(a) is not None and c.lookup(d) is not None


def test_victim_preview_matches_eviction():
    c = make_cache(sets=1, ways=2)
    a, b, d = (addr_for_set(c, 0, t) for t in range(3))
    c.insert(a, LineState.M)
    c.insert(b, LineState.S)
    assert c.victim(d) == (a, LineState.M)
    assert c.victim(a) is None  # hit: no eviction
    assert c.insert(d, LineState.S) == (a, LineState.M)


def test_lookup_without_touch_does_not_refresh_lru():
    c = make_cache(sets=1, ways=2)
    a, b, d = (addr_for_set(c, 0, t) for t in range(3))
    c.insert(a, LineState.S)
    c.insert(b, LineState.S)
    c.lookup(a, touch=False)
    evicted = c.insert(d, LineState.S)
    assert evicted[0] == a  # a stayed LRU despite the untouched lookup


def test_set_state_changes_in_place():
    c = make_cache()
    line = addr_for_set(c, 1, 0)
    c.insert(line, LineState.E)
    c.set_state(line, LineState.M)
    assert c.lookup(line) is LineState.M


def test_writable_states():
    assert LineState.M.writable and LineState.E.writable
    assert not LineState.S.writable


def test_occupancy_and_lines():
    c = make_cache()
    c.insert(addr_for_set(c, 0, 0), LineState.S)
    c.insert(addr_for_set(c, 1, 0), LineState.M)
    assert c.occupancy() == 2
    assert dict(c.lines()) == {
        addr_for_set(c, 0, 0): LineState.S,
        addr_for_set(c, 1, 0): LineState.M,
    }


def test_bad_geometry_rejected():
    with pytest.raises(ConfigError):
        SetAssocCache(size_bytes=100, ways=3, line_bytes=32)
