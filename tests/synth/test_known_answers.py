"""Known-answer synthesis results for the textbook litmus kernels.

SB, MP, and IRIW have textbook minimal fence placements per design on
a TSO machine:

* **SB** needs a fence between the store and the load on *both*
  threads.  S+ can only spell that sf+sf; W+/Wee can only spell it
  wf+wf; WS+/SW+ admit exactly the two mixed assignments (WS+ caps at
  one wf per group, SW+ needs an sf alongside two-or-more wfs — either
  way {wf,wf} is illegal and {sf,sf} is non-minimal).
* **MP** needs nothing: TSO never reorders store-store or load-load,
  so the textbook barriers are redundant here and the synthesizer must
  prove the *empty* placement correct.
* **IRIW** needs nothing: the forbidden outcome requires
  non-multi-copy-atomic stores, which a single-memory-image machine
  never produces.

Plus the paper's asymmetry claim (the reason synthesis picks flavours
at all): wherever both flavours are expressible, the marginal cost of
a wf is strictly below the sf at the same site, and the designs whose
fences execute weak (W+/Wee) place a wf at exactly the store-to-load
sites where S+ is forced to pay for an sf.
"""

import pytest

from repro.common.params import FenceDesign
from repro.verify.oracles import PAPER_DESIGNS

from tests.synth.util import placement_keys, synth_report

S_PLUS = FenceDesign.S_PLUS
DESIGN_IDS = [d.name for d in PAPER_DESIGNS]

#: design.value -> sorted minima keys for the canonical SB kernel
SB_KNOWN_ANSWERS = {
    "S+": ["t0.i2=sf,t1.i2=sf"],
    "WS+": ["t0.i2=sf,t1.i2=wf", "t0.i2=wf,t1.i2=sf"],
    "SW+": ["t0.i2=sf,t1.i2=wf", "t0.i2=wf,t1.i2=sf"],
    "W+": ["t0.i2=wf,t1.i2=wf"],
    "Wee": ["t0.i2=wf,t1.i2=wf"],
}


@pytest.mark.parametrize("design", PAPER_DESIGNS, ids=DESIGN_IDS)
def test_sb_textbook_minima(design):
    report = synth_report("sb")
    entry = report.designs[design.value]
    assert entry["status"] == "ok"
    assert placement_keys(entry) == SB_KNOWN_ANSWERS[design.value]


def test_sb_ranked_table_prefers_the_cheap_thread_wf():
    """Where the design may choose (WS+/SW+), rank 1 puts the wf at
    t0 — the site whose marginal wf is free — and the sf on the other
    thread; the reversed assignment is strictly costlier."""
    report = synth_report("sb")
    for design in ("WS+", "SW+"):
        placements = report.designs[design]["placements"]
        assert placements[0]["placement"] == "t0.i2=wf,t1.i2=sf"
        assert placements[0]["cycles"] < placements[1]["cycles"]


@pytest.mark.parametrize("design", PAPER_DESIGNS, ids=DESIGN_IDS)
def test_wf_marginal_cost_strictly_below_sf(design):
    """The asymmetry claim, per site.  Within a design that expresses
    both flavours, wf < sf at every site; for the weak-only designs
    (W+/Wee) the comparison is against S+'s forced sf at the same
    site — the cross-design saving the paper's Figure 8 bars show."""
    report = synth_report("sb")
    probes = report.designs[design.value]["site_probes"]
    splus_probes = report.designs[S_PLUS.value]["site_probes"]
    assert probes, f"{design.value}: no site probes recorded"
    for site, per_site in probes.items():
        sf = per_site.get("sf")
        wf = per_site.get("wf")
        if wf is None:  # S+: sf-only, nothing to compare within-design
            assert design is S_PLUS and sf is not None
            continue
        reference_sf = sf if sf is not None else splus_probes[site]["sf"]
        assert wf < reference_sf, (
            f"{design.value} @ {site}: wf probe {wf} not strictly "
            f"below sf {reference_sf}"
        )


def test_weak_designs_place_wf_where_splus_needs_sf():
    """W+/Wee synthesize a wf at exactly the sites S+ fences with sf."""
    report = synth_report("sb")
    splus_sites = {
        fence["site"]: fence["flavour"]
        for fence in report.designs["S+"]["placements"][0]["fences"]
    }
    assert set(splus_sites.values()) == {"sf"}
    for design in ("W+", "Wee"):
        weak_sites = {
            fence["site"]: fence["flavour"]
            for fence in report.designs[design]["placements"][0]["fences"]
        }
        assert set(weak_sites) == set(splus_sites)
        assert set(weak_sites.values()) == {"wf"}


@pytest.mark.parametrize("design", PAPER_DESIGNS, ids=DESIGN_IDS)
def test_mp_needs_no_fences(design):
    report = synth_report("mp")
    entry = report.designs[design.value]
    assert entry["status"] == "ok"
    assert placement_keys(entry) == ["-"]
    # the empty placement costs exactly the baseline
    assert entry["placements"][0]["overhead_cycles"] == 0.0


@pytest.mark.slow
@pytest.mark.parametrize("design", PAPER_DESIGNS, ids=DESIGN_IDS)
def test_iriw_needs_no_fences(design):
    report = synth_report("iriw")
    entry = report.designs[design.value]
    assert entry["status"] == "ok"
    assert placement_keys(entry) == ["-"]
