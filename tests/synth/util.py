"""Shared helpers for the synthesis test battery."""

import os
from functools import lru_cache

from repro.common.params import FenceFlavour
from repro.synth import SynthConfig, run_synthesis
from repro.synth.sites import FenceSite, Placement
from repro.verify.oracles import PAPER_DESIGNS


def parse_site(label: str) -> FenceSite:
    """Invert ``FenceSite.label()``: ``"t0.i2"`` -> ``FenceSite(0, 2)``."""
    tid, _, idx = label.partition(".")
    return FenceSite(int(tid[1:]), int(idx[1:]))


def parse_placement(key: str) -> Placement:
    """Invert ``Placement.key()``: ``"t0.i2=sf,t1.i2=wf"`` -> Placement."""
    if key == "-":
        return Placement.empty()
    mapping = {}
    for part in key.split(","):
        label, _, flavour = part.partition("=")
        mapping[parse_site(label)] = FenceFlavour(flavour)
    return Placement.of(mapping)


def placement_keys(entry: dict) -> list:
    """The minima of one per-design report entry, as sorted keys."""
    return sorted(p["placement"] for p in entry["placements"])


@lru_cache(maxsize=None)
def synth_report(program: str, seed: int = 1, num_points: int = 12,
                 audit: bool = False):
    """One cached synthesis of *program* across the paper's designs.

    Audit is off by default: the soundness tests re-verify at double
    budget themselves, so paying for the engine's built-in audit in
    every battery module would double the work for no extra coverage.
    """
    config = SynthConfig(
        program=program, designs=PAPER_DESIGNS, seed=seed,
        num_points=num_points, audit=audit,
        # the strict-sanitizer CI lane re-runs the battery with every
        # synthesis run sanitized; placements and costs must not move
        # (the sanitizer is zero-perturbation, docs/SANITIZER.md)
        sanitize=os.environ.get("REPRO_SANITIZE", "off"),
    )
    return run_synthesis(config)
