"""Mutation-style soundness of synthesized placements.

Two claims, checked independently of the engine's own audit (the
battery reconstructs each placement from the report and judges it with
a *fresh* oracle):

* **soundness** — every synthesized placement still passes the SC
  oracle at 2x the search's schedule budget (the adversary stream is
  prefix-stable, so the double-budget point set strictly extends the
  one the search saw);
* **non-vacuous minimality** — every one-step weakening of a placement
  (drop one fence, or demote one sf to wf) that the design can express
  fails the oracle on at least one schedule.  If a weakening passed,
  the "minimal" placement would be carrying a redundant fence.
"""

import pytest

from repro.common.params import FenceDesign
from repro.synth.programs import program_for_spec
from repro.synth.search import PlacementOracle
from repro.synth.sites import Placement
from repro.verify.oracles import PAPER_DESIGNS
from repro.verify.perturb import adversary_points

from tests.synth.util import parse_placement, synth_report

SEED = 1
SEARCH_POINTS = 12
AUDIT_FACTOR = 2

DESIGN_IDS = [d.name for d in PAPER_DESIGNS]


def _double_budget_oracle(design: FenceDesign) -> PlacementOracle:
    stripped = program_for_spec("sb").stripped()
    points = adversary_points(SEED, SEARCH_POINTS * AUDIT_FACTOR)
    return PlacementOracle(stripped, design, points)


def _entry(design: FenceDesign) -> dict:
    report = synth_report("sb", seed=SEED, num_points=SEARCH_POINTS)
    entry = report.designs[design.value]
    assert entry["status"] == "ok" and entry["placements"], (
        f"{design.value}: synthesis produced no placement to audit"
    )
    return entry


def test_adversary_points_are_prefix_stable():
    """The soundness guarantee leans on this: the audit's point set
    must *extend* the search's, never resample it."""
    short = adversary_points(SEED, SEARCH_POINTS)
    long = adversary_points(SEED, SEARCH_POINTS * AUDIT_FACTOR)
    assert long[:len(short)] == short
    assert len(long) == SEARCH_POINTS * AUDIT_FACTOR
    # the extension actually adds jitter-armed adversaries, not copies
    assert any(p.jittered for p in long[len(short):])


@pytest.mark.parametrize("design", PAPER_DESIGNS, ids=DESIGN_IDS)
def test_placements_pass_at_double_budget(design):
    entry = _entry(design)
    oracle = _double_budget_oracle(design)
    for placement_entry in entry["placements"]:
        placement = parse_placement(placement_entry["placement"])
        ce = oracle.check(placement)
        assert ce is None, (
            f"{design.value}: synthesized placement "
            f"{placement.key()} fails at double budget on point "
            f"{ce.point_index}: {ce.reason}"
        )


@pytest.mark.parametrize("design", PAPER_DESIGNS, ids=DESIGN_IDS)
def test_every_legal_weakening_fails(design):
    from repro.fences.base import synthesis_profile

    profile = synthesis_profile(design)
    entry = _entry(design)
    oracle = _double_budget_oracle(design)
    for placement_entry in entry["placements"]:
        placement = parse_placement(placement_entry["placement"])
        weakenings = list(placement.weakenings())
        assert weakenings, (
            f"{design.value}: {placement.key()} has no weakenings — "
            "an empty placement should never reach the minima list "
            "for a racy program"
        )
        checked = 0
        for weaker in weakenings:
            if not weaker.legal(profile):
                # the design cannot execute this weakening (wf under
                # S+, an all-wf group under SW+): it was never a real
                # alternative, so it cannot witness non-minimality
                continue
            ce = oracle.check(weaker)
            checked += 1
            assert ce is not None, (
                f"{design.value}: weakening {weaker.key()} of "
                f"{placement.key()} still passes the oracle — the "
                "synthesized placement is not minimal"
            )
        assert checked, (
            f"{design.value}: no weakening of {placement.key()} was "
            "even legal; minimality would be vacuous"
        )


@pytest.mark.parametrize("design", PAPER_DESIGNS, ids=DESIGN_IDS)
def test_engine_audit_agrees_with_battery(design):
    """The report's built-in audit block reaches the same verdicts the
    battery derives from scratch (same seed, same factor)."""
    from tests.synth.util import synth_report as cached

    report = cached("sb", seed=SEED, num_points=SEARCH_POINTS, audit=True)
    entry = report.designs[design.value]
    for placement_entry in entry["placements"]:
        audit = placement_entry["audit"]
        assert audit["passed"] and audit["minimal"]
        assert audit["points"] == SEARCH_POINTS * AUDIT_FACTOR
        for weakening in audit["weakenings"]:
            if weakening["expressible"]:
                assert weakening["failed"] is True
                assert weakening["counterexample"] is not None
            else:
                assert weakening["failed"] is None


def test_stripped_sb_actually_races():
    """Sanity anchor for the whole battery: with no fences at all, the
    oracle must find an SCV — otherwise every test above is hollow."""
    oracle = _double_budget_oracle(FenceDesign.S_PLUS)
    ce = oracle.check(Placement.empty())
    assert ce is not None and ce.reason.startswith("scv")
