"""Fence-site extraction and the placement lattice."""

import pytest

from repro.common.errors import ConfigError
from repro.common.params import FenceDesign, FenceFlavour
from repro.core import isa as ops
from repro.fences.base import synthesis_profile
from repro.synth.programs import program_for_spec
from repro.synth.sites import (
    FenceSite,
    Placement,
    all_placements,
    count_legal_placements,
    extract_sites,
)

WF, SF = FenceFlavour.WF, FenceFlavour.SF


def test_annotated_sites_match_canonical_sb():
    prog = program_for_spec("sb")
    sites = extract_sites(prog, mode="annotated")
    assert sites == (FenceSite(0, 2), FenceSite(1, 2))


def test_auto_sites_find_store_load_boundaries():
    prog = program_for_spec("sb")
    # auto runs on the stripped program: same boundaries as annotated
    assert extract_sites(prog, mode="auto") == \
        extract_sites(prog, mode="annotated")


def test_auto_sites_skip_covered_and_trailing_stores():
    prog = program_for_spec("sb").stripped()
    t0 = (ops.Load(0), ops.Store(1, 1), ops.Compute(3), ops.Load(0),
          ops.Load(1), ops.Store(2, 1))
    threads = (t0,) + prog.threads[1:]
    sites = extract_sites(prog.with_threads([list(t) for t in threads]),
                          mode="auto")
    # one site before the first load after the store; the second load
    # is already covered; the trailing store has no load after it
    assert [s for s in sites if s.tid == 0] == [FenceSite(0, 3)]


def test_annotated_requires_fences():
    stripped = program_for_spec("sb").stripped()
    with pytest.raises(ConfigError):
        extract_sites(stripped, mode="annotated")


def test_unknown_site_mode_rejected():
    with pytest.raises(ConfigError):
        extract_sites(program_for_spec("sb"), mode="everything")


# ----------------------------------------------------------------------
# the lattice
# ----------------------------------------------------------------------

S0, S1 = FenceSite(0, 2), FenceSite(1, 2)


def test_covers_is_the_sitewise_strength_order():
    both_sf = Placement.of({S0: SF, S1: SF})
    mixed = Placement.of({S0: WF, S1: SF})
    one = Placement.of({S1: SF})
    assert both_sf.covers(mixed) and mixed.covers(one)
    assert both_sf.covers(one)  # transitive
    assert not one.covers(mixed)
    assert Placement.empty().covers(Placement.empty())
    assert mixed.covers(Placement.empty())


def test_weakenings_drop_or_demote_one_step():
    placement = Placement.of({S0: SF, S1: WF})
    weaker = {w.key() for w in placement.weakenings()}
    assert weaker == {
        "t1.i2=wf",            # drop S0
        "t0.i2=wf,t1.i2=wf",   # demote S0
        "t0.i2=sf",            # drop S1 (wf has no demotion)
    }
    for w in placement.weakenings():
        assert placement.covers(w) and not w.covers(placement)
        assert w.score < placement.score


def test_all_placements_is_a_linear_extension():
    """Every weakening of a placement is enumerated before it."""
    profile = synthesis_profile(FenceDesign.SW_PLUS)
    seen = []
    for placement in all_placements((S0, S1), profile):
        for earlier in seen:
            assert not earlier.covers(placement) or earlier == placement
        seen.append(placement)
    assert seen[0] == Placement.empty()


@pytest.mark.parametrize("design", list(FenceDesign),
                         ids=[d.name for d in FenceDesign])
@pytest.mark.parametrize("num_sites", [0, 1, 2, 3, 4])
def test_count_matches_enumeration(design, num_sites):
    profile = synthesis_profile(design)
    sites = tuple(FenceSite(0, i + 1) for i in range(num_sites))
    enumerated = list(all_placements(sites, profile))
    assert len(enumerated) == count_legal_placements(num_sites, profile)
    assert all(p.legal(profile) for p in enumerated)


def test_design_legality_profiles():
    two_wf = Placement.of({S0: WF, S1: WF})
    one_wf_one_sf = Placement.of({S0: WF, S1: SF})
    two_sf = Placement.of({S0: SF, S1: SF})
    # S+ has no wf at all
    splus = synthesis_profile(FenceDesign.S_PLUS)
    assert two_sf.legal(splus) and not one_wf_one_sf.legal(splus)
    # WS+ caps at one wf per group
    ws = synthesis_profile(FenceDesign.WS_PLUS)
    assert one_wf_one_sf.legal(ws) and not two_wf.legal(ws)
    # SW+ takes any asymmetric group but not all-wf groups
    sw = synthesis_profile(FenceDesign.SW_PLUS)
    assert one_wf_one_sf.legal(sw) and not two_wf.legal(sw)
    assert Placement.of({S0: WF}).legal(sw)  # a lone wf is fine
    # W+/Wee execute every fence as wf
    for design in (FenceDesign.W_PLUS, FenceDesign.WEE):
        profile = synthesis_profile(design)
        assert two_wf.legal(profile)
        assert not one_wf_one_sf.legal(profile)


def test_apply_inserts_role_correct_fences():
    stripped = program_for_spec("sb").stripped()
    placed = Placement.of({S0: WF, S1: SF}).apply(
        stripped, FenceDesign.WS_PLUS)
    assert placed.has_fences
    # WS+: CRITICAL executes as wf, STANDARD as sf
    fence0 = placed.threads[0][2]
    fence1 = placed.threads[1][2]
    assert isinstance(fence0, ops.Fence) and isinstance(fence1, ops.Fence)
    assert fence0.role.name == "CRITICAL"
    assert fence1.role.name == "STANDARD"
    # stripping the applied program round-trips
    assert placed.stripped().threads == stripped.threads


def test_apply_rejects_inexpressible_flavour():
    stripped = program_for_spec("sb").stripped()
    with pytest.raises(ConfigError):
        Placement.of({S0: WF}).apply(stripped, FenceDesign.S_PLUS)
    with pytest.raises(ConfigError):
        Placement.of({S0: SF}).apply(stripped, FenceDesign.W_PLUS)


def test_placement_key_is_stable_and_sorted():
    a = Placement.of({S1: WF, S0: SF})
    b = Placement.of({S0: SF, S1: WF})
    assert a == b and a.key() == "t0.i2=sf,t1.i2=wf"
    assert Placement.empty().key() == "-"
