"""Synthesis checkpointing: the per-design JSONL journal, resume after
an interrupted run, and the config-key guard against stale replays."""

import json

import pytest

from repro.common import journal as journal_mod
from repro.common.errors import ConfigError
from repro.common.params import FenceDesign
from repro.synth import engine
from repro.synth.engine import SynthConfig, run_synthesis

DESIGNS = (FenceDesign.S_PLUS, FenceDesign.WS_PLUS, FenceDesign.W_PLUS)


def _config(designs=DESIGNS, **kw):
    kw.setdefault("num_points", 2)
    return SynthConfig(program="sb", designs=designs, seed=1,
                       max_runs=400, audit=False, **kw)


def _fake_entry(design):
    return {
        "status": "ok", "strategy": "fake", "placements": [
            {"placement": f"[{design.value}]", "rank": 1}],
        "site_probes": {}, "baseline_cycles": 100, "failure": None,
    }


@pytest.fixture
def fake_synth(monkeypatch):
    """Replace the per-design search with an instant fake; records
    which designs actually 'ran'."""
    ran = []

    def fake(design, stripped, sites, config, deadline):
        ran.append(design.value)
        return _fake_entry(design), 7

    monkeypatch.setattr(engine, "_synth_one_design", fake)
    return ran


def test_journal_checkpoints_each_design(tmp_path, fake_synth):
    journal = str(tmp_path / "synth.jsonl")
    report = run_synthesis(_config(), journal=journal)
    recs = list(journal_mod.iter_records(journal))
    assert [r["design"] for r in recs] == [d.value for d in DESIGNS]
    assert all(r["checkpoint_key"] == _config().checkpoint_key()
               for r in recs)
    assert report.total_runs == 21


def test_resume_replays_finished_designs(tmp_path, fake_synth):
    journal = str(tmp_path / "synth.jsonl")
    full = run_synthesis(_config(), journal=journal)
    assert fake_synth == [d.value for d in DESIGNS]

    # drop the last checkpoint, as if killed before design 3 finished
    lines = open(journal).readlines()
    with open(journal, "w") as fh:
        fh.writelines(lines[:2])
        fh.write('{"design": "W+", "entry"')  # torn mid-append
    fake_synth.clear()
    resumed = run_synthesis(_config(), journal=journal, resume=True)
    assert fake_synth == [FenceDesign.W_PLUS.value]  # only the missing one
    assert resumed.designs == full.designs
    assert resumed.total_runs == full.total_runs


def test_resume_ignores_checkpoints_from_another_config(tmp_path,
                                                        fake_synth):
    journal = str(tmp_path / "synth.jsonl")
    run_synthesis(_config(num_points=2), journal=journal)
    fake_synth.clear()
    # same journal, different search config: nothing may be replayed
    other = _config(num_points=3)
    run_synthesis(other, journal=journal, resume=True)
    assert fake_synth == [d.value for d in DESIGNS]


def test_resume_retries_exhausted_designs(tmp_path, fake_synth):
    journal = str(tmp_path / "synth.jsonl")
    config = _config(designs=(FenceDesign.S_PLUS,))
    with journal_mod.JournalWriter(journal) as writer:
        writer.append({
            "design": "S+", "checkpoint_key": config.checkpoint_key(),
            "entry": {"status": "exhausted-wall", "strategy": None,
                      "placements": [], "site_probes": {},
                      "baseline_cycles": None, "failure": None},
            "runs": 0,
        })
    run_synthesis(config, journal=journal, resume=True)
    assert fake_synth == ["S+"]  # exhausted checkpoints are re-searched


def test_existing_journal_without_resume_is_refused(tmp_path, fake_synth):
    journal = str(tmp_path / "synth.jsonl")
    run_synthesis(_config(), journal=journal)
    with pytest.raises(ConfigError, match="already exists"):
        run_synthesis(_config(), journal=journal)
    before = open(journal).read()
    run_synthesis(_config(), journal=journal, overwrite_journal=True)
    assert open(journal + ".bak").read() == before


def test_checkpoint_key_ignores_design_list():
    """The per-design checkpoint must be reusable when only the design
    selection changes — designs are keyed per record, not per config."""
    a = _config(designs=(FenceDesign.S_PLUS,))
    b = _config(designs=DESIGNS)
    c = _config(designs=DESIGNS, num_points=9)
    assert a.checkpoint_key() == b.checkpoint_key()
    assert a.checkpoint_key() != c.checkpoint_key()


def test_real_synthesis_resume_is_bit_identical(tmp_path):
    """End-to-end (no fakes): a resumed synthesis report equals the
    uninterrupted one, byte for byte."""
    journal = str(tmp_path / "synth.jsonl")
    config = _config(designs=(FenceDesign.S_PLUS, FenceDesign.SW_PLUS))
    full = run_synthesis(config, journal=journal)
    lines = open(journal).readlines()
    assert len(lines) == 2
    with open(journal, "w") as fh:  # killed after design 1
        fh.write(lines[0])
    resumed = run_synthesis(config, journal=journal, resume=True)
    assert (json.dumps(resumed.to_dict(), sort_keys=True)
            == json.dumps(full.to_dict(), sort_keys=True))
