"""Determinism and golden pinning of the synthesis report.

Same (program, designs, seed, config) must mean a bit-identical
report: no timestamps, no dict-order leakage, no hidden global state
in the oracle or the adversary stream.  The golden half pins the whole
SB x five-designs report JSON under ``tests/golden/data/`` so a change
to search order, cost model, or report schema is a *deliberate*
regeneration, never drift.
"""

import json
import os

from repro.synth import SynthConfig, run_synthesis
from repro.verify.oracles import PAPER_DESIGNS

GOLDEN = os.path.join(os.path.dirname(__file__), os.pardir, "golden",
                      "data", "synth_sb.json")

#: mirrors the `repro synth --program sb --designs all --seed 1`
#: defaults (see cli.py) — the acceptance-criteria invocation
CLI_DEFAULT_CONFIG = SynthConfig(program="sb", designs=PAPER_DESIGNS,
                                 seed=1)


def test_report_is_bit_identical_across_runs():
    first = run_synthesis(CLI_DEFAULT_CONFIG)
    second = run_synthesis(CLI_DEFAULT_CONFIG)
    assert first.to_json() == second.to_json()
    assert first.ok


def test_report_is_bit_identical_across_design_subsets():
    """Synthesizing one design alone reproduces exactly that design's
    entry from the all-designs run: no cross-design state leaks."""
    full = run_synthesis(CLI_DEFAULT_CONFIG)
    for design in PAPER_DESIGNS[:2]:
        alone = run_synthesis(
            SynthConfig(program="sb", designs=(design,), seed=1))
        assert alone.designs[design.value] == full.designs[design.value]


def test_seed_changes_the_adversary_but_not_the_answer():
    """A different seed draws different adversary schedules; for SB the
    textbook minima are still the unique answer."""
    baseline = run_synthesis(CLI_DEFAULT_CONFIG)
    other = run_synthesis(
        SynthConfig(program="sb", designs=PAPER_DESIGNS, seed=7))
    for design in PAPER_DESIGNS:
        expected = [p["placement"]
                    for p in baseline.designs[design.value]["placements"]]
        actual = [p["placement"]
                  for p in other.designs[design.value]["placements"]]
        assert sorted(actual) == sorted(expected)


def test_golden_sb_report():
    """The full SB x 5-designs report matches the checked-in golden bit
    for bit.  Regenerate deliberately with
    ``PYTHONPATH=src python tests/golden/make_synth_golden.py``."""
    with open(GOLDEN) as fh:
        golden = json.load(fh)
    actual = run_synthesis(CLI_DEFAULT_CONFIG).to_dict()
    assert actual == golden, (
        "synth report diverged from tests/golden/data/synth_sb.json; "
        "if the change to search order / cost model / schema is "
        "deliberate, regenerate with "
        "PYTHONPATH=src python tests/golden/make_synth_golden.py"
    )
