"""Direct unit tests of the L1 controller's coherence endpoint."""

import pytest

from repro.common.params import FenceDesign
from repro.core import isa as ops
from repro.mem.cache import LineState
from repro.mem.messages import Msg, Transaction
from repro.sim.machine import Machine

from tests.support import run_threads, tiny_params


def make_l1(design=FenceDesign.WS_PLUS):
    m = Machine(tiny_params(design))
    return m, m.l1s[0]


def inv(line, ordered=False, word_mask=0):
    return Transaction(kind=Msg.ORDER if ordered else Msg.GETX,
                       requester=1, line=line, ordered=ordered,
                       word_mask=word_mask)


def test_inv_without_bs_invalidates_and_acks():
    m, l1 = make_l1()
    line = 0x100
    l1.cache.insert(line, LineState.S)
    resp, dirty, true_sharing = l1.handle_inv(inv(line))
    assert resp is Msg.INV_ACK and not dirty and not true_sharing
    assert l1.cache.lookup(line) is None


def test_inv_of_dirty_line_reports_writeback():
    m, l1 = make_l1()
    line = 0x100
    l1.cache.insert(line, LineState.M)
    resp, dirty, _ = l1.handle_inv(inv(line))
    assert resp is Msg.INV_ACK and dirty


def test_inv_with_bs_match_bounces_and_keeps_line():
    m, l1 = make_l1()
    line = 0x100
    l1.cache.insert(line, LineState.S)
    l1.bs.add(line, 0b1, fence_id=1)
    resp, dirty, _ = l1.handle_inv(inv(line))
    assert resp is Msg.INV_BOUNCE and not dirty
    assert l1.cache.lookup(line) is LineState.S  # copy retained
    assert l1.bs.bounced_since_clear


def test_bs_survives_line_absence():
    """§5.1: the BS is checked before the cache, so it keeps bouncing
    after the line was evicted."""
    m, l1 = make_l1()
    line = 0x100
    l1.bs.add(line, 0b1, fence_id=1)
    resp, dirty, _ = l1.handle_inv(inv(line))
    assert resp is Msg.INV_BOUNCE


def test_ordered_inv_with_bs_match_keeps_sharer():
    m, l1 = make_l1()
    line = 0x100
    l1.cache.insert(line, LineState.M)
    l1.bs.add(line, 0b1, fence_id=1)
    resp, dirty, true_sharing = l1.handle_inv(inv(line, ordered=True))
    assert resp is Msg.INV_KEEP_SHARER
    assert dirty  # dirty copy flushed
    assert l1.cache.lookup(line) is None  # invalidated
    # coarse-grain BS reports any match as (potential) true sharing
    assert true_sharing


def test_fine_grain_bs_distinguishes_false_sharing():
    m, l1 = make_l1(FenceDesign.SW_PLUS)
    line = 0x100
    l1.bs.add(line, 0b0001, fence_id=1)   # word 0 accessed
    resp, _d, true_sharing = l1.handle_inv(
        inv(line, ordered=True, word_mask=0b0100))  # word 2 written
    assert resp is Msg.INV_KEEP_SHARER and not true_sharing
    l1.bs.add(line, 0b0100, fence_id=1)
    resp, _d, true_sharing = l1.handle_inv(
        inv(line, ordered=True, word_mask=0b0100))
    assert true_sharing


def test_downgrade_is_never_bounced():
    m, l1 = make_l1()
    line = 0x100
    l1.cache.insert(line, LineState.M)
    l1.bs.add(line, 0b1, fence_id=1)
    dirty = l1.handle_downgrade(line)
    assert dirty
    assert l1.cache.lookup(line) is LineState.S


def test_downgrade_of_absent_line_is_clean():
    m, l1 = make_l1()
    assert l1.handle_downgrade(0x100) is False


def test_bs_bounce_hook_fires():
    m, l1 = make_l1()
    fired = []
    l1.on_bs_bounce = lambda: fired.append(1)
    l1.bs.add(0x100, 0b1, fence_id=1)
    l1.handle_inv(inv(0x100))
    assert fired == [1]


def test_write_hit_reissues_if_ownership_lost():
    """The local-completion race: a store that hit M re-verifies at
    completion and falls back to a transaction if invalidated."""
    m = Machine(tiny_params(num_cores=2))
    x = m.alloc.word()

    def owner(ctx):
        yield ops.Store(x, 1)       # gains M
        yield ops.Compute(300)
        yield ops.Store(x, 2)       # M hit... unless invalidated
        yield ops.Compute(2000)

    def intruder(ctx):
        yield ops.Compute(280)
        yield ops.Store(x, 9)

    run_threads(m, owner, intruder)
    # last writer wins; no value lost to the race
    assert m.image.peek(x) in (2, 9)
    # both stores merged exactly once each: image history is coherent
    assert m.stats.l1_misses >= 2
