"""Direct unit tests of DirectoryBank transaction handling.

These drive the bank with hand-built transactions against stub L1
controllers, checking the MESI state machine and the fence extensions
without a full machine in the loop.
"""

import pytest

from repro.common.events import EventQueue
from repro.common.params import MachineParams
from repro.common.stats import MachineStats
from repro.mem.directory import DirectoryBank
from repro.mem.messages import Msg, Transaction
from repro.mem.noc import MeshNoc


class StubL1:
    """Scriptable invalidation responder."""

    def __init__(self, response=(Msg.INV_ACK, False, False),
                 downgrade_dirty=False):
        self.response = response
        self.downgrade_dirty = downgrade_dirty
        self.invs = []
        self.downgrades = []

    def handle_inv(self, txn):
        self.invs.append(txn.line)
        return self.response

    def handle_downgrade(self, line):
        self.downgrades.append(line)
        return self.downgrade_dirty


def make_bank(num_cores=4, stubs=None):
    params = MachineParams(num_cores=num_cores, num_banks=num_cores)
    stats = MachineStats(num_cores)
    queue = EventQueue()
    noc = MeshNoc(params, stats)
    bank = DirectoryBank(0, params, stats, noc, queue)
    bank.controllers = stubs or [StubL1() for _ in range(num_cores)]
    return bank, queue, stats


def send(bank, queue, kind, requester, line, **kw):
    replies = []
    txn = Transaction(kind=kind, requester=requester, line=line, **kw)
    txn.on_done = lambda reply, t: replies.append((reply, t))
    bank.receive(txn)
    queue.run()
    return replies


LINE = 0x0  # homed at bank 0 with line interleaving


def test_first_gets_grants_exclusive():
    bank, queue, _ = make_bank()
    replies = send(bank, queue, Msg.GETS, 1, LINE)
    assert replies[0][0] is Msg.DATA
    assert replies[0][1].granted_exclusive
    entry = bank.dir_state(LINE)
    assert entry.owner == 1 and not entry.sharers


def test_second_gets_downgrades_owner():
    stubs = [StubL1() for _ in range(4)]
    stubs[1].downgrade_dirty = True
    bank, queue, stats = make_bank(stubs=stubs)
    send(bank, queue, Msg.GETS, 1, LINE)
    replies = send(bank, queue, Msg.GETS, 2, LINE)
    assert replies[0][0] is Msg.DATA
    assert not replies[0][1].granted_exclusive
    entry = bank.dir_state(LINE)
    assert entry.owner is None and entry.sharers == {1, 2}
    assert stubs[1].downgrades == [LINE]


def test_getx_invalidates_all_sharers():
    bank, queue, _ = make_bank()
    send(bank, queue, Msg.GETS, 1, LINE)
    send(bank, queue, Msg.GETS, 2, LINE)
    replies = send(bank, queue, Msg.GETX, 3, LINE)
    assert replies[0][0] is Msg.DATA
    entry = bank.dir_state(LINE)
    assert entry.owner == 3 and not entry.sharers
    assert bank.controllers[1].invs == [LINE]
    assert bank.controllers[2].invs == [LINE]


def test_getx_upgrade_replies_ack_not_data():
    bank, queue, _ = make_bank()
    send(bank, queue, Msg.GETS, 1, LINE)
    send(bank, queue, Msg.GETS, 2, LINE)
    replies = send(bank, queue, Msg.GETX, 2, LINE)
    assert replies[0][0] is Msg.ACK  # requester already held S


def test_bounced_inv_nacks_the_whole_transaction():
    stubs = [StubL1() for _ in range(4)]
    stubs[1].response = (Msg.INV_BOUNCE, False, False)
    bank, queue, stats = make_bank(stubs=stubs)
    send(bank, queue, Msg.GETS, 1, LINE)
    replies = send(bank, queue, Msg.GETX, 2, LINE)
    assert replies[0][0] is Msg.NACK_BOUNCE
    assert stats.bounces == 1
    # the bouncing sharer keeps its directory presence
    assert 1 in bank.dir_state(LINE).caching_cores()


def test_order_keeps_bs_matching_sharers():
    stubs = [StubL1() for _ in range(4)]
    stubs[1].response = (Msg.INV_KEEP_SHARER, False, False)
    bank, queue, stats = make_bank(stubs=stubs)
    send(bank, queue, Msg.GETS, 1, LINE)
    replies = send(bank, queue, Msg.ORDER, 2, LINE, ordered=True)
    assert replies[0][0] in (Msg.DATA, Msg.ACK)
    entry = bank.dir_state(LINE)
    # Order success: requester Shared alongside the BS holder
    assert entry.owner is None
    assert entry.sharers == {1, 2}
    assert stats.order_ops == 1


def test_cond_order_fails_on_true_sharing():
    stubs = [StubL1() for _ in range(4)]
    stubs[1].response = (Msg.INV_KEEP_SHARER, False, True)  # true sharing
    bank, queue, stats = make_bank(stubs=stubs)
    send(bank, queue, Msg.GETS, 1, LINE)
    replies = send(bank, queue, Msg.COND_ORDER, 2, LINE,
                   ordered=True, word_mask=0b1)
    assert replies[0][0] is Msg.NACK_BOUNCE
    assert stats.cond_order_failures == 1
    # the true-sharing BS holder stays a sharer
    assert 1 in bank.dir_state(LINE).sharers


def test_cond_order_succeeds_on_false_sharing():
    stubs = [StubL1() for _ in range(4)]
    stubs[1].response = (Msg.INV_KEEP_SHARER, False, False)
    bank, queue, stats = make_bank(stubs=stubs)
    send(bank, queue, Msg.GETS, 1, LINE)
    replies = send(bank, queue, Msg.COND_ORDER, 2, LINE,
                   ordered=True, word_mask=0b1)
    assert replies[0][0] in (Msg.DATA, Msg.ACK)
    assert stats.cond_order_ops == 1


def test_busy_line_serializes_requests():
    bank, queue, _ = make_bank()
    order = []
    for requester in (1, 2):
        txn = Transaction(kind=Msg.GETS, requester=requester, line=LINE)
        txn.on_done = lambda reply, t: order.append(t.requester)
        bank.receive(txn)
    queue.run()
    assert order == [1, 2]
    assert not bank.busy_lines


def test_putm_clears_ownership_and_fills_l2():
    bank, queue, stats = make_bank()
    send(bank, queue, Msg.GETX, 1, LINE)
    putm = Transaction(kind=Msg.PUTM, requester=1, line=LINE)
    bank.receive(putm)
    queue.run()
    assert bank.dir_state(LINE).owner is None
    assert stats.dirty_writebacks == 1
    assert LINE in bank._l2


def test_stale_putm_is_dropped():
    bank, queue, stats = make_bank()
    send(bank, queue, Msg.GETX, 1, LINE)
    send(bank, queue, Msg.GETX, 2, LINE)  # ownership moved to 2
    stale = Transaction(kind=Msg.PUTM, requester=1, line=LINE)
    bank.receive(stale)
    queue.run()
    assert bank.dir_state(LINE).owner == 2


def test_putm_keep_sharer_flag():
    bank, queue, stats = make_bank()
    send(bank, queue, Msg.GETX, 1, LINE)
    putm = Transaction(kind=Msg.PUTM, requester=1, line=LINE,
                       keep_sharers={1})
    bank.receive(putm)
    queue.run()
    entry = bank.dir_state(LINE)
    assert entry.owner is None and entry.sharers == {1}


def test_cold_miss_pays_memory_and_fills_l2():
    bank, queue, _ = make_bank()
    t0 = queue.now
    send(bank, queue, Msg.GETS, 1, LINE)
    cold = queue.now - t0
    send(bank, queue, Msg.GETX, 2, LINE)  # invalidate core 1
    t1 = queue.now
    send(bank, queue, Msg.GETS, 1, LINE + 0x99999 * 32 * 4)
    # different cold line still pays memory; the first line is in L2
    t2 = queue.now
    send(bank, queue, Msg.GETS, 3, LINE)
    warm = queue.now - t2
    assert cold > warm


def test_l2_capacity_evicts_lru():
    bank, queue, _ = make_bank()
    capacity = bank._l2_capacity
    for i in range(capacity + 10):
        bank._l2_fill(i * 32)
    assert len(bank._l2) == capacity
    assert 0 not in bank._l2  # oldest evicted


def test_grt_deposit_collect_withdraw():
    bank, queue, _ = make_bank()
    remote = bank.grt_deposit(0, 1, {0x100, 0x200})
    assert remote == set()
    remote = bank.grt_deposit(1, 7, {0x300})
    assert remote == {0x100, 0x200}
    # second fence of core 0 coexists with the first
    remote = bank.grt_deposit(0, 2, {0x400})
    assert remote == {0x300}
    bank.grt_withdraw(0, 1)
    remote = bank.grt_deposit(2, 1, set())
    assert remote == {0x300, 0x400}
