"""Integration tests of the MESI directory protocol through tiny
machines: visibility, invalidation, exclusivity, writebacks."""

import pytest

from repro import FenceDesign, ops
from repro.mem.cache import LineState

from tests.support import notes_of, run_threads, tiny_params
from repro.sim.machine import Machine


def test_store_becomes_globally_visible(machine):
    x = machine.alloc.word()

    def writer(ctx):
        yield ops.Store(x, 42)

    def reader(ctx):
        while True:
            v = yield ops.Load(x)
            if v:
                break
            yield ops.Compute(20)
        yield ops.Note(("v", v))

    run_threads(machine, writer, reader)
    assert notes_of(machine, 1) == [("v", 42)]
    assert machine.image.peek(x) == 42


def test_exclusive_grant_on_sole_reader():
    m = Machine(tiny_params())
    x = m.alloc.word()

    def reader(ctx):
        yield ops.Load(x)

    run_threads(m, reader)
    line = m.amap.line_of(x)
    assert m.l1s[0].cache.lookup(line) is LineState.E
    assert m.banks[m.amap.home_bank(x)].dir_state(line).owner == 0


def test_second_reader_downgrades_to_shared():
    m = Machine(tiny_params())
    x = m.alloc.word()
    order = []

    def t0(ctx):
        yield ops.Load(x)
        order.append(0)
        yield ops.Compute(400)

    def t1(ctx):
        yield ops.Compute(100)
        yield ops.Load(x)
        order.append(1)

    run_threads(m, t0, t1)
    line = m.amap.line_of(x)
    assert m.l1s[0].cache.lookup(line) is LineState.S
    assert m.l1s[1].cache.lookup(line) is LineState.S
    entry = m.banks[m.amap.home_bank(x)].dir_state(line)
    assert entry.owner is None and entry.sharers == {0, 1}


def test_writer_invalidates_sharers():
    m = Machine(tiny_params())
    x = m.alloc.word()

    def reader(ctx):
        yield ops.Load(x)
        yield ops.Compute(2000)  # hold while the writer invalidates

    def writer(ctx):
        yield ops.Compute(300)
        yield ops.Store(x, 9)
        yield ops.Compute(2000)

    run_threads(m, reader, writer)
    line = m.amap.line_of(x)
    assert m.l1s[0].cache.lookup(line) is None  # invalidated
    assert m.l1s[1].cache.lookup(line) is LineState.M
    entry = m.banks[m.amap.home_bank(x)].dir_state(line)
    assert entry.owner == 1 and not entry.sharers


def test_read_after_remote_write_fetches_dirty_data():
    m = Machine(tiny_params())
    x = m.alloc.word()

    def writer(ctx):
        yield ops.Store(x, 1234)

    def reader(ctx):
        yield ops.Compute(800)  # let the store land in the writer's L1
        v = yield ops.Load(x)
        yield ops.Note(("v", v))

    run_threads(m, writer, reader)
    assert notes_of(m, 1) == [("v", 1234)]
    line = m.amap.line_of(x)
    # M -> S downgrade at the writer
    assert m.l1s[0].cache.lookup(line) is LineState.S


def test_dirty_eviction_writes_back():
    m = Machine(tiny_params())
    # two lines mapping to the same L1 set, plus enough to evict
    ways = m.params.l1_ways
    set_stride = m.params.l1_sets * m.params.line_bytes
    base = m.alloc.alloc(8 * set_stride // 4, align_bytes=set_stride)
    victims = [base + i * set_stride for i in range(ways + 1)]

    def writer(ctx):
        for addr in victims:
            yield ops.Store(addr, 7)
            yield ops.Compute(400)

    run_threads(m, writer)
    assert m.stats.dirty_writebacks >= 1
    first_line = m.amap.line_of(victims[0])
    assert m.l1s[0].cache.lookup(first_line) is None
    # directory no longer thinks core 0 owns the evicted line
    assert m.banks[m.amap.home_bank(first_line)].dir_state(first_line).owner is None


def test_store_to_load_forwarding_before_visibility():
    m = Machine(tiny_params(num_cores=1))
    x = m.alloc.word()

    def t(ctx):
        yield ops.Store(x, 5)
        v = yield ops.Load(x)  # forwarded from the WB, before merge
        yield ops.Note(("v", v))

    run_threads(m, t)
    assert notes_of(m, 0) == [("v", 5)]


def test_rmw_atomicity_under_contention():
    m = Machine(tiny_params(num_cores=4, exact=False))
    x = m.alloc.word()
    N = 20

    def incrementer(ctx):
        for _ in range(N):
            yield ops.AtomicRMW(x, "add", 1)
            yield ops.Compute(30)

    for _ in range(4):
        m.spawn(incrementer)
    m.run()
    assert m.image.peek(x) == 4 * N


def test_cas_semantics():
    m = Machine(tiny_params(num_cores=1))
    x = m.alloc.word()

    def t(ctx):
        old = yield ops.AtomicRMW(x, "cas", (0, 7))
        yield ops.Note(("first", old))
        old = yield ops.AtomicRMW(x, "cas", (0, 9))
        yield ops.Note(("second", old))
        old = yield ops.AtomicRMW(x, "xchg", 11)
        yield ops.Note(("xchg", old))

    run_threads(m, t)
    assert notes_of(m, 0) == [("first", 0), ("second", 7), ("xchg", 7)]
    assert m.image.peek(x) == 11


def test_network_traffic_is_accounted():
    m = Machine(tiny_params())
    x = m.alloc.word()

    def writer(ctx):
        yield ops.Store(x, 1)

    run_threads(m, writer)
    assert m.stats.network_bytes > 0
    assert m.stats.coherence_transactions >= 1
