"""Protocol tests of the paper's fence extensions: bounce, Order,
Conditional Order and writeback-keep-sharer (§3.3 / §5.1).

These drive the mechanisms directly through small machines with one
incomplete weak fence: a cold "pad" store keeps the fence pending while
post-fence loads populate the Bypass Set.
"""

from repro import FenceDesign, FenceRole, ops
from repro.mem.cache import LineState

from tests.support import notes_of, run_threads, tiny_params
from repro.sim.machine import Machine


def _warm(addrs):
    for a in addrs:
        yield ops.Load(a)
    yield ops.Compute(1600)


def _pending_wf_thread(pad, pre, post, role=FenceRole.CRITICAL, warm=()):
    """st pad (cold, slow); st pre; wf; ld post — the canonical pattern."""
    def fn(ctx):
        yield from _warm(warm)
        yield ops.Store(pad, 7)
        if pre is not None:
            yield ops.Store(pre, 1)
        yield ops.Fence(role)
        v = yield ops.Load(post)
        yield ops.Note(("r", v))
    return fn


def test_plain_write_bounces_off_remote_bs():
    """A write conflicting with a post-wf read is NACKed until the
    fence completes (no O bit: WS+ never promotes sf-side writes)."""
    m = Machine(tiny_params(FenceDesign.WS_PLUS))
    x, y, pad = m.alloc.word(), m.alloc.word(), m.alloc.word()

    # P0 (critical): pad; st x; wf; ld y  -> y in P0's BS
    m.spawn(_pending_wf_thread(pad, x, y, warm=[x, y]))

    # P1 (standard): writes y while P0's fence is incomplete
    def p1(ctx):
        yield from _warm([x, y])
        yield ops.Compute(120)
        yield ops.Store(y, 5)

    m.spawn(p1)
    m.run()
    assert m.stats.bounces >= 1
    assert m.stats.write_retries >= 1
    # everything still completed and the store eventually merged
    assert m.image.peek(y) == 5


def test_order_operation_resolves_wf_wf_interference():
    """Two unrelated wfs (Fig. 4c): the bounced pre-wf write gets the
    O bit and completes via an Order operation, and the BS holder is
    kept as a directory sharer."""
    m = Machine(tiny_params(FenceDesign.WS_PLUS))
    x, y = m.alloc.word(), m.alloc.word()
    pads = [m.alloc.word(), m.alloc.word()]

    # P0: pad; st x; wf; ld y      P1: pad; st y; wf; ld x
    m.spawn(_pending_wf_thread(pads[0], x, y, warm=[x, y]))
    m.spawn(_pending_wf_thread(pads[1], y, x, warm=[x, y]))
    m.run()
    assert m.stats.order_ops >= 1
    # Order merged the updates; both final values present
    assert m.image.peek(x) == 1 and m.image.peek(y) == 1
    # the kept-sharer mechanism was exercised
    assert m.stats.bs_keep_sharer >= 1


def test_order_keeps_bs_holder_as_sharer_in_directory():
    m = Machine(tiny_params(FenceDesign.WS_PLUS))
    x, y = m.alloc.word(), m.alloc.word()
    pads = [m.alloc.word(), m.alloc.word()]
    m.spawn(_pending_wf_thread(pads[0], x, y, warm=[x, y]))
    m.spawn(_pending_wf_thread(pads[1], y, x, warm=[x, y]))
    m.run()
    if m.stats.order_ops:
        # after an Order on y (requested by P1), P0 stays a sharer
        line_y = m.amap.line_of(y)
        entry = m.banks[m.amap.home_bank(y)].dir_state(line_y)
        assert entry.owner is None or isinstance(entry.owner, int)


def test_conditional_order_false_sharing_completes():
    """SW+ (Fig. 4b): false sharing between two unrelated wfs — the CO
    succeeds because the BS words do not overlap the written words."""
    m = Machine(tiny_params(FenceDesign.SW_PLUS))
    # x and x2 in one line; y and y2 in another
    xl = m.alloc.alloc_line(2)
    x, x2 = m.alloc.words_of(xl, 2)
    yl = m.alloc.alloc_line(2)
    y, y2 = m.alloc.words_of(yl, 2)
    pads = [m.alloc.word(), m.alloc.word()]

    m.spawn(_pending_wf_thread(pads[0], x, y, warm=[x, y]))
    m.spawn(_pending_wf_thread(pads[1], y2, x2, warm=[x, y]))
    m.run()
    # the machine made progress and used CO (or never collided, in
    # which case nothing bounced at all)
    if m.stats.bounces:
        assert m.stats.cond_order_ops >= 1
    assert m.image.peek(x) == 1 and m.image.peek(y2) == 1


def test_conditional_order_true_sharing_keeps_bouncing():
    """SW+ with genuine (true-sharing) conflict and an sf on the other
    side: the CO fails while the true-sharing BS entry persists, and
    completes once the sf side's fence finishes."""
    m = Machine(tiny_params(FenceDesign.SW_PLUS))
    x, y = m.alloc.word(), m.alloc.word()
    pads = [m.alloc.word(), m.alloc.word()]

    # P0 critical (wf), P1 standard (sf): a proper asymmetric group
    m.spawn(_pending_wf_thread(pads[0], x, y, warm=[x, y]))
    m.spawn(_pending_wf_thread(pads[1], y, x, role=FenceRole.STANDARD,
                               warm=[x, y]))
    m.run()
    # P1's write to y conflicts with P0's BS entry for y (true sharing):
    # any CO attempt must have failed at least as often as it succeeded
    # on that line; in all cases the run completes without an SCV.
    out = dict(notes_of(m, 0) + notes_of(m, 1))
    assert m.image.peek(x) == 1 and m.image.peek(y) == 1


def test_dirty_eviction_of_bs_line_keeps_sharer():
    """§5.1: evicting a dirty line whose address is in the BS sends a
    keep-sharer writeback so the BS keeps seeing future writes."""
    m = Machine(tiny_params(FenceDesign.WS_PLUS))
    set_stride = m.params.l1_sets * m.params.line_bytes
    ways = m.params.l1_ways
    base = m.alloc.alloc(4 * (ways + 2) * set_stride // 4,
                         align_bytes=set_stride)
    conflicting = [base + i * set_stride for i in range(ways + 1)]
    target = conflicting[0]
    pads = [m.alloc.word(), m.alloc.word()]

    def p0(ctx):
        # dirty the target line and warm all but one conflicting line
        yield ops.Store(target, 3)
        for addr in conflicting[1:-1]:
            yield ops.Load(addr)
        yield ops.Compute(900)
        # two cold stores keep the wf pending for ~2 memory round trips
        yield ops.Store(pads[0], 7)
        yield ops.Store(pads[1], 7)
        yield ops.Fence(FenceRole.CRITICAL)
        yield ops.Load(target)            # BS <- target (dirty M, LRU-oldest)
        for addr in conflicting[1:-1]:    # refresh the warm lines
            yield ops.Load(addr)
        yield ops.Load(conflicting[-1])   # miss: evicts the target line

    m.spawn(p0)
    m.run()
    line = m.amap.line_of(target)
    entry = m.banks[m.amap.home_bank(line)].dir_state(line)
    # the writeback kept core 0 as a sharer despite the eviction
    assert 0 in entry.sharers
    assert m.stats.bs_keep_sharer >= 1
