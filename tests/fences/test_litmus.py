"""Litmus-test matrix across all five fence designs.

The ground truth (paper §2.1/Fig. 1): with fences placed per the
design's contract, the SC-forbidden outcomes must never appear; without
fences TSO's store→load reordering produces them.  The SCV checker
independently validates every execution's dependence graph.
"""

import pytest

from repro.common.errors import DeadlockError
from repro.common.params import FenceDesign, FenceRole
from repro.sim.scv import find_scv
from repro.workloads import litmus

ALL = tuple(FenceDesign)
ASYM = (FenceRole.CRITICAL, FenceRole.STANDARD)
BOTH_CRITICAL = (FenceRole.CRITICAL, FenceRole.CRITICAL)


def outcome(lit):
    return (lit.value(0, "r"), lit.value(1, "r"))


# ---------------------------------------------------------------------------
# store buffering (Dekker), Fig. 1d
# ---------------------------------------------------------------------------


def test_sb_without_fences_violates_sc():
    lit = litmus.store_buffering(FenceDesign.S_PLUS, fences=False,
                                 pad_stores=1)
    assert outcome(lit) == (0, 0)  # the forbidden outcome under SC
    assert find_scv(lit.result.events) is not None


@pytest.mark.parametrize("design", ALL)
def test_sb_with_fences_preserves_sc(design):
    lit = litmus.store_buffering(design, roles=ASYM)
    assert outcome(lit) != (0, 0)
    assert find_scv(lit.result.events) is None


@pytest.mark.parametrize("design", ALL)
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_sb_seed_sweep(design, seed):
    lit = litmus.store_buffering(design, roles=ASYM, seed=seed,
                                 pad_stores=2)
    assert outcome(lit) != (0, 0)
    assert find_scv(lit.result.events) is None


def test_sb_wplus_handles_wf_only_group():
    """W+ supports all-wf groups via deadlock recovery (§3.3.3)."""
    lit = litmus.store_buffering(FenceDesign.W_PLUS, roles=BOTH_CRITICAL)
    assert outcome(lit) != (0, 0)
    assert find_scv(lit.result.events) is None
    # the collision forced at least one rollback
    assert lit.result.stats.wplus_recoveries >= 1


def test_sb_ws_plus_misused_may_violate_sc_silently():
    """The paper's §3.3.1 caveat: WS+ assumes at most one wf per group.
    Two colliding wfs get Order-promoted and an SCV slips through
    silently — the documented failure mode, reproduced exactly."""
    lit = litmus.store_buffering(FenceDesign.WS_PLUS, roles=BOTH_CRITICAL)
    assert outcome(lit) == (0, 0)
    assert lit.result.stats.order_ops >= 1
    assert find_scv(lit.result.events) is not None


def test_sb_sw_plus_misused_deadlocks_not_violates():
    """SW+ needs >= 1 sf in the group for forward progress (§3.3.2):
    with two wfs the true-sharing COs bounce forever.  The machine
    deadlocks — but SC is never violated."""
    with pytest.raises(DeadlockError):
        litmus.store_buffering(FenceDesign.SW_PLUS, roles=BOTH_CRITICAL)


def test_sb_wee_handles_wf_only_group_via_grt():
    """WeeFence's GRT/RemotePS prevents both the SCV and the deadlock
    for colliding fences confined to one directory module."""
    lit = litmus.store_buffering(FenceDesign.WEE, roles=BOTH_CRITICAL)
    assert outcome(lit) != (0, 0)
    assert find_scv(lit.result.events) is None
    assert lit.result.stats.wplus_recoveries == 0


def test_naive_wf_only_design_deadlocks():
    """Fig. 3a: weak fences without global state or recovery deadlock
    while preventing the SCV."""
    with pytest.raises(DeadlockError) as exc:
        litmus.store_buffering(FenceDesign.W_PLUS, roles=BOTH_CRITICAL,
                               recovery=False)
    assert exc.value.blocked_cores


# ---------------------------------------------------------------------------
# three-thread cycle, Fig. 1e/1f and Fig. 3c
# ---------------------------------------------------------------------------


def test_three_thread_cycle_without_fences():
    lit = litmus.three_thread_cycle(FenceDesign.S_PLUS, fences=False)
    values = [lit.value(t, "r") for t in range(3)]
    # TSO allows the forbidden all-zero outcome without fences
    assert values == [0, 0, 0]
    assert find_scv(lit.result.events) is not None


@pytest.mark.parametrize("design", ALL)
def test_three_thread_cycle_with_fences(design):
    roles = (FenceRole.CRITICAL, FenceRole.CRITICAL, FenceRole.STANDARD)
    if design is FenceDesign.WS_PLUS:
        # WS+ groups may contain at most one wf
        roles = (FenceRole.CRITICAL, FenceRole.STANDARD, FenceRole.STANDARD)
    lit = litmus.three_thread_cycle(design, roles=roles)
    values = [lit.value(t, "r") for t in range(3)]
    assert values != [0, 0, 0]
    assert find_scv(lit.result.events) is None


# ---------------------------------------------------------------------------
# false/true sharing between unrelated wfs, Fig. 4b/4c
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("design", [FenceDesign.WS_PLUS,
                                    FenceDesign.SW_PLUS,
                                    FenceDesign.W_PLUS,
                                    FenceDesign.WEE])
def test_false_sharing_between_unrelated_wfs_progresses(design):
    """Fig. 4b: a false-sharing 'cycle' between unrelated wfs must not
    hang: WS+ orders it, SW+ completes the CO (false sharing), W+
    recovers, Wee stalls via GRT/confinement."""
    lit = litmus.false_sharing_interference(design, true_sharing=False)
    assert lit.result.completed
    # no SCV is possible here (the paper: "interference cannot create
    # an SCV"); the checker agrees
    assert find_scv(lit.result.events) is None


@pytest.mark.parametrize("design", [FenceDesign.WS_PLUS,
                                    FenceDesign.W_PLUS,
                                    FenceDesign.WEE])
def test_true_sharing_interference_progresses(design):
    lit = litmus.false_sharing_interference(design, true_sharing=True)
    assert lit.result.completed
    assert find_scv(lit.result.events) is None


# ---------------------------------------------------------------------------
# message passing (TSO-ordered even without fences)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("design", ALL)
def test_message_passing_all_designs(design):
    lit = litmus.message_passing(design)
    assert lit.value(1, "data") == 42


def test_message_passing_without_fences_still_works_on_tso():
    lit = litmus.message_passing(FenceDesign.W_PLUS, fences=False)
    assert lit.value(1, "data") == 42
