"""IRIW (independent reads of independent writes).

TSO is multi-copy atomic: two readers can never observe two
independent writes in opposite orders, even without fences.  Our
simulator gets this by construction (a store merges into the single
coherent image in one event), and the weak fence designs must not
break it — a post-wf load reads the image too, just earlier.
"""

import pytest

from repro.common.params import FenceDesign, FenceRole
from repro.core import isa as ops
from repro.sim.machine import Machine

from tests.support import notes_of, tiny_params

ALL = tuple(FenceDesign)


def run_iriw(design, fences, seed, stagger):
    m = Machine(tiny_params(design, num_cores=4), seed=seed)
    x, y = m.alloc.word(), m.alloc.word()
    pads = [m.alloc.word(), m.alloc.word()]

    def writer(var, pad, delay):
        def fn(ctx):
            yield ops.Load(x)
            yield ops.Load(y)
            yield ops.Compute(1200 + delay)
            yield ops.Store(pad, 7)  # keeps a wf pending, if weak
            yield ops.Store(var, 1)
            if fences:
                yield ops.Fence(FenceRole.CRITICAL)
            yield ops.Load(var)
        return fn

    def reader(first, second, delay):
        def fn(ctx):
            yield ops.Load(x)
            yield ops.Load(y)
            yield ops.Compute(1200 + delay)
            a = yield ops.Load(first)
            if fences:
                yield ops.Fence(FenceRole.STANDARD)
            b = yield ops.Load(second)
            yield ops.Note(("ab", (a, b)))
        return fn

    m.spawn(writer(x, pads[0], 0))
    m.spawn(writer(y, pads[1], stagger))
    m.spawn(reader(x, y, 7 * stagger % 90))
    m.spawn(reader(y, x, 11 * stagger % 90))
    m.run(max_cycles=1_000_000)
    r0 = notes_of(m, 2)[0][1]
    r1 = notes_of(m, 3)[0][1]
    return r0, r1


@pytest.mark.parametrize("design", ALL)
@pytest.mark.parametrize("stagger", [0, 23, 61])
def test_iriw_forbidden_outcome_never_appears(design, stagger):
    # forbidden: reader0 sees (x=1, y=0) while reader1 sees (y=1, x=0)
    r0, r1 = run_iriw(design, fences=True, seed=3, stagger=stagger)
    assert not (r0 == (1, 0) and r1 == (1, 0)), (r0, r1)


@pytest.mark.parametrize("stagger", [0, 23, 61])
def test_iriw_holds_even_without_fences_on_tso(stagger):
    r0, r1 = run_iriw(FenceDesign.W_PLUS, fences=False, seed=3,
                      stagger=stagger)
    assert not (r0 == (1, 0) and r1 == (1, 0)), (r0, r1)
