"""Fence/litmus conformance suite rides the kernel-backend axis.

Litmus outcomes and conformance matrices are kernel-independent facts
about the memory model; the autouse shim routes the suite through the
backend(s) selected with ``--kernel-backend`` so both kernels must
produce identical verdicts.
"""

import pytest


@pytest.fixture(autouse=True)
def _kernel_backend(kernel):
    """Autouse: pins REPRO_KERNEL for every fence-conformance test."""
    return kernel
