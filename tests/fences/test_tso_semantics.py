"""TSO ordering guarantees the designs must never weaken.

The paper's wfs relax only the fence's own ordering duty; TSO's
baseline rules — load→load, store→store, coherence per location —
must hold under every design, fences or not.
"""

import pytest

from repro.common.params import FenceDesign, FenceRole
from repro.core import isa as ops
from repro.sim.machine import Machine

from tests.support import notes_of, run_threads, tiny_params

ALL = tuple(FenceDesign)


@pytest.mark.parametrize("design", ALL)
def test_store_store_order(design):
    """TSO: stores become visible in program order (no fence needed):
    seeing the second store implies the first is visible."""
    m = Machine(tiny_params(design), seed=4)
    a, b = m.alloc.word(), m.alloc.word()

    def writer(ctx):
        yield ops.Store(a, 1)
        yield ops.Store(b, 1)

    def reader(ctx):
        while True:
            vb = yield ops.Load(b)
            if vb:
                break
            yield ops.Compute(15)
        va = yield ops.Load(a)
        yield ops.Note(("va", va))

    run_threads(m, writer, reader)
    assert notes_of(m, 1) == [("va", 1)]


@pytest.mark.parametrize("design", ALL)
def test_load_load_order(design):
    """TSO: loads perform in order — a reader can never see the flag
    before the data it was published after."""
    m = Machine(tiny_params(design), seed=4)
    data, flag = m.alloc.word(), m.alloc.word()

    def writer(ctx):
        yield ops.Store(data, 7)
        yield ops.Store(flag, 1)

    def reader(ctx):
        while True:
            f = yield ops.Load(flag)
            if f:
                break
            yield ops.Compute(15)
        d = yield ops.Load(data)
        yield ops.Note(("d", d))

    run_threads(m, writer, reader)
    assert notes_of(m, 1) == [("d", 7)]


@pytest.mark.parametrize("design", ALL)
def test_coherence_per_location_corr(design):
    """coRR: two reads of one location never observe values moving
    backwards in coherence order."""
    m = Machine(tiny_params(design), seed=4)
    x = m.alloc.word()

    def writer(ctx):
        for i in range(1, 12):
            yield ops.Store(x, i)
            yield ops.Compute(35)

    def reader(ctx):
        values = []
        for _ in range(30):
            v = yield ops.Load(x)
            values.append(v)
            yield ops.Compute(25)
        yield ops.Note(("vals", tuple(values)))

    run_threads(m, writer, reader)
    (_label, values), = notes_of(m, 1)
    assert list(values) == sorted(values), "coherence order violated"


@pytest.mark.parametrize("design", ALL)
def test_own_stores_read_in_order(design):
    """A thread always sees its own latest store (forwarding + merge)."""
    m = Machine(tiny_params(design, num_cores=1), seed=4)
    x = m.alloc.word()

    def t(ctx):
        seen = []
        for i in range(1, 8):
            yield ops.Store(x, i)
            v = yield ops.Load(x)
            seen.append(v)
            if i == 4:
                yield ops.Fence(FenceRole.CRITICAL)
        yield ops.Note(("seen", tuple(seen)))

    run_threads(m, t)
    (_l, seen), = notes_of(m, 0)
    assert list(seen) == list(range(1, 8))


@pytest.mark.parametrize("design", [FenceDesign.W_PLUS, FenceDesign.WEE])
def test_back_to_back_fences(design):
    """Several wfs in flight at one core complete in order and clear
    their BS tags correctly."""
    m = Machine(tiny_params(design, num_cores=1), seed=4)
    words = [m.alloc.word() for _ in range(4)]
    probe = m.alloc.word()

    def t(ctx):
        yield ops.Load(probe)
        yield ops.Compute(600)
        for w in words:
            yield ops.Store(w, 1)            # cold stores back up the WB
            yield ops.Fence(FenceRole.CRITICAL)
            yield ops.Load(probe)            # one BS entry per fence
        yield ops.Compute(50)

    res = run_threads(m, t)
    assert res.completed
    assert m.stats.total_wf == 4
    # every fence completed and the BS fully drained
    assert len(m.cores[0].bs) == 0
    assert not m.cores[0].pending_fences
