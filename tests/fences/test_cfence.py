"""The C-fence extension (related work, paper §8)."""

import pytest

from repro.common.params import FenceDesign, FenceRole
from repro.core import isa as ops
from repro.sim.machine import Machine
from repro.sim.scv import find_scv
from repro.workloads import litmus

from tests.support import run_threads, tiny_params


def test_cfence_preserves_sc_on_store_buffering():
    for seed in (1, 2, 3):
        lit = litmus.store_buffering(FenceDesign.CFENCE, seed=seed)
        assert (lit.value(0, "r"), lit.value(1, "r")) != (0, 0)
        assert find_scv(lit.result.events) is None


def test_cfence_three_thread_cycle_prevented():
    lit = litmus.three_thread_cycle(FenceDesign.CFENCE)
    values = [lit.value(t, "r") for t in range(3)]
    assert values != [0, 0, 0]
    assert find_scv(lit.result.events) is None


def test_lone_fence_is_skipped():
    m = Machine(tiny_params(FenceDesign.CFENCE, num_cores=1))
    x, y = m.alloc.word(), m.alloc.word()

    def t(ctx):
        yield ops.Store(x, 1)   # cold, ~200 cycles to merge
        yield ops.Fence(FenceRole.CRITICAL)
        yield ops.Load(y)

    run_threads(m, t)
    assert m.stats.cfence_skips == 1
    assert m.stats.cfence_stalls == 0
    # only the table round trip was charged, not the drain
    assert m.stats.total_breakdown()["fence_stall"] < \
        m.params.memory_cycles


def test_colliding_fences_one_stalls():
    lit = litmus.store_buffering(FenceDesign.CFENCE, pad_stores=2)
    s = lit.result.stats
    # at least one dynamic fence observed an executing associate
    assert s.cfence_stalls >= 1
    assert s.cfence_skips >= 1


def test_cfence_workload_invariants():
    from repro.workloads.base import load_all_workloads, run_workload
    load_all_workloads()
    run = run_workload("fib", FenceDesign.CFENCE, num_cores=4,
                       scale=0.2, check=True)
    s = run.stats
    assert s.cfence_skips + s.cfence_stalls == s.total_sf
    # fences rarely collide in work stealing: mostly skipped
    assert s.cfence_skips > s.cfence_stalls


def test_table_clears_after_run():
    lit = litmus.store_buffering(FenceDesign.CFENCE, pad_stores=2)
    # reconstruct the machine's table via the stats-only surface:
    # instead, run a fresh machine and inspect directly
    m = Machine(tiny_params(FenceDesign.CFENCE, num_cores=2))
    x, y = m.alloc.word(), m.alloc.word()

    def t0(ctx):
        yield ops.Store(x, 1)
        yield ops.Fence(FenceRole.CRITICAL)
        yield ops.Load(y)

    def t1(ctx):
        yield ops.Store(y, 1)
        yield ops.Fence(FenceRole.STANDARD)
        yield ops.Load(x)

    run_threads(m, t0, t1)
    from repro.fences.cfence import table_for
    assert not table_for(m).active, "table entries must clear at drain"
