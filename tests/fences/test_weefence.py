"""WeeFence baseline: GRT deposits, RemotePS stalls, confinement."""

from repro.common.params import FenceDesign, FenceRole
from repro.core import isa as ops
from repro.sim.machine import Machine
from repro.sim.scv import find_scv

from tests.support import notes_of, run_threads, tiny_params


def test_multi_bank_pending_set_demotes_to_sf():
    """A wf whose pending stores span directory modules executes as a
    conventional fence (the paper's confinement rule)."""
    m = Machine(tiny_params(FenceDesign.WEE, num_cores=2))
    block = m.params.bank_interleave_bytes
    a = m.alloc.alloc(1, align_bytes=block)          # bank 0
    b = m.alloc.alloc(1, align_bytes=block)          # next block: bank 1
    assert m.amap.home_bank(a) != m.amap.home_bank(b)
    y = m.alloc.word()

    def t(ctx):
        yield ops.Store(a, 1)
        yield ops.Store(b, 2)
        yield ops.Fence(FenceRole.CRITICAL)
        yield ops.Load(y)

    run_threads(m, t)
    assert sum(m.stats.wee_sf_conversions) >= 1
    assert m.stats.total_sf >= 1


def test_single_bank_pending_set_stays_weak():
    m = Machine(tiny_params(FenceDesign.WEE, num_cores=2))
    block = m.params.bank_interleave_bytes
    a = m.alloc.alloc(1, align_bytes=block)
    a2 = a + m.params.line_bytes  # same block, same bank
    y = m.alloc.word()

    def t(ctx):
        yield ops.Store(a, 1)
        yield ops.Store(a2, 2)
        yield ops.Fence(FenceRole.CRITICAL)
        yield ops.Load(y)

    run_threads(m, t)
    assert m.stats.total_wf >= 1
    assert sum(m.stats.wee_sf_conversions) == 0


def test_cross_bank_post_fence_load_converts_dynamically():
    """A post-fence load homed at a different module than the deposit
    stalls until the fence completes and the fence is re-counted sf."""
    m = Machine(tiny_params(FenceDesign.WEE, num_cores=2))
    block = m.params.bank_interleave_bytes
    a = m.alloc.alloc(1, align_bytes=block)              # bank 0
    far = m.alloc.alloc(1, align_bytes=block)            # bank 1
    assert m.amap.home_bank(a) != m.amap.home_bank(far)
    pad = a + m.params.line_bytes                        # bank 0, cold

    def t(ctx):
        yield ops.Load(far)      # warm so the load would complete early
        yield ops.Compute(600)
        yield ops.Store(pad, 7)  # cold store keeps the fence pending
        yield ops.Store(a, 1)
        yield ops.Fence(FenceRole.CRITICAL)
        v = yield ops.Load(far)  # cross-bank: must stall + convert
        yield ops.Note(("r", v))

    run_threads(m, t)
    assert sum(m.stats.wee_sf_conversions) >= 1


def test_grt_per_fence_keying_survives_back_to_back_fences():
    """Two pending fences at one core deposit separately; completing
    the first must not withdraw the second's protection (regression
    for the deadlock this once caused in the CilkApps)."""
    m = Machine(tiny_params(FenceDesign.WEE, num_cores=2))
    block = m.params.bank_interleave_bytes
    base = m.alloc.alloc(1, align_bytes=block)
    lines = [base + i * m.params.line_bytes for i in range(4)]
    y = m.alloc.word()

    def t(ctx):
        yield ops.Store(lines[0], 1)
        yield ops.Fence(FenceRole.CRITICAL)
        yield ops.Store(lines[1], 2)
        yield ops.Fence(FenceRole.CRITICAL)
        yield ops.Load(lines[2])
        yield ops.Load(lines[3])

    run_threads(m, t)
    bank = m.banks[m.amap.home_bank(base)]
    assert not bank.grt, "all deposits withdrawn at completion"


def test_remote_ps_prevents_wf_only_scv_and_deadlock():
    """The GRT protection: two colliding Wee fences on one module
    neither violate SC nor deadlock (paper §2.2/Fig. 2)."""
    m = Machine(tiny_params(FenceDesign.WEE, num_cores=2,
                            track_dependences=True))
    block = m.params.bank_interleave_bytes
    base = m.alloc.alloc(1, align_bytes=block)
    # x and y in the same interleave block: one directory module
    x = base
    y = base + m.params.line_bytes
    pads = [base + 2 * m.params.line_bytes, base + 3 * m.params.line_bytes]

    def thread(me, mine, other):
        def fn(ctx):
            yield ops.Load(x)
            yield ops.Load(y)
            yield ops.Compute(1600)
            yield ops.Store(pads[me], 7)
            yield ops.Store(mine, 1)
            yield ops.Fence(FenceRole.CRITICAL)
            v = yield ops.Load(other)
            yield ops.Note(("r", v))
        return fn

    m.spawn(thread(0, x, y))
    m.spawn(thread(1, y, x))
    res = m.run()
    assert res.completed
    out = (notes_of(m, 0)[0][1], notes_of(m, 1)[0][1])
    assert out != (0, 0)
    assert find_scv(res.events) is None
