"""Fence-flavour timing semantics at the core level."""

from repro.common.params import FenceDesign, FenceRole
from repro.core import isa as ops
from repro.sim.machine import Machine

from tests.support import run_threads, tiny_params


def _fence_after_cold_store(design, role=FenceRole.CRITICAL):
    m = Machine(tiny_params(design, num_cores=1))
    x, y = m.alloc.word(), m.alloc.word()

    def t(ctx):
        yield ops.Store(x, 1)   # cold: ~memory round trip to merge
        yield ops.Fence(role)
        yield ops.Load(y)

    run_threads(m, t)
    return m


def test_sf_stalls_for_drain():
    m = _fence_after_cold_store(FenceDesign.S_PLUS)
    # the fence waited out the cold store (~200+ cycles)
    assert m.stats.total_breakdown()["fence_stall"] >= \
        m.params.memory_cycles * 0.8
    assert m.stats.total_sf == 1 and m.stats.total_wf == 0


def test_wf_does_not_stall():
    m = _fence_after_cold_store(FenceDesign.W_PLUS)
    assert m.stats.total_breakdown()["fence_stall"] <= \
        m.params.sf_base_cycles
    assert m.stats.total_wf == 1 and m.stats.total_sf == 0


def test_ws_plus_standard_role_is_strong():
    m = _fence_after_cold_store(FenceDesign.WS_PLUS,
                                role=FenceRole.STANDARD)
    assert m.stats.total_sf == 1
    assert m.stats.total_breakdown()["fence_stall"] >= \
        m.params.memory_cycles * 0.8


def test_ws_plus_critical_role_is_weak():
    m = _fence_after_cold_store(FenceDesign.WS_PLUS,
                                role=FenceRole.CRITICAL)
    assert m.stats.total_wf == 1


def test_wf_with_empty_write_buffer_completes_at_retire():
    m = Machine(tiny_params(FenceDesign.W_PLUS, num_cores=1))
    y = m.alloc.word()

    def t(ctx):
        yield ops.Compute(40)
        yield ops.Fence(FenceRole.CRITICAL)  # nothing pending
        yield ops.Load(y)

    run_threads(m, t)
    assert m.stats.total_wf == 1
    assert m.stats.total_breakdown()["fence_stall"] == 0
    assert m.stats.bs_insertions == 0  # fence complete before the load


def test_post_wf_loads_enter_bs_while_pending():
    m = Machine(tiny_params(FenceDesign.W_PLUS, num_cores=1))
    x = m.alloc.word()
    warm = m.alloc.word()

    def t(ctx):
        yield ops.Load(warm)
        yield ops.Compute(400)
        yield ops.Store(x, 1)                 # cold store: fence pends
        yield ops.Fence(FenceRole.CRITICAL)
        yield ops.Load(warm)                  # completes early -> BS
        yield ops.Load(warm)

    run_threads(m, t)
    assert m.stats.bs_insertions >= 1


def test_rmw_drains_like_a_fence():
    m = Machine(tiny_params(FenceDesign.W_PLUS, num_cores=1))
    x, y = m.alloc.word(), m.alloc.word()

    def t(ctx):
        yield ops.Store(x, 1)                  # cold
        old = yield ops.AtomicRMW(y, "add", 1)
        yield ops.Note(("old", old))

    run_threads(m, t)
    # the RMW waited for the cold store to merge first
    assert m.image.peek(x) == 1 and m.image.peek(y) == 1
    total = m.stats.total_breakdown()
    assert total["other_stall"] >= m.params.memory_cycles * 0.8
