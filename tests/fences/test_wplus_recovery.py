"""W+ checkpoint/timeout/rollback machinery (paper §3.3.3)."""

import pytest

from repro.common.params import FenceDesign, FenceRole
from repro.core import isa as ops
from repro.sim.machine import Machine
from repro.sim.scv import find_scv
from repro.workloads import litmus

from tests.support import notes_of, run_threads, tiny_params

CC = (FenceRole.CRITICAL, FenceRole.CRITICAL)


def test_recovery_squashes_and_reexecutes_loads():
    """After a rollback the post-wf load re-executes and reads the
    now-visible remote value — the Note channel must contain exactly
    one observation per thread (no duplicated side effects)."""
    lit = litmus.store_buffering(FenceDesign.W_PLUS, roles=CC)
    s = lit.result.stats
    assert s.wplus_recoveries >= 1
    # exactly one observation per thread despite replay
    assert len(lit.observed) == 2


def test_recovery_counts_and_timeouts():
    lit = litmus.store_buffering(FenceDesign.W_PLUS, roles=CC)
    s = lit.result.stats
    assert s.wplus_timeouts >= s.wplus_recoveries >= 1


def test_no_recovery_without_collision():
    """A lone wf never triggers the deadlock monitor."""
    m = Machine(tiny_params(FenceDesign.W_PLUS, num_cores=1))
    x, y = m.alloc.word(), m.alloc.word()

    def t(ctx):
        yield ops.Store(x, 1)
        yield ops.Fence(FenceRole.CRITICAL)
        v = yield ops.Load(y)
        yield ops.Note(("r", v))

    run_threads(m, t)
    assert m.stats.wplus_recoveries == 0
    assert m.stats.wplus_timeouts == 0


def test_transient_bounce_does_not_recover():
    """A one-directional true-sharing bounce (Fig. 4c) clears on its
    own; the timeout must re-check and stand down."""
    lit = litmus.false_sharing_interference(
        FenceDesign.W_PLUS, true_sharing=True)
    s = lit.result.stats
    # a timeout may have been armed, but with the conditions gone at
    # expiry no recovery (or at most the armed one) happens and the
    # run completes without SC violation
    assert lit.result.completed
    assert find_scv(lit.result.events) is None


def test_recovery_reverses_marks():
    """Marks consumed past the checkpoint are journalled and reversed
    on rollback — commits must not be double-counted."""
    m = Machine(tiny_params(FenceDesign.W_PLUS, num_cores=2))
    x, y = m.alloc.word(), m.alloc.word()
    pads = [m.alloc.word(), m.alloc.word()]

    def thread(me, mine, other):
        def fn(ctx):
            yield ops.Load(x)
            yield ops.Load(y)
            yield ops.Compute(1600)
            yield ops.Store(pads[me], 7)
            yield ops.Store(mine, 1)
            yield ops.Fence(FenceRole.CRITICAL)
            v = yield ops.Load(other)
            yield ops.Mark("txn_commit")   # post-wf mark: rolled back
            yield ops.Note(("r", v))
        return fn

    m.spawn(thread(0, x, y))
    m.spawn(thread(1, y, x))
    m.run()
    # exactly one commit per thread regardless of how many rollbacks
    assert m.stats.txn_commits == 2
    assert m.stats.wplus_recoveries >= 1


def test_recovery_discards_post_fence_stores():
    """Post-wf stores retired into the WB but not merged are squashed
    on rollback; their re-execution produces the only merge."""
    m = Machine(tiny_params(FenceDesign.W_PLUS, num_cores=2))
    x, y = m.alloc.word(), m.alloc.word()
    outs = [m.alloc.word(), m.alloc.word()]
    pads = [m.alloc.word(), m.alloc.word()]
    merge_counts = {0: 0, 1: 0}
    orig = m.image.observer

    def observer(kind, core, word, value, tag):
        if kind == "store" and word in outs:
            merge_counts[outs.index(word)] += 1

    m.image.observer = observer

    def thread(me, mine, other):
        def fn(ctx):
            yield ops.Load(x)
            yield ops.Load(y)
            yield ops.Compute(1600)
            yield ops.Store(pads[me], 7)
            yield ops.Store(mine, 1)
            yield ops.Fence(FenceRole.CRITICAL)
            v = yield ops.Load(other)
            yield ops.Store(outs[me], v + 100)  # post-wf store
        return fn

    m.spawn(thread(0, x, y))
    m.spawn(thread(1, y, x))
    m.run()
    assert m.stats.wplus_recoveries >= 1
    # each out-word merged exactly once (squash prevented the double)
    assert merge_counts == {0: 1, 1: 1}


def test_disabled_recovery_is_naive_design():
    from repro.common.errors import DeadlockError
    with pytest.raises(DeadlockError):
        litmus.store_buffering(FenceDesign.W_PLUS, roles=CC,
                               recovery=False)
