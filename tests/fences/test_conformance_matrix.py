"""Cross-design litmus conformance matrix.

One table-driven test over shapes × designs × {fences on, fences
stripped}: the SC-forbidden outcome of each shape may appear **only**
when the fences are stripped.  This is the lockdown for the simulation
kernel: whatever changes in the Python hot path, the simulated
machines must keep admitting exactly the TSO-level reorderings and
nothing else.

Ground truth per shape:

* **SB** (store buffering, Dekker): ``r0 == r1 == 0`` is forbidden
  under SC.  TSO's store→load reordering produces it without fences;
  every design's fence group must prevent it.
* **MP** (message passing): data read as stale after the flag is
  observed set.  TSO keeps store→store and load→load order, so MP is
  safe *even without fences* — the expectation is "never", both ways.
* **IRIW**: the two readers observing the two independent writes in
  opposite orders.  TSO is multi-copy atomic; forbidden both ways.

Fence roles are the asymmetric (CRITICAL, STANDARD) recipe — the
paper's placement; an all-wf SB group is a deadlock under SW+ and is
covered separately by the W+ recovery tests.
"""

import pytest

from repro.common.params import FenceDesign, FenceRole
from repro.sim.scv import find_scv
from repro.workloads import litmus

from tests.fences.test_iriw import run_iriw

ALL_DESIGNS = tuple(FenceDesign)
ASYM = (FenceRole.CRITICAL, FenceRole.STANDARD)


def _sb_forbidden(design, fences):
    lit = litmus.store_buffering(design, roles=ASYM, fences=fences,
                                 pad_stores=1)
    forbidden = (lit.value(0, "r"), lit.value(1, "r")) == (0, 0)
    scv = find_scv(lit.result.events)
    return forbidden, scv


def _mp_forbidden(design, fences):
    lit = litmus.message_passing(design, fences=fences)
    # the consumer saw flag == 1, so data must be the published value
    return lit.value(1, "data") != 42, None


def _iriw_forbidden(design, fences):
    r0, r1 = run_iriw(design, fences=fences, seed=3, stagger=23)
    return (r0 == (1, 0) and r1 == (1, 0)), None


#: shape -> (runner, forbidden outcome reachable with fences stripped?)
SHAPES = {
    "sb": (_sb_forbidden, True),
    "mp": (_mp_forbidden, False),
    "iriw": (_iriw_forbidden, False),
}

MATRIX = [
    (shape, design, fences)
    for shape in SHAPES
    for design in ALL_DESIGNS
    for fences in (True, False)
]


@pytest.mark.parametrize("shape,design,fences", MATRIX)
def test_conformance(shape, design, fences):
    runner, stripped_reaches_forbidden = SHAPES[shape]
    forbidden, scv = runner(design, fences)
    if fences:
        assert not forbidden, (
            f"{shape} under {design.value} with fences on reached the "
            "SC-forbidden outcome"
        )
        if scv is not None:
            pytest.fail(
                f"{shape} under {design.value} with fences on has an "
                f"SCV cycle: {scv}"
            )
    elif stripped_reaches_forbidden:
        # the pinned timing makes the race deterministic: stripping the
        # fences must actually reproduce the forbidden outcome (else
        # the fenced assertion above proves nothing)
        assert forbidden, (
            f"{shape} under {design.value} with fences stripped did "
            "not reach the forbidden outcome the fence is there to "
            "prevent"
        )
        assert scv is not None
    else:
        # MP/IRIW: TSO alone forbids the outcome, fences or not
        assert not forbidden, (
            f"{shape} under {design.value} must hold under bare TSO"
        )
