"""Dynamic fence-group scenarios beyond the basic litmus kernels:
repeated groups, mixed designs across phases, group-size scaling."""

import pytest

from repro.common.params import FenceDesign, FenceRole
from repro.core import isa as ops
from repro.sim.machine import Machine
from repro.sim.scv import find_scv

from tests.support import notes_of, run_threads, tiny_params


def _dekker_round(me, mine, other, pad, role):
    yield ops.Store(pad, 7)
    yield ops.Store(mine, 1)
    yield ops.Fence(role)
    value = yield ops.Load(other)
    yield ops.Store(mine, 0)     # reset for the next round
    return value


@pytest.mark.parametrize("design", [FenceDesign.WS_PLUS,
                                    FenceDesign.W_PLUS,
                                    FenceDesign.WEE])
def test_repeated_fence_groups_stay_sc(design):
    """Ten consecutive Dekker rounds: groups form repeatedly; the BS
    and (for Wee) GRT state must recycle cleanly between rounds."""
    m = Machine(tiny_params(design, track_dependences=True), seed=6)
    x, y = m.alloc.word(), m.alloc.word()
    pads = [m.alloc.alloc_words_padded(10) for _ in range(2)]

    def thread(me, mine, other, role):
        def fn(ctx):
            yield ops.Load(x)
            yield ops.Load(y)
            yield ops.Compute(1500)
            results = []
            for r in range(10):
                v = yield from _dekker_round(me, mine, other,
                                             pads[me][r], role)
                results.append(v)
                yield ops.Compute(120)
            yield ops.Note(("rs", tuple(results)))
        return fn

    m.spawn(thread(0, x, y, FenceRole.CRITICAL))
    m.spawn(thread(1, y, x, FenceRole.STANDARD))
    res = m.run(max_cycles=3_000_000)
    assert res.completed
    assert find_scv(res.events) is None
    # state fully recycled
    for core in m.cores:
        assert not core.pending_fences
        assert len(core.bs) == 0


@pytest.mark.parametrize("n_threads", [4, 6])
def test_wide_fence_group_under_wplus(n_threads):
    """An n-thread potential cycle (Fig. 1e generalized): W+ must
    resolve it for any group size (one of the wf advantages over l-mf
    the paper lists in §8)."""
    m = Machine(tiny_params(FenceDesign.W_PLUS, num_cores=n_threads,
                            track_dependences=True), seed=6)
    vars_ = [m.alloc.word() for _ in range(n_threads)]
    pads = [m.alloc.word() for _ in range(n_threads)]

    def thread(me):
        def fn(ctx):
            for v in vars_:
                yield ops.Load(v)
            yield ops.Compute(1500)
            yield ops.Store(pads[me], 7)
            yield ops.Store(vars_[me], 1)
            yield ops.Fence(FenceRole.CRITICAL)
            nxt = yield ops.Load(vars_[(me + 1) % n_threads])
            yield ops.Note(("r", nxt))
        return fn

    for me in range(n_threads):
        m.spawn(thread(me))
    res = m.run(max_cycles=3_000_000)
    assert res.completed
    values = [notes_of(m, t)[0][1] for t in range(n_threads)]
    assert values != [0] * n_threads, "full cycle = SCV"
    assert find_scv(res.events) is None


def test_ws_plus_one_wf_many_sfs():
    """Fig. 1f with WS+'s contract: exactly one critical thread among
    four — always safe, whatever the collision pattern."""
    m = Machine(tiny_params(FenceDesign.WS_PLUS, num_cores=4,
                            track_dependences=True), seed=6)
    vars_ = [m.alloc.word() for _ in range(4)]
    pads = [m.alloc.word() for _ in range(4)]

    def thread(me, role):
        def fn(ctx):
            for v in vars_:
                yield ops.Load(v)
            yield ops.Compute(1500)
            yield ops.Store(pads[me], 7)
            yield ops.Store(vars_[me], 1)
            yield ops.Fence(role)
            nxt = yield ops.Load(vars_[(me + 1) % 4])
            yield ops.Note(("r", nxt))
        return fn

    m.spawn(thread(0, FenceRole.CRITICAL))
    for me in range(1, 4):
        m.spawn(thread(me, FenceRole.STANDARD))
    res = m.run(max_cycles=3_000_000)
    assert res.completed
    values = [notes_of(m, t)[0][1] for t in range(4)]
    assert values != [0] * 4
    assert find_scv(res.events) is None
