"""The l-mf extension (related work, paper §8)."""

import pytest

from repro.common.params import FenceDesign, FenceRole
from repro.core import isa as ops
from repro.sim.machine import Machine
from repro.sim.scv import find_scv
from repro.workloads import litmus

from tests.support import run_threads, tiny_params


def test_lmf_is_a_strong_flavour():
    from repro.common.params import FenceFlavour, flavour_for
    for role in FenceRole:
        assert flavour_for(FenceDesign.LMF, role) is FenceFlavour.SF


def test_lmf_preserves_sc_on_store_buffering():
    lit = litmus.store_buffering(FenceDesign.LMF)
    assert (lit.value(0, "r"), lit.value(1, "r")) != (0, 0)
    assert find_scv(lit.result.events) is None


def test_lmf_fast_path_when_location_stays_exclusive():
    m = Machine(tiny_params(FenceDesign.LMF, num_cores=1))
    x = m.alloc.word()

    def t(ctx):
        yield ops.Store(x, 0)         # gain M (cold miss, ~200 cycles)
        yield ops.Compute(1600)       # let it merge before the loop
        for i in range(5):
            yield ops.Store(x, i)     # M hits
            yield ops.Fence(FenceRole.CRITICAL)

    run_threads(m, t)
    assert m.stats.lmf_fast >= 5
    # far cheaper than five conventional fences
    assert m.stats.total_breakdown()["fence_stall"] < \
        5 * m.params.sf_base_cycles


def test_lmf_falls_back_when_another_thread_touches_the_location():
    m = Machine(tiny_params(FenceDesign.LMF, num_cores=2))
    x = m.alloc.word()

    def owner(ctx):
        yield ops.Store(x, 1)         # cold: line not yet writable-held
        yield ops.Fence(FenceRole.CRITICAL)
        yield ops.Compute(900)        # the peer reads x: M -> S
        yield ops.Store(x, 2)         # upgrade in flight at the fence
        yield ops.Fence(FenceRole.CRITICAL)

    def peer(ctx):
        yield ops.Compute(400)
        yield ops.Load(x)

    run_threads(m, owner, peer)
    assert m.stats.lmf_fallbacks >= 1


def test_lmf_sits_between_s_plus_and_ws_plus_on_work_stealing():
    """The qualitative §8 comparison on its natural workload: l-mf
    beats S+ while the deque stays owner-exclusive, and the wf designs
    match or beat it."""
    from repro.workloads.base import load_all_workloads, run_workload
    load_all_workloads()
    cycles = {}
    for design in (FenceDesign.S_PLUS, FenceDesign.LMF,
                   FenceDesign.WS_PLUS):
        run = run_workload("fib", design, num_cores=4, scale=0.2,
                           check=True)
        cycles[design] = run.cycles
    assert cycles[FenceDesign.LMF] <= cycles[FenceDesign.S_PLUS]
    assert cycles[FenceDesign.WS_PLUS] <= 1.1 * cycles[FenceDesign.LMF]
