"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.common.params import FenceDesign, MachineParams
from repro.sim.machine import Machine

ALL_DESIGNS = tuple(FenceDesign)
WEAK_DESIGNS = (FenceDesign.WS_PLUS, FenceDesign.SW_PLUS,
                FenceDesign.W_PLUS, FenceDesign.WEE)


def tiny_params(design=FenceDesign.S_PLUS, num_cores=2, exact=True, **over):
    """Small machine for protocol/litmus tests.

    ``exact=True`` disables the local-op micro-batching so event
    interleavings are cycle-exact.
    """
    base = MachineParams(
        num_cores=num_cores,
        num_banks=num_cores,
        batch_cycles=0 if exact else 24,
        track_dependences=over.pop("track_dependences", False),
    ).with_design(design)
    return replace(base, **over) if over else base


@pytest.fixture
def machine():
    """A 2-core S+ machine with exact interleaving."""
    return Machine(tiny_params(), seed=99)


def run_threads(m: Machine, *fns, max_cycles=None):
    """Spawn the given generator functions and run to completion."""
    for fn in fns:
        m.spawn(fn)
    return m.run(max_cycles=max_cycles)


def notes_of(machine: Machine, tid: int):
    """Payloads the thread on core *tid* recorded via ops.Note."""
    return [payload for _po, payload in machine.cores[tid].notes]
