"""run_matrix crash resilience: zero-commit guards, the JSONL journal,
--resume after a SIGKILLed sweep, and worker-crash retry."""

import dataclasses
import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.common.params import FenceDesign
from repro.eval import runner
from repro.eval.runner import RunSummary, load_journal, run_matrix

GRID = dict(num_cores=2, scale=0.06)
REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


# ----------------------------------------------------------------------
# RunSummary guards for runs cut off before any commit
# ----------------------------------------------------------------------

def _summary(cycles=0, commits=0, txn_cycles=0.0):
    return RunSummary(
        name="x", group="ustm", design="S+", num_cores=2,
        cycles=cycles, completed=False, busy=1.0, fence_stall=0.0,
        other_stall=0.0,
        stats={"txn_commits": commits, "txn_cycles_total": txn_cycles},
    )


def test_throughput_is_zero_for_a_zero_cycle_run():
    assert _summary(cycles=0, commits=0).throughput == 0.0


def test_txn_cycles_per_commit_is_inf_with_zero_commits():
    s = _summary(cycles=500, commits=0, txn_cycles=400.0)
    assert s.txn_cycles_per_commit == float("inf")
    assert s.throughput == 0.0


def test_txn_metrics_normal_path_unchanged():
    s = _summary(cycles=1000, commits=4, txn_cycles=800.0)
    assert s.txn_cycles_per_commit == 200.0
    assert s.throughput == 4000.0


def test_figures_map_inf_txn_cycles_to_zero():
    """A commit-less baseline row must not blow up the fig 9/10 ratios."""
    import math

    from repro.eval import figures

    real = run_matrix(["Counter"], figures.DESIGNS, seed=5, jobs=1, **GRID)
    hollow = {
        key: dataclasses.replace(
            s, stats={**s.stats, "txn_commits": 0})
        for key, s in real.items()
    }
    assert all(math.isinf(s.txn_cycles_per_commit)
               for s in hollow.values())

    def fake_run_matrix(*a, **k):
        return hollow

    orig = figures.run_matrix
    figures.run_matrix = fake_run_matrix
    try:
        data = figures.fig9_fig10_ustm(apps=("Counter",), num_cores=2,
                                       scale=0.06, jobs=1)
    finally:
        figures.run_matrix = orig
    for entry in data["txn_entries"]:
        assert math.isfinite(entry["normalized_time"])
        assert entry["normalized_time"] == 0.0


# ----------------------------------------------------------------------
# journal checkpointing and resume
# ----------------------------------------------------------------------

def test_journal_round_trips_summaries(tmp_path):
    journal = str(tmp_path / "sweep.jsonl")
    kwargs = dict(names=["fib"], designs=[FenceDesign.S_PLUS,
                                          FenceDesign.WS_PLUS],
                  seed=5, jobs=1, **GRID)
    runs = run_matrix(journal=journal, **kwargs)
    loaded = load_journal(journal)
    assert len(loaded) == len(runs)
    by_key = {(s.name, s.design, s.num_cores): s for s in loaded.values()}
    for key, summary in runs.items():
        assert dataclasses.asdict(by_key[key]) == dataclasses.asdict(summary)


def test_resume_skips_journaled_jobs(tmp_path):
    journal = str(tmp_path / "sweep.jsonl")
    kwargs = dict(names=["fib"], designs=[FenceDesign.S_PLUS,
                                          FenceDesign.WS_PLUS,
                                          FenceDesign.W_PLUS],
                  seed=5, jobs=1, **GRID)
    full = run_matrix(journal=journal, **kwargs)
    lines = open(journal).readlines()
    assert len(lines) == 3

    # drop the last journal line, as if the sweep died before job 3
    with open(journal, "w") as fh:
        fh.writelines(lines[:2])
    calls = []
    orig = runner._run_one
    runner._run_one = lambda job: calls.append(job) or orig(job)
    try:
        resumed = run_matrix(journal=journal, resume=True, **kwargs)
    finally:
        runner._run_one = orig
    assert len(calls) == 1  # only the missing job re-ran
    assert resumed.keys() == full.keys()
    for key in full:
        assert (dataclasses.asdict(resumed[key])
                == dataclasses.asdict(full[key]))


def test_fresh_sweep_refuses_to_destroy_a_stale_journal(tmp_path):
    """No resume and no explicit overwrite: the existing journal is an
    error, never a silent delete."""
    from repro.common.errors import ConfigError

    journal = str(tmp_path / "sweep.jsonl")
    kwargs = dict(names=["fib"], designs=[FenceDesign.S_PLUS],
                  seed=5, jobs=1, **GRID)
    run_matrix(journal=journal, **kwargs)
    before = open(journal).read()
    with pytest.raises(ConfigError, match="already exists"):
        run_matrix(journal=journal, **kwargs)  # no resume: refused
    assert open(journal).read() == before  # untouched


def test_overwrite_journal_rotates_to_bak(tmp_path):
    journal = str(tmp_path / "sweep.jsonl")
    kwargs = dict(names=["fib"], designs=[FenceDesign.S_PLUS],
                  seed=5, jobs=1, **GRID)
    run_matrix(journal=journal, **kwargs)
    before = open(journal).read()
    run_matrix(journal=journal, overwrite_journal=True, **kwargs)
    assert len(open(journal).readlines()) == 1
    assert open(journal + ".bak").read() == before  # rotated, not deleted


def test_resume_tolerates_a_torn_journal_tail(tmp_path):
    journal = str(tmp_path / "sweep.jsonl")
    kwargs = dict(names=["fib"], designs=[FenceDesign.S_PLUS,
                                          FenceDesign.WS_PLUS],
                  seed=5, jobs=1, **GRID)
    full = run_matrix(journal=journal, **kwargs)
    with open(journal, "a") as fh:
        fh.write('{"name": "fib", "design"')  # torn mid-append
    resumed = run_matrix(journal=journal, resume=True, **kwargs)
    for key in full:
        assert (dataclasses.asdict(resumed[key])
                == dataclasses.asdict(full[key]))


# ----------------------------------------------------------------------
# SIGKILL mid-sweep, then --resume (the CI resilience contract)
# ----------------------------------------------------------------------

_DRIVER = textwrap.dedent("""
    import os, sys
    from repro.common.params import FenceDesign
    from repro.eval import runner

    journal = sys.argv[1]
    orig = runner._append_journal

    def kamikaze_append(fh, key, summary):
        orig(fh, key, summary)
        # one checkpoint is on disk: die exactly like an OOM kill
        os.kill(os.getpid(), 9)

    runner._append_journal = kamikaze_append
    runner.run_matrix(
        ["fib"],
        [FenceDesign.S_PLUS, FenceDesign.WS_PLUS, FenceDesign.W_PLUS],
        num_cores=2, scale=0.06, seed=5, jobs=1, journal=journal,
    )
""")


def test_sigkilled_sweep_resumes_to_identical_rows(tmp_path):
    journal = str(tmp_path / "sweep.jsonl")
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    proc = subprocess.run(
        [sys.executable, "-c", _DRIVER, journal],
        env=env, cwd=REPO, capture_output=True, timeout=120,
    )
    assert proc.returncode == -signal.SIGKILL
    killed_lines = open(journal).readlines()
    assert len(killed_lines) == 1  # died right after the first checkpoint

    kwargs = dict(names=["fib"],
                  designs=[FenceDesign.S_PLUS, FenceDesign.WS_PLUS,
                           FenceDesign.W_PLUS],
                  seed=5, jobs=1, **GRID)
    resumed = run_matrix(journal=journal, resume=True, **kwargs)
    clean = run_matrix(**kwargs)
    assert resumed.keys() == clean.keys()
    for key in clean:
        assert (dataclasses.asdict(resumed[key])
                == dataclasses.asdict(clean[key]))
    # and the journal now holds the complete grid
    assert len(open(journal).readlines()) == 3


# ----------------------------------------------------------------------
# worker-process crash retry (BrokenProcessPool path)
# ----------------------------------------------------------------------

# The pool pickles the submitted callable by qualified name, so the
# crash doubles must live at module level.  Their state rides on a
# module global + a flag file: the fork-context workers inherit both.
_REAL_RUN_ONE = runner._run_one
_KAMIKAZE_FLAG = ""


def _crash_once_run_one(job):
    """SIGKILL the worker the first time any worker runs a job, then
    behave normally (the flag file is the cross-process memory)."""
    if _KAMIKAZE_FLAG and not os.path.exists(_KAMIKAZE_FLAG):
        with open(_KAMIKAZE_FLAG, "w") as fh:
            fh.write("boom")
        os.kill(os.getpid(), signal.SIGKILL)
    return _REAL_RUN_ONE(job)


def _always_crash_run_one(job):
    os.kill(os.getpid(), signal.SIGKILL)


def test_worker_crash_is_retried_not_fatal(tmp_path, monkeypatch):
    """One worker SIGKILLs itself mid-job: the pool breaks, the job is
    retried on a fresh pool, and the sweep still returns every row."""
    flag = str(tmp_path / "crashed-once")
    monkeypatch.setattr(f"{__name__}._KAMIKAZE_FLAG", flag)
    monkeypatch.setattr(runner, "_run_one", _crash_once_run_one)
    sleeps = []
    results = runner._run_grid_parallel(
        [("fib", "S_PLUS", 2, 0.06, 5), ("fib", "WS_PLUS", 2, 0.06, 5)],
        jobs=2,
        on_done=lambda key, s: None,
        sleep=sleeps.append,
    )
    assert os.path.exists(flag)  # the crash really happened
    assert len(results) == 2
    assert sleeps == [runner.CRASH_BACKOFF_S]  # one backoff, then clean
    designs = {s.design for s in results.values()}
    assert designs == {"S+", "WS+"}


def test_repeated_worker_crashes_exhaust_retries(tmp_path, monkeypatch):
    monkeypatch.setattr(runner, "_run_one", _always_crash_run_one)
    with pytest.raises(RuntimeError, match="crashed their worker"):
        runner._run_grid_parallel(
            [("fib", "S_PLUS", 2, 0.06, 5),
             ("fib", "WS_PLUS", 2, 0.06, 5)],
            jobs=2,
            on_done=lambda key, s: None,
            sleep=lambda s: None,
        )
