"""Smoke tests: every registered workload runs, completes and passes
its own invariants under representative fence designs."""

import pytest

from repro.common.params import FenceDesign
from repro.workloads.base import REGISTRY, load_all_workloads, run_workload

load_all_workloads()

CILK = sorted(c.name for c in REGISTRY.values() if c.group == "cilk")
USTM = sorted(c.name for c in REGISTRY.values() if c.group == "ustm")
STAMP = sorted(c.name for c in REGISTRY.values() if c.group == "stamp")

SMOKE_DESIGNS = (FenceDesign.S_PLUS, FenceDesign.W_PLUS)


@pytest.mark.parametrize("name", CILK)
@pytest.mark.parametrize("design", SMOKE_DESIGNS)
def test_cilk_smoke(name, design):
    run = run_workload(name, design, num_cores=4, scale=0.12, check=True)
    assert run.result.completed
    assert run.stats.tasks_executed > 0
    assert run.stats.total_instructions > 0


@pytest.mark.parametrize("name", USTM)
@pytest.mark.parametrize("design", SMOKE_DESIGNS)
def test_ustm_smoke(name, design):
    run = run_workload(name, design, num_cores=4, scale=0.15, check=True)
    assert run.stats.txn_commits > 0
    assert run.throughput > 0


@pytest.mark.parametrize("name", STAMP)
@pytest.mark.parametrize("design", SMOKE_DESIGNS)
def test_stamp_smoke(name, design):
    run = run_workload(name, design, num_cores=4, scale=0.1, check=True)
    assert run.result.completed
    assert run.stats.txn_commits > 0


@pytest.mark.parametrize("name", ["fib", "List", "intruder"])
def test_other_designs_smoke(name):
    for design in (FenceDesign.WS_PLUS, FenceDesign.SW_PLUS,
                   FenceDesign.WEE):
        run = run_workload(name, design, num_cores=4, scale=0.1,
                           check=True)
        assert run.stats.total_instructions > 0


def test_single_core_runs_have_no_fence_collisions():
    run = run_workload("fib", FenceDesign.W_PLUS, num_cores=1, scale=0.1)
    assert run.stats.bounces == 0
    assert run.stats.wplus_recoveries == 0


def test_scale_changes_work_size():
    small = run_workload("fib", FenceDesign.S_PLUS, num_cores=2, scale=0.06)
    big = run_workload("fib", FenceDesign.S_PLUS, num_cores=2, scale=0.5)
    assert big.stats.tasks_executed > small.stats.tasks_executed
