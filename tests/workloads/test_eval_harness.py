"""The evaluation harness: runner, figure/table generators, rendering.

Uses tiny app subsets so these stay fast; the full regenerations live
in benchmarks/.
"""

import pytest

from repro.common.params import FenceDesign
from repro.eval import figures, report, tables
from repro.eval.runner import RunSummary, run_matrix


def test_run_matrix_grid_keys():
    runs = run_matrix(["fib"], [FenceDesign.S_PLUS, FenceDesign.W_PLUS],
                      num_cores=2, scale=0.06, jobs=1)
    assert set(runs) == {("fib", "S+", 2), ("fib", "W+", 2)}
    for r in runs.values():
        assert isinstance(r, RunSummary)
        assert r.cycles > 0 and r.total > 0
        assert r.stats["instructions"] > 0


def test_run_matrix_parallel_matches_serial():
    serial = run_matrix(["fib"], [FenceDesign.S_PLUS], num_cores=2,
                        scale=0.06, jobs=1)
    parallel = run_matrix(["fib"], [FenceDesign.S_PLUS], num_cores=2,
                          scale=0.06, jobs=2)
    a = serial[("fib", "S+", 2)]
    b = parallel[("fib", "S+", 2)]
    assert a.cycles == b.cycles  # deterministic across process modes


def test_fig8_structure_small():
    data = figures.fig8_cilkapps(scale=0.06, num_cores=2,
                                 apps=("fib",), jobs=1)
    assert data["apps"] == ["fib"]
    assert len(data["entries"]) == 4  # one per design
    for e in data["entries"]:
        total = e["busy"] + e["fence_stall"] + e["other_stall"]
        assert abs(total - e["normalized_time"]) < 1e-6
    text = figures.render_time_figure(data, "Figure 8", "note")
    assert "fib" in text and "S+" in text


def test_fig9_structure_small():
    data = figures.fig9_fig10_ustm(scale=0.1, num_cores=2,
                                   apps=("Counter",), jobs=1)
    ratios = data["avg_throughput_ratio"]
    assert ratios["S+"] == pytest.approx(1.0)
    assert figures.render_fig9(data).startswith("Figure 9")
    assert "Figure 10" in figures.render_fig10(data)


def test_fig12_structure_small():
    data = figures.fig12_scalability(scale=0.06, core_counts=(2, 4),
                                     groups=("cilk",), jobs=2)
    designs = {s["design"] for s in data["series"]}
    assert designs == {"WS+", "W+", "Wee"}
    cores = {s["cores"] for s in data["series"]}
    assert cores == {2, 4}
    assert "Figure 12" in figures.render_fig12(data)


def test_table4_structure_small():
    data = tables.table4_characterization(
        scale=0.08, num_cores=2, apps={"cilk": ("fib",)}, jobs=1)
    (row,) = data["rows"]
    assert row["group"] == "CilkApps"
    assert row["splus_sf_per_ki"] > 0
    assert "Table 4" in tables.render_table4(data)


def test_static_tables_render():
    assert "WS+" in tables.table1()
    assert "140 entries" in tables.table2()
    assert "cilksort" in tables.table3()


def test_report_helpers():
    t = report.format_table(("a", "b"), [(1, 2), (30, 40)], title="T")
    assert "T" in t and "30" in t
    bar = report.stacked_bar(
        {"busy": 0.5, "fence_stall": 0.25, "other_stall": 0.25}, 1.0,
        width=20)
    assert bar.count("#") == 10 and bar.count("F") == 5
    assert report.geo_mean([1.0, 4.0]) == pytest.approx(2.0)
    assert report.mean([]) == 0.0
