"""run_matrix: seed threading, the parallel path, job clamping."""

import dataclasses
import os

import pytest

from repro.common.params import FenceDesign
from repro.eval import figures
from repro.eval.runner import default_jobs, run_matrix

GRID = dict(num_cores=2, scale=0.06)


def test_seed_lands_in_run_summary():
    runs = run_matrix(["fib"], [FenceDesign.S_PLUS], seed=777, jobs=1,
                      **GRID)
    (summary,) = runs.values()
    assert summary.seed == 777


def test_same_seed_reproduces_identical_summaries():
    a = run_matrix(["fib"], [FenceDesign.S_PLUS, FenceDesign.W_PLUS],
                   seed=42, jobs=1, **GRID)
    b = run_matrix(["fib"], [FenceDesign.S_PLUS, FenceDesign.W_PLUS],
                   seed=42, jobs=1, **GRID)
    assert a.keys() == b.keys()
    for key in a:
        # full field-by-field equality, stats dicts included
        assert dataclasses.asdict(a[key]) == dataclasses.asdict(b[key])


def test_figure_rows_carry_the_seed():
    data = figures.fig8_cilkapps(scale=0.06, num_cores=2, seed=31,
                                 apps=("fib",), jobs=1)
    assert data["seed"] == 31


def test_parallel_results_identical_to_serial():
    kwargs = dict(names=["fib"], designs=[FenceDesign.S_PLUS,
                                          FenceDesign.WS_PLUS],
                  seed=5, **GRID)
    serial = run_matrix(jobs=1, **kwargs)
    parallel = run_matrix(jobs=2, **kwargs)
    assert serial.keys() == parallel.keys()
    for key in serial:
        assert (dataclasses.asdict(serial[key])
                == dataclasses.asdict(parallel[key]))


def test_failing_job_surfaces_from_the_pool():
    """A worker exception must propagate, not hang the pool."""
    with pytest.raises(KeyError):
        run_matrix(["no-such-workload", "fib"], [FenceDesign.S_PLUS],
                   jobs=2, **GRID)


class TestDefaultJobs:
    def _with_env(self, monkeypatch, value):
        if value is None:
            monkeypatch.delenv("REPRO_JOBS", raising=False)
        else:
            monkeypatch.setenv("REPRO_JOBS", value)
        return default_jobs()

    def test_explicit_env_wins(self, monkeypatch):
        assert self._with_env(monkeypatch, "3") == 3

    def test_zero_clamps_to_one(self, monkeypatch):
        assert self._with_env(monkeypatch, "0") == 1

    def test_garbage_falls_back_to_cpu_formula(self, monkeypatch):
        expected = max(1, min(8, (os.cpu_count() or 2) - 1))
        assert self._with_env(monkeypatch, "not-a-number") == expected

    def test_unset_uses_cpu_formula_capped_at_eight(self, monkeypatch):
        jobs = self._with_env(monkeypatch, None)
        assert 1 <= jobs <= 8
