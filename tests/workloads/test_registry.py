"""Workload registry completeness (paper Table 3)."""

import pytest

from repro.workloads.base import (
    REGISTRY,
    load_all_workloads,
    run_workload,
    workloads_in_group,
)
from repro.common.params import FenceDesign


def setup_module():
    load_all_workloads()


def test_all_26_paper_workloads_registered():
    load_all_workloads()
    assert len([c for c in REGISTRY.values() if c.group == "cilk"]) == 10
    assert len([c for c in REGISTRY.values() if c.group == "ustm"]) == 10
    assert len([c for c in REGISTRY.values() if c.group == "stamp"]) == 6


def test_groups_sorted_and_disjoint():
    load_all_workloads()
    cilk = {c.name for c in workloads_in_group("cilk")}
    ustm = {c.name for c in workloads_in_group("ustm")}
    stamp = {c.name for c in workloads_in_group("stamp")}
    assert not (cilk & ustm) and not (ustm & stamp) and not (cilk & stamp)


def test_run_workload_unknown_name():
    load_all_workloads()
    with pytest.raises(KeyError):
        run_workload("nonexistent", FenceDesign.S_PLUS)


def test_ustm_runs_are_budgeted():
    load_all_workloads()
    run = run_workload("Counter", FenceDesign.S_PLUS, num_cores=2,
                       scale=0.05)
    # the throughput workloads cut off at the cycle budget
    assert run.cycles <= int(0.05 * 120_000) + 20_000
