"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``      run one workload under one (or all) fence designs
``trace``    run one workload with tracing on and explore its timeline
``litmus``   run a litmus kernel across designs and report outcomes
``verify``   schedule-exploration verification (SCV/deadlock hunting)
``synth``    cost-aware minimal fence placement synthesis per design
``chaos``    fault-injection sweep with SC/progress/recovery oracles
``perf``     time the pinned perf matrix, snapshot + regression check
``farm``     durable experiment farm (submit/status/resume/gc)
``figure``   regenerate one of the paper's figures (8, 9, 10, 11, 12)
``table``    regenerate one of the paper's tables (1, 2, 3, 4)
``list``     list registered workloads and designs

Examples::

    python -m repro list
    python -m repro run fib --design WS+ --cores 8 --scale 0.5
    python -m repro run fib --design wplus --trace-out t.json
    python -m repro trace Counter --design W+ --scale 0.25 --out t.json
    python -m repro run TreeOverwrite --all-designs
    python -m repro litmus sb --design W+
    python -m repro verify --designs all --budget 200
    python -m repro synth --program sb --designs all --seed 1
    python -m repro chaos --scenarios all --seeds 20
    python -m repro chaos --scenarios illegal_drop --designs S+ --shrink
    python -m repro perf --profile tiny --report-only
    python -m repro figure 9 --scale 0.5
    python -m repro table 4
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.common.errors import (
    ConfigError,
    DeadlockError,
    SanitizerError,
    SCViolationError,
)
from repro.common.params import FenceDesign, FenceRole
from repro.eval import figures, tables
from repro.workloads import litmus
from repro.workloads.base import (
    REGISTRY,
    load_all_workloads,
    run_workload,
    workloads_in_group,
)

DESIGN_BY_NAME = {str(d): d for d in FenceDesign}
DESIGN_BY_NAME.update({d.name: d for d in FenceDesign})


def _norm_design_key(value: str) -> str:
    return "".join(ch for ch in value.lower() if ch.isalnum())


#: case/punctuation-insensitive aliases: "wplus", "w+", "WS_PLUS", ...
DESIGN_ALIASES = {}
for _d in FenceDesign:
    DESIGN_ALIASES[_norm_design_key(str(_d))] = _d
    DESIGN_ALIASES[_norm_design_key(_d.name)] = _d
del _d


def _design(value: str) -> FenceDesign:
    design = DESIGN_BY_NAME.get(value)
    if design is None:
        design = DESIGN_ALIASES.get(_norm_design_key(value))
    if design is None:
        raise argparse.ArgumentTypeError(
            f"unknown design {value!r}; choose from "
            f"{', '.join(str(d) for d in FenceDesign)}"
        )
    return design


def cmd_list(_args) -> int:
    load_all_workloads()
    print("fence designs:", ", ".join(str(d) for d in FenceDesign))
    for group in ("cilk", "ustm", "stamp"):
        names = ", ".join(c.name for c in workloads_in_group(group))
        print(f"{group:6s}: {names}")
    print("litmus kernels: sb, sb3, mp, false-sharing")
    return 0


def _print_run(run) -> None:
    s = run.stats
    t = s.total_breakdown()
    total = sum(t.values()) or 1.0
    print(f"{run.name} under {run.design} on {run.num_cores} cores:")
    print(f"  cycles        : {run.cycles}")
    if run.result.completed:
        completed = "yes"
    elif run.result.degraded:
        completed = f"no (degraded: {run.result.degraded_reason})"
    elif s.cutoff_in_recovery:
        # max_cycles landed mid-W+-recovery: a budget artifact, not a hang
        completed = "no (cycle budget hit during W+ recovery)"
    else:
        completed = "no (cycle budget hit)"
    print(f"  completed     : {completed}")
    if run.result.sanitizer_violations:
        print(f"  sanitizer     : {run.result.sanitizer_violations} "
              "violation(s) recorded")
    print(f"  instructions  : {s.total_instructions}")
    print(f"  busy / fence / other stall : "
          f"{t['busy'] / total:.1%} / {t['fence_stall'] / total:.1%} / "
          f"{t['other_stall'] / total:.1%}")
    print("  per-core breakdown (busy / fence / other):")
    cycles = run.cycles or 1
    for cid, b in enumerate(s.breakdown):
        print(f"    core {cid:<3d} {b.busy:>12,.1f} {b.fence_stall:>12,.1f} "
              f"{b.other_stall:>12,.1f}   "
              f"({b.busy / cycles:.0%} / {b.fence_stall / cycles:.0%} / "
              f"{b.other_stall / cycles:.0%})")
    print(f"  sf / wf executed : {s.total_sf} / {s.total_wf}")
    if s.txn_commits or s.txn_aborts:
        print(f"  txn commits/aborts : {s.txn_commits}/{s.txn_aborts} "
              f"({run.throughput:.0f} per Mcycle)")
    if s.tasks_executed:
        print(f"  tasks executed/stolen : {s.tasks_executed}/"
              f"{s.tasks_stolen}")
    if s.bounces or s.order_ops or s.wplus_recoveries:
        print(f"  bounces / orders / CO / recoveries : {s.bounces} / "
              f"{s.order_ops} / {s.cond_order_ops} / {s.wplus_recoveries}")


def _trace_out_path(path: str, design, multi: bool) -> str:
    """Per-design output path when tracing several designs at once."""
    if not multi:
        return path
    base, ext = os.path.splitext(path)
    return f"{base}.{_norm_design_key(str(design))}{ext or '.json'}"


def _export_trace(obs, run, out_path: str, fmt: str) -> None:
    from repro.obs.export import run_provenance, write_chrome_trace, \
        write_jsonl

    label = f"{run.name}:{run.design}"
    provenance = run_provenance(run)
    if fmt == "jsonl":
        write_jsonl(out_path, obs.tracer, obs.metrics, label=label,
                    provenance=provenance)
    else:
        write_chrome_trace(out_path, obs.tracer, obs.metrics, label=label,
                           provenance=provenance)
    print(f"  [trace written to {out_path} ({fmt})"
          + ("; load it at https://ui.perfetto.dev or chrome://tracing"
             if fmt == "chrome" else "") + "]")


def _run_budget(args):
    """RunBudget from the --max-* flags, or None when none was given."""
    if not (args.max_wall_secs or args.max_events or args.max_rss_mb):
        return None
    from repro.sim.governor import RunBudget

    return RunBudget(
        max_wall_secs=args.max_wall_secs,
        max_events=args.max_events,
        max_rss_mb=args.max_rss_mb,
    )


def cmd_run(args) -> int:
    load_all_workloads()
    if args.workload not in REGISTRY:
        print(f"unknown workload {args.workload!r}; try `repro list`",
              file=sys.stderr)
        return 2
    designs = list(FenceDesign) if args.all_designs else [args.design]
    tracing = args.trace or args.trace_out is not None
    budget = _run_budget(args)
    violations = 0
    baseline = None
    for design in designs:
        obs = None
        if tracing:
            from repro.obs import Observability

            obs = Observability(metrics_interval=args.metrics_interval)
        run = run_workload(args.workload, design, num_cores=args.cores,
                           scale=args.scale, seed=args.seed,
                           check=args.check, obs=obs,
                           sanitize=args.sanitize, budget=budget,
                           kernel=args.kernel)
        violations += run.result.sanitizer_violations
        _print_run(run)
        if obs is not None and args.trace_out is not None:
            _export_trace(
                obs, run,
                _trace_out_path(args.trace_out, design, len(designs) > 1),
                args.trace_format,
            )
        metric = run.throughput if run.group == "ustm" else run.cycles
        if baseline is None:
            baseline = metric or 1
        elif run.group == "ustm":
            print(f"  throughput vs {designs[0]} : {metric / baseline:.2f}x")
        else:
            print(f"  time vs {designs[0]} : {metric / baseline:.2f}x")
        if obs is not None and args.trace:
            from repro.obs.summary import render_trace_summary

            print()
            print(render_trace_summary(obs.tracer, stats=run.stats))
        print()
    # a warn-mode sanitizer records violations instead of raising;
    # they are still failures for scripting purposes (exit-code table
    # in the README)
    return 5 if violations else 0


def cmd_trace(args) -> int:
    """Run one workload with tracing on and explore its timeline."""
    from repro.obs import Observability
    from repro.obs.summary import render_metrics_summary, render_trace_summary

    load_all_workloads()
    if args.workload not in REGISTRY:
        print(f"unknown workload {args.workload!r}; try `repro list`",
              file=sys.stderr)
        return 2
    obs = Observability(metrics_interval=args.metrics_interval)
    run = run_workload(args.workload, args.design, num_cores=args.cores,
                       scale=args.scale, seed=args.seed, obs=obs)
    _print_run(run)
    print()
    print(render_trace_summary(obs.tracer, stats=run.stats, top=args.top))
    metrics_text = render_metrics_summary(obs.metrics)
    if metrics_text:
        print()
        print(metrics_text)
    if args.out is not None:
        print()
        _export_trace(obs, run, args.out, args.format)
    return 0


def cmd_profile(args) -> int:
    """Cycle-attribution profiler (run / diff / from-trace)."""
    from repro.obs.profile import cmd_profile as profile_main

    return profile_main(args, _design)


LITMUS_KERNELS = {
    "sb": lambda design, seed: litmus.store_buffering(design, seed=seed),
    "sb3": lambda design, seed: litmus.three_thread_cycle(design, seed=seed),
    "mp": lambda design, seed: litmus.message_passing(design, seed=seed),
    "false-sharing": lambda design, seed: litmus.false_sharing_interference(
        design, seed=seed),
}


def cmd_litmus(args) -> int:
    from repro.sim.scv import find_scv

    kernel = LITMUS_KERNELS.get(args.kernel)
    if kernel is None:
        print(f"unknown kernel {args.kernel!r}; choose from "
              f"{', '.join(LITMUS_KERNELS)}", file=sys.stderr)
        return 2
    designs = [args.design] if args.design else list(FenceDesign)
    for design in designs:
        lit = kernel(design, args.seed)
        s = lit.result.stats
        scv = find_scv(lit.result.events)
        observed = {f"P{tid}.{label}": v
                    for (tid, label), v in sorted(lit.observed.items())}
        verdict = "SC VIOLATED" if scv else "SC preserved"
        print(f"{design}: {observed} in {lit.result.cycles} cycles — "
              f"{verdict} (bounces={s.bounces}, orders={s.order_ops}, "
              f"recoveries={s.wplus_recoveries})")
    return 0


def cmd_verify(args) -> int:
    from repro.verify.engine import (
        DEFAULT_REPORT_PATH,
        VerifyConfig,
        run_verification,
    )
    from repro.verify.oracles import PAPER_DESIGNS

    if args.designs.strip().lower() == "all":
        designs = PAPER_DESIGNS
    else:
        try:
            designs = tuple(
                _design(name.strip())
                for name in args.designs.split(",") if name.strip()
            )
        except argparse.ArgumentTypeError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if not designs:
            print("no designs given", file=sys.stderr)
            return 2
    config = VerifyConfig(
        budget=args.budget,
        designs=designs,
        seed=args.seed,
        shape=args.shape,
        shrink=not args.no_shrink,
    )
    out = args.out if args.out != "-" else None
    report = run_verification(config, out_path=out)
    print(report.summary())
    if out is not None:
        print(f"[report written to {out}]")
    return 1 if report.violations else 0


def _designs_list(value: str):
    """Parse an 'all'-or-comma-list designs argument (raises
    argparse.ArgumentTypeError on an unknown name)."""
    from repro.verify.oracles import PAPER_DESIGNS

    if value.strip().lower() == "all":
        return PAPER_DESIGNS
    designs = tuple(
        _design(name.strip()) for name in value.split(",") if name.strip()
    )
    if not designs:
        raise argparse.ArgumentTypeError("no designs given")
    return designs


def cmd_synth(args) -> int:
    from repro.eval.tables import render_synth_table
    from repro.synth import SynthConfig, run_synthesis
    from repro.synth.programs import NAMED_PROGRAMS

    try:
        designs = _designs_list(args.designs)
    except argparse.ArgumentTypeError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    sanitize = args.sanitize or os.environ.get("REPRO_SANITIZE") or "off"
    config = SynthConfig(
        program=args.program,
        designs=designs,
        seed=args.seed,
        num_points=args.points,
        site_mode=args.sites,
        max_runs=args.max_runs,
        audit=not args.no_audit,
        audit_factor=args.audit_factor,
        sanitize=sanitize,
    )

    def progress(design_value, entry):
        if entry["status"] != "ok":
            print(f"  {design_value:4s} {entry['status']}")
            return
        best = entry["placements"][0]
        print(f"  {design_value:4s} {entry['strategy']:10s} "
              f"{entry['candidates_tested']:3d} candidate(s), "
              f"{entry['search_runs']:4d} run(s) -> {best['placement']}")

    print(f"synth: program {args.program!r}, {len(designs)} design(s), "
          f"{args.points} adversary point(s), seed {args.seed}")
    try:
        report = run_synthesis(config, budget=_run_budget(args),
                               progress=progress,
                               journal=args.journal, resume=args.resume,
                               overwrite_journal=args.overwrite_journal)
    except ConfigError as exc:
        print(str(exc), file=sys.stderr)
        print(f"named programs: {', '.join(NAMED_PROGRAMS)}",
              file=sys.stderr)
        return 2
    print()
    print(render_synth_table(report.to_dict()))
    if args.out != "-":
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        report.write(args.out)
        print(f"[report written to {args.out}]")
    return 0 if report.ok else 1


def cmd_chaos(args) -> int:
    import json

    from repro.faults.chaos import run_chaos_matrix
    from repro.faults.plan import LEGAL_SCENARIOS, SCENARIOS
    from repro.verify.oracles import PAPER_DESIGNS

    if args.scenarios.strip().lower() == "all":
        scenarios = list(LEGAL_SCENARIOS)
    else:
        scenarios = [s.strip() for s in args.scenarios.split(",")
                     if s.strip()]
        unknown = [s for s in scenarios if s not in SCENARIOS]
        if unknown:
            print(f"unknown scenario(s): {', '.join(unknown)}; choose "
                  f"from {', '.join(sorted(SCENARIOS))}", file=sys.stderr)
            return 2
    if args.designs.strip().lower() == "all":
        designs = list(PAPER_DESIGNS)
    else:
        try:
            designs = [
                _design(name.strip())
                for name in args.designs.split(",") if name.strip()
            ]
        except argparse.ArgumentTypeError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    seeds = range(args.seed_base, args.seed_base + args.seeds)

    def progress(case):
        verdict = "FAIL" if case.failed else "ok"
        line = (f"  {case.scenario:16s} {case.design:4s} seed={case.seed:<6d} "
                f"{verdict}")
        if case.failed:
            line += f" ({case.violations[0]})"
            if case.shrunk is not None:
                line += f" -> shrunk to {len(case.shrunk)} injection(s)"
        print(line)

    print(f"chaos: {len(scenarios)} scenario(s) x {len(designs)} design(s) "
          f"x {args.seeds} seed(s)")
    report = run_chaos_matrix(
        scenarios, designs, seeds=seeds,
        shrink=args.shrink,
        journal=args.journal, resume=args.resume,
        overwrite_journal=args.overwrite_journal,
        diag_dir=args.diag_dir,
        progress=progress,
        sanitize=args.sanitize,
        farm_db=args.farm_db or os.environ.get("REPRO_FARM_DB") or None,
        farm_workers=args.farm_workers,
    )
    print(f"{report['total_cases']} case(s): "
          f"{report['failed_legal']} legal failure(s), "
          f"{report['caught_illegal']} illegal scenario(s) caught, "
          f"{report['missed_illegal']} missed")
    if args.out != "-":
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
        print(f"[report written to {args.out}]")
    return 1 if (report["failed_legal"] or report["missed_illegal"]) else 0


def cmd_perf(args) -> int:
    from repro.perf import harness

    baseline_path = args.baseline or args.out
    baseline = harness.load_snapshot(baseline_path)

    def progress(entry):
        print(f"  {entry['key']:32s} median {entry['median_s']:.3f}s "
              f"({entry['events_per_s']:,.0f} events/s)")

    print(f"perf profile {args.profile!r}, {args.reps} rep(s) per case:")
    try:
        snapshot = harness.run_profile(
            args.profile, reps=args.reps, progress=progress,
            kernel=args.kernel,
            farm_db=args.farm_db or os.environ.get("REPRO_FARM_DB") or None,
            farm_workers=args.farm_workers,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(f"total median wall time: {snapshot['total_median_s']:.3f}s")

    comparison = None
    if baseline is not None:
        comparison = harness.compare_snapshots(
            baseline, snapshot, threshold=args.threshold
        )
        snapshot["comparison"] = comparison
        print(harness.render_comparison(comparison))
    else:
        print(f"[no baseline snapshot at {baseline_path}; "
              "this run seeds the trajectory]")

    if args.out != "-":
        harness.write_snapshot(snapshot, args.out)
        print(f"[snapshot written to {args.out}]")
    if args.attrib_out:
        attrib_snapshot = harness.run_attrib_profile(args.profile,
                                                     kernel=args.kernel)
        harness.write_snapshot(attrib_snapshot, args.attrib_out)
        bad = [c["key"] for c in attrib_snapshot["cases"]
               if not c["conservation_ok"]]
        print(f"[attribution snapshot written to {args.attrib_out}]")
        if bad:
            # exit-code table: 1 = correctness-oracle failure
            print(f"attribution conservation FAILED: {', '.join(bad)}",
                  file=sys.stderr)
            return 1
    if comparison is not None and not comparison["ok"] and not args.report_only:
        return 3
    return 0


def cmd_figure(args) -> int:
    n = args.number
    if n == 8:
        data = figures.fig8_cilkapps(scale=args.scale, num_cores=args.cores)
        print(figures.render_time_figure(
            data, "Figure 8", "S+ stall ~13%; ~9% average time reduction"))
    elif n in (9, 10):
        data = figures.fig9_fig10_ustm(scale=args.scale,
                                       num_cores=args.cores)
        print(figures.render_fig9(data) if n == 9
              else figures.render_fig10(data))
    elif n == 11:
        data = figures.fig11_stamp(scale=args.scale, num_cores=args.cores)
        print(figures.render_time_figure(
            data, "Figure 11", "WS+ -7%, W+ -19%, Wee -11%"))
    elif n == 12:
        data = figures.fig12_scalability(scale=min(args.scale, 0.5))
        print(figures.render_fig12(data))
    else:
        print("figures: 8, 9, 10, 11, 12", file=sys.stderr)
        return 2
    return 0


def cmd_table(args) -> int:
    n = args.number
    if n == 1:
        print(tables.table1())
    elif n == 2:
        print(tables.table2())
    elif n == 3:
        print(tables.table3())
    elif n == 4:
        data = tables.table4_characterization(scale=args.scale,
                                              num_cores=args.cores)
        print(tables.render_table4(data))
    else:
        print("tables: 1, 2, 3, 4", file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Asymmetric Memory Fences (ASPLOS 2015) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and designs")

    p_run = sub.add_parser("run", help="run one workload")
    p_run.add_argument("workload")
    p_run.add_argument("--design", type=_design,
                       default=FenceDesign.S_PLUS)
    p_run.add_argument("--all-designs", action="store_true")
    p_run.add_argument("--cores", type=int, default=8)
    p_run.add_argument("--scale", type=float, default=0.5)
    p_run.add_argument("--seed", type=int, default=12345)
    p_run.add_argument("--check", action="store_true",
                       help="run the workload's invariant checks")
    p_run.add_argument("--trace", action="store_true",
                       help="record an episode trace and print its summary")
    p_run.add_argument("--trace-out", default=None, metavar="PATH",
                       help="record a trace and export it to PATH "
                            "(implies tracing)")
    p_run.add_argument("--trace-format", default="chrome",
                       choices=("chrome", "jsonl"),
                       help="export format for --trace-out "
                            "(default: chrome trace_event JSON)")
    p_run.add_argument("--metrics-interval", type=int, default=None,
                       metavar="CYCLES",
                       help="also sample interval metrics every N cycles "
                            "while tracing")
    p_run.add_argument("--sanitize", default=None,
                       choices=("off", "warn", "strict"),
                       help="runtime protocol sanitizer mode (default: "
                            "$REPRO_SANITIZE or off); strict raises at "
                            "the first violation (exit code 5)")
    p_run.add_argument("--kernel", default=None,
                       choices=("object", "flat"),
                       help="simulation kernel backend (default: "
                            "$REPRO_KERNEL or object); both are "
                            "bit-identical, flat is faster")
    p_run.add_argument("--max-wall-secs", type=float, default=None,
                       metavar="SECS",
                       help="wall-clock budget: cut off gracefully into "
                            "a degraded result instead of running on")
    p_run.add_argument("--max-events", type=int, default=None,
                       metavar="N",
                       help="simulated-event budget (graceful cutoff)")
    p_run.add_argument("--max-rss-mb", type=float, default=None,
                       metavar="MB",
                       help="RSS high-water-mark budget (graceful cutoff)")

    p_tr = sub.add_parser(
        "trace",
        help="run one workload with tracing on and explore its timeline",
    )
    p_tr.add_argument("workload")
    p_tr.add_argument("--design", type=_design, default=FenceDesign.S_PLUS)
    p_tr.add_argument("--cores", type=int, default=8)
    p_tr.add_argument("--scale", type=float, default=0.5)
    p_tr.add_argument("--seed", type=int, default=12345)
    p_tr.add_argument("--top", type=int, default=10,
                      help="rows per top-N table (default 10)")
    p_tr.add_argument("--metrics-interval", type=int, default=1000,
                      metavar="CYCLES",
                      help="interval-metrics sampling period "
                           "(default 1000 cycles)")
    p_tr.add_argument("--out", default=None, metavar="PATH",
                      help="also export the trace to PATH")
    p_tr.add_argument("--format", default="chrome",
                      choices=("chrome", "jsonl"),
                      help="export format for --out (default: chrome)")

    from repro.obs.profile import add_profile_parser

    add_profile_parser(sub, _design)

    p_lit = sub.add_parser("litmus", help="run a litmus kernel")
    p_lit.add_argument("kernel", choices=sorted(LITMUS_KERNELS))
    p_lit.add_argument("--design", type=_design, default=None)
    p_lit.add_argument("--seed", type=int, default=1)

    p_ver = sub.add_parser(
        "verify",
        help="schedule-exploration verification (SCV/deadlock hunting)",
    )
    p_ver.add_argument(
        "--designs", default="all",
        help="'all' (the paper's five) or a comma list, e.g. 'S+,W+'",
    )
    p_ver.add_argument("--budget", type=int, default=200,
                       help="total simulator runs to spend")
    p_ver.add_argument("--seed", type=int, default=12345)
    p_ver.add_argument("--shape", default=None,
                       choices=("sb", "mp", "iriw", "random"),
                       help="restrict generation to one program shape")
    p_ver.add_argument("--no-shrink", action="store_true",
                       help="skip minimizing the first SCV finding")
    p_ver.add_argument(
        "--out", default="benchmarks/out/verify_report.json",
        help="JSON report path ('-' to skip writing)",
    )

    p_syn = sub.add_parser(
        "synth",
        help="synthesize minimal-cost SC-safe fence placements per design",
    )
    p_syn.add_argument(
        "--program", default="sb",
        help="named program (sb, sb3, mp, iriw) or 'shape:SEED' drawn "
             "from the verify generator (e.g. random:7)",
    )
    p_syn.add_argument(
        "--designs", "--design", default="all", dest="designs",
        help="'all' (the paper's five) or a comma list, e.g. 'S+,W+'",
    )
    p_syn.add_argument("--seed", type=int, default=1,
                       help="adversary-schedule seed (default 1); the "
                            "report is bit-identical for a fixed "
                            "(program, designs, seed)")
    p_syn.add_argument("--points", type=int, default=12,
                       help="adversary schedule points per search "
                            "(audit re-verifies at --audit-factor x "
                            "this; default 12)")
    p_syn.add_argument("--sites", default=None,
                       choices=("auto", "annotated"),
                       help="fence-site extraction (default: 'annotated' "
                            "when the program carries fences, else "
                            "'auto' store->load boundaries)")
    p_syn.add_argument("--max-runs", type=int, default=4000,
                       help="simulator-run budget per design (search "
                            "and audit each; default 4000)")
    p_syn.add_argument("--no-audit", action="store_true",
                       help="skip the double-budget re-verification and "
                            "weakening checks")
    p_syn.add_argument("--audit-factor", type=int, default=2,
                       help="audit at this multiple of --points "
                            "(default 2)")
    p_syn.add_argument("--sanitize", default=None,
                       choices=("off", "warn", "strict"),
                       help="protocol sanitizer mode for every synthesis "
                            "run (default: $REPRO_SANITIZE or off); "
                            "sanitizer hits count as oracle failures")
    p_syn.add_argument("--max-wall-secs", type=float, default=None,
                       metavar="SECS",
                       help="wall-clock budget for the whole synthesis "
                            "(graceful cutoff: remaining designs are "
                            "marked exhausted-wall)")
    p_syn.add_argument("--max-events", type=int, default=None,
                       metavar="N", help=argparse.SUPPRESS)
    p_syn.add_argument("--max-rss-mb", type=float, default=None,
                       metavar="MB",
                       help="RSS high-water-mark budget (graceful cutoff)")
    p_syn.add_argument("--journal", default=None, metavar="PATH",
                       help="JSONL per-design checkpoint journal; with "
                            "--resume, finished designs are replayed "
                            "from it instead of re-searched")
    p_syn.add_argument("--resume", action="store_true",
                       help="skip designs already in --journal (same "
                            "config only)")
    p_syn.add_argument("--overwrite-journal", action="store_true",
                       help="rotate an existing --journal to .bak and "
                            "start fresh (required to discard one)")
    p_syn.add_argument(
        "--out", default="benchmarks/out/synth_report.json",
        help="JSON report path ('-' to skip writing)",
    )

    p_chaos = sub.add_parser(
        "chaos",
        help="fault-injection sweep: scenario x design x seed matrix "
             "checked against the SC/progress/recovery oracles",
    )
    p_chaos.add_argument(
        "--scenarios", default="all",
        help="'all' (every legal built-in scenario) or a comma list; "
             "the deliberately broken 'illegal_drop' must be named "
             "explicitly",
    )
    p_chaos.add_argument(
        "--designs", default="all",
        help="'all' (the paper's five) or a comma list, e.g. 'S+,W+'",
    )
    p_chaos.add_argument("--seeds", type=int, default=20,
                         help="seeds per (scenario, design) cell")
    p_chaos.add_argument("--seed-base", type=int, default=1,
                         help="first seed of the range (default 1)")
    p_chaos.add_argument("--shrink", action="store_true",
                         help="ddmin each failing case to a minimal "
                              "injection subset")
    p_chaos.add_argument("--journal", default=None, metavar="PATH",
                         help="JSONL checkpoint journal for the sweep")
    p_chaos.add_argument("--resume", action="store_true",
                         help="skip cases already in --journal")
    p_chaos.add_argument("--overwrite-journal", action="store_true",
                         help="rotate an existing --journal to .bak and "
                              "start fresh (required to discard one)")
    p_chaos.add_argument("--farm-db", default=None, metavar="PATH",
                         help="run the sweep as a campaign on the "
                              "experiment farm (or set $REPRO_FARM_DB)")
    p_chaos.add_argument("--farm-workers", type=int, default=None,
                         help="farm worker processes (0 = inline)")
    p_chaos.add_argument("--diag-dir", default=None, metavar="DIR",
                         help="write watchdog/sanitizer post-mortem "
                              "bundles here")
    p_chaos.add_argument("--sanitize", default="strict",
                         choices=("off", "warn", "strict"),
                         help="per-case protocol sanitizer (default "
                              "strict: illegal plans are caught at the "
                              "first violating cycle, not at timeout)")
    p_chaos.add_argument(
        "--out", default="benchmarks/out/chaos_report.json",
        help="JSON report path ('-' to skip writing)",
    )

    p_perf = sub.add_parser(
        "perf",
        help="time the pinned perf matrix and check for regressions",
    )
    p_perf.add_argument(
        "--profile", default="fig89",
        help="pinned case matrix: 'fig89' (default) or 'tiny'",
    )
    p_perf.add_argument("--reps", type=int, default=3,
                        help="repetitions per case (median is kept)")
    p_perf.add_argument(
        "--out", default="benchmarks/perf/BENCH_perf.json",
        help="snapshot path ('-' to skip writing)",
    )
    p_perf.add_argument(
        "--baseline", default=None,
        help="baseline snapshot to compare against "
             "(default: the previous --out file)",
    )
    p_perf.add_argument(
        "--threshold", type=float, default=1.25,
        help="regression threshold: fail when a case's median exceeds "
             "threshold x baseline (default 1.25)",
    )
    p_perf.add_argument(
        "--report-only", action="store_true",
        help="report regressions but exit 0 (CI smoke mode)",
    )
    p_perf.add_argument(
        "--kernel", default=None, choices=("object", "flat"),
        help="pin every case to one kernel backend; flat-kernel rows "
             "get a ':kflat' key suffix so comparison stays "
             "like-vs-like (default: each case's pinned kernel)",
    )
    p_perf.add_argument(
        "--attrib-out", default=None, metavar="PATH",
        help="also write a cycle-attribution snapshot of the matrix "
             "(simulated-cycle decomposition per case; e.g. "
             "benchmarks/perf/BENCH_attrib.json)",
    )
    p_perf.add_argument("--farm-db", default=None, metavar="PATH",
                        help="time the matrix as a farm campaign (or "
                             "set $REPRO_FARM_DB); cached identical "
                             "cases are reused, so only new/changed "
                             "cases are re-timed")
    p_perf.add_argument("--farm-workers", type=int, default=None,
                        help="farm worker processes (0 = inline)")

    from repro.farm.cli import add_farm_parser

    add_farm_parser(sub)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure")
    p_fig.add_argument("number", type=int)
    p_fig.add_argument("--scale", type=float, default=0.5)
    p_fig.add_argument("--cores", type=int, default=8)

    p_tab = sub.add_parser("table", help="regenerate a paper table")
    p_tab.add_argument("number", type=int)
    p_tab.add_argument("--scale", type=float, default=0.5)
    p_tab.add_argument("--cores", type=int, default=8)
    return parser


def cmd_farm(args) -> int:
    from repro.farm.cli import cmd_farm as farm_main

    return farm_main(args, _design)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "list": cmd_list,
        "run": cmd_run,
        "trace": cmd_trace,
        "profile": cmd_profile,
        "litmus": cmd_litmus,
        "verify": cmd_verify,
        "synth": cmd_synth,
        "chaos": cmd_chaos,
        "perf": cmd_perf,
        "farm": cmd_farm,
        "figure": cmd_figure,
        "table": cmd_table,
    }[args.command]
    try:
        return handler(args)
    except BrokenPipeError:
        # stdout reader went away (e.g. `... | head`); not an error
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    except SanitizerError as exc:
        # README exit-code table: 5 = sanitizer violation
        print(f"sanitizer violation: {exc}", file=sys.stderr)
        if exc.diagnostics_path:
            print(f"[diagnostics written to {exc.diagnostics_path}]",
                  file=sys.stderr)
        return 5
    except DeadlockError as exc:
        # README exit-code table: 4 = simulated-machine deadlock
        print(f"deadlock: {exc}", file=sys.stderr)
        if exc.diagnostics_path:
            print(f"[diagnostics written to {exc.diagnostics_path}]",
                  file=sys.stderr)
        return 4
    except SCViolationError as exc:
        # README exit-code table: 1 = correctness-oracle failure
        print(f"SC violation: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
