"""Resource-governed runs: budgets that cut off gracefully.

A :class:`RunBudget` bounds a single :meth:`Machine.run` by wall-clock
seconds, simulated-event count, and/or RSS high-water mark.  The
:class:`ResourceGovernor` checks the budget from a self-rescheduling
queue event (the metrics-pump pattern) and, on breach, asks the event
queue to stop — the run then unwinds normally and returns a
:class:`~repro.sim.machine.SimResult` marked ``degraded`` with the
breach reason.  A governed run can therefore never hang or be
hard-killed mid-state: every cutoff flows through the ordinary
end-of-run path (stats, artifacts, journaling).

Budgets default from the environment (``REPRO_MAX_WALL_SECS``,
``REPRO_MAX_EVENTS``, ``REPRO_MAX_RSS_MB``) so matrix subprocesses and
CI inherit them without plumbing.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX
    _resource = None

#: cycles between budget checks; cheap (two syscalls at most), so a
#: tight-ish cadence keeps overshoot small without touching the hot path
DEFAULT_CHECK_INTERVAL = 2_000


def _rss_mb() -> Optional[float]:
    """Current RSS high-water mark in MiB, or None when unavailable."""
    if _resource is None:
        return None
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on Darwin
    if os.uname().sysname == "Darwin":  # pragma: no cover - mac only
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


@dataclass(frozen=True)
class RunBudget:
    """Resource ceilings for one simulation run (None = unlimited)."""

    max_wall_secs: Optional[float] = None
    max_events: Optional[int] = None
    max_rss_mb: Optional[float] = None
    check_interval_cycles: int = DEFAULT_CHECK_INTERVAL

    @property
    def enabled(self) -> bool:
        return (self.max_wall_secs is not None
                or self.max_events is not None
                or self.max_rss_mb is not None)

    @classmethod
    def from_env(cls) -> Optional["RunBudget"]:
        """Budget from ``REPRO_MAX_*`` env vars, or None when unset."""
        wall = os.environ.get("REPRO_MAX_WALL_SECS")
        events = os.environ.get("REPRO_MAX_EVENTS")
        rss = os.environ.get("REPRO_MAX_RSS_MB")
        if not (wall or events or rss):
            return None
        return cls(
            max_wall_secs=float(wall) if wall else None,
            max_events=int(events) if events else None,
            max_rss_mb=float(rss) if rss else None,
        )


class ResourceGovernor:
    """Enforces a :class:`RunBudget` over one ``Machine.run``."""

    def __init__(self, machine, budget: RunBudget):
        self.machine = machine
        self.budget = budget
        self.breached: Optional[str] = None
        self._start_wall = 0.0
        self._start_seq = 0
        self._event = None
        self._stopped = False
        #: real-dispatch watermark at our previous tick (idle detection)
        self._last_work = None

    @property
    def degraded(self) -> bool:
        return self.breached is not None

    def start(self) -> None:
        self._stopped = False
        self._last_work = None
        self._start_wall = time.monotonic()
        queue = self.machine.queue
        self._start_seq = queue._seq
        self._event = queue.schedule(
            self.budget.check_interval_cycles, self._tick, "governor"
        )
        queue.mark_elastic(self._event)

    def stop(self) -> None:
        self._stopped = True
        if self._event is not None:
            self.machine.queue.cancel(self._event)
            self._event = None

    def events_used(self) -> int:
        return self.machine.queue._seq - self._start_seq

    def _tick(self) -> None:
        self._event = None
        machine = self.machine
        machine.pump_ticks += 1
        if self._stopped or self.breached is not None:
            return
        self.check()
        if self.breached is not None:
            return
        # quiescence fast-forward: during an idle window the event and
        # RSS budgets cannot move (nothing is being dispatched or
        # allocated) and wall-clock barely advances, so checking every
        # interval buys nothing — defer to the idle horizon in whole
        # multiples of the interval (same grid-preserving rule as the
        # sanitizer pump).
        queue = machine.queue
        interval = self.budget.check_interval_cycles
        delay = interval
        if machine.fast_forward:
            work = queue.executed - machine.pump_ticks
            if work == self._last_work:
                horizon = queue.idle_horizon()
                if horizon is not None:
                    k = (horizon - queue.now) // interval
                    if k > 1:
                        delay = k * interval
            self._last_work = work
        self._event = queue.schedule(delay, self._tick, "governor")
        queue.mark_elastic(self._event)

    def check(self) -> Optional[str]:
        """Evaluate the budget; on breach, request a graceful stop."""
        budget = self.budget
        reason = None
        if budget.max_events is not None:
            used = self.events_used()
            if used >= budget.max_events:
                reason = f"event budget exhausted ({used} >= {budget.max_events})"
        if reason is None and budget.max_wall_secs is not None:
            elapsed = time.monotonic() - self._start_wall
            if elapsed >= budget.max_wall_secs:
                reason = (f"wall-clock budget exhausted "
                          f"({elapsed:.1f}s >= {budget.max_wall_secs}s)")
        if reason is None and budget.max_rss_mb is not None:
            rss = _rss_mb()
            if rss is not None and rss >= budget.max_rss_mb:
                reason = (f"RSS watermark exceeded "
                          f"({rss:.0f} MiB >= {budget.max_rss_mb} MiB)")
        if reason is not None:
            self.breached = reason
            self.machine.queue.request_stop()
        return reason
