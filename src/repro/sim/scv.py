"""Sequential-consistency violation detection (Shasha–Snir style).

The paper defines an SCV as a cycle of inter-thread dependences among
overlapping data races (Fig. 1, after [29] Shasha & Snir).  We detect
them axiomatically: record every globally-performed access, build the
union of

* **po** — program order within each thread (from the op index each
  access carried when it touched the memory image),
* **rf** — read-from (each load records the write tag it returned),
* **co** — coherence order (per-word write serialization), and
* **fr** — from-read (a load reads-before every co-later write),

and look for a cycle.  An execution is sequentially consistent iff the
union is acyclic.  With fences placed per the paper's recipes the
workloads must stay acyclic; remove the fences and the classic
store-buffering cycle appears (the litmus tests assert both).

Limitations (documented): loads satisfied by the core's own write
buffer bypass the image and are not recorded — the litmus kernels avoid
same-address store→load sequences, and forwarded reads can only
*strengthen* po locality, never create a new inter-thread edge.
Enable recording only for small runs (``track_dependences=True``); the
graph is O(accesses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.common.errors import SCViolationError
from repro.mem.memory import INIT_TAG, MemoryImage, WriteTag


@dataclass
class AccessEvent:
    """One globally-performed access."""

    index: int
    kind: str  # "load" | "store"
    core: int
    word: int
    value: int
    #: for loads: the tag of the write read; for stores: their own tag
    tag: WriteTag
    po: int


class DependenceRecorder:
    """Installs itself as the memory image's observer and logs accesses."""

    def __init__(self, image: MemoryImage):
        self.image = image
        self.events: List[AccessEvent] = []
        self._pending_po: Dict[int, int] = {}
        image.observer = self._observe

    def note_po(self, core: int, po: int) -> None:
        """Called by the core/L1 immediately before an image access."""
        self._pending_po[core] = po

    def _observe(
        self, kind: str, core: int, word: int, value: int, tag: WriteTag
    ) -> None:
        if core < 0:
            return  # initialization / debug pokes
        po = self._pending_po.pop(core, -1)
        self.events.append(
            AccessEvent(len(self.events), kind, core, word, value, tag, po)
        )

    def squash(self, core: int, po_limit: int) -> int:
        """Discard *core*'s recorded loads past *po_limit*.

        Called on a W+ rollback: post-checkpoint loads were performed
        but architecturally squashed, so they must not count as
        dependence-graph events (their re-executions will be recorded
        again).  Post-checkpoint stores never merged, hence never
        recorded.  Returns the number of events dropped.
        """
        before = len(self.events)
        self.events = [
            ev for ev in self.events
            if not (ev.core == core and ev.po > po_limit)
        ]
        for i, ev in enumerate(self.events):
            ev.index = i
        return before - len(self.events)

    def detach(self) -> None:
        self.image.observer = None


def build_dependence_graph(events: List[AccessEvent]) -> nx.DiGraph:
    """po ∪ rf ∪ co ∪ fr over the recorded accesses."""
    g = nx.DiGraph()
    for ev in events:
        g.add_node(ev.index)

    # po: per core, ordered by (po index, record order)
    by_core: Dict[int, List[AccessEvent]] = {}
    for ev in events:
        by_core.setdefault(ev.core, []).append(ev)
    for core_events in by_core.values():
        ordered = sorted(core_events, key=lambda e: (e.po, e.index))
        for a, b in zip(ordered, ordered[1:]):
            g.add_edge(a.index, b.index, kind="po")

    # co: per word, stores in tag-serial order
    stores_by_word: Dict[int, List[AccessEvent]] = {}
    store_by_tag: Dict[WriteTag, AccessEvent] = {}
    for ev in events:
        if ev.kind == "store":
            stores_by_word.setdefault(ev.word, []).append(ev)
            store_by_tag[ev.tag] = ev
    co_next: Dict[WriteTag, AccessEvent] = {}
    for stores in stores_by_word.values():
        stores.sort(key=lambda e: e.tag[1])
        for a, b in zip(stores, stores[1:]):
            g.add_edge(a.index, b.index, kind="co")
            co_next[a.tag] = b

    # rf and fr
    for ev in events:
        if ev.kind != "load":
            continue
        writer = store_by_tag.get(ev.tag)
        if writer is not None and writer.core != ev.core:
            g.add_edge(writer.index, ev.index, kind="rf")
        # fr: the load happens before the co-successor of what it read
        if ev.tag == INIT_TAG:
            stores = stores_by_word.get(ev.word, ())
            if stores:
                g.add_edge(ev.index, stores[0].index, kind="fr")
        else:
            succ = co_next.get(ev.tag)
            if succ is not None and succ.core != ev.core:
                g.add_edge(ev.index, succ.index, kind="fr")
    return g


def find_scv(events: List[AccessEvent]) -> Optional[List[Tuple[int, int]]]:
    """Return a dependence cycle (list of edges) or None if SC holds."""
    g = build_dependence_graph(events)
    try:
        cycle = nx.find_cycle(g, orientation="original")
    except nx.NetworkXNoCycle:
        return None
    return [(u, v) for u, v, _ in cycle]


def assert_sequentially_consistent(events: List[AccessEvent]) -> None:
    """Raise :class:`SCViolationError` if the execution is not SC."""
    cycle = find_scv(events)
    if cycle is not None:
        raise SCViolationError(
            f"dependence cycle of length {len(cycle)} found", cycle=cycle
        )
