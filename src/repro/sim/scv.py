"""Sequential-consistency violation detection (Shasha–Snir style).

The paper defines an SCV as a cycle of inter-thread dependences among
overlapping data races (Fig. 1, after [29] Shasha & Snir).  We detect
them axiomatically: record every globally-performed access, build the
union of

* **po** — program order within each thread (from the op index each
  access carried when it touched the memory image),
* **rf** — read-from (each load records the write tag it returned),
* **co** — coherence order (per-word write serialization), and
* **fr** — from-read (a load reads-before every co-later write),

and look for a cycle.  An execution is sequentially consistent iff the
union is acyclic.  With fences placed per the paper's recipes the
workloads must stay acyclic; remove the fences and the classic
store-buffering cycle appears (the litmus tests assert both).

Loads satisfied by the core's own write buffer bypass the image; the
core reports them explicitly (:meth:`DependenceRecorder.note_forwarded`)
so they still appear as po-ordered accesses.  A forwarded load carries a
provisional ``("fwd", core, store_po)`` tag that graph construction
resolves to the source store's real write tag once that store has merged
(it is recorded with the same program-order index), which recovers the
load's fr edge to the store's coherence successor.
Enable recording only for small runs (``track_dependences=True``); the
graph is O(accesses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.common.errors import SCViolationError
from repro.mem.memory import INIT_TAG, MemoryImage, WriteTag


@dataclass
class AccessEvent:
    """One globally-performed access."""

    index: int
    kind: str  # "load" | "store"
    core: int
    word: int
    value: int
    #: for loads: the tag of the write read; for stores: their own tag;
    #: for write-buffer-forwarded loads: a provisional ("fwd", core,
    #: store_po) triple resolved during graph construction
    tag: tuple
    po: int


class DependenceRecorder:
    """Installs itself as the memory image's observer and logs accesses."""

    def __init__(self, image: MemoryImage):
        self.image = image
        self.events: List[AccessEvent] = []
        self._pending_po: Dict[int, int] = {}
        image.observer = self._observe

    def note_po(self, core: int, po: int) -> None:
        """Called by the core/L1 immediately before an image access."""
        self._pending_po[core] = po

    def note_forwarded(
        self, core: int, po: int, word: int, value: int, store_po: int
    ) -> None:
        """Record a load satisfied by *core*'s own write buffer.

        Forwarded loads never touch the memory image, so the observer
        hook cannot see them; the core reports them here.  *store_po*
        is the program-order index of the buffered store that supplied
        the value — once that store merges (and is recorded with the
        same po) graph construction resolves this event's provisional
        tag to the store's real write tag.
        """
        self.events.append(
            AccessEvent(
                len(self.events), "load", core, word, value,
                ("fwd", core, store_po), po,
            )
        )

    def _observe(
        self, kind: str, core: int, word: int, value: int, tag: WriteTag
    ) -> None:
        if core < 0:
            return  # initialization / debug pokes
        po = self._pending_po.pop(core, -1)
        self.events.append(
            AccessEvent(len(self.events), kind, core, word, value, tag, po)
        )

    def squash(self, core: int, po_limit: int) -> int:
        """Discard *core*'s recorded loads past *po_limit*.

        Called on a W+ rollback: post-checkpoint loads were performed
        but architecturally squashed, so they must not count as
        dependence-graph events (their re-executions will be recorded
        again).  Post-checkpoint stores never merged, hence never
        recorded.  Returns the number of events dropped.
        """
        before = len(self.events)
        self.events = [
            ev for ev in self.events
            if not (ev.core == core and ev.po > po_limit)
        ]
        for i, ev in enumerate(self.events):
            ev.index = i
        return before - len(self.events)

    def detach(self) -> None:
        self.image.observer = None


def build_dependence_graph(events: List[AccessEvent]) -> nx.DiGraph:
    """po ∪ rf ∪ co ∪ fr over the recorded accesses."""
    g = nx.DiGraph()
    for ev in events:
        g.add_node(ev.index)

    # po: per core, ordered by (po index, record order)
    by_core: Dict[int, List[AccessEvent]] = {}
    for ev in events:
        by_core.setdefault(ev.core, []).append(ev)
    for core_events in by_core.values():
        ordered = sorted(core_events, key=lambda e: (e.po, e.index))
        for a, b in zip(ordered, ordered[1:]):
            g.add_edge(a.index, b.index, kind="po")

    # co: per word, stores in tag-serial order
    stores_by_word: Dict[int, List[AccessEvent]] = {}
    store_by_tag: Dict[WriteTag, AccessEvent] = {}
    for ev in events:
        if ev.kind == "store":
            stores_by_word.setdefault(ev.word, []).append(ev)
            store_by_tag[ev.tag] = ev
    co_next: Dict[WriteTag, AccessEvent] = {}
    for stores in stores_by_word.values():
        stores.sort(key=lambda e: e.tag[1])
        for a, b in zip(stores, stores[1:]):
            g.add_edge(a.index, b.index, kind="co")
            co_next[a.tag] = b

    # resolve write-buffer-forwarded loads to the tag of the store
    # that supplied their value (recorded with the same core and po
    # when it merged); an unresolved tag (store squashed before
    # merging) contributes po edges only
    store_by_po = {
        (ev.core, ev.po): ev for ev in events if ev.kind == "store"
    }

    def load_tag(ev: AccessEvent):
        tag = ev.tag
        if len(tag) == 3 and tag[0] == "fwd":
            src = store_by_po.get((tag[1], tag[2]))
            return src.tag if src is not None else tag
        return tag

    # rf and fr
    for ev in events:
        if ev.kind != "load":
            continue
        tag = load_tag(ev)
        writer = store_by_tag.get(tag)
        if writer is not None and writer.core != ev.core:
            g.add_edge(writer.index, ev.index, kind="rf")
        # fr: the load happens before the co-successor of what it read
        if tag == INIT_TAG:
            stores = stores_by_word.get(ev.word, ())
            if stores:
                g.add_edge(ev.index, stores[0].index, kind="fr")
        else:
            succ = co_next.get(tag)
            if succ is not None and succ.core != ev.core:
                g.add_edge(ev.index, succ.index, kind="fr")
    return g


def find_scv(events: List[AccessEvent]) -> Optional[List[Tuple[int, int]]]:
    """Return a dependence cycle (list of edges) or None if SC holds."""
    g = build_dependence_graph(events)
    try:
        cycle = nx.find_cycle(g, orientation="original")
    except nx.NetworkXNoCycle:
        return None
    return [(u, v) for u, v, _ in cycle]


def assert_sequentially_consistent(events: List[AccessEvent]) -> None:
    """Raise :class:`SCViolationError` if the execution is not SC."""
    cycle = find_scv(events)
    if cycle is not None:
        raise SCViolationError(
            f"dependence cycle of length {len(cycle)} found", cycle=cycle
        )
