"""The simulated multicore: construction, wiring and the run loop.

:class:`Machine` is the public entry point of the simulator.  Typical
use::

    from repro import Machine, MachineParams, FenceDesign

    params = MachineParams(num_cores=8).with_design(FenceDesign.WS_PLUS)
    machine = Machine(params)
    shared = ...            # allocate simulated memory via machine.alloc
    machine.spawn(thread_fn, shared=shared)   # one generator per core
    result = machine.run()
    print(result.stats.summary())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import os

from repro.common.addr import AddressMap
from repro.common.errors import ConfigError
from repro.common.kernels import make_queue
from repro.common.params import FenceDesign, MachineParams
from repro.common.stats import MachineStats
from repro.core.cpu import Core
from repro.core.thread import SimThread, ThreadContext
from repro.mem.directory import DirectoryBank
from repro.mem.l1controller import L1Controller
from repro.mem.memory import MemoryImage
from repro.mem.noc import MeshNoc
from repro.runtime.alloc import Allocator
from repro.sim.deadlock import Watchdog
from repro.sim.governor import ResourceGovernor, RunBudget
from repro.sim.scv import DependenceRecorder


@dataclass
class SimResult:
    """Outcome of one simulation run."""

    stats: MachineStats
    cycles: int
    #: all threads ran to completion (False when max_cycles cut in)
    completed: bool
    #: dependence events, when ``track_dependences`` was enabled
    events: Optional[list] = None
    #: a resource budget cut the run off, or the sanitizer stood down
    #: in ``degrade`` mode — the run ended gracefully but incompletely
    degraded: bool = False
    degraded_reason: Optional[str] = None
    #: violations recorded by an attached sanitizer (warn/degrade modes;
    #: strict raises before the result is built)
    sanitizer_violations: int = 0


class Machine:
    """An N-core TSO multicore with one of the five fence designs."""

    def __init__(self, params: MachineParams, seed: int = 12345,
                 kernel: Optional[str] = None):
        self.params = params
        self.seed = seed
        #: which dispatch kernel drives this machine ("object"|"flat");
        #: explicit arg > $REPRO_KERNEL > "object" (see common.kernels)
        self.queue, self.kernel = make_queue(kernel)
        #: dispatched events that were housekeeping-pump ticks (watchdog
        #: / sanitizer / governor / metrics); pumps subtract this from
        #: ``queue.executed`` to detect idle windows, and increment it
        #: themselves at the top of each tick.
        self.pump_ticks = 0
        #: quiescence fast-forward: elastic pumps may defer ticks across
        #: provably-idle windows (REPRO_NO_FASTFORWARD=1 pins the old
        #: every-interval pumping for A/B debugging)
        self.fast_forward = os.environ.get("REPRO_NO_FASTFORWARD", "") != "1"
        self.stats = MachineStats(params.num_cores)
        self.image = MemoryImage()
        self.noc = MeshNoc(params, self.stats)
        self.amap = AddressMap(
            params.line_bytes,
            params.word_bytes,
            params.num_banks,
            params.bank_interleave_bytes,
        )
        self.alloc = Allocator(self.amap)
        self.recorder: Optional[DependenceRecorder] = None
        if params.track_dependences:
            self.recorder = DependenceRecorder(self.image)
        #: observability (repro.obs): None unless attach_tracer() /
        #: a MetricsCollector is wired up — every hook site guards on
        #: a cached ``tracer is None`` check, so this stays zero-cost.
        self.tracer = None
        self.metrics = None
        #: fault injection (repro.faults): None unless attach_faults()
        #: is called — hook sites guard on ``faults is None`` exactly
        #: like the tracer, keeping the fault-free path bit-identical.
        self.faults = None
        #: runtime protocol sanitizer (repro.sanitizer): None unless
        #: attach_sanitizer() is called — same ``is None`` guard
        #: contract as the tracer/injector, so the unsanitized hot path
        #: is untouched and bit-identical to the goldens.
        self.sanitizer = None
        #: cycle attribution (repro.obs.attrib): None unless
        #: attach_attrib() is called — same cached ``is None`` guard
        #: contract as the tracer; set before cores are built so Core
        #: can cache it in __init__.
        self.attrib = None
        #: directory for watchdog post-mortem bundles (None = keep the
        #: diagnostics in memory only, attached to the DeadlockError)
        self.diag_dir = None

        self.banks: List[DirectoryBank] = [
            DirectoryBank(b, params, self.stats, self.noc, self.queue)
            for b in range(params.num_banks)
        ]
        fine_grain = params.fence_design is FenceDesign.SW_PLUS
        self.l1s: List[L1Controller] = [
            L1Controller(
                c, params, self.stats, self.noc, self.image, self.queue,
                fine_grain_bs=fine_grain,
            )
            for c in range(params.num_cores)
        ]
        self.cores: List[Core] = [
            Core(c, params, self.stats, self.queue, self.l1s[c], self.image, self)
            for c in range(params.num_cores)
        ]
        for bank in self.banks:
            bank.controllers = self.l1s
        for l1 in self.l1s:
            l1.banks = self.banks
            l1.recorder = self.recorder
        self._spawned = 0
        #: count of cores currently done (wake-on-event stop condition);
        #: resynced at the top of run(), maintained by core_done_changed.
        self._done_cores = 0
        self._watchdog = Watchdog(self, params.watchdog_interval)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def attach_tracer(self, tracer) -> None:
        """Wire a :class:`repro.obs.Tracer` into every component.

        Each component caches the tracer in its own attribute so hook
        sites test a local ``self.tracer is None`` — no machine-level
        indirection on the hot path.  Call before :meth:`run`.
        """
        tracer.bind(self.queue)
        self.tracer = tracer
        for core in self.cores:
            core.tracer = tracer
            core.wb.tracer = tracer
            core.wb.core_id = core.core_id
        for l1 in self.l1s:
            l1.tracer = tracer
        for bank in self.banks:
            bank.tracer = tracer
        self.noc.tracer = tracer
        if self.faults is not None:
            self.faults.tracer = tracer

    def attach_attrib(self, attrib) -> None:
        """Wire a :class:`repro.obs.attrib.CycleAttribution` into every
        component (same shape as :meth:`attach_tracer`).

        Each hook site tests a local ``self.attrib is None``; the
        hooks themselves all sit on already-slow scheduled paths, so a
        run without attribution is bit-identical to the goldens and a
        run with it perturbs no timing (pure accumulator writes).
        Call before :meth:`run`.
        """
        attrib.bind(self)
        self.attrib = attrib
        for core in self.cores:
            core.attrib = attrib
            core.wb.attrib = attrib
            core.wb.core_id = core.core_id
        for l1 in self.l1s:
            l1.attrib = attrib

    def attach_faults(self, injector) -> None:
        """Wire a :class:`repro.faults.FaultInjector` into every
        component (the structural mirror of :meth:`attach_tracer`).

        Each hook site tests a local ``self.faults is None``, so a run
        without an injector executes exactly the instruction stream the
        golden traces pin down.  Call before :meth:`run`.
        """
        injector.tracer = self.tracer
        self.faults = injector
        for core in self.cores:
            core.faults = injector
        for l1 in self.l1s:
            l1.faults = injector
        for bank in self.banks:
            bank.faults = injector
        self.noc.faults = injector

    def attach_sanitizer(self, sanitizer) -> None:
        """Wire a :class:`repro.sanitizer.Sanitizer` into every
        component (same shape as :meth:`attach_tracer`).

        Each hook site tests a local ``self.sanitizer is None``, so a
        run without one executes exactly the golden instruction stream.
        Call before :meth:`run`.
        """
        sanitizer.bind(self)
        self.sanitizer = sanitizer
        for core in self.cores:
            core.sanitizer = sanitizer
            core.wb.sanitizer = sanitizer
            core.wb.core_id = core.core_id
        for l1 in self.l1s:
            l1.sanitizer = sanitizer
        for bank in self.banks:
            bank.sanitizer = sanitizer

    # ------------------------------------------------------------------
    # workload setup
    # ------------------------------------------------------------------

    def spawn(self, fn: Callable, shared=None, core: Optional[int] = None) -> Core:
        """Bind generator function *fn* as the thread of the next core."""
        cid = self._spawned if core is None else core
        if cid >= self.params.num_cores:
            raise ConfigError(
                f"cannot spawn thread {cid}: machine has "
                f"{self.params.num_cores} cores"
            )
        ctx = ThreadContext(
            tid=cid,
            num_threads=self.params.num_cores,
            seed=self.seed * 1_000_003 + cid,
            shared=shared,
        )
        # only W+ (needs_checkpoint) ever replays a thread; other
        # designs skip the per-op replay-log bookkeeping entirely
        self.cores[cid].bind(
            SimThread(fn, ctx,
                      keep_log=self.cores[cid].policy.needs_checkpoint)
        )
        self._spawned = max(self._spawned, cid + 1)
        return self.cores[cid]

    def spawn_all(self, fn: Callable, shared=None) -> None:
        """Run *fn* on every core."""
        for cid in range(self.params.num_cores):
            self.spawn(fn, shared=shared, core=cid)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _all_done(self) -> bool:
        return all(
            (core.thread is None or core.finished) and core.wb.empty
            for core in self.cores
        )

    def core_done_changed(self, done: bool) -> None:
        """Wake-on-event stop: a core crossed its done/not-done boundary.

        Cores report the transition (thread finished + write buffer
        drained, or the reverse on a W+ rollback) instead of the event
        loop polling ``_all_done`` before every event; when the last
        core goes idle the queue's stop flag is raised and ``run``
        returns at exactly the same event boundary the poll would have
        caught.
        """
        if done:
            self._done_cores += 1
            if self._done_cores == len(self.cores):
                self.queue.request_stop()
        else:
            self._done_cores -= 1
            self.queue.clear_stop()

    def thread_finished(self, core: Core) -> None:
        """Callback from a core whose thread ran out of operations."""
        core._kick_drain()  # flush any leftover buffered stores

    def run(self, max_cycles: Optional[int] = None,
            budget: Optional[RunBudget] = None) -> SimResult:
        """Run to completion (or *max_cycles* / params.max_cycles).

        *budget* bounds the run by wall-clock time, event count and/or
        RSS watermark; a breach stops the queue gracefully and the
        result comes back ``degraded`` with the reason — never a hang
        or a hard kill.
        """
        limit = max_cycles or self.params.max_cycles or None
        for core in self.cores:
            core.start()
        # seed the done-core counter; cores keep it current from here
        n_done = 0
        for core in self.cores:
            done = (core.thread is None or core.finished) and core.wb.empty
            core._done = done
            n_done += done
        self._done_cores = n_done
        self.queue.clear_stop()
        if n_done == len(self.cores):
            self.queue.request_stop()
        governor = None
        if budget is not None and budget.enabled:
            governor = ResourceGovernor(self, budget)
        self._watchdog.start()
        if self.metrics is not None:
            self.metrics.start()
        if self.sanitizer is not None:
            self.sanitizer.start()
        if governor is not None:
            governor.start()
        try:
            self.queue.run(until=limit)
        finally:
            # always executed — including when a workload callable or a
            # strict sanitizer raises — so no run can leak a live
            # watchdog or a self-rescheduling sampling pump into the
            # next test.  The pumps must also be down *before* the
            # quiesce drain below: a rescheduling pump event would keep
            # the queue alive to exactly the drain horizon and perturb
            # stats.cycles.
            self._watchdog.stop()
            if self.metrics is not None:
                self.metrics.stop()
            if self.sanitizer is not None:
                self.sanitizer.stop()
            if governor is not None:
                governor.stop()
        completed = self._all_done()
        if completed:
            # drain in-flight protocol events (writebacks, GRT
            # withdrawals, late replies) so post-run state inspection
            # sees a quiesced machine; bounded in case of stray timers.
            self.queue.clear_stop()
            self.queue.run(until=self.queue.now + 10_000)
        elif any(core.recovering for core in self.cores):
            # the cycle budget ran out while a W+ rollback was still
            # draining its write buffer: the run is incomplete because
            # of the budget, not a hang — flag it so callers can tell.
            self.stats.cutoff_in_recovery = True
        if self.sanitizer is not None:
            # one closing sweep over the quiesced (or cut-off) state;
            # raises in strict mode like any in-run check.
            self.sanitizer.final_check()
        self.stats.cycles = self.queue.now
        if self.tracer is not None:
            self.tracer.finalize()
            # per-core coarse breakdown instants: offline attribution
            # replay reconciles its fine leaves against these
            self.tracer.core_summaries(self.stats)
        events = self.recorder.events if self.recorder else None
        degraded_reason = None
        if governor is not None and governor.breached is not None:
            degraded_reason = governor.breached
        elif self.sanitizer is not None and self.sanitizer.degraded:
            first = self.sanitizer.first_violation
            degraded_reason = (
                "sanitizer stood down after violation: "
                f"{first['invariant']} at cycle {first['cycle']}"
            )
        violations = (
            len(self.sanitizer.violations) + self.sanitizer.dropped
            if self.sanitizer is not None else 0
        )
        return SimResult(
            stats=self.stats,
            cycles=self.queue.now,
            completed=completed,
            events=events,
            degraded=degraded_reason is not None,
            degraded_reason=degraded_reason,
            sanitizer_violations=violations,
        )
