"""Global no-progress watchdog.

The naive global-state-free weak fence (paper Fig. 3a) deadlocks: every
core's pre-fence write keeps bouncing off another core's Bypass Set, so
the event queue never drains (bounce retries are events) yet no thread
commits another operation.  The watchdog samples total committed ops on
a period; if a full period passes with live threads and zero progress it
raises :class:`~repro.common.errors.DeadlockError` naming the blocked
cores — the observable symptom the W+ design exists to recover from.

Before raising, the watchdog snapshots a post-mortem diagnostic bundle
(per-core write-buffer and Bypass-Set contents, in-flight events, the
tail of the trace when a tracer is attached) onto the error; when the
machine has a ``diag_dir`` the bundle is also written to a JSON
artifact so a hung chaos run leaves evidence on disk.
"""

from __future__ import annotations

import json
import os

from repro.common.errors import DeadlockError

#: trace-tail length captured into the diagnostic bundle
_TRACE_TAIL = 64
#: cap on in-flight events listed in the bundle
_MAX_EVENTS = 128


class Watchdog:
    """Periodic progress checker over a machine's cores."""

    def __init__(self, machine, interval: int):
        self.machine = machine
        self.interval = interval
        self._last_progress = -1
        self._event = None

    def start(self) -> None:
        queue = self.machine.queue
        self._event = queue.schedule(self.interval, self._tick, "watchdog")
        # elastic: our tick is housekeeping, not machine progress, so
        # other pumps' idle_horizon() must see past it.  The watchdog
        # itself NEVER fast-forwards — an idle-but-live machine is
        # exactly the deadlock it exists to flag, so its cadence is
        # sacrosanct.
        queue.mark_elastic(self._event)

    def stop(self) -> None:
        if self._event is not None:
            self.machine.queue.cancel(self._event)
            self._event = None

    def _tick(self) -> None:
        # the event that invoked us has fired: forget it immediately so
        # stop() never cancels a dead event — whether we reschedule,
        # stand down (all cores finished), or raise below.
        self._event = None
        machine = self.machine
        machine.pump_ticks += 1
        progress = sum(
            core.ops_committed + core.stores_merged for core in machine.cores
        )
        # a finished thread with a stuck write buffer is still blocked
        # (its stores must merge before the run is architecturally done)
        live = [
            core.core_id
            for core in machine.cores
            if not (core.finished and core.wb.empty)
        ]
        if live and progress == self._last_progress:
            blocked = self._describe(live)
            diagnostics = self.snapshot_diagnostics(live)
            path = self._write_artifact(diagnostics)
            raise DeadlockError(
                "no thread progressed for "
                f"{self.interval} cycles; blocked cores: {blocked}",
                blocked_cores=live,
                diagnostics=diagnostics,
                diagnostics_path=path,
            )
        self._last_progress = progress
        if live:
            self._event = machine.queue.schedule(
                self.interval, self._tick, "watchdog"
            )
            machine.queue.mark_elastic(self._event)

    def _describe(self, live) -> str:
        parts = []
        for cid in live:
            core = self.machine.cores[cid]
            state = []
            if core.wb.any_bouncing():
                state.append("store bouncing")
            if not core.bs.empty:
                state.append(f"BS holds {len(core.bs)} line(s)")
            if core.pending_fences:
                state.append(f"{len(core.pending_fences)} fence(s) incomplete")
            parts.append(f"P{cid}[{', '.join(state) or 'idle'}]")
        return ", ".join(parts)

    # ------------------------------------------------------------------
    # post-mortem diagnostics
    # ------------------------------------------------------------------

    def snapshot_diagnostics(self, live=None) -> dict:
        """JSON-serializable picture of the stuck machine."""
        machine = self.machine
        if live is None:
            live = [
                core.core_id for core in machine.cores
                if not (core.finished and core.wb.empty)
            ]
        cores = []
        for core in machine.cores:
            cores.append({
                "core": core.core_id,
                "blocked": core.core_id in live,
                "finished": core.finished,
                "recovering": core.recovering,
                "ops_committed": core.ops_committed,
                "stores_merged": core.stores_merged,
                "pending_fences": [
                    {"fence_id": pf.fence_id,
                     "last_store_id": pf.last_store_id}
                    for pf in core.pending_fences
                ],
                "wb": [
                    {"store_id": e.store_id, "word": e.word,
                     "line": e.line, "ordered": e.ordered,
                     "retries": e.retries, "bouncing": e.bouncing,
                     "issued": e.issued}
                    for e in core.wb._entries
                ],
                "bs_lines": sorted(core.bs._entries),
            })
        in_flight = [
            {"time": t, "label": label}
            for t, label in machine.queue.pending_events()[:_MAX_EVENTS]
        ]
        in_flight.sort(key=lambda e: e["time"])
        bundle = {
            "cycle": machine.queue.now,
            "design": machine.params.fence_design.value,
            "num_cores": machine.params.num_cores,
            "blocked_cores": list(live),
            "cores": cores,
            "in_flight_events": in_flight,
        }
        if machine.faults is not None:
            bundle["faults"] = {
                "plan": machine.faults.plan.to_dict(),
                "summary": machine.faults.summary(),
            }
        if machine.tracer is not None:
            bundle["trace_tail"] = [
                ev.to_dict() for ev in machine.tracer.events[-_TRACE_TAIL:]
            ]
        return bundle

    def _write_artifact(self, diagnostics: dict):
        """Persist the bundle when the machine has a diag_dir set."""
        diag_dir = self.machine.diag_dir
        if not diag_dir:
            return None
        os.makedirs(diag_dir, exist_ok=True)
        design = self.machine.params.fence_design.value
        path = os.path.join(
            diag_dir,
            f"deadlock_{design}_c{self.machine.queue.now}_"
            f"s{self.machine.seed}.json",
        )
        with open(path, "w") as fh:
            json.dump(diagnostics, fh, indent=1, sort_keys=True)
        return path
