"""Global no-progress watchdog.

The naive global-state-free weak fence (paper Fig. 3a) deadlocks: every
core's pre-fence write keeps bouncing off another core's Bypass Set, so
the event queue never drains (bounce retries are events) yet no thread
commits another operation.  The watchdog samples total committed ops on
a period; if a full period passes with live threads and zero progress it
raises :class:`~repro.common.errors.DeadlockError` naming the blocked
cores — the observable symptom the W+ design exists to recover from.
"""

from __future__ import annotations

from repro.common.errors import DeadlockError


class Watchdog:
    """Periodic progress checker over a machine's cores."""

    def __init__(self, machine, interval: int):
        self.machine = machine
        self.interval = interval
        self._last_progress = -1
        self._event = None

    def start(self) -> None:
        self._event = self.machine.queue.schedule(
            self.interval, self._tick, "watchdog"
        )

    def stop(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> None:
        machine = self.machine
        progress = sum(
            core.ops_committed + core.stores_merged for core in machine.cores
        )
        # a finished thread with a stuck write buffer is still blocked
        # (its stores must merge before the run is architecturally done)
        live = [
            core.core_id
            for core in machine.cores
            if not (core.finished and core.wb.empty)
        ]
        if live and progress == self._last_progress:
            blocked = self._describe(live)
            raise DeadlockError(
                "no thread progressed for "
                f"{self.interval} cycles; blocked cores: {blocked}",
                blocked_cores=live,
            )
        self._last_progress = progress
        if live:
            self._event = machine.queue.schedule(
                self.interval, self._tick, "watchdog"
            )

    def _describe(self, live) -> str:
        parts = []
        for cid in live:
            core = self.machine.cores[cid]
            state = []
            if core.wb.any_bouncing():
                state.append("store bouncing")
            if not core.bs.empty:
                state.append(f"BS holds {len(core.bs)} line(s)")
            if core.pending_fences:
                state.append(f"{len(core.pending_fences)} fence(s) incomplete")
            parts.append(f"P{cid}[{', '.join(state) or 'idle'}]")
        return ", ".join(parts)
