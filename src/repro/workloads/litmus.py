"""Litmus kernels: the paper's figures as runnable two/three-thread
programs.

These are the scenarios of Figs 1–4 of the paper, built so that the
interesting races actually happen: caches are pre-warmed so post-fence
loads complete early, and a cold "pad" store keeps each fence
incomplete for a couple hundred cycles (the expensive-fence situation
the paper's introduction measures).

Used by the integration tests, the SCV checker tests and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.common.params import FenceDesign, FenceRole, MachineParams
from repro.core import isa as ops
from repro.sim.machine import Machine, SimResult


@dataclass
class LitmusOutcome:
    """Result of one litmus run."""

    result: SimResult
    #: per-thread observed values, keyed by (tid, label)
    observed: Dict[Tuple[int, str], int]

    def value(self, tid: int, label: str) -> Optional[int]:
        return self.observed.get((tid, label))


def _collect_notes(machine: Machine) -> Dict[Tuple[int, str], int]:
    observed: Dict[Tuple[int, str], int] = {}
    for core in machine.cores:
        for _po, payload in core.notes:
            label, value = payload
            observed[(core.core_id, label)] = value
    return observed


def litmus_params(
    design: FenceDesign, num_cores: int = 2, recovery: bool = True
) -> MachineParams:
    """Interleaving-exact parameters for litmus runs."""
    return replace(
        MachineParams(num_cores=num_cores, batch_cycles=0,
                      track_dependences=True).with_design(design),
        wplus_recovery_enabled=recovery,
    )


def _warmup(lines: List[int]):
    """Touch every address so later accesses are L1 hits, then sync-ish
    align the threads with a compute block."""
    for addr in lines:
        yield ops.Load(addr)
    yield ops.Compute(1600)


def store_buffering(
    design: FenceDesign,
    roles: Tuple[FenceRole, FenceRole] = (FenceRole.CRITICAL, FenceRole.STANDARD),
    fences: bool = True,
    pad_stores: int = 1,
    recovery: bool = True,
    seed: int = 1,
) -> LitmusOutcome:
    """Dekker/SB (paper Fig. 1d): P0: x=1; F; r=y.  P1: y=1; F; r=x.

    The SC-forbidden outcome is both threads reading 0.  *pad_stores*
    cold stores before the protected store keep each fence incomplete
    long enough for the fences to collide (a fence group).
    """
    machine = Machine(litmus_params(design, recovery=recovery), seed=seed)
    x, y = machine.alloc.word(), machine.alloc.word()
    pads = [machine.alloc.word() for _ in range(2 * max(1, pad_stores))]

    def thread(me: int, my_var: int, other_var: int, role: FenceRole):
        def fn(ctx):
            yield from _warmup([x, y])
            for p in range(pad_stores):
                yield ops.Store(pads[2 * p + me], 7)
            yield ops.Store(my_var, 1)
            if fences:
                yield ops.Fence(role)
            value = yield ops.Load(other_var)
            yield ops.Note(("r", value))
        return fn

    machine.spawn(thread(0, x, y, roles[0]))
    machine.spawn(thread(1, y, x, roles[1]))
    result = machine.run()
    return LitmusOutcome(result, _collect_notes(machine))


def three_thread_cycle(
    design: FenceDesign,
    roles: Tuple[FenceRole, FenceRole, FenceRole] = (
        FenceRole.CRITICAL, FenceRole.CRITICAL, FenceRole.STANDARD,
    ),
    fences: bool = True,
    seed: int = 1,
) -> LitmusOutcome:
    """Paper Fig. 1e/1f: a potential dependence cycle across three
    threads (P0: x=1;F;r=y — P1: y=1;F;r=z — P2: z=1;F;r=x).

    Forbidden under SC: all three loads reading 0.
    """
    machine = Machine(litmus_params(design, num_cores=3), seed=seed)
    x, y, z = (machine.alloc.word() for _ in range(3))
    pads = [machine.alloc.word() for _ in range(3)]
    pattern = [(x, y), (y, z), (z, x)]

    def thread(me: int, role: FenceRole):
        my_var, next_var = pattern[me]

        def fn(ctx):
            yield from _warmup([x, y, z])
            yield ops.Store(pads[me], 7)
            yield ops.Store(my_var, 1)
            if fences:
                yield ops.Fence(role)
            value = yield ops.Load(next_var)
            yield ops.Note(("r", value))
        return fn

    for me in range(3):
        machine.spawn(thread(me, roles[me]))
    result = machine.run()
    return LitmusOutcome(result, _collect_notes(machine))


def false_sharing_interference(
    design: FenceDesign,
    true_sharing: bool = False,
    seed: int = 1,
) -> LitmusOutcome:
    """Paper Fig. 4b: two *unrelated* wfs whose accesses collide only
    through false sharing (words x and x' of one line).

    With ``true_sharing=True`` the kernel becomes Fig. 4c instead: a
    one-directional true-sharing dependence that does *not* form a
    cycle — P1's pre-wf write hits P0's BS and bounces briefly, then
    the interference resolves (Order under WS+, fence completion under
    the other designs).
    """
    machine = Machine(litmus_params(design), seed=seed)
    # one line with two words: x (word 0) and x2 (word 1)
    line_base = machine.alloc.alloc_line(2)
    x, x2 = machine.alloc.words_of(line_base, 2)
    y_base = machine.alloc.alloc_line(2)
    y, y2 = machine.alloc.words_of(y_base, 2)
    z = machine.alloc.word()  # unrelated (Fig. 4c's non-cyclic read)
    pads = [machine.alloc.word() for _ in range(2)]

    def thread0(ctx):
        yield from _warmup([x, y, z])
        yield ops.Store(pads[0], 7)
        yield ops.Store(x, 1)          # pre-wf write to line X
        yield ops.Fence(FenceRole.CRITICAL)
        value = yield ops.Load(y)      # post-wf read of line Y
        yield ops.Note(("r", value))

    def thread1(ctx):
        yield from _warmup([x, y, z])
        yield ops.Store(pads[1], 7)
        if true_sharing:
            # Fig. 4c: write the very word P0 watches, read something
            # unrelated — a dependence but no cycle
            yield ops.Store(y, 1)
            yield ops.Fence(FenceRole.CRITICAL)
            value = yield ops.Load(z)
        else:
            # Fig. 4b: cycle only through false sharing (words x2/y2)
            yield ops.Store(y2, 1)
            yield ops.Fence(FenceRole.CRITICAL)
            value = yield ops.Load(x2)
        yield ops.Note(("r", value))

    machine.spawn(thread0)
    machine.spawn(thread1)
    result = machine.run()
    return LitmusOutcome(result, _collect_notes(machine))


def message_passing(
    design: FenceDesign,
    fences: bool = True,
    seed: int = 1,
) -> LitmusOutcome:
    """MP: P0 writes data then flag; P1 spins on flag then reads data.

    TSO keeps store-store and load-load order, so this passes even
    without fences — included as a sanity check that the weak designs
    do not break orderings TSO already guarantees.
    """
    machine = Machine(litmus_params(design), seed=seed)
    data, flag = machine.alloc.word(), machine.alloc.word()

    def producer(ctx):
        yield ops.Store(data, 42)
        if fences:
            yield ops.Fence(FenceRole.CRITICAL)
        yield ops.Store(flag, 1)

    def consumer(ctx):
        while True:
            f = yield ops.Load(flag)
            if f:
                break
            yield ops.Compute(20)
        value = yield ops.Load(data)
        yield ops.Note(("data", value))

    machine.spawn(producer)
    machine.spawn(consumer)
    result = machine.run()
    return LitmusOutcome(result, _collect_notes(machine))
