"""The STAMP workload group (paper Table 3, evaluated in Fig. 11).

Synthetic-but-shape-faithful versions of the six STAMP applications the
paper runs from the RSTM distribution, built on the same TLRW STM as
the ustm group.  Each app reproduces the *transactional profile* that
drives its Fig. 11 behaviour:

* **genome**   — segment dedup: hash inserts + list scans, moderate
  compute; moderate fence exposure.
* **intruder** — packet reassembly: queue pops + tree inserts, very
  write-heavy with little think time → W+ (which weakens the writer
  and commit fences too) clearly beats WS+ (paper's observation).
* **kmeans**   — tiny centroid-update transactions separated by long
  compute phases; modest overall fence stall.
* **labyrinth**— very few, very long path-reservation transactions and
  huge private compute: no design moves the needle (paper: "very few
  transactions in the first place").
* **ssca2**    — tiny graph-update transactions on a large array, low
  conflict, high frequency.
* **vacation** — travel reservations: several tree lookups plus a
  couple of writes per transaction, read-dominated.

Runs go to completion (fixed transaction count per thread) and are
measured as execution time, like the paper.
"""

from __future__ import annotations

from typing import List

from repro.core import isa as ops
from repro.sim.machine import Machine
from repro.stm.tlrw import TlrwStm
from repro.stm.txn import run_transactions
from repro.workloads.base import Workload, register
from repro.workloads.ustm import NodeHeap, _ListBase, _TreeBase


class _StampWorkload(Workload):
    """Common scaffolding: fixed per-thread transaction count."""

    group = "stamp"
    txns_per_thread = 40
    think = 300

    def setup(self, machine: Machine) -> None:
        self.machine = machine
        n = machine.params.num_cores
        self.stm = TlrwStm(machine.alloc, n)
        self.build(machine)
        count = max(2, int(self.txns_per_thread * self.scale))

        def thread(ctx):
            self.init_thread(ctx)
            yield from run_transactions(
                ctx, self.stm, self.make_body, count,
                think_instructions=self.think,
            )

        machine.spawn_all(thread)

    def build(self, machine: Machine) -> None:
        raise NotImplementedError

    def init_thread(self, ctx) -> None:
        """Default: no per-thread scratch state."""

    def make_body(self, ctx, i: int):
        raise NotImplementedError


class _Structs:
    """Bundle of shared structures reused across the STAMP apps."""

    def __init__(self, owner, machine: Machine, *,
                 tree_keys=128, list_keys=48, array_words=512):
        stm = owner.stm
        self.tree = _TreeBase(scale=owner.scale)
        self.tree.stm = stm
        self.tree.key_range = tree_keys
        self.tree.build(machine)
        self.list = _ListBase(scale=owner.scale)
        self.list.stm = stm
        self.list.key_range = list_keys
        self.list.build(machine)
        self.array_words = array_words
        self.array = machine.alloc.alloc_line(array_words)
        stm.register_region(self.array, array_words)
        self.word_bytes = machine.alloc.amap.word_bytes

    def array_word(self, i: int) -> int:
        return self.array + (i % self.array_words) * self.word_bytes


@register
class Genome(_StampWorkload):
    name = "genome"
    txns_per_thread = 36
    think = 1100

    def build(self, machine: Machine) -> None:
        self.s = _Structs(self, machine, tree_keys=192, list_keys=64)

    def init_thread(self, ctx) -> None:
        ctx.tree_pool = self.s.tree.heap.pool_for(ctx.tid)

    def make_body(self, ctx, i: int):
        s = self.s
        seg = ctx.rng.randrange(192)
        scan_key = ctx.rng.randrange(64)
        pool = ctx.tree_pool

        def body(txn):
            # dedup insert of a segment, then a scan of the contig list
            yield from s.tree.tree_insert(txn, seg, pool)
            yield from s.list.lookup(txn, scan_key)
        return body


@register
class Intruder(_StampWorkload):
    name = "intruder"
    txns_per_thread = 44
    think = 400  # modest private compute: transactions nearly back to back
    #: striped packet queues — a single shared cursor would serialize
    #: every transaction behind one write lock
    CURSORS = 4

    def build(self, machine: Machine) -> None:
        self.s = _Structs(self, machine, tree_keys=128, array_words=256)
        # striped packet-queue cursors
        self.cursors = machine.alloc.alloc_words_padded(self.CURSORS)
        for c in self.cursors:
            self.stm.register_region(c, 1)

    def init_thread(self, ctx) -> None:
        ctx.tree_pool = self.s.tree.heap.pool_for(ctx.tid)

    def make_body(self, ctx, i: int):
        s = self.s
        key = ctx.rng.randrange(128)
        cursor = self.cursors[ctx.rng.randrange(self.CURSORS)]
        pool = ctx.tree_pool

        def body(txn):
            # pop a packet (read-modify-write on a queue cursor)
            c = yield from txn.read_for_write(cursor)
            yield from txn.write(cursor, c + 1)
            # reassembly-tree insert (write-heavy) + flow-state updates
            yield from s.tree.tree_insert(txn, (key + c) % 128, pool)
            for k in range(3):
                idx = (c * 7 + k) % s.array_words
                v = yield from txn.read(s.array_word(idx))
                yield from txn.write(s.array_word(idx), v + 1)
        return body


@register
class Kmeans(_StampWorkload):
    name = "kmeans"
    txns_per_thread = 40
    think = 2400  # the distance computation dominates

    CLUSTERS = 12

    def build(self, machine: Machine) -> None:
        self.centroids = machine.alloc.alloc_line(self.CLUSTERS)
        self.stm.register_region(self.centroids, self.CLUSTERS)
        self.word_bytes = machine.alloc.amap.word_bytes

    def make_body(self, ctx, i: int):
        c = ctx.rng.randrange(self.CLUSTERS)
        delta = ctx.rng.randrange(1, 5)
        addr = self.centroids + c * self.word_bytes

        def body(txn):
            v = yield from txn.read(addr)
            yield from txn.write(addr, v + delta)
        return body


@register
class Labyrinth(_StampWorkload):
    name = "labyrinth"
    txns_per_thread = 4   # very few transactions...
    think = 36000         # ...and huge private routing compute

    GRID = 256

    def build(self, machine: Machine) -> None:
        self.grid = machine.alloc.alloc_line(self.GRID)
        self.stm.register_region(self.grid, self.GRID)
        self.word_bytes = machine.alloc.amap.word_bytes

    def make_body(self, ctx, i: int):
        start = ctx.rng.randrange(self.GRID)
        path = [(start + k * 3) % self.GRID for k in range(14)]

        def body(txn):
            # reserve a whole path: read every cell, then claim it
            for cell in path:
                addr = self.grid + cell * self.word_bytes
                v = yield from txn.read(addr)
                if v:
                    continue  # already taken: route through anyway
                yield from txn.write(addr, ctx.tid + 1)
        return body


@register
class Ssca2(_StampWorkload):
    name = "ssca2"
    txns_per_thread = 56
    think = 520

    WORDS = 2048

    def build(self, machine: Machine) -> None:
        self.adj = machine.alloc.alloc_line(self.WORDS)
        self.stm.register_region(self.adj, self.WORDS)
        self.word_bytes = machine.alloc.amap.word_bytes

    def make_body(self, ctx, i: int):
        # one tiny adjacency append: low conflict on a big array
        idx = ctx.rng.randrange(self.WORDS)

        def body(txn):
            addr = self.adj + idx * self.word_bytes
            v = yield from txn.read(addr)
            yield from txn.write(addr, v + 1)
        return body


@register
class Vacation(_StampWorkload):
    name = "vacation"
    txns_per_thread = 40
    think = 1100

    def build(self, machine: Machine) -> None:
        self.s = _Structs(self, machine, tree_keys=160)

    def init_thread(self, ctx) -> None:
        ctx.tree_pool = self.s.tree.heap.pool_for(ctx.tid)

    def make_body(self, ctx, i: int):
        s = self.s
        queries = [ctx.rng.randrange(160) for _ in range(3)]
        book = ctx.rng.randrange(s.array_words)

        def body(txn):
            # price queries over the reservation trees (read-dominated)
            for q in queries:
                yield from s.tree.tree_lookup(txn, q)
            # then make the booking
            v = yield from txn.read(s.array_word(book))
            yield from txn.write(s.array_word(book), v + 1)
        return body
