"""The CilkApps workload group (paper Table 3, evaluated in Fig. 8).

Each application is modeled as a divide-and-conquer task graph executed
by the THE work-stealing runtime (:mod:`repro.runtime.workstealing`).
The fences under study are the two THE fences; the task bodies are
compute blocks plus data-array touches.  Per-app parameters (branching,
depth, task grain, data footprint) are chosen so the S+ fence-stall
fraction spans the paper's range — fine-grained apps like fib spend
20-30 % of their time in fence stall, coarse-grained ones a few percent,
averaging near the paper's 13 % (see EXPERIMENTS.md for measured
values).

The substitution rationale (DESIGN.md): the quantities Fig. 8 plots are
scheduler-fence effects, which depend on task grain and steal rate, not
on what the task bodies compute.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.core import isa as ops
from repro.runtime.workstealing import WorkStealingRuntime
from repro.sim.machine import Machine
from repro.workloads.base import Workload, register


def _mix(n: int) -> int:
    """Cheap deterministic hash for per-task irregularity."""
    n = (n ^ (n >> 16)) * 0x45D9F3B
    n = (n ^ (n >> 16)) * 0x45D9F3B
    return (n ^ (n >> 16)) & 0x7FFFFFFF


@dataclass(frozen=True)
class TaskGraphSpec:
    """Shape of one CilkApp's task graph."""

    name: str
    branching: int
    depth: int
    #: leaf-task compute (instructions), modulated ±50 % per task
    leaf_work: int
    #: compute spent by interior (spawning) tasks
    spawn_work: int
    #: shared-array words a leaf touches (cache/memory pressure)
    touches: int = 0
    #: fraction of touched words that are written
    write_frac: float = 0.25
    #: shared data-array size in words
    array_words: int = 1024


class TaskGraphApp:
    """A concrete (scaled) task graph bound to simulated memory."""

    def __init__(self, spec: TaskGraphSpec, machine: Machine, scale: float):
        self.spec = spec
        b = spec.branching
        depth = spec.depth
        if scale != 1.0 and scale > 0:
            depth = max(1, depth + int(round(math.log(scale, b))))
        self.depth = depth
        # heap-numbered complete b-ary tree: nodes 1..total
        self.subtree_total = (b ** (depth + 1) - 1) // (b - 1) if b > 1 else depth + 1
        self.total_tasks = self.subtree_total
        self.array = machine.alloc.alloc_line(spec.array_words)
        self.word_bytes = machine.alloc.amap.word_bytes

    def roots(self, worker: int) -> List[int]:
        return [1] if worker == 0 else []

    def _children(self, node: int) -> List[int]:
        b = self.spec.branching
        first = (node - 1) * b + 2
        if first > self.subtree_total:
            return []
        return [first + i for i in range(b)]

    def run_task(self, task_id: int):
        spec = self.spec
        children = self._children(task_id)
        work = spec.spawn_work if children else spec.leaf_work
        # per-task irregularity: 50 % .. 150 % of nominal
        work = max(4, (work * (50 + _mix(task_id) % 101)) // 100)
        yield ops.Compute(work)
        if not children and spec.touches:
            # Each leaf works on a mostly-private slice of the shared
            # array (blocked data access, as the real divide-and-conquer
            # kernels do); slices of different tasks overlap only when
            # the hash collides, giving occasional true/false sharing
            # rather than a single all-to-all hot array.
            h = _mix(task_id * 31 + 7)
            start = h % max(1, spec.array_words - spec.touches)
            writes = int(spec.touches * spec.write_frac)
            for i in range(spec.touches):
                addr = self.array + (start + i) * self.word_bytes
                if i < writes:
                    yield ops.Store(addr, task_id & 0xFFFF)
                else:
                    yield ops.Load(addr)
        return children


#: The ten applications (paper Table 3).  Grain/footprint profiles:
#: fib/knapsack are fine-grained recursion (high fence overhead),
#: matmul/heat/lu are blocked numeric kernels (coarse tasks, big
#: footprints), the rest sit in between.
CILK_SPECS = (
    TaskGraphSpec("bucket", branching=4, depth=5, leaf_work=260,
                  spawn_work=50, touches=8, array_words=2048),
    TaskGraphSpec("cholesky", branching=3, depth=6, leaf_work=420,
                  spawn_work=70, touches=10, array_words=2048),
    TaskGraphSpec("cilksort", branching=2, depth=9, leaf_work=300,
                  spawn_work=60, touches=6, array_words=4096),
    TaskGraphSpec("fft", branching=4, depth=5, leaf_work=380,
                  spawn_work=70, touches=8, array_words=4096),
    TaskGraphSpec("fib", branching=2, depth=10, leaf_work=120,
                  spawn_work=24, touches=0),
    TaskGraphSpec("heat", branching=8, depth=3, leaf_work=700,
                  spawn_work=90, touches=16, array_words=4096),
    TaskGraphSpec("knapsack", branching=2, depth=10, leaf_work=190,
                  spawn_work=36, touches=2, array_words=1024),
    TaskGraphSpec("lu", branching=4, depth=5, leaf_work=500,
                  spawn_work=80, touches=12, array_words=4096),
    TaskGraphSpec("matmul", branching=8, depth=3, leaf_work=900,
                  spawn_work=100, touches=20, array_words=4096),
    TaskGraphSpec("plu", branching=4, depth=5, leaf_work=440,
                  spawn_work=70, touches=10, array_words=2048),
)


class CilkWorkload(Workload):
    """Work-stealing workload wrapper: one worker thread per core."""

    group = "cilk"
    spec: TaskGraphSpec = None  # set by the factory below

    def setup(self, machine: Machine) -> None:
        self.app = TaskGraphApp(self.spec, machine, self.scale)
        self.runtime = WorkStealingRuntime(
            machine.alloc, machine.params.num_cores
        )

        def worker(ctx):
            yield from self.runtime.worker_loop(ctx, self.app)

        machine.spawn_all(worker)

    def check(self, machine: Machine) -> None:
        executed = machine.stats.tasks_executed
        expected = self.app.total_tasks
        assert executed == expected, (
            f"{self.name}: {executed} tasks executed, expected {expected} "
            "(a mismatch means a lost or duplicated task — an SCV symptom)"
        )


def _make_cilk_class(spec: TaskGraphSpec):
    cls = type(
        f"Cilk_{spec.name}",
        (CilkWorkload,),
        {"name": spec.name, "spec": spec, "__doc__": CilkWorkload.__doc__},
    )
    return register(cls)


CILK_WORKLOADS = tuple(_make_cilk_class(spec) for spec in CILK_SPECS)
