"""Workload registry and runner.

Every evaluation workload (Table 3 of the paper) is a :class:`Workload`
subclass registered by name.  ``run_workload`` builds a machine for a
fence design, lets the workload allocate its simulated data and spawn
its threads, runs to completion (or a cycle budget for the
throughput-measured ustm group) and returns the stats.

Workload sizes scale with the ``scale`` argument (and the
``REPRO_SCALE`` environment variable) so tests can run tiny instances
while benchmarks run the full ones.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Type

from repro.common.params import FenceDesign, MachineParams
from repro.sim.machine import Machine, SimResult


def env_scale(default: float = 1.0) -> float:
    """Workload scale factor from $REPRO_SCALE (default 1.0)."""
    try:
        return float(os.environ.get("REPRO_SCALE", default))
    except ValueError:
        return default


@dataclass
class WorkloadRun:
    """One workload execution and its headline metrics."""

    name: str
    group: str
    design: FenceDesign
    num_cores: int
    result: SimResult
    # run provenance (trace/profile headers; defaults keep hand-built
    # WorkloadRun values in older tests valid)
    seed: int = 12345
    scale: float = 1.0
    kernel: str = "object"
    sanitize: str = "off"

    @property
    def stats(self):
        return self.result.stats

    @property
    def cycles(self) -> int:
        return self.result.cycles

    @property
    def throughput(self) -> float:
        """Committed transactions per mega-cycle (ustm metric)."""
        if not self.result.cycles:
            return 0.0
        return 1e6 * self.stats.txn_commits / self.result.cycles


class Workload:
    """Base class: subclasses define setup() and optionally the cycle
    budget (throughput-measured workloads run for a fixed time)."""

    #: registry key
    name: str = ""
    #: "cilk" | "ustm" | "stamp" | "micro"
    group: str = "micro"
    #: simulated-cycle budget; None = run to completion
    cycle_budget: Optional[int] = None

    def __init__(self, scale: float = 1.0):
        self.scale = scale

    def setup(self, machine: Machine) -> None:
        """Allocate simulated data and spawn one thread per core."""
        raise NotImplementedError

    def check(self, machine: Machine) -> None:
        """Optional post-run invariant checks (raise on violation)."""


REGISTRY: Dict[str, Type[Workload]] = {}


def register(cls: Type[Workload]) -> Type[Workload]:
    """Class decorator adding a workload to the registry."""
    assert cls.name, f"{cls.__name__} needs a name"
    assert cls.name not in REGISTRY, f"duplicate workload {cls.name}"
    REGISTRY[cls.name] = cls
    return cls


def workloads_in_group(group: str):
    return sorted(
        (cls for cls in REGISTRY.values() if cls.group == group),
        key=lambda cls: cls.name,
    )


def run_workload(
    name: str,
    design: FenceDesign,
    num_cores: int = 8,
    scale: float = 1.0,
    seed: int = 12345,
    params: Optional[MachineParams] = None,
    check: bool = False,
    obs=None,
    sanitize: Optional[str] = None,
    budget=None,
    kernel: Optional[str] = None,
) -> WorkloadRun:
    """Build, run and wrap one workload under one fence design.

    *obs* is an optional :class:`repro.obs.Observability` session; it is
    attached to the machine before the run so its tracer/metrics cover
    the whole execution.

    *sanitize* attaches a runtime protocol sanitizer in the given mode
    ("warn" | "strict" | "degrade"); None falls back to the
    ``REPRO_SANITIZE`` environment variable (so matrix subprocesses and
    CI inherit it), "off" disables it.  *budget* is an optional
    :class:`repro.sim.governor.RunBudget`; None falls back to the
    ``REPRO_MAX_*`` environment variables.
    """
    cls = REGISTRY[name]
    workload = cls(scale=scale)
    if params is None:
        params = MachineParams().with_cores(num_cores)
    params = params.with_design(design)
    machine = Machine(params, seed=seed, kernel=kernel)
    if obs is not None:
        obs.attach(machine)
    if sanitize is None:
        sanitize = os.environ.get("REPRO_SANITIZE", "off") or "off"
    if sanitize != "off":
        from repro.sanitizer import Sanitizer

        machine.attach_sanitizer(Sanitizer(mode=sanitize))
    if budget is None:
        from repro.sim.governor import RunBudget

        budget = RunBudget.from_env()
    workload.setup(machine)
    result = machine.run(max_cycles=workload.cycle_budget, budget=budget)
    if check:
        workload.check(machine)
    return WorkloadRun(
        name=name,
        group=cls.group,
        design=design,
        num_cores=num_cores,
        result=result,
        seed=seed,
        scale=scale,
        kernel=machine.kernel,
        sanitize=sanitize,
    )


def load_all_workloads() -> None:
    """Import every workload module so the registry is populated."""
    from repro.workloads import cilkapps, stamp, ustm  # noqa: F401


#: Rows of the paper's Table 3 (applications used in the evaluation).
TABLE3_ROWS = (
    ("Cilk Apps. (CilkApps)",
     "bucket, cholesky, cilksort, fft, fib, heat, knapsack, lu, matmul, plu"),
    ("STM Microbenchs. (ustm)",
     "Counter, DList, Forest, Hash, List, MCAS, ReadNWrite1, ReadWriteN, "
     "Tree, TreeOverwrite"),
    ("STAMP Apps.",
     "genome, intruder, kmeans, labyrinth, ssca2, vacation"),
)
