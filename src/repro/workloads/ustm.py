"""The ustm workload group: RSTM-style microbenchmarks on TLRW
(paper Table 3, evaluated in Figs 9/10).

Each microbenchmark is a concurrent data structure in simulated shared
memory plus a transaction mix — 50 % lookups, the rest split between
inserts and deletes (paper §6) — run for a fixed simulated time and
measured as committed transactions per cycle (throughput).

Structures are array-backed (node = a few consecutive words; index 0 is
null) with per-thread free pools pre-allocated at setup, since
allocating simulated memory mid-run would break replay determinism.
Every word is protected by a TLRW lock; the read barrier carries the
CRITICAL (wf) fence and the write/commit barriers the STANDARD (sf)
fences, exactly the paper's §4.2 recipe.
"""

from __future__ import annotations

from typing import List

from repro.core import isa as ops
from repro.sim.machine import Machine
from repro.stm.tlrw import TlrwStm
from repro.stm.txn import run_transactions
from repro.workloads.base import Workload, register

#: simulated-cycle budget for throughput measurement (× scale)
USTM_BUDGET = 120_000


class NodeHeap:
    """An array of fixed-size nodes with per-thread free pools."""

    def __init__(self, machine: Machine, stm: TlrwStm, node_words: int,
                 capacity: int, num_threads: int):
        self.node_words = node_words
        self.capacity = capacity
        self.word_bytes = machine.alloc.amap.word_bytes
        self.base = machine.alloc.alloc_line(node_words * capacity)
        stm.register_region(self.base, node_words * capacity)
        self._next_static = 1  # index 0 is the null pointer
        self._pool_start = capacity // 2
        self._pool_each = (capacity - self._pool_start) // num_threads

    def field(self, idx: int, f: int) -> int:
        return self.base + (idx * self.node_words + f) * self.word_bytes

    def take_static(self) -> int:
        """Allocate a node at setup time (structure initialization)."""
        idx = self._next_static
        self._next_static += 1
        assert idx < self._pool_start, "static heap region exhausted"
        return idx

    def pool_for(self, tid: int) -> List[int]:
        """A *fresh* copy of thread *tid*'s free-node pool.

        Thread code must take this copy inside the thread function (so
        a W+ rollback replay, which re-creates the generator, re-derives
        the pool state deterministically) and never share it.
        """
        start = self._pool_start + tid * self._pool_each
        return list(range(start, start + self._pool_each))


class _UstmWorkload(Workload):
    """Common scaffolding: budgeted run, mix driver, invariant hook."""

    group = "ustm"
    #: transactions each thread attempts (budget usually cuts first)
    txn_count = 4000
    think = 60

    def __init__(self, scale: float = 1.0):
        super().__init__(scale)
        self.cycle_budget = int(USTM_BUDGET * scale)

    def setup(self, machine: Machine) -> None:
        self.machine = machine
        n = machine.params.num_cores
        self.stm = TlrwStm(machine.alloc, n)
        self.build(machine)

        def thread(ctx):
            # (re)initialize per-thread mutable state here so a W+
            # rollback replay re-derives it deterministically.
            self.init_thread(ctx)
            yield from run_transactions(
                ctx, self.stm, self.make_body, self.txn_count,
                think_instructions=self.think,
            )

        machine.spawn_all(thread)

    # subclasses implement:
    def build(self, machine: Machine) -> None:
        raise NotImplementedError

    def init_thread(self, ctx) -> None:
        """Default: no per-thread scratch state."""

    def make_body(self, ctx, i: int):
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Counter — a single shared counter, increment transactions
# ---------------------------------------------------------------------------


@register
class Counter(_UstmWorkload):
    name = "Counter"
    think = 500

    def build(self, machine: Machine) -> None:
        self.counter = machine.alloc.word()
        self.stm.register_region(self.counter, 1)

    def make_body(self, ctx, i: int):
        counter = self.counter

        def body(txn):
            # read-for-write: a reader flag on the hottest word in the
            # system would only guarantee writer starvation
            v = yield from txn.read_for_write(counter)
            yield from txn.write(counter, v + 1)
        return body

    def check(self, machine: Machine) -> None:
        final = machine.image.peek(self.counter)
        commits = machine.stats.txn_commits
        # a budget-truncated run may leave, per core, one in-flight
        # eager (uncommitted) increment or one committed increment
        # still sitting in a write buffer
        slack = machine.params.num_cores
        assert commits - slack <= final <= commits + slack, (
            f"Counter: value {final} vs {commits} commits (lost update)"
        )


# ---------------------------------------------------------------------------
# List — sorted singly-linked list  (node = [key, value, next])
# ---------------------------------------------------------------------------


class _ListBase(_UstmWorkload):
    key_range = 96
    initial_keys = 12
    node_words = 3
    KEY, VAL, NXT = 0, 1, 2

    def build(self, machine: Machine) -> None:
        n = machine.params.num_cores
        self.heap = NodeHeap(machine, self.stm, self.node_words, 256, n)
        self.head = machine.alloc.word()
        self.stm.register_region(self.head, 1)
        # pre-populate with evenly spread keys, sorted
        prev = 0
        image = machine.image
        for k in range(0, self.key_range, self.key_range // self.initial_keys):
            idx = self.heap.take_static()
            image.poke(self.heap.field(idx, self.KEY), k)
            image.poke(self.heap.field(idx, self.VAL), k * 10)
            if prev == 0:
                image.poke(self.head, idx)
            else:
                image.poke(self.heap.field(prev, self.NXT), idx)
            self._link_static(image, prev, idx)
            prev = idx

    def _link_static(self, image, prev: int, idx: int) -> None:
        """Hook for subclasses with extra link fields (DList's prev)."""

    # --- transactional operations ------------------------------------

    def _find(self, txn, key: int):
        """Returns (prev_idx, idx) with idx the first node key >= key."""
        heap = self.heap
        prev = 0
        cur = yield from txn.read(self.head)
        while cur:
            k = yield from txn.read(heap.field(cur, self.KEY))
            if k >= key:
                break
            prev = cur
            cur = yield from txn.read(heap.field(cur, self.NXT))
        return prev, cur

    def lookup(self, txn, key: int):
        _prev, cur = yield from self._find(txn, key)
        if cur:
            k = yield from txn.read(self.heap.field(cur, self.KEY))
            if k == key:
                v = yield from txn.read(self.heap.field(cur, self.VAL))
                return v
        return None

    def insert(self, txn, key: int, pool: List[int]):
        heap = self.heap
        prev, cur = yield from self._find(txn, key)
        if cur:
            k = yield from txn.read(heap.field(cur, self.KEY))
            if k == key:
                yield from txn.write(heap.field(cur, self.VAL), key * 10)
                return False
        if not pool:
            return False
        node = pool[-1]  # consumed only on commit-bound path; see below
        yield from txn.write(heap.field(node, self.KEY), key)
        yield from txn.write(heap.field(node, self.VAL), key * 10)
        yield from txn.write(heap.field(node, self.NXT), cur)
        if prev:
            yield from txn.write(heap.field(prev, self.NXT), node)
        else:
            yield from txn.write(self.head, node)
        pool.pop()
        return True

    def delete(self, txn, key: int):
        heap = self.heap
        prev, cur = yield from self._find(txn, key)
        if not cur:
            return False
        k = yield from txn.read(heap.field(cur, self.KEY))
        if k != key:
            return False
        nxt = yield from txn.read(heap.field(cur, self.NXT))
        if prev:
            yield from txn.write(heap.field(prev, self.NXT), nxt)
        else:
            yield from txn.write(self.head, nxt)
        return True

    def init_thread(self, ctx) -> None:
        ctx.pool = self.heap.pool_for(ctx.tid)

    def make_body(self, ctx, i: int):
        roll = ctx.rng.random()
        key = ctx.rng.randrange(self.key_range)
        pool = ctx.pool

        def body(txn):
            if roll < 0.50:
                yield from self.lookup(txn, key)
            elif roll < 0.75:
                yield from self.insert(txn, key, pool)
            else:
                yield from self.delete(txn, key)
        return body


@register
class TxList(_ListBase):
    name = "List"


# ---------------------------------------------------------------------------
# DList — doubly-linked list  (node = [key, value, next, prev])
# ---------------------------------------------------------------------------


@register
class DList(_ListBase):
    name = "DList"
    node_words = 4
    PRV = 3

    def _link_static(self, image, prev: int, idx: int) -> None:
        image.poke(self.heap.field(idx, self.PRV), prev)

    def insert(self, txn, key: int, pool: List[int]):
        heap = self.heap
        prev, cur = yield from self._find(txn, key)
        if cur:
            k = yield from txn.read(heap.field(cur, self.KEY))
            if k == key:
                yield from txn.write(heap.field(cur, self.VAL), key * 10)
                return False
        if not pool:
            return False
        node = pool[-1]
        yield from txn.write(heap.field(node, self.KEY), key)
        yield from txn.write(heap.field(node, self.VAL), key * 10)
        yield from txn.write(heap.field(node, self.NXT), cur)
        yield from txn.write(heap.field(node, self.PRV), prev)
        if cur:
            yield from txn.write(heap.field(cur, self.PRV), node)
        if prev:
            yield from txn.write(heap.field(prev, self.NXT), node)
        else:
            yield from txn.write(self.head, node)
        pool.pop()
        return True

    def delete(self, txn, key: int):
        heap = self.heap
        prev, cur = yield from self._find(txn, key)
        if not cur:
            return False
        k = yield from txn.read(heap.field(cur, self.KEY))
        if k != key:
            return False
        nxt = yield from txn.read(heap.field(cur, self.NXT))
        if nxt:
            yield from txn.write(heap.field(nxt, self.PRV), prev)
        if prev:
            yield from txn.write(heap.field(prev, self.NXT), nxt)
        else:
            yield from txn.write(self.head, nxt)
        return True


# ---------------------------------------------------------------------------
# Hash — fixed buckets, short chains
# ---------------------------------------------------------------------------


@register
class Hash(_ListBase):
    name = "Hash"
    key_range = 128
    buckets = 16

    def build(self, machine: Machine) -> None:
        n = machine.params.num_cores
        self.heap = NodeHeap(machine, self.stm, self.node_words, 384, n)
        base = machine.alloc.alloc_line(self.buckets)
        self.stm.register_region(base, self.buckets)
        self.bucket_heads = machine.alloc.words_of(base, self.buckets)
        image = machine.image
        for k in range(0, self.key_range, 3):
            idx = self.heap.take_static()
            b = k % self.buckets
            image.poke(self.heap.field(idx, self.KEY), k)
            image.poke(self.heap.field(idx, self.VAL), k * 10)
            image.poke(self.heap.field(idx, self.NXT),
                       image.peek(self.bucket_heads[b]))
            image.poke(self.bucket_heads[b], idx)

    def _find_in_bucket(self, txn, key: int):
        heap = self.heap
        head = self.bucket_heads[key % self.buckets]
        prev_field = head
        cur = yield from txn.read(head)
        while cur:
            k = yield from txn.read(heap.field(cur, self.KEY))
            if k == key:
                return prev_field, cur
            prev_field = heap.field(cur, self.NXT)
            cur = yield from txn.read(prev_field)
        return prev_field, 0

    def init_thread(self, ctx) -> None:
        ctx.pool = self.heap.pool_for(ctx.tid)

    def make_body(self, ctx, i: int):
        roll = ctx.rng.random()
        key = ctx.rng.randrange(self.key_range)
        pool = ctx.pool
        heap = self.heap

        def body(txn):
            prev_field, cur = yield from self._find_in_bucket(txn, key)
            if roll < 0.50:     # lookup
                if cur:
                    yield from txn.read(heap.field(cur, self.VAL))
            elif roll < 0.75:   # insert (prepend if absent)
                if cur:
                    yield from txn.write(heap.field(cur, self.VAL), key)
                elif pool:
                    node = pool[-1]
                    head = self.bucket_heads[key % self.buckets]
                    old = yield from txn.read(head)
                    yield from txn.write(heap.field(node, self.KEY), key)
                    yield from txn.write(heap.field(node, self.VAL), key)
                    yield from txn.write(heap.field(node, self.NXT), old)
                    yield from txn.write(head, node)
                    pool.pop()
            else:               # delete
                if cur:
                    nxt = yield from txn.read(heap.field(cur, self.NXT))
                    yield from txn.write(prev_field, nxt)
        return body


# ---------------------------------------------------------------------------
# Tree — binary search tree  (node = [key, value, left, right])
# ---------------------------------------------------------------------------


class _TreeBase(_UstmWorkload):
    name = ""
    key_range = 128
    node_words = 4
    KEY, VAL, LEFT, RIGHT = 0, 1, 2, 3

    def build(self, machine: Machine) -> None:
        n = machine.params.num_cores
        self.heap = NodeHeap(machine, self.stm, self.node_words, 384, n)
        self.root = machine.alloc.word()
        self.stm.register_region(self.root, 1)
        image = machine.image
        # balanced initial tree over even keys
        keys = list(range(0, self.key_range, 4))

        def build_subtree(lo: int, hi: int) -> int:
            if lo > hi:
                return 0
            mid = (lo + hi) // 2
            idx = self.heap.take_static()
            image.poke(self.heap.field(idx, self.KEY), keys[mid])
            image.poke(self.heap.field(idx, self.VAL), keys[mid] * 10)
            image.poke(self.heap.field(idx, self.LEFT),
                       build_subtree(lo, mid - 1))
            image.poke(self.heap.field(idx, self.RIGHT),
                       build_subtree(mid + 1, hi))
            return idx

        image.poke(self.root, build_subtree(0, len(keys) - 1))

    def _descend(self, txn, key: int):
        """Returns (parent_link_field, idx) — idx 0 if absent."""
        heap = self.heap
        link = self.root
        cur = yield from txn.read(link)
        while cur:
            k = yield from txn.read(heap.field(cur, self.KEY))
            if k == key:
                return link, cur
            link = heap.field(cur, self.LEFT if key < k else self.RIGHT)
            cur = yield from txn.read(link)
        return link, 0

    def tree_lookup(self, txn, key: int):
        _link, cur = yield from self._descend(txn, key)
        if cur:
            v = yield from txn.read(self.heap.field(cur, self.VAL))
            return v
        return None

    def tree_insert(self, txn, key: int, pool: List[int]):
        heap = self.heap
        link, cur = yield from self._descend(txn, key)
        if cur:
            yield from txn.write(heap.field(cur, self.VAL), key * 10)
            return False
        if not pool:
            return False
        node = pool[-1]
        yield from txn.write(heap.field(node, self.KEY), key)
        yield from txn.write(heap.field(node, self.VAL), key * 10)
        yield from txn.write(heap.field(node, self.LEFT), 0)
        yield from txn.write(heap.field(node, self.RIGHT), 0)
        yield from txn.write(link, node)
        pool.pop()
        return True

    def tree_delete_leafish(self, txn, key: int):
        """Delete when the node has at most one child (else overwrite
        the value — keeps the structure code compact while preserving
        the read/write mix)."""
        heap = self.heap
        link, cur = yield from self._descend(txn, key)
        if not cur:
            return False
        left = yield from txn.read(heap.field(cur, self.LEFT))
        right = yield from txn.read(heap.field(cur, self.RIGHT))
        if left and right:
            yield from txn.write(heap.field(cur, self.VAL), 0)
            return False
        yield from txn.write(link, left or right)
        return True


@register
class Tree(_TreeBase):
    name = "Tree"

    def init_thread(self, ctx) -> None:
        ctx.pool = self.heap.pool_for(ctx.tid)

    def make_body(self, ctx, i: int):
        roll = ctx.rng.random()
        key = ctx.rng.randrange(self.key_range)
        pool = ctx.pool

        def body(txn):
            if roll < 0.50:
                yield from self.tree_lookup(txn, key)
            elif roll < 0.75:
                yield from self.tree_insert(txn, key, pool)
            else:
                yield from self.tree_delete_leafish(txn, key)
        return body


@register
class TreeOverwrite(_TreeBase):
    """Write-heavy tree: every transaction overwrites a node's value."""

    name = "TreeOverwrite"

    def make_body(self, ctx, i: int):
        key = ctx.rng.randrange(0, self.key_range, 4)  # existing keys

        def body(txn):
            link, cur = yield from self._descend(txn, key)
            if cur:
                v = yield from txn.read(self.heap.field(cur, self.VAL))
                yield from txn.write(self.heap.field(cur, self.VAL), v + 1)
        return body


# ---------------------------------------------------------------------------
# Forest — several small trees per transaction
# ---------------------------------------------------------------------------


@register
class Forest(_UstmWorkload):
    name = "Forest"
    num_trees = 4

    def build(self, machine: Machine) -> None:
        self.trees = []
        for t in range(self.num_trees):
            tree = _TreeBase(scale=self.scale)
            tree.stm = self.stm
            tree.key_range = 64
            tree.build(machine)
            self.trees.append(tree)

    def init_thread(self, ctx) -> None:
        ctx.pools = [t.heap.pool_for(ctx.tid) for t in self.trees]

    def make_body(self, ctx, i: int):
        picks = [
            (ctx.rng.randrange(self.num_trees),
             ctx.rng.randrange(64), ctx.rng.random())
            for _ in range(2)
        ]

        def body(txn):
            for which, key, roll in picks:
                tree = self.trees[which]
                if roll < 0.6:
                    yield from tree.tree_lookup(txn, key)
                else:
                    yield from tree.tree_insert(txn, key, ctx.pools[which])
        return body


# ---------------------------------------------------------------------------
# MCAS / ReadNWrite1 / ReadWriteN — flat-array access mixes
# ---------------------------------------------------------------------------


class _ArrayBase(_UstmWorkload):
    array_words = 256

    def build(self, machine: Machine) -> None:
        self.base = machine.alloc.alloc_line(self.array_words)
        self.stm.register_region(self.base, self.array_words)
        self.word_bytes = machine.alloc.amap.word_bytes

    def word(self, i: int) -> int:
        return self.base + (i % self.array_words) * self.word_bytes


@register
class MCAS(_ArrayBase):
    """Atomically swing N words (the classic multi-word CAS workload)."""

    name = "MCAS"
    n_words = 4

    def make_body(self, ctx, i: int):
        idxs = sorted(ctx.rng.sample(range(self.array_words), self.n_words))

        def body(txn):
            values = []
            for idx in idxs:
                v = yield from txn.read(self.word(idx))
                values.append(v)
            for idx, v in zip(idxs, values):
                yield from txn.write(self.word(idx), v + 1)
        return body


@register
class ReadNWrite1(_ArrayBase):
    """Read N random words, write one (read-dominated)."""

    name = "ReadNWrite1"
    n_reads = 8

    def make_body(self, ctx, i: int):
        idxs = [ctx.rng.randrange(self.array_words) for _ in range(self.n_reads)]

        def body(txn):
            acc = 0
            for idx in idxs:
                acc += yield from txn.read(self.word(idx))
            yield from txn.write(self.word(idxs[0]), acc & 0xFFFF)
        return body


@register
class ReadWriteN(_ArrayBase):
    """Read and write N random words (balanced mix)."""

    name = "ReadWriteN"
    n_ops = 4

    def make_body(self, ctx, i: int):
        idxs = sorted(ctx.rng.sample(range(self.array_words), self.n_ops))

        def body(txn):
            for idx in idxs:
                v = yield from txn.read(self.word(idx))
                yield from txn.write(self.word(idx), v + 1)
        return body
