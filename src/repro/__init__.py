"""repro — reproduction of *Asymmetric Memory Fences* (ASPLOS 2015).

A cycle-level multicore timing simulator (TSO cores, write buffers,
MESI directory coherence on a 2D mesh) implementing the paper's five
fence environments — S+, WS+, SW+, W+ and WeeFence — together with the
runtimes and workloads of its evaluation: Cilk-THE work stealing, the
TLRW software transactional memory, STAMP-style applications and
Lamport's Bakery algorithm.

Quickstart::

    from repro import Machine, MachineParams, FenceDesign, ops, FenceRole

    params = MachineParams(num_cores=2).with_design(FenceDesign.WS_PLUS)
    m = Machine(params)
    x, y = m.alloc.word(), m.alloc.word()

    def writer(ctx):
        yield ops.Store(x, 1)
        yield ops.Fence(FenceRole.CRITICAL)
        v = yield ops.Load(y)

    def reader(ctx):
        yield ops.Store(y, 1)
        yield ops.Fence(FenceRole.STANDARD)
        v = yield ops.Load(x)

    m.spawn(writer)
    m.spawn(reader)
    result = m.run()
"""

from repro.common.errors import (
    ConfigError,
    DeadlockError,
    ProtocolError,
    SCViolationError,
    SimulatorError,
)
from repro.common.params import (
    FenceDesign,
    FenceFlavour,
    FenceRole,
    MachineParams,
    flavour_for,
)
from repro.core import isa as ops
from repro.sim.machine import Machine, SimResult

__all__ = [
    "ConfigError",
    "DeadlockError",
    "FenceDesign",
    "FenceFlavour",
    "FenceRole",
    "Machine",
    "MachineParams",
    "ProtocolError",
    "SCViolationError",
    "SimResult",
    "SimulatorError",
    "flavour_for",
    "ops",
]

__version__ = "1.0.0"
