"""The sanitizer proper: invariant checks, cadence, escalation.

Checks run on two cadences:

* **sampling** — a self-rescheduling queue event (the MetricsCollector
  pump pattern) runs the full :meth:`Sanitizer.check_all` sweep every
  ``interval`` cycles;
* **on-transition** — cheap, targeted checks fire synchronously at the
  protocol's natural commit points: a directory transaction releasing
  its line, a PutM merging, an invalidation answered at an L1, a weak
  fence retiring/completing, a W+ recovery, a write-buffer push.

Everything the sanitizer reads is read **only**: cache lookups peek
(``touch=False``, no LRU movement), directory entries are taken from
``bank.entries`` directly (``dir_state()`` would *create* entries), and
busy lines — mid-transaction, legitimately inconsistent — are skipped.
Directory state is deliberately allowed to *over*-approximate the L1s
(silent clean evictions, keep-sharer writebacks and BS amplification
all leave stale directory presence by design), so the cross-checks only
run in the airtight direction: an L1-resident line must be tracked, and
a writable copy must be the registered owner.

Escalation: ``warn`` records violations and keeps going, ``strict``
raises :class:`~repro.common.errors.SanitizerError` at the first one,
``degrade`` records the first violation, stands down, and marks the run
degraded.  First-violation diagnostics reuse the watchdog's post-mortem
bundle format (PR 4) so the exact cycle, core and line land in the same
tooling, optionally as a ``sanitizer_*.json`` artifact in
``Machine.diag_dir``.
"""

from __future__ import annotations

import json
import os
import sys
from typing import List, Optional

from repro.common.errors import SanitizerError

#: default sampling cadence (cycles between full sweeps)
DEFAULT_INTERVAL = 5_000

#: any pending event this far in the future is structurally
#: undeliverable: legitimate latencies are bounded by small constants
#: (NoC jitter <= 40, retry backoff cap 256, watchdog interval 50k) —
#: only a dropped message (modeled as delivery at now + 10^9) or a
#: corrupted timestamp can sit a million cycles out.
EVENT_HORIZON = 1_000_000

#: escalation modes (the CLI exposes ``off`` by not attaching at all)
MODES = ("warn", "strict", "degrade")

#: violation-list cap: diagnostics want the first few, not a flood
MAX_VIOLATIONS = 64


def sanitizer_from_env(default: str = "off") -> Optional["Sanitizer"]:
    """A :class:`Sanitizer` per ``REPRO_SANITIZE``, or None for off."""
    mode = os.environ.get("REPRO_SANITIZE", default) or "off"
    if mode == "off":
        return None
    return Sanitizer(mode=mode)


class Sanitizer:
    """Structural-invariant checker for one :class:`Machine`."""

    def __init__(
        self,
        mode: str = "strict",
        interval: int = DEFAULT_INTERVAL,
        horizon: int = EVENT_HORIZON,
        max_violations: int = MAX_VIOLATIONS,
    ):
        if mode not in MODES:
            raise ValueError(
                f"unknown sanitizer mode {mode!r}; choose from {MODES}"
            )
        self.mode = mode
        self.interval = interval
        self.horizon = horizon
        self.max_violations = max_violations
        self.machine = None
        #: violation records (dicts with invariant/cycle/core/line/detail)
        self.violations: List[dict] = []
        #: violations beyond the cap (counted, not stored)
        self.dropped = 0
        #: full sweeps run / targeted transition checks run
        self.sweeps = 0
        self.transition_checks = 0
        #: ``degrade`` escalation tripped: checking stood down mid-run
        self.degraded = False
        #: first-violation bundle (watchdog format + violation record)
        self.first_diagnostics: Optional[dict] = None
        self.first_diagnostics_path: Optional[str] = None
        self._event = None
        self._stopped = False
        #: real-dispatch watermark at our previous tick (idle detection)
        self._last_work = None

    def bind(self, machine) -> "Sanitizer":
        self.machine = machine
        return self

    # ------------------------------------------------------------------
    # sampling pump (MetricsCollector pattern: stop before the quiesce
    # drain so the self-rescheduling event never extends the run)
    # ------------------------------------------------------------------

    def start(self) -> None:
        self._stopped = False
        self._last_work = None
        if not self.degraded:
            queue = self.machine.queue
            self._event = queue.schedule(self.interval, self._tick,
                                         "sanitizer")
            queue.mark_elastic(self._event)

    def stop(self) -> None:
        self._stopped = True
        if self._event is not None:
            self.machine.queue.cancel(self._event)
            self._event = None

    def _tick(self) -> None:
        self._event = None
        machine = self.machine
        machine.pump_ticks += 1
        if self._stopped or self.degraded:
            return
        reported_before = len(self.violations) + self.dropped
        self.check_all()
        if self.degraded:
            return  # a degrade-mode violation stood the pump down
        # quiescence fast-forward: when no non-pump event was dispatched
        # since our previous tick, machine state is frozen until the
        # next real event — a sweep per interval in between would
        # re-observe exactly what this sweep just saw (horizon
        # violations only *expire* as now advances).  Defer the next
        # tick across the idle window, in whole multiples of the
        # interval so the tick grid (and therefore every detection
        # cycle) matches a non-fast-forwarded run exactly.  A sweep
        # that reported anything keeps full cadence: warn mode
        # re-reports persistent violations per sweep, and those counts
        # must not depend on fast-forwarding.
        queue = machine.queue
        delay = self.interval
        if machine.fast_forward:
            work = queue.executed - machine.pump_ticks
            clean = len(self.violations) + self.dropped == reported_before
            if clean and work == self._last_work:
                horizon = queue.idle_horizon()
                if horizon is not None:
                    k = (horizon - queue.now) // self.interval
                    if k > 1:
                        delay = k * self.interval
            self._last_work = work
        self._event = queue.schedule(delay, self._tick, "sanitizer")
        queue.mark_elastic(self._event)

    def final_check(self) -> None:
        """One closing sweep over the (quiesced or cut-off) machine."""
        if not self.degraded:
            self.check_all()

    # ------------------------------------------------------------------
    # escalation
    # ------------------------------------------------------------------

    @property
    def first_violation(self) -> Optional[dict]:
        return self.violations[0] if self.violations else None

    def _report(self, invariant: str, core=None, line=None,
                detail: str = "") -> None:
        machine = self.machine
        cycle = machine.queue.now if machine is not None else 0
        violation = {
            "invariant": invariant,
            "cycle": cycle,
            "core": core,
            "line": line,
            "detail": detail,
        }
        first = not self.violations
        if len(self.violations) < self.max_violations:
            self.violations.append(violation)
        else:
            self.dropped += 1
        message = describe_violation(violation)
        if first and machine is not None:
            diagnostics = machine._watchdog.snapshot_diagnostics()
            diagnostics["violation"] = violation
            self.first_diagnostics = diagnostics
            self.first_diagnostics_path = self._write_artifact(diagnostics)
            if machine.tracer is not None:
                machine.tracer.sanitizer_violation(core, invariant, violation)
        if self.mode == "strict":
            raise SanitizerError(
                message,
                violation=violation,
                diagnostics=self.first_diagnostics,
                diagnostics_path=self.first_diagnostics_path,
            )
        if self.mode == "degrade":
            self.degraded = True
            if self._event is not None:
                machine.queue.cancel(self._event)
                self._event = None
        elif first:
            print(f"sanitizer: {message}", file=sys.stderr)

    def _write_artifact(self, diagnostics: dict) -> Optional[str]:
        machine = self.machine
        diag_dir = machine.diag_dir
        if not diag_dir:
            return None
        os.makedirs(diag_dir, exist_ok=True)
        design = machine.params.fence_design.value
        path = os.path.join(
            diag_dir,
            f"sanitizer_{design}_c{machine.queue.now}_s{machine.seed}.json",
        )
        with open(path, "w") as fh:
            json.dump(diagnostics, fh, indent=1, sort_keys=True)
        return path

    # ------------------------------------------------------------------
    # the full sweep
    # ------------------------------------------------------------------

    def check_all(self) -> None:
        """Run every invariant check once (sampling cadence)."""
        if self.degraded:
            return
        self.sweeps += 1
        machine = self.machine
        self._check_queue()
        for core in machine.cores:
            self._check_core(core)
        self._check_memory_system()

    # --- event queue ---------------------------------------------------

    def _check_queue(self) -> None:
        # backend-portable: peek_time()/pending_events() work identically
        # over the object kernel's Event heap and the flat kernel's
        # packed-integer heap — no _heap layout knowledge here.
        queue = self.machine.queue
        now = queue.now
        head = queue.peek_time()
        if head is None:
            return
        if head < now:
            self._report(
                "queue-time-monotonic",
                detail=f"pending event at t={head} behind now={now}",
            )
        horizon = now + self.horizon
        for t, label in queue.pending_events():
            if t > horizon:
                self._report(
                    "event-horizon",
                    detail=(
                        f"{label or 'event'} scheduled {t - now} cycles "
                        f"out (t={t}) — undeliverable, a lost message"
                    ),
                )
                break

    # --- per-core state ------------------------------------------------

    def _check_core(self, core) -> None:
        cid = core.core_id
        entries = core.wb._entries
        prev = None
        for i, e in enumerate(entries):
            if prev is not None and e.store_id <= prev.store_id:
                self._report(
                    "wb-fifo", core=cid, line=e.line,
                    detail=f"store id {e.store_id} after {prev.store_id}",
                )
            if i > 0 and e.issued:
                self._report(
                    "wb-issue-head", core=cid, line=e.line,
                    detail=f"non-head store {e.store_id} marked issued",
                )
            if e.bouncing and not e.issued:
                self._report(
                    "wb-issue-head", core=cid, line=e.line,
                    detail=f"store {e.store_id} bouncing but never issued",
                )
            prev = e
        if len(entries) > core.wb.capacity:
            self._report(
                "wb-overflow", core=cid,
                detail=f"{len(entries)} entries in a "
                       f"{core.wb.capacity}-entry buffer",
            )

        pfs = core.pending_fences
        prev_pf = None
        for pf in pfs:
            if prev_pf is not None and (
                    pf.fence_id <= prev_pf.fence_id
                    or pf.last_store_id < prev_pf.last_store_id):
                self._report(
                    "fence-retire-order", core=cid,
                    detail=(
                        f"fence {pf.fence_id} (last store "
                        f"{pf.last_store_id}) after fence "
                        f"{prev_pf.fence_id} ({prev_pf.last_store_id})"
                    ),
                )
            prev_pf = pf

        bs = core.bs
        if not bs.empty:
            if not pfs:
                line = next(iter(bs._entries))
                self._report(
                    "bs-outside-episode", core=cid, line=line,
                    detail=f"{len(bs)} BS line(s) with no incomplete wf",
                )
            else:
                lo, hi = pfs[0].fence_id, pfs[-1].fence_id
                for line, entry in bs._entries.items():
                    if not lo <= entry.fence_id <= hi:
                        self._report(
                            "bs-stale-tag", core=cid, line=line,
                            detail=(
                                f"entry tagged fence {entry.fence_id}, "
                                f"pending window [{lo}, {hi}]"
                            ),
                        )
                        break
        if bs.fine_grain != core.policy.fine_grain_bs:
            self._report(
                "bs-grain-mismatch", core=cid,
                detail=(
                    f"BS fine_grain={bs.fine_grain} but "
                    f"{core.policy.design.value} expects "
                    f"{core.policy.fine_grain_bs} (word-granularity BS "
                    f"is SW+ only)"
                ),
            )
        if core.recovering:
            # W+ recovery-drain completeness: the rollback cleared the
            # fences and the BS synchronously; only the pre-checkpoint
            # stores may still be draining.
            if pfs:
                self._report(
                    "recovery-drain", core=cid,
                    detail=f"{len(pfs)} pending fence(s) during recovery",
                )
            if not bs.empty:
                self._report(
                    "recovery-drain", core=cid,
                    detail=f"BS holds {len(bs)} line(s) during recovery",
                )
        for invariant, line, detail in core.policy.sanitizer_check():
            self._report(invariant, core=cid, line=line, detail=detail)

    # --- directory <-> L1 cross-checks ---------------------------------

    def _check_memory_system(self) -> None:
        machine = self.machine
        for bank in machine.banks:
            busy = bank._busy
            for line, entry in bank.entries.items():
                if line in busy:
                    continue
                if entry.owner is not None and entry.owner in entry.sharers:
                    self._report(
                        "dir-owner-in-sharers", core=entry.owner, line=line,
                        detail=f"bank {bank.bank_id}: owner also a sharer",
                    )
        banks = machine.banks
        amap = machine.amap
        for l1 in machine.l1s:
            cid = l1.core_id
            for line, state in l1.cache.lines():
                bank = banks[amap.home_bank(line)]
                if line in bank._busy:
                    continue  # mid-transaction: legitimately in flux
                self._check_line_presence(bank, line, cid, state)
        self._check_grt()

    def _check_line_presence(self, bank, line, cid, state) -> None:
        entry = bank.entries.get(line)
        if entry is None or (cid != entry.owner and cid not in entry.sharers):
            tracked = "nothing" if entry is None else (
                f"owner={entry.owner} sharers={sorted(entry.sharers)}"
            )
            self._report(
                "dir-lost-sharer", core=cid, line=line,
                detail=(
                    f"L1 holds {state.value} but bank {bank.bank_id} "
                    f"tracks {tracked}"
                ),
            )
        elif state.writable and entry.owner != cid:
            self._report(
                "dir-single-writer", core=cid, line=line,
                detail=(
                    f"L1 holds {state.value} but bank {bank.bank_id} "
                    f"registers owner={entry.owner}"
                ),
            )

    def _check_grt(self) -> None:
        """Wee GRT confinement: one deposit module per dynamic fence."""
        machine = self.machine
        if machine.params.wee_ideal:
            return  # the idealized ablation reads a global view
        seen = {}
        for bank in machine.banks:
            for key in bank.grt:
                if key in seen:
                    core, fence_id = key
                    self._report(
                        "grt-confinement", core=core,
                        detail=(
                            f"fence {fence_id} deposited at banks "
                            f"{seen[key]} and {bank.bank_id}"
                        ),
                    )
                else:
                    seen[key] = bank.bank_id

    # ------------------------------------------------------------------
    # on-transition hooks (targeted; called behind ``sanitizer is None``
    # guards at the protocol's commit points)
    # ------------------------------------------------------------------

    def on_core_transition(self, core) -> None:
        """A fence retired/completed or a recovery changed core state."""
        if self.degraded:
            return
        self.transition_checks += 1
        self._check_core(core)

    def on_recovery_resume(self, core) -> None:
        """A W+ recovery finished draining and the thread resumes."""
        if self.degraded:
            return
        self.transition_checks += 1
        if core.wb._entries:
            self._report(
                "recovery-drain", core=core.core_id,
                detail=(
                    f"{len(core.wb._entries)} store(s) still buffered at "
                    "recovery resume"
                ),
            )
        self._check_core(core)

    def on_dir_transition(self, bank, line) -> None:
        """A directory transaction released *line* (or a PutM merged)."""
        if self.degraded:
            return
        self.transition_checks += 1
        if line in bank._busy:
            return  # a waiter was promoted: state is in flux again
        entry = bank.entries.get(line)
        if entry is None:
            return
        if entry.owner is not None and entry.owner in entry.sharers:
            self._report(
                "dir-owner-in-sharers", core=entry.owner, line=line,
                detail=f"bank {bank.bank_id}: owner also a sharer",
            )
        for l1 in self.machine.l1s:
            state = l1.cache.lookup(line, touch=False)
            if state is not None:
                self._check_line_presence(bank, line, l1.core_id, state)

    def on_l1_inv(self, l1, line, keep_sharer: bool) -> None:
        """An invalidation was answered with ACK or KEEP_SHARER."""
        if self.degraded:
            return
        self.transition_checks += 1
        if l1.cache.lookup(line, touch=False) is not None:
            self._report(
                "inv-left-copy", core=l1.core_id, line=line,
                detail="cache still holds the line after invalidation",
            )
        if keep_sharer and not l1.bs.match_line(line):
            self._report(
                "inv-keep-sharer", core=l1.core_id, line=line,
                detail="KEEP_SHARER answered without a BS match",
            )

    def on_wb_push(self, wb) -> None:
        """A store was appended to a write buffer."""
        if self.degraded:
            return
        entries = wb._entries
        if len(entries) >= 2 and entries[-1].store_id <= entries[-2].store_id:
            self._report(
                "wb-fifo", core=wb.core_id, line=entries[-1].line,
                detail=(
                    f"pushed store id {entries[-1].store_id} after "
                    f"{entries[-2].store_id}"
                ),
            )
        if len(entries) > wb.capacity:
            self._report(
                "wb-overflow", core=wb.core_id, line=entries[-1].line,
                detail=f"{len(entries)} entries in a "
                       f"{wb.capacity}-entry buffer",
            )


def describe_violation(violation: dict) -> str:
    """One-line human rendering of a violation record."""
    parts = [f"{violation['invariant']} at cycle {violation['cycle']}"]
    if violation.get("core") is not None:
        parts.append(f"core {violation['core']}")
    if violation.get("line") is not None:
        parts.append(f"line {violation['line']:#x}")
    head = ", ".join(parts)
    detail = violation.get("detail")
    return f"{head}: {detail}" if detail else head
