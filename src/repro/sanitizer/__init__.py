"""Runtime protocol sanitizer (see ``docs/SANITIZER.md``).

Continuous in-flight validation of the structural invariants the
paper's fence designs depend on: directory sharer/owner lists vs the
actual L1 line states, single-writer MESI ownership, Bypass-Set
membership legality per design, write-buffer FIFO/retirement ordering,
event-queue time monotonicity, and W+ recovery-drain completeness.

Attach with :meth:`repro.sim.machine.Machine.attach_sanitizer`; every
hook site guards on a cached ``sanitizer is None`` (the same zero-cost
contract as the tracer and fault injector), so an unsanitized run
executes the exact golden instruction stream.
"""

from repro.common.errors import SanitizerError
from repro.sanitizer.core import (
    DEFAULT_INTERVAL,
    EVENT_HORIZON,
    MODES,
    Sanitizer,
    sanitizer_from_env,
)

__all__ = [
    "DEFAULT_INTERVAL",
    "EVENT_HORIZON",
    "MODES",
    "Sanitizer",
    "SanitizerError",
    "sanitizer_from_env",
]
