"""Sanitizer-overhead report (CI, report-only).

Modeled on :mod:`repro.obs.overhead` but deliberately *not* a hard
gate: the sanitized path is allowed to be slower — it exists to buy
confidence, not throughput.  This module times one pinned fig89 case
with the sanitizer **off** and again in **warn** mode (the checking
cadence without strict's raise), compares both against the committed
``BENCH_perf.json`` baseline, and reports the ratio so a sanitizer
change that silently blows up the checking cost is visible in CI.

Two things *are* asserted (they guard correctness, not speed):

* the sanitize-off stats must be bit-identical to the warn-mode stats
  (checks are read-only — a check that perturbs the run is a bug);
* the warn-mode run must record zero violations on a healthy machine
  (a false positive in the invariant catalog is a bug).

Run it the way CI does::

    python -m repro.sanitizer.overhead \
        --baseline benchmarks/perf/BENCH_perf.json \
        --out benchmarks/out/sanitizer_overhead.json --report-only
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import statistics
import sys
import time
from typing import Dict, List

from repro.common.params import MachineParams
from repro.perf.harness import (
    DEFAULT_SNAPSHOT_PATH,
    PROFILES,
    host_metadata,
    load_snapshot,
)
from repro.sanitizer import Sanitizer
from repro.workloads.base import REGISTRY, load_all_workloads

DEFAULT_CASE = "fib:S+:c8:s0.5:r12345"
DEFAULT_OUT = os.path.join("benchmarks", "out", "sanitizer_overhead.json")


def _find_case(key: str):
    for case in PROFILES["fig89"]:
        if case.key == key:
            return case
    known = ", ".join(c.key for c in PROFILES["fig89"])
    raise SystemExit(f"unknown fig89 case {key!r}; choose from: {known}")


def _run_once(case, sanitized: bool) -> Dict[str, object]:
    """One timed run (in-process, GC disabled around ``Machine.run``
    only, mirroring ``repro.perf.harness._time_case``)."""
    from repro.sim.machine import Machine

    cls = REGISTRY[case.workload]
    workload = cls(scale=case.scale)
    params = MachineParams().with_cores(case.cores).with_design(case.design)
    machine = Machine(params, seed=case.seed)
    sanitizer = None
    if sanitized:
        sanitizer = Sanitizer(mode="warn")
        machine.attach_sanitizer(sanitizer)
    workload.setup(machine)
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        machine.run(max_cycles=workload.cycle_budget)
        wall = time.perf_counter() - t0
    finally:
        if gc_was_enabled:
            gc.enable()
    return {
        "wall": wall,
        "stats": machine.stats.to_dict(),
        "violations": (len(sanitizer.violations) + sanitizer.dropped
                       if sanitizer is not None else 0),
        "sweeps": sanitizer.sweeps if sanitizer is not None else 0,
        "transition_checks": (sanitizer.transition_checks
                              if sanitizer is not None else 0),
    }


def run_check(
    baseline_path: str = DEFAULT_SNAPSHOT_PATH,
    case_key: str = DEFAULT_CASE,
    reps: int = 3,
) -> Dict[str, object]:
    """Time off vs warn (interleaved A/B) and build the report dict."""
    load_all_workloads()
    case = _find_case(case_key)
    baseline = load_snapshot(baseline_path)
    base_case = None
    if baseline is not None:
        base_case = next(
            (c for c in baseline.get("cases", []) if c["key"] == case_key),
            None,
        )
    base_median = base_case["median_s"] if base_case else None

    runs = {False: [], True: []}
    for _ in range(reps):
        for sanitized in (False, True):
            runs[sanitized].append(_run_once(case, sanitized))

    out = {}
    for sanitized, label in ((False, "off"), (True, "warn")):
        wall = [r["wall"] for r in runs[sanitized]]
        out[label] = {
            "reps": len(wall),
            "wall_s": [round(w, 6) for w in wall],
            "min_s": round(min(wall), 6),
            "median_s": round(statistics.median(wall), 6),
        }
    warn_last = runs[True][-1]
    out["warn"]["violations"] = warn_last["violations"]
    out["warn"]["sweeps"] = warn_last["sweeps"]
    out["warn"]["transition_checks"] = warn_last["transition_checks"]

    failures: List[str] = []
    if runs[False][-1]["stats"] != runs[True][-1]["stats"]:
        diff = [k for k, v in runs[False][-1]["stats"].items()
                if v != runs[True][-1]["stats"].get(k)]
        failures.append(
            f"sanitizer perturbed the simulation: stats differ in {diff}"
        )
    if warn_last["violations"]:
        failures.append(
            f"sanitizer reported {warn_last['violations']} violation(s) "
            "on a healthy machine (false positive in the catalog)"
        )

    off_min, warn_min = out["off"]["min_s"], out["warn"]["min_s"]
    return {
        "case": case_key,
        "baseline_path": baseline_path,
        "baseline_median_s": base_median,
        "off": out["off"],
        "warn": out["warn"],
        "sanitizer_overhead_x": (
            round(warn_min / off_min, 3) if off_min else None
        ),
        "off_vs_baseline_x": (
            round(off_min / base_median, 3) if base_median else None
        ),
        "host": host_metadata(),
        "failures": failures,
        "ok": not failures,
    }


def render_report(report: Dict[str, object]) -> str:
    lines = [f"sanitizer-overhead check: {report['case']} (report-only)"]
    base = report["baseline_median_s"]
    lines.append(
        f"  baseline (unsanitized) : {base:.4f}s median"
        if base is not None else "  baseline : MISSING"
    )
    lines.append(f"  sanitize off           : {report['off']['min_s']:.4f}s")
    lines.append(f"  sanitize warn          : {report['warn']['min_s']:.4f}s "
                 f"({report['warn']['sweeps']} sweeps, "
                 f"{report['warn']['transition_checks']} transition checks)")
    if report["sanitizer_overhead_x"]:
        lines.append(
            f"  sanitizer overhead     : "
            f"{report['sanitizer_overhead_x']:.2f}x (informational)"
        )
    if report["off_vs_baseline_x"]:
        lines.append(
            f"  off path vs baseline   : {report['off_vs_baseline_x']:.2f}x"
        )
    for failure in report["failures"]:
        lines.append(f"  FAIL: {failure}")
    lines.append("  verdict: " + ("OK" if report["ok"] else "FAILED"))
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitizer.overhead",
        description="report the runtime sanitizer's checking overhead",
    )
    parser.add_argument("--baseline", default=DEFAULT_SNAPSHOT_PATH)
    parser.add_argument("--case", default=DEFAULT_CASE,
                        help=f"fig89 case key (default {DEFAULT_CASE})")
    parser.add_argument("--reps", type=int, default=3,
                        help="interleaved off/warn rep pairs")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="write the JSON report here")
    parser.add_argument("--report-only", action="store_true",
                        help="print and save the report but always exit 0")
    args = parser.parse_args(argv)

    report = run_check(
        baseline_path=args.baseline,
        case_key=args.case,
        reps=args.reps,
    )
    print(render_report(report))
    if args.out:
        directory = os.path.dirname(args.out)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"report written to {args.out}")
    if args.report_only:
        return 0
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
