"""Per-core L1 cache controller.

Sits between the core (:mod:`repro.core.cpu`) and the directory banks.
Responsibilities:

* service loads (L1 hit or GetS transaction);
* drain write-buffer stores (L1 write hit, GetX/Upgrade, or the
  Order / Conditional-Order flavours once a store's O bit is set);
* perform atomic RMWs;
* answer incoming invalidations and downgrades, checking the Bypass Set
  **before** the cache (paper §3.2/§5.1) so a BS entry keeps bouncing or
  keeps the core a sharer even after the line was evicted;
* issue dirty writebacks on eviction, with the keep-sharer flag when the
  victim line is in the BS (§5.1).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.common.events import EventQueue
from repro.common.addr import AddressMap
from repro.common.params import MachineParams
from repro.common.stats import MachineStats
from repro.core.bypass_set import BypassSet
from repro.mem.cache import LineState, SetAssocCache
from repro.mem.memory import MemoryImage
from repro.mem.messages import Msg, Transaction
from repro.mem.noc import MeshNoc


class L1Controller:
    """One private L1 cache + its coherence endpoint."""

    def __init__(
        self,
        core_id: int,
        params: MachineParams,
        stats: MachineStats,
        noc: MeshNoc,
        image: MemoryImage,
        queue: EventQueue,
        fine_grain_bs: bool = False,
    ):
        self.core_id = core_id
        self.params = params
        self.stats = stats
        self.noc = noc
        self.image = image
        self.queue = queue
        self.amap = AddressMap(
            params.line_bytes,
            params.word_bytes,
            params.num_banks,
            params.bank_interleave_bytes,
        )
        self.cache = SetAssocCache(
            params.l1_size_bytes, params.l1_ways, params.line_bytes
        )
        self.bs = BypassSet(params.bs_entries, fine_grain=fine_grain_bs)
        # hot-path scalars lifted out of params/amap: every load and
        # every drained store goes through read()/issue_store().
        self._line_bytes = params.line_bytes
        self._hit_cycles = params.l1_hit_cycles
        self._interleave = self.amap.interleave_bytes
        self._num_banks = params.num_banks
        #: wired by the Machine: list of DirectoryBank, index = bank id
        self.banks: List = []
        #: core hook fired when this BS bounces an external request
        #: (feeds the W+ deadlock-suspicion monitor)
        self.on_bs_bounce: Optional[Callable[[], None]] = None
        #: SC-violation recorder (set by the Machine when tracking)
        self.recorder = None
        #: observability hook (set by Machine.attach_tracer)
        self.tracer = None
        #: fault-injection hook (set by Machine.attach_faults)
        self.faults = None
        #: protocol-sanitizer hook (set by Machine.attach_sanitizer)
        self.sanitizer = None
        #: cycle-attribution hook (set by Machine.attach_attrib)
        self.attrib = None
        # single-slot continuation state for the L1 hit fast paths.
        # The core is in-order: at most one outstanding load, one head
        # store (the drain engine is serialized by ``_drain_busy``) and
        # one RMW per core, and the three use disjoint slots — so the
        # hit-path completions can be pre-bound methods over instance
        # slots instead of a fresh closure per event (flat records).
        self._read_done: Optional[Callable[[bool], None]] = None
        self._st_entry = None
        self._st_done: Optional[Callable[[], None]] = None
        self._st_bounce: Optional[Callable[[], None]] = None
        self._rmw_word = 0
        self._rmw_po = 0
        self._rmw_apply: Optional[Callable[[int], int]] = None
        self._rmw_done: Optional[Callable[[int], None]] = None
        self._rmw_bounce: Optional[Callable[[], None]] = None
        self._cb_read_hit = self._read_hit_complete
        self._cb_write_hit = self._write_hit_complete
        self._cb_rmw_hit = self._rmw_hit_complete
        register = getattr(queue, "register_handler", None)
        if register is not None:
            for cb in (self._cb_read_hit, self._cb_write_hit,
                       self._cb_rmw_hit):
                register(cb)

    def _note_po(self, po: int) -> None:
        if self.recorder is not None:
            self.recorder.note_po(self.core_id, po)

    # ------------------------------------------------------------------
    # CPU-facing: loads
    # ------------------------------------------------------------------

    def read(self, addr: int, on_done: Callable[[bool], None]) -> None:
        """Perform a load.  ``on_done(was_hit)`` fires when performed.

        The caller reads the value from the memory image inside the
        callback (that instant is the load's performance point).
        """
        line = addr - (addr % self._line_bytes)
        state = self.cache.lookup(line)
        if state is not None:
            self.stats.l1_hits += 1
            self._read_done = on_done
            self.queue.schedule(
                self._hit_cycles, self._cb_read_hit, "l1.read_hit"
            )
            return
        self.stats.l1_misses += 1
        txn = Transaction(kind=Msg.GETS, requester=self.core_id, line=line)
        t0 = self.queue.now

        def done(reply: Msg, t: Transaction) -> None:
            state = LineState.E if t.granted_exclusive else LineState.S
            self._fill(line, state)
            if self.tracer is not None:
                self.tracer.l1_miss(self.core_id, line, "GetS", t0, "filled")
            if self.attrib is not None:
                self.attrib.l1_wait(self.core_id, line, self.queue.now - t0)
            on_done(False)

        txn.on_done = done
        self._send_request(txn)

    def _read_hit_complete(self) -> None:
        cb = self._read_done
        self._read_done = None
        cb(True)

    # ------------------------------------------------------------------
    # CPU-facing: stores (write-buffer drain engine calls this)
    # ------------------------------------------------------------------

    def issue_store(
        self,
        entry,  # mem.writebuffer.StoreEntry
        on_done: Callable[[], None],
        on_bounce: Callable[[], None],
    ) -> None:
        """Try to merge the head store with the memory system."""
        line = entry.line
        state = self.cache.lookup(line)
        if state is not None and state.writable:
            # local write hit: complete after the L1 access, re-checking
            # that ownership was not lost in flight.
            self.stats.l1_hits += 1
            self._st_entry = entry
            self._st_done = on_done
            self._st_bounce = on_bounce
            self.queue.schedule(
                self._hit_cycles, self._cb_write_hit, "l1.write_hit"
            )
            return

        self.stats.l1_misses += 1
        if entry.ordered and entry.word_mask:
            kind = Msg.COND_ORDER
        elif entry.ordered:
            kind = Msg.ORDER
        else:
            kind = Msg.GETX
        txn = Transaction(
            kind=kind,
            requester=self.core_id,
            line=line,
            word_mask=entry.word_mask,
            ordered=entry.ordered,
            is_retry=entry.retries > 0,
        )
        t0 = self.queue.now

        def done(reply: Msg, t: Transaction) -> None:
            if reply is Msg.NACK_BOUNCE:
                if self.tracer is not None:
                    self.tracer.l1_miss(
                        self.core_id, line, t.kind.value, t0, "bounced"
                    )
                if self.attrib is not None:
                    self.attrib.l1_wait(self.core_id, line,
                                        self.queue.now - t0)
                on_bounce()
                return
            if t.kind in (Msg.ORDER, Msg.COND_ORDER):
                # requester ends with the line Shared; the update is
                # merged at memory (§3.3.1).
                self._fill(line, LineState.S)
            else:
                self._fill(line, LineState.M)
            if self.tracer is not None:
                self.tracer.l1_miss(
                    self.core_id, line, t.kind.value, t0, "merged"
                )
            if self.attrib is not None:
                self.attrib.l1_wait(self.core_id, line, self.queue.now - t0)
            self._note_po(entry.po)
            self.image.write(entry.word, entry.value, self.core_id)
            on_done()

        txn.on_done = done
        self._send_request(txn)

    def _write_hit_complete(self) -> None:
        entry, on_done, on_bounce = self._st_entry, self._st_done, self._st_bounce
        self._st_entry = self._st_done = self._st_bounce = None
        line = entry.line
        cur = self.cache.lookup(line)
        if cur is not None and cur.writable:
            self.cache.set_state(line, LineState.M)
            self._note_po(entry.po)
            self.image.write(entry.word, entry.value, self.core_id)
            on_done()
        else:
            # ownership was lost in flight: take the miss path
            self.issue_store(entry, on_done, on_bounce)

    # ------------------------------------------------------------------
    # CPU-facing: atomic read-modify-write
    # ------------------------------------------------------------------

    def issue_rmw(
        self,
        word: int,
        apply_fn: Callable[[int], int],
        on_done: Callable[[int], None],
        on_bounce: Callable[[], None],
        po: int = 0,
    ) -> None:
        """Acquire write permission, then atomically update the image."""
        line = self.amap.line_of(word)
        state = self.cache.lookup(line)
        if state is not None and state.writable:
            self.stats.l1_hits += 1
            self._rmw_word = word
            self._rmw_po = po
            self._rmw_apply = apply_fn
            self._rmw_done = on_done
            self._rmw_bounce = on_bounce
            self.queue.schedule(
                self.params.l1_hit_cycles, self._cb_rmw_hit, "l1.rmw_hit"
            )
            return

        self.stats.l1_misses += 1
        txn = Transaction(kind=Msg.GETX, requester=self.core_id, line=line)
        t0 = self.queue.now

        def done(reply: Msg, t: Transaction) -> None:
            if reply is Msg.NACK_BOUNCE:
                if self.tracer is not None:
                    self.tracer.l1_miss(
                        self.core_id, line, "GetX", t0, "bounced"
                    )
                if self.attrib is not None:
                    self.attrib.l1_wait(self.core_id, line,
                                        self.queue.now - t0)
                on_bounce()
                return
            self._fill(line, LineState.M)
            if self.tracer is not None:
                self.tracer.l1_miss(self.core_id, line, "GetX", t0, "merged")
            if self.attrib is not None:
                self.attrib.l1_wait(self.core_id, line, self.queue.now - t0)
            self._note_po(po)
            old, _new = self.image.rmw(word, apply_fn, self.core_id)
            on_done(old)

        txn.on_done = done
        self._send_request(txn)

    def _rmw_hit_complete(self) -> None:
        word, po = self._rmw_word, self._rmw_po
        apply_fn, on_done, on_bounce = (
            self._rmw_apply, self._rmw_done, self._rmw_bounce
        )
        self._rmw_apply = self._rmw_done = self._rmw_bounce = None
        cur = self.cache.lookup(self.amap.line_of(word))
        if cur is not None and cur.writable:
            self.cache.set_state(self.amap.line_of(word), LineState.M)
            self._note_po(po)
            old, _new = self.image.rmw(word, apply_fn, self.core_id)
            on_done(old)
        else:
            self.issue_rmw(word, apply_fn, on_done, on_bounce, po)

    # ------------------------------------------------------------------
    # network-facing: coherence requests arriving at this core
    # ------------------------------------------------------------------

    def handle_inv(self, txn: Transaction):
        """Answer an invalidation.  Returns (resp, was_dirty, true_sharing).

        BS checked before the cache; line-granularity comparison
        (paper §3.2 and Fig. 4a: word-granularity matching would miss
        false-sharing cycles and be incorrect).
        """
        line = txn.line
        if self.bs.match_line(line):
            if not txn.ordered:
                self.bs.note_bounce()
                if self.on_bs_bounce is not None:
                    self.on_bs_bounce()
                return Msg.INV_BOUNCE, False, False
            true_sharing = self.bs.true_sharing(line, txn.word_mask)
            state = self.cache.invalidate(line)
            if self.sanitizer is not None:
                self.sanitizer.on_l1_inv(self, line, keep_sharer=True)
            return Msg.INV_KEEP_SHARER, state is LineState.M, true_sharing
        if (self.faults is not None and not txn.ordered
                and self.faults.bs_amplify(self.core_id, line)):
            # adversarial amplification: answer as if the BS held the
            # line (writer's whole transaction fails and retries) but
            # leave the cache and the real BS untouched.  Ordered
            # requests are never amplified — their non-bounceability is
            # WS+/SW+'s forward-progress guarantee.
            return Msg.INV_BOUNCE, False, False
        state = self.cache.invalidate(line)
        if self.sanitizer is not None:
            self.sanitizer.on_l1_inv(self, line, keep_sharer=False)
        return Msg.INV_ACK, state is LineState.M, False

    def handle_downgrade(self, line: int) -> bool:
        """M/E -> S for a remote read.  Never bounced (§5.1): a
        downgrade does not hurt the BS's ability to watch future writes.
        Returns True if dirty data is flushed."""
        state = self.cache.lookup(line, touch=False)
        if state is None:
            return False
        self.cache.set_state(line, LineState.S)
        return state is LineState.M

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _send_request(self, txn: Transaction) -> None:
        # amap.home_bank inlined (block-interleaved home mapping)
        bank_id = (txn.line // self._interleave) % self._num_banks
        bank = self.banks[bank_id]
        lat = self.noc.send_cost(self.core_id, bank_id, txn.kind, retry=txn.is_retry)
        self.queue.schedule(lat, lambda: bank.receive(txn), "l1.request")

    def _fill(self, line: int, state: LineState) -> None:
        evicted = self.cache.insert(line, state)
        if evicted is None:
            return
        victim_line, victim_state = evicted
        self.stats.l1_evictions += 1
        if victim_state is LineState.M:
            self._writeback(victim_line)
        # clean evictions are silent: the directory still lists us as a
        # sharer/owner, which also preserves BS monitoring for free.

    def _writeback(self, victim_line: int) -> None:
        keep = {self.core_id} if self.bs.match_line(victim_line) else None
        if self.tracer is not None:
            self.tracer.writeback(self.core_id, victim_line, keep is not None)
        txn = Transaction(
            kind=Msg.PUTM,
            requester=self.core_id,
            line=victim_line,
            keep_sharers=keep,
        )
        bank_id = self.amap.home_bank(victim_line)
        bank = self.banks[bank_id]
        lat = self.noc.send_cost(self.core_id, bank_id, Msg.PUTM)
        self.queue.schedule(lat, lambda: bank.receive(txn), "l1.putm")

    # --- WeeFence GRT access ------------------------------------------

    def grt_deposit(
        self,
        bank_id: int,
        fence_id: int,
        lines,
        on_done: Callable[[set], None],
        global_view: bool = False,
    ) -> None:
        """Deposit one fence's PS at *bank_id*'s GRT; deliver the
        remote PS back to the core.

        ``global_view`` models the idealized (unimplementable) WeeFence
        of the ``wee_ideal`` ablation: the reply atomically reflects
        every directory module's GRT, not just the deposit module's.
        """
        bank = self.banks[bank_id]
        lat_out = self.noc.send_cost(self.core_id, bank_id, Msg.GRT_DEPOSIT)
        if self.tracer is not None:
            t0 = self.queue.now
            inner_done = on_done

            def on_done(remote, _inner=inner_done, _t0=t0):
                self.tracer.grt_deposit(
                    self.core_id, bank_id, len(lines), _t0
                )
                _inner(remote)

        def deposit():
            remote = bank.grt_deposit(self.core_id, fence_id, set(lines))
            if global_view:
                for other in self.banks:
                    if other is not bank:
                        for (core, _fid), ps in other.grt.items():
                            if core != self.core_id:
                                remote |= ps
            lat_back = self.noc.send_cost(bank_id, self.core_id, Msg.GRT_DEPOSIT)
            self.queue.schedule(lat_back, lambda: on_done(remote), "l1.grt_reply")

        self.queue.schedule(lat_out, deposit, "l1.grt_deposit")

    def grt_withdraw(self, bank_id: int, fence_id: int) -> None:
        bank = self.banks[bank_id]
        lat = self.noc.send_cost(self.core_id, bank_id, Msg.GRT_WITHDRAW)
        self.queue.schedule(
            lat,
            lambda: bank.grt_withdraw(self.core_id, fence_id),
            "l1.grt_withdraw",
        )
