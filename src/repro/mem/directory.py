"""Full-map MESI directory banks with the paper's fence extensions.

One bank per tile (paper Table 2: "a portion of the directory" per
core).  Lines are home-mapped to banks by line interleaving.  Each bank
serializes coherence transactions per line (a line with a transaction in
flight is *busy*; later requests wait in FIFO order), which is what
makes the value/timing split of this simulator race-free.

Extensions over vanilla MESI, all from the paper:

* **Bounce** — an invalidation that hits a remote Bypass Set with the
  O bit clear is refused; the whole write transaction fails with
  ``NACK_BOUNCE`` and the writer retries (§2.2, Fig. 2/3).
* **Order** — an O-bit write invalidates all sharers but *keeps* the
  BS-matching ones as directory sharers, merges the update, and leaves
  the requester in Shared state (§3.3.1, WS+).
* **Conditional Order** — like Order but fails (and retries) while any
  BS match is true-sharing at word granularity (§3.3.2, SW+).
* **Writeback-keep-sharer** — a dirty eviction of a line that is in the
  evictor's BS keeps the evictor as a sharer so it continues to observe
  future writes (§5.1).
* **GRT module** — WeeFence's Global Reorder Table slice: pending-set
  deposit/withdraw and remote-PS collection (§2.2, Wee baseline).

The shared L2 bank is modeled as an LRU presence set deciding whether a
data fill comes from the bank (11-cycle RT) or off-chip (200-cycle RT).
Values never live here — see :mod:`repro.mem.memory`.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.common.errors import ProtocolError
from repro.common.events import EventQueue
from repro.common.params import MachineParams
from repro.common.stats import MachineStats
from repro.mem.messages import Msg, Transaction
from repro.mem.noc import MeshNoc


@dataclass
class DirEntry:
    """Directory state for one line: exclusive owner XOR sharer set."""

    owner: Optional[int] = None
    sharers: Set[int] = field(default_factory=set)

    def caching_cores(self) -> Set[int]:
        cores = set(self.sharers)
        if self.owner is not None:
            cores.add(self.owner)
        return cores


class DirectoryBank:
    """One directory + L2 bank tile."""

    def __init__(
        self,
        bank_id: int,
        params: MachineParams,
        stats: MachineStats,
        noc: MeshNoc,
        queue: EventQueue,
    ):
        self.bank_id = bank_id
        self.params = params
        self.stats = stats
        self.noc = noc
        self.queue = queue
        self.entries: Dict[int, DirEntry] = {}
        self._busy: Dict[int, Transaction] = {}
        self._waiting: Dict[int, deque] = {}
        #: L2 presence (LRU): line -> True
        self._l2: "OrderedDict[int, bool]" = OrderedDict()
        self._l2_capacity = max(
            1, params.l2_bank_size_bytes // params.line_bytes
        )
        # off-chip fetch cost through the single memory port (tile 0):
        # fixed per bank, so fold the NoC round trip once here instead
        # of recomputing it on every L2 miss.
        self._mem_fetch_cycles = (
            2 * noc.latency(bank_id, MeshNoc.MEMORY_NODE, Msg.GETS)
            + params.memory_cycles
        )
        #: WeeFence GRT slice: (core, fence_id) -> pending-set lines.
        #: Keyed per dynamic fence — a core can have several fences in
        #: flight (TSO back-to-back barriers) and each deposit must
        #: survive until exactly its own fence completes.
        self.grt: Dict[tuple, Set[int]] = {}
        #: wired by the Machine: list of L1 controllers, index = core id
        self.controllers: List = []
        #: observability hook (set by Machine.attach_tracer)
        self.tracer = None
        #: fault-injection hook (set by Machine.attach_faults)
        self.faults = None
        #: protocol-sanitizer hook (set by Machine.attach_sanitizer)
        self.sanitizer = None

    # ------------------------------------------------------------------
    # request entry points
    # ------------------------------------------------------------------

    def receive(self, txn: Transaction) -> None:
        """A request message has arrived at this bank."""
        self.stats.coherence_transactions += 1
        if txn.kind is Msg.PUTM:
            if self.tracer is not None:
                self.tracer.dir_putm(self.bank_id, txn.line, txn.requester)
            self._receive_putm(txn)
            return
        if self.tracer is not None:
            # the span opens at arrival, so per-line FIFO queueing time
            # is part of the transaction's timeline
            self.tracer.dir_begin(
                self.bank_id, txn.txn_id, txn.kind.value, txn.line,
                txn.requester,
            )
        if txn.line in self._busy:
            self._waiting.setdefault(txn.line, deque()).append(txn)
            return
        self._busy[txn.line] = txn
        self.queue.schedule(
            self.params.l2_hit_cycles, lambda: self._begin(txn), "dir.begin"
        )

    def _receive_putm(self, txn: Transaction) -> None:
        """Dirty-eviction writeback (fire-and-forget from the evictor)."""
        # PutM does not contend for the busy slot: it carries no
        # permission change other than clearing ownership, and a stale
        # PutM (ownership already moved) is simply dropped.
        entry = self.entries.get(txn.line)
        if entry is None or entry.owner != txn.requester:
            return  # stale writeback, ownership already transferred
        entry.owner = None
        self._l2_fill(txn.line)
        self.stats.dirty_writebacks += 1
        if txn.keep_sharers:
            # §5.1: the evictor's BS still watches this line — keep it a
            # sharer so it sees (and can bounce) future writes.
            entry.sharers |= txn.keep_sharers
            self.stats.bs_keep_sharer += len(txn.keep_sharers)
        if self.sanitizer is not None:
            self.sanitizer.on_dir_transition(self, txn.line)

    # ------------------------------------------------------------------
    # transaction processing
    # ------------------------------------------------------------------

    def _entry(self, line: int) -> DirEntry:
        entry = self.entries.get(line)
        if entry is None:
            entry = self.entries[line] = DirEntry()
        return entry

    def _begin(self, txn: Transaction) -> None:
        entry = self._entry(txn.line)
        if txn.kind is Msg.GETS:
            self._begin_gets(txn, entry)
        elif txn.kind in (Msg.GETX, Msg.ORDER, Msg.COND_ORDER):
            if self.faults is not None and self.faults.dir_nack(
                    self.bank_id, txn.line, txn.requester, txn.kind.value):
                # transient resource NACK before any sharer is touched:
                # the requester retries (with backoff under faults).
                # GetS is never NACKed — loads have no retry path.
                self._reply(txn, Msg.NACK_BOUNCE)
                return
            self._begin_getx(txn, entry)
        else:  # pragma: no cover - defensive
            raise ProtocolError(f"bank cannot begin {txn.kind}")

    # --- reads -----------------------------------------------------------

    def _begin_gets(self, txn: Transaction, entry: DirEntry) -> None:
        if entry.owner == txn.requester:
            # the requester silently evicted its clean-exclusive copy
            entry.owner = None
        if entry.owner is not None:
            owner = entry.owner
            lat_out = self.noc.send_cost(self.bank_id, owner, Msg.DOWNGRADE)

            def deliver():
                was_dirty = self.controllers[owner].handle_downgrade(txn.line)
                resp = Msg.WB_DATA if was_dirty else Msg.INV_ACK
                lat_back = self.noc.send_cost(owner, self.bank_id, resp)
                self.queue.schedule(
                    lat_back,
                    lambda: self._downgrade_done(txn, owner, was_dirty),
                    "dir.downgrade_done",
                )

            self.queue.schedule(lat_out, deliver, "dir.downgrade")
            return
        self._grant(txn)

    def _downgrade_done(self, txn: Transaction, owner: int, was_dirty: bool) -> None:
        entry = self._entry(txn.line)
        if entry.owner == owner:
            entry.owner = None
            entry.sharers.add(owner)
        if was_dirty:
            self._l2_fill(txn.line)
        self._grant(txn)

    # --- writes ------------------------------------------------------------

    def _begin_getx(self, txn: Transaction, entry: DirEntry) -> None:
        txn.requester_was_sharer = txn.requester in entry.sharers \
            or entry.owner == txn.requester
        targets = entry.caching_cores() - {txn.requester}
        if not targets:
            self._resolve_getx(txn)
            return
        txn.pending_acks = len(targets)
        txn.keep_sharers = set()
        for target in sorted(targets):
            self._send_inv(txn, target)

    def _send_inv(self, txn: Transaction, target: int) -> None:
        lat_out = self.noc.send_cost(
            self.bank_id, target, Msg.INV, retry=txn.is_retry
        )

        def deliver():
            resp, was_dirty, true_sharing = self.controllers[target].handle_inv(txn)
            resp_msg = Msg.WB_DATA if was_dirty else resp
            lat_back = self.noc.send_cost(
                target, self.bank_id, resp_msg, retry=txn.is_retry
            )
            self.queue.schedule(
                lat_back,
                lambda: self._inv_response(txn, target, resp, was_dirty, true_sharing),
                "dir.inv_resp",
            )

        self.queue.schedule(lat_out, deliver, "dir.inv")

    def _inv_response(
        self,
        txn: Transaction,
        target: int,
        resp: Msg,
        was_dirty: bool,
        true_sharing: bool,
    ) -> None:
        entry = self._entry(txn.line)
        if was_dirty:
            self._l2_fill(txn.line)
            self.stats.dirty_writebacks += 1
        if resp is Msg.INV_ACK:
            entry.sharers.discard(target)
            if entry.owner == target:
                entry.owner = None
        elif resp is Msg.INV_BOUNCE:
            txn.bounced = True
            # the target keeps its copy and its directory presence
        elif resp is Msg.INV_KEEP_SHARER:
            # cache copy invalidated, but the BS keeps watching: the
            # directory keeps the target as a sharer (§3.3.1).
            if entry.owner == target:
                entry.owner = None
            entry.sharers.add(target)
            txn.keep_sharers.add(target)
            self.stats.bs_keep_sharer += 1
            if true_sharing:
                txn.true_sharing_seen = True
        else:  # pragma: no cover - defensive
            raise ProtocolError(f"unexpected inv response {resp}")
        txn.pending_acks -= 1
        if txn.pending_acks == 0:
            self._resolve_getx(txn)

    def _resolve_getx(self, txn: Transaction) -> None:
        if txn.kind is Msg.GETX and txn.bounced:
            self.stats.bounces += 1
            if self.tracer is not None:
                self.tracer.dir_bounce(self.bank_id, txn.line, txn.requester)
            self._reply(txn, Msg.NACK_BOUNCE)
            return
        if txn.kind is Msg.COND_ORDER and txn.true_sharing_seen:
            # CO failure: caches were invalidated, BS holders remain
            # sharers, the update is discarded; the requester retries.
            self.stats.cond_order_failures += 1
            if self.tracer is not None:
                self.tracer.dir_co_fail(self.bank_id, txn.line, txn.requester)
            self._reply(txn, Msg.NACK_BOUNCE)
            return
        self._grant(txn)

    # --- completion -----------------------------------------------------------

    def _grant(self, txn: Transaction) -> None:
        entry = self._entry(txn.line)
        data_latency = 0
        needs_data = True
        if txn.kind is Msg.GETS:
            if not entry.sharers and entry.owner is None:
                entry.owner = txn.requester  # MESI Exclusive grant
                txn.granted_exclusive = True
            else:
                entry.sharers.add(txn.requester)
                txn.granted_exclusive = False
            data_latency = self._data_source_latency(txn.line)
        elif txn.kind is Msg.GETX:
            needs_data = not txn.requester_was_sharer
            if needs_data:
                data_latency = self._data_source_latency(txn.line)
            entry.owner = txn.requester
            entry.sharers.clear()
        else:  # Order / CondOrder success
            if txn.kind is Msg.ORDER:
                self.stats.order_ops += 1
            else:
                self.stats.cond_order_ops += 1
            if self.tracer is not None:
                self.tracer.dir_order(
                    self.bank_id, txn.line, txn.requester,
                    txn.kind is Msg.COND_ORDER,
                )
            # update merged at memory; everyone who kept a BS match stays
            # a sharer, the requester holds the line Shared (§3.3.1).
            entry.owner = None
            entry.sharers = set(txn.keep_sharers or ())
            entry.sharers.add(txn.requester)
            needs_data = not txn.requester_was_sharer
            if needs_data:
                data_latency = self._data_source_latency(txn.line)
        reply = Msg.DATA if needs_data else Msg.ACK
        self._reply(txn, reply, extra_latency=data_latency)

    def _reply(self, txn: Transaction, kind: Msg, extra_latency: int = 0) -> None:
        lat = self.noc.send_cost(
            self.bank_id, txn.requester, kind, retry=txn.is_retry
        )
        done = txn.on_done

        def finish():
            # The line stays busy until the requester has processed the
            # reply (its MSHR completes): releasing earlier lets a later
            # request observe directory state ahead of the requester's
            # cache fill — a protocol race.
            if self.tracer is not None:
                self.tracer.dir_end(self.bank_id, txn.txn_id, kind.value)
            done(kind, txn)
            self._release(txn.line)

        self.queue.schedule(extra_latency + lat, finish, "dir.reply")

    def _release(self, line: int) -> None:
        self._busy.pop(line, None)
        if self.sanitizer is not None:
            # the transaction just committed and the line is (briefly)
            # not busy: the natural instant to cross-check its entry.
            self.sanitizer.on_dir_transition(self, line)
        waiting = self._waiting.get(line)
        if waiting:
            nxt = waiting.popleft()
            if not waiting:
                del self._waiting[line]
            self._busy[line] = nxt
            self.queue.schedule(
                self.params.l2_hit_cycles, lambda: self._begin(nxt), "dir.begin"
            )

    # ------------------------------------------------------------------
    # L2 presence model
    # ------------------------------------------------------------------

    def _l2_fill(self, line: int) -> None:
        self._l2[line] = True
        self._l2.move_to_end(line)
        while len(self._l2) > self._l2_capacity:
            self._l2.popitem(last=False)

    def _data_source_latency(self, line: int) -> int:
        """Extra cycles to source the line beyond the dir access."""
        l2 = self._l2
        if line in l2:
            l2.move_to_end(line)
            return 0
        self._l2_fill(line)
        return self._mem_fetch_cycles

    # ------------------------------------------------------------------
    # WeeFence GRT slice
    # ------------------------------------------------------------------

    def grt_deposit(self, core: int, fence_id: int, lines: Set[int]) -> Set[int]:
        """Deposit one fence's pending set; returns the remote PS union."""
        self.grt[(core, fence_id)] = set(lines)
        remote: Set[int] = set()
        for (other, _fid), ps in self.grt.items():
            if other != core:
                remote |= ps
        return remote

    def grt_withdraw(self, core: int, fence_id: int) -> None:
        self.grt.pop((core, fence_id), None)

    # ------------------------------------------------------------------
    # introspection (tests / invariants)
    # ------------------------------------------------------------------

    def dir_state(self, line: int) -> DirEntry:
        return self._entry(line)

    @property
    def busy_lines(self) -> Set[int]:
        return set(self._busy)
