"""2D mesh network-on-chip latency and traffic model.

The paper's machine (Table 2) is a 2D mesh with 5 cycles/hop and
256-bit links.  We model message latency as ``hops * hop_cycles`` with
dimension-ordered (XY) routing distance, plus serialization cycles for
multi-flit (data) messages, and we account every byte for the Table-4
traffic columns.  Link contention is not queued (documented
approximation in DESIGN.md): fence behaviour in the paper is governed by
latency and occupancy, not NoC saturation, and its own traffic numbers
show the network far from saturated.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.common.params import MachineParams
from repro.common.stats import MachineStats
from repro.mem.messages import Msg, message_bytes


class MeshNoc:
    """Latency/traffic model for a square 2D mesh of tiles.

    Tiles 0..N-1 hold one core + one L2/directory bank each; an extra
    virtual node models the off-chip memory port attached to tile 0
    (paper: "connected to one network port").
    """

    #: node id used for the off-chip memory controller
    MEMORY_NODE = -1

    def __init__(self, params: MachineParams, stats: MachineStats):
        self.params = params
        self.stats = stats
        self.dim = max(1, math.isqrt(max(params.num_cores, params.num_banks) - 1) + 1) \
            if max(params.num_cores, params.num_banks) > 1 else 1
        # geometry and message sizes are fixed for the machine's
        # lifetime, so byte counts per kind are precomputed and
        # point-to-point latencies memoized — both sit on the
        # per-message hot path of every coherence transaction.  The
        # tables are lists indexed by ``Msg.idx`` and the latency memo
        # key is a flat int, so no enum member is ever hashed here.
        self._bytes = [
            message_bytes(kind, params.line_bytes) for kind in Msg
        ]
        link = params.link_bytes
        self._ser_cycles = [
            max(1, -(-nbytes // link)) - 1  # (flits - 1)
            for nbytes in self._bytes
        ]
        self._latency_cache: dict = {}
        #: observability hook (set by Machine.attach_tracer)
        self.tracer = None
        #: fault-injection hook (set by Machine.attach_faults)
        self.faults = None

    def coords(self, node: int) -> Tuple[int, int]:
        """XY coordinates of a tile (memory port sits at tile 0)."""
        if node == self.MEMORY_NODE:
            node = 0
        return node % self.dim, node // self.dim

    def hops(self, src: int, dst: int) -> int:
        """Manhattan (XY-routed) hop count between two tiles."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    def latency(self, src: int, dst: int, kind: Msg) -> int:
        """Cycles for a message of *kind* from *src* to *dst*."""
        # flat int key (node ids are tiny; +1 shifts MEMORY_NODE to 0)
        key = (src + 1) * 262144 + (dst + 1) * 64 + kind.idx
        lat = self._latency_cache.get(key)
        if lat is None:
            hop_lat = max(1, self.hops(src, dst)) * self.params.mesh_hop_cycles
            lat = self._latency_cache[key] = hop_lat + self._ser_cycles[kind.idx]
        return lat

    def account(self, kind: Msg, retry: bool = False) -> int:
        """Record the traffic of one message; returns its byte size."""
        nbytes = self._bytes[kind.idx]
        stats = self.stats
        stats.network_bytes += nbytes
        if retry:
            stats.retry_bytes += nbytes
        return nbytes

    def send_cost(self, src: int, dst: int, kind: Msg, retry: bool = False) -> int:
        """Account traffic and return the delivery latency in cycles."""
        idx = kind.idx
        nbytes = self._bytes[idx]
        stats = self.stats
        stats.network_bytes += nbytes
        if retry:
            stats.retry_bytes += nbytes
        key = (src + 1) * 262144 + (dst + 1) * 64 + idx
        cache = self._latency_cache
        lat = cache.get(key)
        if lat is None:
            hop_lat = max(1, self.hops(src, dst)) * self.params.mesh_hop_cycles
            lat = cache[key] = hop_lat + self._ser_cycles[idx]
        if self.faults is not None:
            # delay jitter / drops perturb this delivery only — the
            # memoized base latency above stays clean
            extra = self.faults.noc_perturb(src, dst, kind.value)
            if extra:
                lat = lat + extra
        if self.tracer is not None:
            self.tracer.noc_msg(src, dst, kind.value, nbytes, lat, retry)
        return lat
