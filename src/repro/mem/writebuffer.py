"""TSO write buffer (store buffer).

Under TSO (paper §2.1) retired stores sit in a FIFO write buffer and
merge with the memory system **one at a time**, in order.  Loads of the
same core forward from the newest matching entry.  A store entry whose
coherence transaction keeps being bounced by a remote Bypass Set stays
at the head and retries (paper Fig. 3); the Order / Conditional-Order
promotions flip its ``ordered`` flag.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

_store_ids = itertools.count(1)


class StoreEntry:
    """One retired store waiting to merge with the memory system.

    A ``__slots__`` class — one is allocated per simulated store, so it
    sits on the hot path.
    """

    __slots__ = ("word", "value", "line", "issued", "bouncing", "retries",
                 "ordered", "word_mask", "po", "store_id")

    def __init__(self, word: int, value: int, line: int):
        self.word = word
        self.value = value
        self.line = line
        #: set by the drain engine while a coherence transaction is in flight
        self.issued = False
        #: currently in bounced-retry state (hit a remote BS)
        self.bouncing = False
        #: number of retries so far for this store
        self.retries = 0
        #: O bit — promote the next retry to an Order request (WS+)
        self.ordered = False
        #: word bitmask for Conditional Order requests (SW+); 0 = plain
        self.word_mask = 0
        #: program-order index of the store in its thread (SCV recorder)
        self.po = 0
        self.store_id = next(_store_ids)


class WriteBuffer:
    """FIFO store buffer with forwarding and head-drain bookkeeping."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._entries: List[StoreEntry] = []
        #: observability (set by Machine.attach_tracer): occupancy
        #: counter samples on push/pop, zero-cost when ``tracer is None``
        self.tracer = None
        self.core_id = 0
        #: protocol-sanitizer hook (set by Machine.attach_sanitizer):
        #: FIFO/overflow check on push, zero-cost when None
        self.sanitizer = None
        #: cycle-attribution hook (set by Machine.attach_attrib):
        #: peak-occupancy metadata on push, zero-cost when None
        self.attrib = None

    # --- occupancy -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    # --- enqueue / dequeue ----------------------------------------------

    def push(self, word: int, value: int, line: int) -> StoreEntry:
        """Append a retired store.  The caller must check ``full`` first
        and stall the core on overflow — push never checks."""
        entry = StoreEntry(word, value, line)
        self._entries.append(entry)
        if self.tracer is not None:
            self.tracer.wb_depth(self.core_id, len(self._entries))
        if self.sanitizer is not None:
            self.sanitizer.on_wb_push(self)
        if self.attrib is not None:
            self.attrib.wb_push(self.core_id, len(self._entries))
        return entry

    def head(self) -> Optional[StoreEntry]:
        return self._entries[0] if self._entries else None

    def pop_head(self) -> StoreEntry:
        """Remove the completed head store."""
        entry = self._entries.pop(0)
        if self.tracer is not None:
            self.tracer.wb_depth(self.core_id, len(self._entries))
        return entry

    # --- TSO forwarding ---------------------------------------------------

    def forward(self, word: int) -> Optional[int]:
        """Value of the newest buffered store to *word*, if any."""
        entry = self.forward_entry(word)
        return entry.value if entry is not None else None

    def forward_entry(self, word: int) -> Optional[StoreEntry]:
        """Newest buffered entry to *word* (the forwarding source), if
        any — callers that record dependences need the entry's po."""
        if not self._entries:
            return None
        for entry in reversed(self._entries):
            if entry.word == word:
                return entry
        return None

    def has_word(self, word: int) -> bool:
        return any(e.word == word for e in self._entries)

    # --- fence support ------------------------------------------------------

    def newest_store_id(self) -> int:
        """Id of the youngest buffered store (0 if empty).

        A fence's pre-fence stores are exactly the entries present when
        the fence retires; the fence completes when the entry with this
        id (and hence, FIFO order, all older ones) has merged.
        """
        return self._entries[-1].store_id if self._entries else 0

    def contains_id(self, store_id: int) -> bool:
        return any(e.store_id == store_id for e in self._entries)

    def entries_upto(self, store_id: int) -> List[StoreEntry]:
        """All buffered entries with id <= *store_id* (the pre-fence set)."""
        return [e for e in self._entries if e.store_id <= store_id]

    def mark_ordered_upto(self, store_id: int, word_mask_fn=None) -> int:
        """Set the O bit on bouncing pre-fence entries (paper §3.3.1).

        With *word_mask_fn*, also fill the CO word mask (paper §3.3.2).
        Returns the number of entries promoted.
        """
        promoted = 0
        for entry in self._entries:
            if entry.store_id > store_id:
                break
            if entry.bouncing and not entry.ordered:
                entry.ordered = True
                if word_mask_fn is not None:
                    entry.word_mask = word_mask_fn(entry.word)
                promoted += 1
        return promoted

    def drop_after(self, store_id: int) -> int:
        """Discard entries younger than *store_id* (W+ rollback).

        Only the head entry ever has a coherence transaction in flight,
        and the head is pre-fence whenever a fence is incomplete, so the
        dropped (post-fence) entries have never merged — discarding them
        is exactly the squash of unperformed post-checkpoint stores.
        Returns the number of entries dropped.
        """
        keep = [e for e in self._entries if e.store_id <= store_id]
        dropped = len(self._entries) - len(keep)
        if dropped:
            assert not any(e.issued for e in self._entries[len(keep):]), \
                "cannot squash an issued store"
            self._entries = keep
        return dropped

    def any_bouncing(self) -> bool:
        return any(e.bouncing for e in self._entries)

    def clear(self) -> List[StoreEntry]:
        """Drop all entries (only valid in tests/recovery paths that
        know the entries have not merged)."""
        entries, self._entries = self._entries, []
        return entries

    def snapshot(self) -> List[StoreEntry]:
        return list(self._entries)
