"""The coherent global memory image.

The simulator separates *timing* (caches, directory, NoC) from *values*.
Values live in one flat word-addressed image representing the coherent
state of the memory system.  A store's value is merged into the image at
the instant its coherence transaction grants write permission — that is
the TSO "performed / globally visible" point.  Until then the value is
only visible to its own core through write-buffer forwarding.

This split is what makes sequential-consistency violations *real* in
this simulator: a post-weak-fence load genuinely reads the image before
the pre-fence stores of its own core have merged, so a broken fence
implementation produces genuinely non-SC outcomes (and the litmus tests
catch them).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

#: Identity of a write, used by the dependence recorder: (core, serial).
WriteTag = Tuple[int, int]

#: The initial value of untouched memory and its pseudo-writer tag.
INIT_TAG: WriteTag = (-1, 0)


class MemoryImage:
    """Flat word-addressed memory with last-writer metadata."""

    def __init__(self):
        self._words: Dict[int, int] = {}
        self._writers: Dict[int, WriteTag] = {}
        self._serial = 0
        #: optional hook called as (kind, core, word, value, tag) on
        #: every globally-visible access; the SCV recorder installs one.
        self.observer: Optional[Callable[[str, int, int, int, WriteTag], None]] = None

    def read(self, word_addr: int, core: int = -1) -> int:
        """Read the coherent value of *word_addr* (0 if never written)."""
        value = self._words.get(word_addr, 0)
        if self.observer is not None:
            tag = self._writers.get(word_addr, INIT_TAG)
            self.observer("load", core, word_addr, value, tag)
        return value

    def write(self, word_addr: int, value: int, core: int = -1) -> WriteTag:
        """Merge a store into the image; returns this write's tag."""
        self._serial += 1
        tag = (core, self._serial)
        self._words[word_addr] = value
        self._writers[word_addr] = tag
        if self.observer is not None:
            self.observer("store", core, word_addr, value, tag)
        return tag

    def rmw(self, word_addr: int, fn: Callable[[int], int], core: int = -1) -> Tuple[int, int]:
        """Atomic read-modify-write; returns (old, new) values.

        Atomicity holds because the directory serializes ownership of a
        line and the image update happens inside one simulation event.
        """
        old = self.read(word_addr, core)
        new = fn(old)
        self.write(word_addr, new, core)
        return old, new

    def last_writer(self, word_addr: int) -> WriteTag:
        return self._writers.get(word_addr, INIT_TAG)

    def peek(self, word_addr: int) -> int:
        """Read without notifying the observer (for debugging/tests)."""
        return self._words.get(word_addr, 0)

    def poke(self, word_addr: int, value: int) -> None:
        """Write without coherence (for initialization in tests)."""
        self._words[word_addr] = value

    def __len__(self) -> int:
        return len(self._words)
