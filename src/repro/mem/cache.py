"""Set-associative tag store with LRU replacement.

Only tags and MESI states are stored — data values live in the global
:class:`~repro.mem.memory.MemoryImage` (see that module's docstring for
why).  Used for the private L1s; the shared L2 is modeled as
latency-only backing behind the directory banks, which is where the
paper's fence mechanisms live.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigError


class LineState(enum.Enum):
    """MESI stable states (I is represented by absence from the set)."""

    M = "M"
    E = "E"
    S = "S"

    @property
    def writable(self) -> bool:
        return self in (LineState.M, LineState.E)


class SetAssocCache:
    """An LRU set-associative cache of line states.

    ``sets[i]`` is an OrderedDict mapping line address -> LineState with
    LRU order (oldest first).
    """

    def __init__(self, size_bytes: int, ways: int, line_bytes: int):
        if size_bytes % (ways * line_bytes):
            raise ConfigError("cache size must divide into ways*line_bytes")
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (ways * line_bytes)
        self.sets: List["OrderedDict[int, LineState]"] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        # when geometry is power-of-two (the usual case), index with a
        # shift+mask instead of a big-int divide+modulo
        if (line_bytes & (line_bytes - 1)) == 0 and \
                (self.num_sets & (self.num_sets - 1)) == 0:
            self._line_shift: Optional[int] = line_bytes.bit_length() - 1
            self._set_mask = self.num_sets - 1
        else:
            self._line_shift = None
            self._set_mask = 0

    def _set_of(self, line: int) -> "OrderedDict[int, LineState]":
        if self._line_shift is not None:
            return self.sets[(line >> self._line_shift) & self._set_mask]
        return self.sets[(line // self.line_bytes) % self.num_sets]

    def lookup(self, line: int, touch: bool = True) -> Optional[LineState]:
        """State of *line* if present (updates LRU unless touch=False)."""
        # _set_of inlined: lookup() runs once per load in the core's
        # fast path, so the extra call is measurable.
        shift = self._line_shift
        if shift is not None:
            s = self.sets[(line >> shift) & self._set_mask]
        else:
            s = self.sets[(line // self.line_bytes) % self.num_sets]
        state = s.get(line)
        if state is not None and touch:
            s.move_to_end(line)
        return state

    def set_state(self, line: int, state: LineState) -> None:
        """Set/insert *line* with *state* (no eviction — use insert())."""
        shift = self._line_shift
        if shift is not None:
            s = self.sets[(line >> shift) & self._set_mask]
        else:
            s = self.sets[(line // self.line_bytes) % self.num_sets]
        s[line] = state
        s.move_to_end(line)

    def invalidate(self, line: int) -> Optional[LineState]:
        """Remove *line*; returns its previous state (None if absent)."""
        shift = self._line_shift
        if shift is not None:
            s = self.sets[(line >> shift) & self._set_mask]
        else:
            s = self.sets[(line // self.line_bytes) % self.num_sets]
        return s.pop(line, None)

    def victim(self, line: int) -> Optional[Tuple[int, LineState]]:
        """The (line, state) that inserting *line* would evict, or None."""
        s = self._set_of(line)
        if line in s or len(s) < self.ways:
            return None
        victim_line = next(iter(s))
        return victim_line, s[victim_line]

    def insert(self, line: int, state: LineState) -> Optional[Tuple[int, LineState]]:
        """Insert *line*, evicting LRU if the set is full.

        Returns the evicted (line, state) or None.  The caller is
        responsible for issuing the writeback of a dirty victim.
        """
        shift = self._line_shift
        if shift is not None:
            s = self.sets[(line >> shift) & self._set_mask]
        else:
            s = self.sets[(line // self.line_bytes) % self.num_sets]
        evicted = None
        if line not in s and len(s) >= self.ways:
            victim_line, victim_state = s.popitem(last=False)
            evicted = (victim_line, victim_state)
        s[line] = state
        s.move_to_end(line)
        return evicted

    def occupancy(self) -> int:
        return sum(len(s) for s in self.sets)

    def lines(self):
        """Iterate over all (line, state) pairs (for tests/invariants)."""
        for s in self.sets:
            yield from s.items()
