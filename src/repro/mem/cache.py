"""Set-associative tag store with LRU replacement.

Only tags and MESI states are stored — data values live in the global
:class:`~repro.mem.memory.MemoryImage` (see that module's docstring for
why).  Used for the private L1s; the shared L2 is modeled as
latency-only backing behind the directory banks, which is where the
paper's fence mechanisms live.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigError


class LineState(enum.Enum):
    """MESI stable states (I is represented by absence from the set)."""

    M = "M"
    E = "E"
    S = "S"

    @property
    def writable(self) -> bool:
        return self in (LineState.M, LineState.E)


class SetAssocCache:
    """An LRU set-associative cache of line states.

    ``sets[i]`` is an OrderedDict mapping line address -> LineState with
    LRU order (oldest first).
    """

    def __init__(self, size_bytes: int, ways: int, line_bytes: int):
        if size_bytes % (ways * line_bytes):
            raise ConfigError("cache size must divide into ways*line_bytes")
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (ways * line_bytes)
        self.sets: List["OrderedDict[int, LineState]"] = [
            OrderedDict() for _ in range(self.num_sets)
        ]

    def _set_of(self, line: int) -> "OrderedDict[int, LineState]":
        return self.sets[(line // self.line_bytes) % self.num_sets]

    def lookup(self, line: int, touch: bool = True) -> Optional[LineState]:
        """State of *line* if present (updates LRU unless touch=False)."""
        s = self._set_of(line)
        state = s.get(line)
        if state is not None and touch:
            s.move_to_end(line)
        return state

    def set_state(self, line: int, state: LineState) -> None:
        """Set/insert *line* with *state* (no eviction — use insert())."""
        s = self._set_of(line)
        s[line] = state
        s.move_to_end(line)

    def invalidate(self, line: int) -> Optional[LineState]:
        """Remove *line*; returns its previous state (None if absent)."""
        return self._set_of(line).pop(line, None)

    def victim(self, line: int) -> Optional[Tuple[int, LineState]]:
        """The (line, state) that inserting *line* would evict, or None."""
        s = self._set_of(line)
        if line in s or len(s) < self.ways:
            return None
        victim_line = next(iter(s))
        return victim_line, s[victim_line]

    def insert(self, line: int, state: LineState) -> Optional[Tuple[int, LineState]]:
        """Insert *line*, evicting LRU if the set is full.

        Returns the evicted (line, state) or None.  The caller is
        responsible for issuing the writeback of a dirty victim.
        """
        s = self._set_of(line)
        evicted = None
        if line not in s and len(s) >= self.ways:
            victim_line, victim_state = s.popitem(last=False)
            evicted = (victim_line, victim_state)
        s[line] = state
        s.move_to_end(line)
        return evicted

    def occupancy(self) -> int:
        return sum(len(s) for s in self.sets)

    def lines(self):
        """Iterate over all (line, state) pairs (for tests/invariants)."""
        for s in self.sets:
            yield from s.items()
