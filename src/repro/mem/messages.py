"""Coherence message vocabulary and wire sizes.

The directory protocol exchanges these message kinds.  Sizes follow the
usual convention: a control message is one header flit; a data message
carries a cache line.  Order/Conditional-Order requests additionally
carry the write's data word(s) and, for CO, a word bitmask (paper
§3.3.1–§3.3.2), which we charge as one extra word.
"""

from __future__ import annotations

import enum
import itertools
from typing import Optional


class Msg(enum.Enum):
    # requests (core -> directory)
    GETS = "GetS"              # read miss
    GETX = "GetX"              # write miss / upgrade
    ORDER = "Order"            # GetX with O-bit set (WS+)
    COND_ORDER = "CondOrder"   # GetX with O-bit + word mask (SW+)
    PUTM = "PutM"              # dirty eviction writeback
    GRT_DEPOSIT = "GrtDeposit"     # WeeFence PS deposit
    GRT_WITHDRAW = "GrtWithdraw"   # WeeFence PS removal at fence completion

    # directory -> core
    DATA = "Data"              # line data reply
    ACK = "Ack"                # permission granted, no data needed
    NACK_BOUNCE = "NackBounce" # transaction rejected by a remote BS
    NACK_BUSY = "NackBusy"     # line transaction in flight, retry
    INV = "Inv"                # invalidate request to a sharer
    DOWNGRADE = "Downgrade"    # M -> S request to the owner

    # core -> directory (responses to Inv/Downgrade)
    INV_ACK = "InvAck"
    INV_BOUNCE = "InvBounce"       # BS match with O=0: refuse
    INV_KEEP_SHARER = "InvKeepSharer"  # BS match with O=1: keep me a sharer
    WB_DATA = "WbData"             # dirty data flushed on Inv/Downgrade


# dense per-member index so hot lookup tables (NoC byte counts,
# serialization cycles, latency memos) can be lists indexed by
# ``kind.idx`` instead of dicts hashing the enum member.
for _i, _m in enumerate(Msg):
    _m.idx = _i
del _i, _m


#: header-only messages cost one flit (8 bytes of header), data messages
#: cost header + line.  The paper's links are 256-bit (32B).
HEADER_BYTES = 8


def message_bytes(kind: Msg, line_bytes: int) -> int:
    """Bytes a message of *kind* puts on the network."""
    if kind in (Msg.DATA, Msg.WB_DATA, Msg.PUTM):
        return HEADER_BYTES + line_bytes
    if kind in (Msg.ORDER, Msg.COND_ORDER):
        # carries the update word(s) + (for CO) the word bitmask
        return HEADER_BYTES + 8
    if kind in (Msg.GRT_DEPOSIT, Msg.GRT_WITHDRAW):
        # carries the pending-set addresses (signature-compressed)
        return HEADER_BYTES + 8
    return HEADER_BYTES


_txn_ids = itertools.count(1)


class Transaction:
    """One coherence transaction in flight at the directory.

    The directory serializes transactions per line: while one is in
    flight the line is *busy* and later requests wait in a FIFO.

    A plain ``__slots__`` class (one is allocated per coherence
    transaction, a simulation hot path): no dict, cheap attribute
    access, same keyword constructor a dataclass would generate.
    """

    __slots__ = (
        "kind", "requester", "line", "word_mask", "ordered", "is_retry",
        "txn_id", "pending_acks", "bounced", "keep_sharers",
        "true_sharing_seen", "requester_was_sharer", "granted_exclusive",
        "on_done",
    )

    def __init__(
        self,
        kind: Msg,
        requester: int,
        line: int,
        word_mask: int = 0,
        ordered: bool = False,
        is_retry: bool = False,
        txn_id: Optional[int] = None,
        pending_acks: int = 0,
        bounced: bool = False,
        keep_sharers: Optional[set] = None,
        true_sharing_seen: bool = False,
        requester_was_sharer: bool = False,
        granted_exclusive: bool = False,
        on_done: Optional[object] = None,
    ):
        self.kind = kind
        self.requester = requester
        self.line = line
        #: word bitmask being written (CO requests; 0 otherwise)
        self.word_mask = word_mask
        #: True if this request's O bit is set (Order / CondOrder)
        self.ordered = ordered
        #: is this a retry of a previously bounced request?
        self.is_retry = is_retry
        self.txn_id = next(_txn_ids) if txn_id is None else txn_id
        # bookkeeping while invalidations are outstanding
        self.pending_acks = pending_acks
        self.bounced = bounced
        #: cores to keep as sharers (BS matches on Order/CO; the evictor
        #: on a keep-sharer PutM)
        self.keep_sharers = keep_sharers
        self.true_sharing_seen = true_sharing_seen
        #: did the requester hold an S copy when processing began?
        self.requester_was_sharer = requester_was_sharer
        #: GetS answered with an Exclusive grant
        self.granted_exclusive = granted_exclusive
        #: completion callback, called as on_done(reply_kind, txn)
        self.on_done = on_done

    def __repr__(self):  # pragma: no cover - debugging aid
        return (f"<Txn#{self.txn_id} {self.kind.value} P{self.requester} "
                f"line={self.line:#x}>")
