"""Fault plans: the declarative description of one injection campaign.

A :class:`FaultPlan` is (scenario name, seed, knobs).  The knobs are
rates, magnitudes and budgets for the four injector families wired into
the machine:

* **NoC delay/jitter** — extra delivery cycles on a fraction of
  messages.  Because every message is an independently scheduled event,
  a bounded extra delay also yields bounded reordering between messages
  in flight (a message can be overtaken by at most the jitter window).
* **Directory NACKs** — a transient resource NACK for write-class
  transactions (GetX / Order / Conditional-Order) before the bank
  touches any sharer state; the requester retries with capped
  exponential backoff.  GetS is never NACKed (loads have no retry path
  and real directories sink reads).
* **BS-hit amplification** — a non-ordered invalidation is answered
  ``INV_BOUNCE`` as if the target's Bypass Set held the line, forcing
  the writer's whole transaction to fail and retry.  Ordered (Order/CO)
  requests are never amplified: their non-bounceability is the
  forward-progress guarantee of WS+/SW+ (§3.3.1) and faking a bounce
  there would be protocol-*illegal*.
* **W+ timeout perturbation** — the deadlock-suspicion timeout is
  scaled (shrunken: recovery storms; inflated: long stalls before
  recovery).

Every legal knob is budget- or magnitude-bounded so the perturbed
machine still guarantees forward progress; the one deliberately broken
scenario (``illegal_drop``) effectively loses messages and is expected
to be caught by the chaos oracles (and shrunk by ddmin).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Tuple

#: "latency" of a dropped message: far beyond any run's horizon, so the
#: delivery event never fires inside the verify cycle cap — the message
#: is lost for every observable purpose (the illegal scenario).
DROP_CYCLES = 10 ** 9


@dataclass(frozen=True)
class FaultPlan:
    """One injection campaign: scenario + seed + knobs.

    Replaying the exact same faults needs only ``(scenario, seed)`` —
    the injector derives every decision from them deterministically.
    """

    scenario: str
    seed: int

    # --- NoC delay / jitter (bounded reordering) ---------------------
    #: fraction of messages receiving extra delivery latency
    noc_delay_rate: float = 0.0
    #: max extra cycles per delayed message (also the reorder bound)
    noc_delay_max_cycles: int = 0
    #: fraction of messages dropped — protocol-ILLEGAL, only for the
    #: broken scenario the chaos oracles must catch
    noc_drop_rate: float = 0.0
    #: cap on total dropped messages
    noc_drop_budget: int = 0

    # --- transient directory NACKs -----------------------------------
    #: fraction of write-class transactions NACKed at the bank
    dir_nack_rate: float = 0.0
    #: cap on total injected NACKs (guarantees forward progress)
    dir_nack_budget: int = 0

    # --- retry backoff shaping (degradation response) ----------------
    #: when > 0, a bounced store's retry delay becomes
    #: ``min(base << (retries - 1), cap)`` instead of the fixed
    #: ``bounce_retry_cycles`` — capped exponential backoff
    retry_backoff_base: int = 0
    retry_backoff_cap: int = 0

    # --- adversarial BS-hit amplification ----------------------------
    #: fraction of non-ordered invalidations bounced as if BS-hit
    bs_amp_rate: float = 0.0
    #: cap on total forced bounces
    bs_amp_budget: int = 0

    # --- W+ timeout perturbation -------------------------------------
    #: multiplier on the deadlock-suspicion timeout (1.0 = untouched;
    #: < 1 shrinks it into recovery storms, > 1 inflates it)
    wplus_timeout_scale: float = 1.0

    # --- chaos oracle contract ---------------------------------------
    #: bounded-recovery oracle: more W+ recoveries than this in one
    #: litmus-sized run is a recovery livelock
    recovery_bound: int = 200
    #: machine-parameter overrides applied by the chaos harness
    #: (e.g. enabling the storm-demotion monitor)
    params_overrides: Dict[str, object] = field(default_factory=dict)
    #: every injection is a protocol-legal perturbation (the SC +
    #: forward-progress oracles must still pass)
    legal: bool = True

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(**data)


#: Built-in scenario catalog: name -> knob overrides.  Rates are chosen
#: so litmus-sized chaos runs see several injections per run while all
#: budgets stay comfortably inside the verify cycle cap.
SCENARIOS: Dict[str, dict] = {
    # message delay jitter (and therefore bounded reordering) on every
    # link — stretches coherence round trips and fence drain windows
    "noc_jitter": dict(
        noc_delay_rate=0.20, noc_delay_max_cycles=40,
    ),
    # transient directory NACKs with exponential-backoff retries —
    # Order/CO/invalidate transactions fail and re-issue
    "dir_nack": dict(
        dir_nack_rate=0.25, dir_nack_budget=64,
        retry_backoff_base=8, retry_backoff_cap=256,
    ),
    # adversarial BS: invalidations bounce as if every BS held the line,
    # driving writers into bounce/retry storms
    "bounce_storm": dict(
        bs_amp_rate=0.35, bs_amp_budget=48,
    ),
    # hair-trigger W+ timeout: recoveries fire on transient interference
    "timeout_shrink": dict(
        wplus_timeout_scale=0.2,
    ),
    # sluggish W+ timeout: genuine deadlocks sit far longer before the
    # recovery path finally runs (must still beat the watchdog)
    "timeout_inflate": dict(
        wplus_timeout_scale=4.0,
    ),
    # graceful-degradation exercise: hair-trigger timeouts + forced
    # bounces with the recovery-storm monitor enabled, so storms demote
    # wf -> sf instead of thrashing.  K = 1: litmus-sized runs rarely
    # see repeated same-core recoveries, so the first one already
    # demotes (the monitor itself is window-based; see its unit tests).
    "recovery_storm": dict(
        wplus_timeout_scale=0.2,
        bs_amp_rate=0.30, bs_amp_budget=48,
        params_overrides={
            "wplus_storm_k": 1,
            "wplus_storm_window_cycles": 8_000,
            "wplus_storm_cooldown_cycles": 20_000,
        },
    ),
    # everything legal at once, at moderate rates
    "chaos_combo": dict(
        noc_delay_rate=0.10, noc_delay_max_cycles=25,
        dir_nack_rate=0.10, dir_nack_budget=32,
        retry_backoff_base=8, retry_backoff_cap=256,
        bs_amp_rate=0.15, bs_amp_budget=24,
        wplus_timeout_scale=0.5,
    ),
    # deliberately BROKEN: lost messages hang the protocol — the chaos
    # oracles must flag it and ddmin must shrink the fault plan
    "illegal_drop": dict(
        noc_drop_rate=0.25, noc_drop_budget=8,
        legal=False,
    ),
}

#: scenarios safe to sweep in CI (``repro chaos --scenarios all``)
LEGAL_SCENARIOS: Tuple[str, ...] = tuple(
    name for name, over in sorted(SCENARIOS.items())
    if over.get("legal", True)
)


def make_plan(scenario: str, seed: int) -> FaultPlan:
    """The :class:`FaultPlan` for a built-in *scenario* at *seed*."""
    try:
        overrides = SCENARIOS[scenario]
    except KeyError:
        raise ValueError(
            f"unknown fault scenario {scenario!r}; choose from "
            f"{', '.join(sorted(SCENARIOS))}"
        ) from None
    return FaultPlan(scenario=scenario, seed=seed, **overrides)
