"""The chaos harness: sweep fault scenarios against the fence designs.

One **case** is ``(scenario, design, seed)``: the seed picks both the
litmus program (:func:`repro.verify.generator.generate_program`) and
every injection decision (:class:`repro.faults.FaultInjector`), so a
failing case replays *exactly* from its three coordinates — no trace
files, no recorded schedules.

Per case the harness checks the verify oracles (SC-with-fences,
no-deadlock, termination, recovery soundness) plus the chaos-specific
**bounded-recovery** oracle: more W+ recoveries than the plan's
``recovery_bound`` in one litmus-sized run is a recovery livelock even
if the run eventually completed.

A failing case can be shrunk: ddmin over the injector's fired-injection
log finds the minimal subset of injections that still breaks the
machine (replayed via the injector's ``allowed`` allow-list).

``run_chaos_matrix`` sweeps a scenario × design × seed grid with a
resumable JSONL journal and emits a JSON report.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common import journal as journal_mod
from repro.common.params import FenceDesign
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, make_plan
from repro.verify.generator import generate_program
from repro.verify.oracles import PAPER_DESIGNS, check_invariants, run_program
from repro.verify.perturb import SchedulePoint
from repro.verify.shrink import ddmin


@dataclass
class ChaosCase:
    """Outcome of one (scenario, design, seed) chaos run."""

    scenario: str
    design: str
    seed: int
    #: the plan is protocol-legal (oracle violations are real failures)
    legal: bool
    violations: List[str] = field(default_factory=list)
    cycles: int = 0
    recoveries: int = 0
    bounces: int = 0
    storm_demotions: int = 0
    #: fired/consulted injection counts from the injector
    faults: Dict[str, dict] = field(default_factory=dict)
    #: minimal failing injection subset, when shrinking ran
    shrunk: Optional[List[Tuple[str, int]]] = None
    shrink_runs: int = 0
    #: watchdog/sanitizer post-mortem artifact, when one was written
    diagnostics_path: Optional[str] = None
    #: sanitizer mode the case ran under ("off" preserves the legacy
    #: catch-at-timeout behaviour)
    sanitize: str = "strict"
    #: first sanitizer violation, when the sanitizer fired
    sanitizer: Optional[str] = None
    #: cycle-attribution postmortem artifact, when one was written
    attrib_path: Optional[str] = None

    @property
    def failed(self) -> bool:
        return bool(self.violations)

    def to_dict(self) -> dict:
        d = dataclasses.asdict(self)
        if self.shrunk is not None:
            d["shrunk"] = [list(key) for key in self.shrunk]
        return d


def _case_violations(run, plan: FaultPlan) -> List[str]:
    """Verify oracles + the chaos bounded-recovery oracle."""
    violations = check_invariants(run)
    if run.recoveries > plan.recovery_bound:
        violations.append(
            f"unbounded-recovery: {run.recoveries} W+ recoveries "
            f"(bound {plan.recovery_bound}) — recovery livelock"
        )
    return violations


def _execute(
    plan: FaultPlan,
    design: FenceDesign,
    seed: int,
    allowed=None,
    diag_dir: Optional[str] = None,
    sanitize: str = "off",
    attrib=None,
    budget=None,
):
    """One deterministic chaos execution; returns (run, injector)."""
    program = generate_program(seed)
    injector = FaultInjector(plan, allowed=allowed)
    run = run_program(
        program,
        design,
        point=SchedulePoint(seed=seed),
        faults=injector,
        params_overrides=plan.params_overrides,
        diag_dir=diag_dir,
        sanitize=sanitize,
        attrib=attrib,
        budget=budget,
    )
    return run, injector


def _write_attrib_postmortem(
    attrib, case: "ChaosCase", diag_dir: str,
) -> Optional[str]:
    """Attribution report next to the deadlock/sanitizer diagnostics:
    *where the failing case's cycles went* (e.g. a recovery livelock
    shows up as a dominant ``fence_stall.recovery`` subtree)."""
    from repro.obs.profile import build_report

    label = f"chaos:{case.scenario}:{case.design}:r{case.seed}"
    report = build_report(
        attrib.tree(label=label), "run",
        provenance={
            "workload": "chaos-litmus",
            "design": case.design,
            "seed": case.seed,
            "fault_scenario": case.scenario,
            "sanitize": case.sanitize,
        },
        events=attrib.design_events(),
        hot_lines=attrib.top_lines(),
    )
    path = os.path.join(
        diag_dir,
        f"attrib_{case.scenario}_{case.design}_r{case.seed}.json",
    )
    try:
        os.makedirs(diag_dir, exist_ok=True)
        with open(path, "w") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
            fh.write("\n")
    except OSError:
        return None
    return path


def run_chaos_case(
    scenario: str,
    design: FenceDesign,
    seed: int,
    diag_dir: Optional[str] = None,
    sanitize: str = "strict",
    budget=None,
) -> ChaosCase:
    """Run one chaos case and classify it against the oracles.

    The runtime sanitizer rides along as an extra oracle (default
    ``strict``): a protocol-illegal plan like ``illegal_drop`` is then
    caught at the *first* structurally-violating cycle (an event parked
    beyond the delivery horizon) instead of only surfacing when the
    watchdog times the run out.  Pass ``sanitize="off"`` for the legacy
    catch-at-timeout behaviour.  *budget* is an optional
    :class:`~repro.sim.governor.RunBudget`: a wedged case degrades
    gracefully instead of wedging its worker (the farm sets one per
    job).
    """
    plan = make_plan(scenario, seed)
    attrib = None
    if diag_dir:
        from repro.obs import CycleAttribution

        attrib = CycleAttribution()
    run, injector = _execute(plan, design, seed, diag_dir=diag_dir,
                             sanitize=sanitize, attrib=attrib,
                             budget=budget)
    case = ChaosCase(
        scenario=scenario,
        design=design.value,
        seed=seed,
        legal=plan.legal,
        violations=_case_violations(run, plan),
        cycles=run.cycles,
        recoveries=run.recoveries,
        bounces=run.bounces,
        storm_demotions=run.storm_demotions,
        faults=injector.summary(),
        sanitize=sanitize,
        sanitizer=run.sanitizer,
    )
    if diag_dir and (run.deadlock or run.sanitizer):
        case.diagnostics_path = _newest_artifact(diag_dir)
    if attrib is not None and case.failed:
        case.attrib_path = _write_attrib_postmortem(attrib, case, diag_dir)
    return case


def _newest_artifact(diag_dir: str) -> Optional[str]:
    try:
        files = [
            os.path.join(diag_dir, f)
            for f in os.listdir(diag_dir)
            if f.startswith(("deadlock_", "sanitizer_"))
            and f.endswith(".json")
        ]
    except OSError:
        return None
    return max(files, key=os.path.getmtime) if files else None


def shrink_failing_case(
    case: ChaosCase,
    max_runs: int = 200,
) -> ChaosCase:
    """ddmin the failing *case* to a minimal injection subset.

    Re-runs the exact case unrestricted to recover the fired-injection
    log, then minimizes the allow-list while the oracles still flag a
    violation.  The result is recorded on the returned case
    (``shrunk`` / ``shrink_runs``); a case that no longer fails is
    returned unchanged.
    """
    design = FenceDesign(case.design)
    plan = make_plan(case.scenario, case.seed)
    # shrink under the same oracle set the case was detected with: a
    # minimized subset (e.g. one surviving PutM drop) may never deadlock
    # yet still be structurally illegal — only the sanitizer sees it.
    sanitize = case.sanitize
    run, injector = _execute(plan, design, case.seed, sanitize=sanitize)
    if not _case_violations(run, plan):
        return case  # not reproducible (should not happen: deterministic)

    def still_fails(subset: list) -> bool:
        sub_run, _ = _execute(plan, design, case.seed, allowed=subset,
                              sanitize=sanitize)
        return bool(_case_violations(sub_run, plan))

    minimized, runs = ddmin(list(injector.log), predicate=still_fails,
                            max_runs=max_runs)
    case.shrunk = [tuple(key) for key in minimized]
    case.shrink_runs = runs
    return case


# ----------------------------------------------------------------------
# the matrix sweep
# ----------------------------------------------------------------------

def _journal_key(scenario: str, design: str, seed: int) -> str:
    return f"{scenario}|{design}|{seed}"


def _load_journal(path: str) -> Dict[str, dict]:
    """Completed cases from a (possibly torn-tailed) JSONL journal,
    repeated keys resolved last-writer-wins."""
    return journal_mod.load_keyed(
        path,
        key=lambda rec: _journal_key(rec["scenario"], rec["design"],
                                     rec["seed"]),
    )


def _case_from_record(rec: dict) -> ChaosCase:
    rec = dict(rec)
    shrunk = rec.pop("shrunk", None)
    case = ChaosCase(**rec)
    if shrunk is not None:
        case.shrunk = [tuple(k) for k in shrunk]
    return case


def run_chaos_matrix(
    scenarios: Sequence[str],
    designs: Sequence[FenceDesign] = PAPER_DESIGNS,
    seeds: Sequence[int] = (),
    shrink: bool = False,
    journal: Optional[str] = None,
    resume: bool = False,
    overwrite_journal: bool = False,
    diag_dir: Optional[str] = None,
    progress=None,
    sanitize: str = "strict",
    farm_db: Optional[str] = None,
    farm_workers: Optional[int] = None,
) -> dict:
    """Sweep scenario × design × seed; return the chaos report dict.

    With *journal* set, each finished case is appended to a JSONL file
    as it completes; *resume* skips cases already journaled (so an
    interrupted sweep picks up where it stopped); an existing journal
    without *resume* requires *overwrite_journal* and is rotated to
    ``.bak``, never deleted.  *progress* is an optional
    ``callable(case)`` fired per completed case.  *sanitize* sets the
    per-case sanitizer mode (see :func:`run_chaos_case`); sanitizer
    violations are first-class journaled outcomes.

    With *farm_db* the sweep runs as a campaign on the durable
    experiment farm (leased jobs, crash-safe store, content-addressed
    result cache); shrinking still happens locally on the collected
    failing cases, deterministically.
    """
    if farm_db:
        from repro.farm.clients import farm_chaos_cases

        cases = farm_chaos_cases(
            scenarios, designs, seeds, db=farm_db, workers=farm_workers,
            sanitize=sanitize, diag_dir=diag_dir,
        )
        if shrink:
            cases = [
                shrink_failing_case(c) if c.failed else c for c in cases
            ]
        journal_mod.prepare(journal, resume=resume,
                            overwrite=overwrite_journal)
        if journal:
            with journal_mod.JournalWriter(journal) as writer:
                for case in cases:
                    writer.append(case.to_dict())
        if progress is not None:
            for case in cases:
                progress(case)
        return _chaos_report(scenarios, designs, seeds, cases)
    journal_mod.prepare(journal, resume=resume, overwrite=overwrite_journal)
    done = _load_journal(journal) if (journal and resume) else {}
    cases: List[ChaosCase] = []
    writer = journal_mod.JournalWriter(journal) if journal else None
    try:
        for scenario in scenarios:
            for design in designs:
                for seed in seeds:
                    key = _journal_key(scenario, design.value, seed)
                    if key in done:
                        cases.append(_case_from_record(done[key]))
                        continue
                    case = run_chaos_case(
                        scenario, design, seed, diag_dir=diag_dir,
                        sanitize=sanitize,
                    )
                    if shrink and case.failed:
                        case = shrink_failing_case(case)
                    cases.append(case)
                    if writer is not None:
                        writer.append(case.to_dict())
                    if progress is not None:
                        progress(case)
    finally:
        if writer is not None:
            writer.close()
    return _chaos_report(scenarios, designs, seeds, cases)


def _chaos_report(scenarios, designs, seeds, cases: List[ChaosCase]) -> dict:
    failed_legal = [c for c in cases if c.failed and c.legal]
    caught_illegal = [c for c in cases if c.failed and not c.legal]
    missed_illegal = [c for c in cases if not c.failed and not c.legal]
    return {
        "total_cases": len(cases),
        "scenarios": list(scenarios),
        "designs": [d.value for d in designs],
        "seeds": list(seeds),
        "failed_legal": len(failed_legal),
        "caught_illegal": len(caught_illegal),
        "missed_illegal": len(missed_illegal),
        "cases": [c.to_dict() for c in cases],
    }
