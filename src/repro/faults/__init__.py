"""Deterministic fault injection and chaos testing (docs/FAULTS.md).

The package splits into three layers:

* :mod:`repro.faults.plan` — :class:`FaultPlan`, the declarative
  description of *what* to inject (rates, windows, budgets) plus the
  built-in scenario catalog;
* :mod:`repro.faults.injector` — :class:`FaultInjector`, the
  seed-deterministic decision engine the machine components consult at
  each hook site;
* :mod:`repro.faults.chaos` — the scenario × design × seed sweep, the
  chaos oracles and the ddmin fault-plan shrinker behind ``repro chaos``.

With no injector attached every hook site is a ``faults is None``
identity test, so the fault-free path stays bit-identical to the golden
traces.
"""

from repro.faults.chaos import (
    ChaosCase,
    run_chaos_case,
    run_chaos_matrix,
    shrink_failing_case,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FaultPlan,
    LEGAL_SCENARIOS,
    SCENARIOS,
    make_plan,
)

__all__ = [
    "ChaosCase",
    "FaultInjector",
    "FaultPlan",
    "LEGAL_SCENARIOS",
    "SCENARIOS",
    "make_plan",
    "run_chaos_case",
    "run_chaos_matrix",
    "shrink_failing_case",
]
