"""The deterministic fault-decision engine.

Every hook site in the machine asks the injector "does a fault fire
here?".  Decisions are pure functions of ``(plan.seed, site, n)`` where
*n* is the per-site call counter — a splitmix64-style hash, not a
sequential RNG stream — so:

* the exact same faults replay from ``(scenario, seed)`` alone;
* each fired injection has a stable identity ``(site, n)`` that the
  chaos shrinker can subset: re-running with ``allowed={...}`` applies
  only those injections (the per-site counters still advance on every
  call, keeping identities aligned between runs as far as the timing
  drift the removed faults cause allows — the usual ddmin caveat).

The injector also hosts the *degradation-response* shaping: capped
exponential retry backoff and the W+ timeout perturbation, both
deterministic transformations rather than random events.

Fired injections are appended to :attr:`FaultInjector.log` and, when a
tracer is attached, emitted as ``fault_*`` instants on the lane of the
component that absorbed them.
"""

from __future__ import annotations

import zlib
from typing import Iterable, List, Optional, Set, Tuple

from repro.faults.plan import DROP_CYCLES, FaultPlan

_MASK64 = (1 << 64) - 1

#: injection sites (the log/allow-list key namespace)
SITE_NOC_DELAY = "noc_delay"
SITE_NOC_DROP = "noc_drop"
SITE_DIR_NACK = "dir_nack"
SITE_BS_AMP = "bs_amp"

#: tracer lane for NoC fault instants (mirrors obs.tracer.TRACK_NOC
#: without importing the obs package here)
_TRACK_NOC = 900
#: directory bank *b* fault instants land on this base + b
_TRACK_DIR_BASE = 100


def _mix(x: int) -> int:
    """splitmix64 finalizer: one well-mixed 64-bit word from *x*."""
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class FaultInjector:
    """Deterministic per-site fault decisions for one machine run.

    *allowed* restricts firing to a subset of ``(site, n)`` keys — the
    replay mode the ddmin shrinker uses.  ``None`` means unrestricted.
    """

    def __init__(
        self,
        plan: FaultPlan,
        allowed: Optional[Iterable[Tuple[str, int]]] = None,
    ):
        self.plan = plan
        self.allowed: Optional[Set[Tuple[str, int]]] = (
            None if allowed is None else set(allowed)
        )
        #: fired injections, in firing order: (site, n) keys
        self.log: List[Tuple[str, int]] = []
        #: per-site call counters (advance on every consultation,
        #: fired or not — they define injection identity)
        self.counts = {
            SITE_NOC_DELAY: 0, SITE_NOC_DROP: 0,
            SITE_DIR_NACK: 0, SITE_BS_AMP: 0,
        }
        #: remaining budgets for the budgeted sites
        self._nack_budget = plan.dir_nack_budget
        self._amp_budget = plan.bs_amp_budget
        self._drop_budget = plan.noc_drop_budget
        #: set by Machine.attach_faults when a tracer is attached
        self.tracer = None
        # per-site hash bases: seed and site folded once, off the
        # per-decision path (zlib.crc32 is stable across processes,
        # unlike hash() on str)
        self._base = {
            site: _mix((plan.seed & _MASK64) * 0x9E3779B97F4A7C15
                       + zlib.crc32(site.encode()))
            for site in self.counts
        }

    # ------------------------------------------------------------------
    # decision core
    # ------------------------------------------------------------------

    def _decide(self, site: str, rate: float) -> Tuple[bool, int, int]:
        """One consultation of *site*: (fired, n, draw).

        *draw* is the full 64-bit hash so callers can derive fault
        magnitudes from its upper bits without a second lookup.
        """
        n = self.counts[site]
        self.counts[site] = n + 1
        draw = _mix(self._base[site] + n * 0xD1B54A32D192ED03)
        if (draw & 0xFFFFFFFF) >= int(rate * 4294967296.0):
            return False, n, draw
        if self.allowed is not None and (site, n) not in self.allowed:
            return False, n, draw
        return True, n, draw

    def _emit(self, track: int, site: str, n: int, args: dict) -> None:
        self.log.append((site, n))
        if self.tracer is not None:
            args = dict(args)
            args["n"] = n
            self.tracer.fault(track, site, args)

    # ------------------------------------------------------------------
    # hook sites (called by machine components)
    # ------------------------------------------------------------------

    def noc_perturb(self, src: int, dst: int, kind: str) -> int:
        """Extra delivery cycles for one NoC message (0 = untouched).

        Dropped messages (illegal scenario) return :data:`DROP_CYCLES`,
        pushing delivery beyond any observable horizon.
        """
        plan = self.plan
        extra = 0
        # budgets are checked *after* the decision so the per-site call
        # counters advance identically whether or not earlier faults in
        # the run fired (identity stability for the ddmin allow-list)
        if plan.noc_drop_rate:
            fired, n, _draw = self._decide(SITE_NOC_DROP, plan.noc_drop_rate)
            if fired and self._drop_budget > 0:
                self._drop_budget -= 1
                self._emit(_TRACK_NOC, SITE_NOC_DROP, n,
                           {"src": src, "dst": dst, "kind": kind})
                return DROP_CYCLES
        if plan.noc_delay_rate:
            fired, n, draw = self._decide(SITE_NOC_DELAY, plan.noc_delay_rate)
            if fired:
                extra = 1 + ((draw >> 32) % max(1, plan.noc_delay_max_cycles))
                self._emit(_TRACK_NOC, SITE_NOC_DELAY, n,
                           {"src": src, "dst": dst, "kind": kind,
                            "extra": extra})
        return extra

    def dir_nack(self, bank_id: int, line: int, requester: int,
                 kind: str) -> bool:
        """Should this write-class transaction be transiently NACKed?"""
        plan = self.plan
        if not plan.dir_nack_rate:
            return False
        fired, n, _draw = self._decide(SITE_DIR_NACK, plan.dir_nack_rate)
        if not fired or self._nack_budget <= 0:
            return False
        self._nack_budget -= 1
        self._emit(_TRACK_DIR_BASE + bank_id, SITE_DIR_NACK, n,
                   {"line": line, "requester": requester, "kind": kind})
        return True

    def bs_amplify(self, core_id: int, line: int) -> bool:
        """Should this non-ordered invalidation bounce as if BS-hit?"""
        plan = self.plan
        if not plan.bs_amp_rate:
            return False
        fired, n, _draw = self._decide(SITE_BS_AMP, plan.bs_amp_rate)
        if not fired or self._amp_budget <= 0:
            return False
        self._amp_budget -= 1
        self._emit(core_id, SITE_BS_AMP, n, {"line": line})
        return True

    # ------------------------------------------------------------------
    # deterministic shaping (degradation responses, not random events)
    # ------------------------------------------------------------------

    def retry_backoff(self, retries: int, default: int) -> int:
        """Retry delay for a store's *retries*-th bounce.

        Capped exponential backoff when the plan enables it, the
        machine's fixed ``bounce_retry_cycles`` otherwise.
        """
        base = self.plan.retry_backoff_base
        if not base:
            return default
        return min(base << min(retries - 1, 16), self.plan.retry_backoff_cap)

    def wplus_timeout(self, delay: int) -> int:
        """Perturbed W+ deadlock-suspicion timeout (>= 1 cycle)."""
        scale = self.plan.wplus_timeout_scale
        if scale == 1.0:
            return delay
        return max(1, int(delay * scale))

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def summary(self) -> dict:
        """Fired-injection counts by site, plus consultation totals."""
        fired: dict = {}
        for site, _n in self.log:
            fired[site] = fired.get(site, 0) + 1
        return {"fired": fired, "consulted": dict(self.counts)}
