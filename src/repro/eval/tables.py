"""Regeneration of the paper's tables (1-4).

Tables 1-3 are static descriptions checked against the implementation
(the taxonomy really is the implemented policy set, the architecture
really is the default MachineParams, the workload list really is the
registry).  Table 4 is measured: the characterization columns of the
S+/WS+/W+/Wee designs over the three workload groups.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common.params import FenceDesign, MachineParams, TABLE2_ROWS
from repro.eval import report
from repro.eval.runner import RunSummary, run_matrix
from repro.fences.base import TABLE1_ROWS
from repro.workloads.base import TABLE3_ROWS, load_all_workloads, workloads_in_group


def table1() -> str:
    """Table 1: wf designs and the taxonomy of asymmetric fence groups."""
    return report.format_table(
        ("Name", "wf Design Point / Corresponding Fence Group",
         "Hardware Support Required"),
        TABLE1_ROWS,
        title="Table 1 — taxonomy of Asymmetric fence groups under TSO",
    )


def table2(params: Optional[MachineParams] = None) -> str:
    """Table 2: the architecture modeled (defaults of MachineParams)."""
    params = params or MachineParams()
    live_rows = [
        ("num_cores (default)", params.num_cores),
        ("issue width", params.issue_width),
        ("ROB entries", params.rob_entries),
        ("write buffer entries", params.write_buffer_entries),
        ("L1", f"{params.l1_size_bytes // 1024}KB, {params.l1_ways}-way, "
               f"{params.l1_hit_cycles}-cycle, {params.line_bytes}B lines"),
        ("L2 bank", f"{params.l2_bank_size_bytes // 1024}KB, "
                    f"{params.l2_ways}-way, {params.l2_hit_cycles}-cycle"),
        ("BS entries", params.bs_entries),
        ("mesh hop", f"{params.mesh_hop_cycles} cycles"),
        ("off-chip memory", f"{params.memory_cycles}-cycle RT"),
    ]
    paper = report.format_table(("Component", "Paper (Table 2)"), TABLE2_ROWS)
    ours = report.format_table(("Parameter", "Simulator default"), live_rows)
    return (f"Table 2 — architecture modeled\n\n{paper}\n\n{ours}")


def table3() -> str:
    """Table 3: applications used, checked against the registry."""
    load_all_workloads()
    live = [
        (group, ", ".join(cls.name for cls in workloads_in_group(group)))
        for group in ("cilk", "ustm", "stamp")
    ]
    paper = report.format_table(("Workload group", "Applications"), TABLE3_ROWS)
    ours = report.format_table(("Registry group", "Registered workloads"), live)
    return f"Table 3 — applications used in the evaluation\n\n{paper}\n\n{ours}"


# ---------------------------------------------------------------------------
# Table 4 — measured characterization
# ---------------------------------------------------------------------------

#: representative per-group subsets (Table 4 characterizes each group as
#: a whole; a subset keeps the regeneration affordable — see DESIGN.md)
TABLE4_APPS = {
    "cilk": ("fib", "bucket", "matmul", "lu"),
    "ustm": ("List", "Tree", "ReadNWrite1", "TreeOverwrite"),
    "stamp": ("intruder", "vacation", "ssca2", "genome"),
}

TABLE4_GROUP_LABEL = {"cilk": "CilkApps", "ustm": "ustm", "stamp": "STAMP"}


def _agg(runs: List[RunSummary], key: str) -> float:
    return report.mean([r.stats.get(key, 0.0) for r in runs])


def table4_characterization(scale: float = 1.0, num_cores: int = 8,
                            seed: int = 12345,
                            apps: Optional[Dict[str, Sequence[str]]] = None,
                            jobs: Optional[int] = None) -> dict:
    """Measure the Table 4 columns for every design and group."""
    apps = apps or TABLE4_APPS
    designs = (FenceDesign.S_PLUS, FenceDesign.WS_PLUS,
               FenceDesign.W_PLUS, FenceDesign.WEE)
    rows = []
    for group, names in apps.items():
        runs = run_matrix(list(names), designs, num_cores=num_cores,
                          scale=scale, seed=seed, jobs=jobs)
        per_design = {
            str(d): [runs[(n, str(d), num_cores)] for n in names]
            for d in designs
        }
        sp, ws, wp, wee = (per_design[str(d)] for d in designs)
        rows.append({
            "group": TABLE4_GROUP_LABEL.get(group, group),
            # S+ columns
            "splus_sf_per_ki": _agg(sp, "sf_per_ki"),
            # WS+ columns
            "ws_sf_per_ki": _agg(ws, "sf_per_ki"),
            "ws_wf_per_ki": _agg(ws, "wf_per_ki"),
            "ws_bs_lines": _agg(ws, "bs_lines"),
            "ws_bounces_per_wf": _agg(ws, "bounces_per_wf"),
            "ws_retries_per_wr": _agg(ws, "retries_per_wr"),
            "ws_traffic_pct": _agg(ws, "traffic_incr_pct"),
            # W+ columns
            "w_wf_per_ki": _agg(wp, "wf_per_ki"),
            "w_recoveries_per_wf": _agg(wp, "recoveries_per_wf"),
            "w_traffic_pct": _agg(wp, "traffic_incr_pct"),
            # Wee columns
            "wee_sf_per_ki": _agg(wee, "sf_per_ki"),
            "wee_wf_per_ki": _agg(wee, "wf_per_ki"),
            "wee_bs_lines": _agg(wee, "bs_lines"),
        })
    return {"rows": rows, "apps": apps, "seed": seed}


def render_table4(data: dict) -> str:
    headers = (
        "Workload", "S+ sf/ki",
        "WS+ sf/ki", "WS+ wf/ki", "WS+ lines/BS", "WS+ bounce/wf",
        "WS+ retry/wr", "WS+ %traffic",
        "W+ wf/ki", "W+ recov/wf", "W+ %traffic",
        "Wee sf/ki", "Wee wf/ki", "Wee lines/BS",
    )
    rows = []
    for r in data["rows"]:
        rows.append((
            r["group"],
            f"{r['splus_sf_per_ki']:.1f}",
            f"{r['ws_sf_per_ki']:.1f}", f"{r['ws_wf_per_ki']:.1f}",
            f"{r['ws_bs_lines']:.1f}", f"{r['ws_bounces_per_wf']:.2f}",
            f"{r['ws_retries_per_wr']:.1f}", f"{r['ws_traffic_pct']:.2f}",
            f"{r['w_wf_per_ki']:.1f}", f"{r['w_recoveries_per_wf']:.3f}",
            f"{r['w_traffic_pct']:.2f}",
            f"{r['wee_sf_per_ki']:.1f}", f"{r['wee_wf_per_ki']:.1f}",
            f"{r['wee_bs_lines']:.1f}",
        ))
    table = report.format_table(
        headers, rows, title="Table 4 — characterization of Asymmetric fences"
    )
    paper = (
        "paper: sf ~0.6-5.7/ki; BS holds 3-5 lines; bounces and retries per\n"
        "wf low (<0.2 / <2.2); traffic increase negligible; W+ recoveries\n"
        "noticeable only for ustm (~0.02/wf); Wee converts ~half of ustm\n"
        "and ~a third of STAMP fences into sfs, almost none for CilkApps"
    )
    return f"{table}\n\n{paper}"


# ---------------------------------------------------------------------------
# repro synth — ranked placement table
# ---------------------------------------------------------------------------

def _fmt_cycles(value: Optional[float]) -> str:
    return "?" if value is None else f"{value:.1f}"


def _audit_cell(placement: dict) -> str:
    audit = placement.get("audit")
    if audit is None:
        return "skipped"
    verdict = "pass" if audit["passed"] else "FAIL"
    minimal = "minimal" if audit["minimal"] else "NOT MINIMAL"
    return f"{verdict}@{audit['points']}pts, {minimal}"


def render_synth_table(data: dict) -> str:
    """Text rendering of a ``repro synth`` report dict: the ranked
    placement × design table plus the per-site marginal probe table."""
    cfg = data["config"]
    prog = data["program"]
    lines = [
        f"synth — minimal fence placements for {prog['name']!r} "
        f"(seed {cfg['seed']}, {cfg['num_points']} adversary points, "
        f"audit x{cfg['audit_factor']})",
        f"sites ({prog['site_mode']}): "
        + (", ".join(prog["sites"]) or "(none)"),
        "",
    ]

    placement_rows = []
    probe_rows = []
    notes = []
    for design, entry in data["designs"].items():
        if entry["status"] != "ok":
            failure = entry.get("failure") or {}
            why = failure.get("reason", "")
            notes.append(f"  {design}: {entry['status']}"
                         + (f" ({why})" if why else ""))
            continue
        for p in entry["placements"]:
            placement_rows.append((
                design, str(p["rank"]), p["placement"],
                str(p["num_wf"]), str(p["num_sf"]),
                _fmt_cycles(p["cycles"]),
                _fmt_cycles(p["overhead_cycles"]),
                "yes" if p["sc_safe"] else "NO",
                _audit_cell(p),
            ))
        for site, per_site in entry["site_probes"].items():
            wf = per_site.get("wf")
            sf = per_site.get("sf")
            probe_rows.append((
                design, site,
                "-" if wf is None else f"+{wf:.1f}",
                "-" if sf is None else f"+{sf:.1f}",
            ))

    if placement_rows:
        lines.append(report.format_table(
            ("Design", "Rank", "Placement", "wf", "sf", "Cycles",
             "+Cycles", "SC-safe", "Audit"),
            placement_rows,
            title="ranked placements (cheapest first per design)",
        ))
    if probe_rows:
        lines.append("")
        lines.append(report.format_table(
            ("Design", "Site", "wf", "sf"),
            probe_rows,
            title="per-site marginal fence cost (cycles over empty "
                  "baseline; end-to-end cost above also includes "
                  "interaction effects)",
        ))
    if notes:
        lines.append("")
        lines.append("designs without a synthesized placement:")
        lines.extend(notes)
    lines.append("")
    lines.append(f"total simulator runs: {data['total_runs']}; "
                 f"report ok: {'yes' if data['ok'] else 'NO'}")
    return "\n".join(lines)
