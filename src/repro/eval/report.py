"""Text rendering for the evaluation: tables and ASCII stacked bars.

The paper's figures are stacked-bar charts (Busy / Fence Stall / Other
Stall) and grouped bar charts (normalized throughput).  We render the
same data as fixed-width text so the benchmark harness can print a
directly comparable report.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

BAR_WIDTH = 40


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "") -> str:
    """Simple fixed-width table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def stacked_bar(
    parts: Dict[str, float], total_scale: float, width: int = BAR_WIDTH
) -> str:
    """One ASCII stacked bar: parts rendered proportionally to
    *total_scale* (the normalization denominator)."""
    symbols = {"busy": "#", "fence_stall": "F", "other_stall": "."}
    total = sum(parts.values())
    if total_scale <= 0:
        return ""
    bar = ""
    for key in ("busy", "fence_stall", "other_stall"):
        frac = parts.get(key, 0.0) / total_scale
        bar += symbols[key] * max(0, round(frac * width))
    return bar


def render_breakdown_chart(
    entries: List[dict],
    title: str,
    value_key: str = "normalized_time",
) -> str:
    """Paper-style stacked-bar chart, one bar per (app, design).

    Each entry: {app, design, busy, fence_stall, other_stall,
    normalized_time} with the cycle categories already normalized to
    the app's S+ total (so the S+ bar has length 1.0).
    """
    lines = [title, f"  (#=busy, F=fence stall, .=other stall; "
                    f"bar length ∝ time normalized to S+)"]
    cur_app = None
    for e in entries:
        if e["app"] != cur_app:
            cur_app = e["app"]
            lines.append(f"  {cur_app}")
        parts = {
            "busy": e["busy"],
            "fence_stall": e["fence_stall"],
            "other_stall": e["other_stall"],
        }
        bar = stacked_bar(parts, total_scale=1.0)
        lines.append(
            f"    {e['design']:<4} {e[value_key]:5.2f} |{bar}"
        )
    return "\n".join(lines)


def render_ratio_chart(
    entries: List[dict], title: str, value_key: str, unit: str = "x"
) -> str:
    """Grouped bar chart of normalized ratios (Fig. 9 style)."""
    lines = [title]
    cur_app = None
    max_val = max((e[value_key] for e in entries), default=1.0)
    scale = BAR_WIDTH / max(1.0, max_val)
    for e in entries:
        if e["app"] != cur_app:
            cur_app = e["app"]
            lines.append(f"  {cur_app}")
        bar = "#" * max(1, round(e[value_key] * scale))
        lines.append(f"    {e['design']:<4} {e[value_key]:5.2f}{unit} |{bar}")
    return "\n".join(lines)


def geo_mean(values: Sequence[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    prod = 1.0
    for v in vals:
        prod *= v
    return prod ** (1.0 / len(vals))


def mean(values: Sequence[float]) -> float:
    vals = list(values)
    return sum(vals) / len(vals) if vals else 0.0
