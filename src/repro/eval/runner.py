"""Experiment-matrix runner.

Runs (workload × fence design × core count) grids, optionally in
parallel across processes (simulations are independent), and returns
lightweight picklable summaries the figure/table generators consume.

Long sweeps are crash-resilient: with a *journal* path every finished
job is appended to a JSONL file as it completes, a worker process dying
mid-job (OOM kill, segfault, SIGKILL) is retried with backoff instead
of sinking the whole sweep, and ``resume=True`` (CLI ``--resume``)
skips journaled jobs so an interrupted sweep picks up where it stopped.

``REPRO_JOBS`` controls parallelism (default: up to 8 processes);
``REPRO_SCALE`` scales workload sizes (see ``workloads.base``).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common import journal as journal_mod
from repro.common.params import FenceDesign
from repro.workloads.base import load_all_workloads, run_workload

#: attempts per job when the worker *process* dies (a Python exception
#: inside the job is not retried — it propagates, it's a real bug)
CRASH_RETRIES = 3
#: base backoff between crash retries, doubling per attempt
CRASH_BACKOFF_S = 0.25


@dataclass
class RunSummary:
    """Picklable summary of one workload run."""

    name: str
    group: str
    design: str
    num_cores: int
    cycles: int
    completed: bool
    #: cycle breakdown summed over cores
    busy: float
    fence_stall: float
    other_stall: float
    #: machine seed the run used — reports carry it so any row can be
    #: reproduced exactly from the report alone
    seed: int = 0
    #: flat stats (MachineStats.summary())
    stats: Dict[str, float] = field(default_factory=dict)
    #: a resource budget (REPRO_MAX_*) cut this run off gracefully, or
    #: the sanitizer stood down in degrade mode — first-class journaled
    #: outcome, not an exception
    degraded: bool = False
    degraded_reason: Optional[str] = None
    #: violations a warn/degrade-mode sanitizer (REPRO_SANITIZE)
    #: recorded during the run (strict raises instead)
    sanitizer_violations: int = 0
    #: machine-level cycle attribution, flattened to component ->
    #: core-cycles ("fence_stall.sf.drain": 1234.5, ...); None on rows
    #: journaled before the profiler existed
    attrib: Optional[Dict[str, float]] = None

    @property
    def total(self) -> float:
        return self.busy + self.fence_stall + self.other_stall

    @property
    def throughput(self) -> float:
        # a run cut off before any commit has no meaningful rate
        if not self.cycles:
            return 0.0
        return 1e6 * self.stats.get("txn_commits", 0) / self.cycles

    @property
    def txn_cycles_per_commit(self) -> float:
        commits = self.stats.get("txn_commits", 0)
        if not commits:
            # zero commits means the per-commit cost is unbounded, not
            # free — consumers that want "skip this row" semantics
            # must test for it (figures.py maps it to 0.0)
            return float("inf")
        return self.stats.get("txn_cycles_total", 0.0) / commits


def run_summary(
    name: str,
    design_name: str,
    num_cores: int,
    scale: float,
    seed: int,
    sanitize: Optional[str] = None,
    budget=None,
) -> RunSummary:
    """One fully-summarized matrix run — the shared executor behind
    the in-process sweep, the process-pool workers, and farm jobs.

    *sanitize*/*budget* default to the environment (``REPRO_SANITIZE``
    / ``REPRO_MAX_*``) exactly like :func:`run_workload`.
    """
    load_all_workloads()
    from repro.obs import Observability
    from repro.obs.attrib import flatten_node

    # attribution rides along on every matrix run: pure accumulator
    # writes, no event buffer, bit-identical simulated results — and
    # the figure generators get the fence-component split for free
    obs = Observability(trace=False, attrib=True)
    run = run_workload(
        name, FenceDesign[design_name], num_cores=num_cores,
        scale=scale, seed=seed, obs=obs, sanitize=sanitize, budget=budget,
    )
    stats = run.stats
    breakdown = stats.total_breakdown()
    flat = stats.summary()
    flat["txn_cycles_total"] = stats.txn_cycles
    flat["wee_sf_conversions"] = sum(stats.wee_sf_conversions)
    flat["wplus_recoveries"] = stats.wplus_recoveries
    flat["bounces"] = stats.bounces
    return RunSummary(
        name=name,
        group=run.group,
        design=str(run.design),
        num_cores=num_cores,
        cycles=run.cycles,
        completed=run.result.completed,
        seed=seed,
        busy=breakdown["busy"],
        fence_stall=breakdown["fence_stall"],
        other_stall=breakdown["other_stall"],
        stats=flat,
        degraded=run.result.degraded,
        degraded_reason=run.result.degraded_reason,
        sanitizer_violations=run.result.sanitizer_violations,
        attrib=flatten_node(obs.attrib.tree()["machine"]),
    )


def _run_one(job: Tuple[str, str, int, float, int]) -> RunSummary:
    name, design_name, num_cores, scale, seed = job
    return run_summary(name, design_name, num_cores, scale, seed)


def default_jobs() -> int:
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, min(8, (os.cpu_count() or 2) - 1))


# ----------------------------------------------------------------------
# journal (crash-resilient checkpointing)
# ----------------------------------------------------------------------

def _job_key(job: Tuple[str, str, int, float, int]) -> str:
    name, design_name, cores, scale, seed = job
    return f"{name}|{design_name}|{cores}|{scale!r}|{seed}"


def load_journal(path: str) -> Dict[str, RunSummary]:
    """Completed jobs from a JSONL journal, tolerant of a torn tail
    (a writer killed mid-append leaves a partial last line).  Repeated
    keys resolve deterministically last-writer-wins."""
    done: Dict[str, RunSummary] = {}
    keyed = journal_mod.load_keyed(path, key=lambda rec: rec.get("_key"))
    for key, rec in keyed.items():
        rec = dict(rec)
        rec.pop("_key", None)
        done[key] = RunSummary(**rec)
    return done


def _append_journal(writer: journal_mod.JournalWriter, key: str,
                    summary: RunSummary) -> None:
    rec = dataclasses.asdict(summary)
    rec["_key"] = key
    writer.append(rec)


# ----------------------------------------------------------------------
# the sweep
# ----------------------------------------------------------------------

def _run_grid_parallel(
    grid: List[Tuple[str, str, int, float, int]],
    jobs: int,
    on_done,
    sleep=time.sleep,
) -> Dict[str, RunSummary]:
    """Run *grid* on a process pool, retrying worker crashes.

    A job whose worker process dies (BrokenProcessPool) is retried up
    to :data:`CRASH_RETRIES` times with doubling backoff — the pool is
    rebuilt each time since a broken executor is unusable.  Jobs that
    raise ordinary exceptions propagate immediately (a deterministic
    simulator bug would fail every retry anyway).
    """
    results: Dict[str, RunSummary] = {}
    pending = list(grid)
    attempt = 0
    while pending:
        workers = min(jobs, len(pending))
        ctx = multiprocessing.get_context("fork")
        crashed: List[Tuple[str, str, int, float, int]] = []
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=ctx) as pool:
            futures = {pool.submit(_run_one, job): job for job in pending}
            for fut, job in futures.items():
                try:
                    summary = fut.result()
                except BrokenProcessPool:
                    crashed.append(job)
                    continue
                results[_job_key(job)] = summary
                on_done(_job_key(job), summary)
        if not crashed:
            break
        attempt += 1
        if attempt > CRASH_RETRIES:
            raise RuntimeError(
                f"{len(crashed)} job(s) crashed their worker "
                f"{CRASH_RETRIES + 1} times; giving up: "
                f"{[_job_key(j) for j in crashed]}"
            )
        sleep(CRASH_BACKOFF_S * (2 ** (attempt - 1)))
        pending = crashed
    return results


def run_matrix(
    names: Sequence[str],
    designs: Sequence[FenceDesign],
    num_cores: int = 8,
    scale: float = 1.0,
    seed: int = 12345,
    core_counts: Optional[Sequence[int]] = None,
    jobs: Optional[int] = None,
    journal: Optional[str] = None,
    resume: bool = False,
    overwrite_journal: bool = False,
    farm_db: Optional[str] = None,
    farm_workers: Optional[int] = None,
) -> Dict[Tuple[str, str, int], RunSummary]:
    """Run the full grid; returns {(name, design, cores): summary}.

    With *journal* set each finished job is checkpointed to a JSONL
    file; *resume* reloads it and skips already-finished jobs.  An
    existing journal without *resume* is never silently destroyed:
    *overwrite_journal* must be passed explicitly and rotates the old
    file to ``<journal>.bak`` (:func:`repro.common.journal.prepare`).

    With *farm_db* (or ``REPRO_FARM_DB`` in the environment) the grid
    runs as a campaign on the durable experiment farm instead of an
    ad-hoc process pool: jobs are leased from a crash-safe SQLite
    store, results are served from the content-addressed cache when
    the identical job already ran, and the returned rows are
    bit-identical to a local sweep.
    """
    farm_db = farm_db or os.environ.get("REPRO_FARM_DB") or None
    if farm_db:
        from repro.farm.clients import farm_run_matrix

        return farm_run_matrix(
            names, designs, num_cores=num_cores, scale=scale, seed=seed,
            core_counts=core_counts, db=farm_db, workers=farm_workers,
            journal=journal, resume=resume,
            overwrite_journal=overwrite_journal,
        )
    counts = list(core_counts) if core_counts else [num_cores]
    grid = [
        (name, design.name, cores, scale, seed)
        for name in names
        for design in designs
        for cores in counts
    ]
    journal_mod.prepare(journal, resume=resume, overwrite=overwrite_journal)
    done = load_journal(journal) if (journal and resume) else {}
    results: Dict[str, RunSummary] = {
        _job_key(job): done[_job_key(job)]
        for job in grid if _job_key(job) in done
    }
    todo = [job for job in grid if _job_key(job) not in results]

    writer = journal_mod.JournalWriter(journal) if journal else None

    def on_done(key: str, summary: RunSummary) -> None:
        if writer is not None:
            _append_journal(writer, key, summary)

    jobs = jobs or default_jobs()
    try:
        if jobs > 1 and len(todo) > 1:
            results.update(_run_grid_parallel(todo, jobs, on_done))
        else:
            for job in todo:
                summary = _run_one(job)
                results[_job_key(job)] = summary
                on_done(_job_key(job), summary)
    finally:
        if writer is not None:
            writer.close()
    return {
        (r.name, r.design, r.num_cores): r
        for job in grid
        for r in (results[_job_key(job)],)
    }
