"""Experiment-matrix runner.

Runs (workload × fence design × core count) grids, optionally in
parallel across processes (simulations are independent), and returns
lightweight picklable summaries the figure/table generators consume.

``REPRO_JOBS`` controls parallelism (default: up to 8 processes);
``REPRO_SCALE`` scales workload sizes (see ``workloads.base``).
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.params import FenceDesign
from repro.workloads.base import load_all_workloads, run_workload


@dataclass
class RunSummary:
    """Picklable summary of one workload run."""

    name: str
    group: str
    design: str
    num_cores: int
    cycles: int
    completed: bool
    #: cycle breakdown summed over cores
    busy: float
    fence_stall: float
    other_stall: float
    #: machine seed the run used — reports carry it so any row can be
    #: reproduced exactly from the report alone
    seed: int = 0
    #: flat stats (MachineStats.summary())
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return self.busy + self.fence_stall + self.other_stall

    @property
    def throughput(self) -> float:
        if not self.cycles:
            return 0.0
        return 1e6 * self.stats.get("txn_commits", 0) / self.cycles

    @property
    def txn_cycles_per_commit(self) -> float:
        commits = self.stats.get("txn_commits", 0)
        if not commits:
            return 0.0
        return self.stats.get("txn_cycles_total", 0.0) / commits


def _run_one(job: Tuple[str, str, int, float, int]) -> RunSummary:
    name, design_name, num_cores, scale, seed = job
    load_all_workloads()
    run = run_workload(
        name, FenceDesign[design_name], num_cores=num_cores,
        scale=scale, seed=seed,
    )
    stats = run.stats
    breakdown = stats.total_breakdown()
    flat = stats.summary()
    flat["txn_cycles_total"] = stats.txn_cycles
    flat["wee_sf_conversions"] = sum(stats.wee_sf_conversions)
    flat["wplus_recoveries"] = stats.wplus_recoveries
    flat["bounces"] = stats.bounces
    return RunSummary(
        name=name,
        group=run.group,
        design=str(run.design),
        num_cores=num_cores,
        cycles=run.cycles,
        completed=run.result.completed,
        seed=seed,
        busy=breakdown["busy"],
        fence_stall=breakdown["fence_stall"],
        other_stall=breakdown["other_stall"],
        stats=flat,
    )


def default_jobs() -> int:
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, min(8, (os.cpu_count() or 2) - 1))


def run_matrix(
    names: Sequence[str],
    designs: Sequence[FenceDesign],
    num_cores: int = 8,
    scale: float = 1.0,
    seed: int = 12345,
    core_counts: Optional[Sequence[int]] = None,
    jobs: Optional[int] = None,
) -> Dict[Tuple[str, str, int], RunSummary]:
    """Run the full grid; returns {(name, design, cores): summary}."""
    counts = list(core_counts) if core_counts else [num_cores]
    grid = [
        (name, design.name, cores, scale, seed)
        for name in names
        for design in designs
        for cores in counts
    ]
    jobs = jobs or default_jobs()
    results: List[RunSummary] = []
    if jobs > 1 and len(grid) > 1:
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(min(jobs, len(grid))) as pool:
            results = pool.map(_run_one, grid)
    else:
        results = [_run_one(job) for job in grid]
    return {
        (r.name, r.design, r.num_cores): r for r in results
    }
