"""Regeneration of the paper's figures (8-12).

Each ``figN_*`` function runs the experiment grid and returns a plain
data structure; ``render_figN`` turns it into the text report printed
by the benchmark harness.  Shape expectations from the paper (used by
the benches and recorded in EXPERIMENTS.md):

* Fig. 8  — CilkApps execution time: S+ spends ~13 % in fence stall;
  WS+/W+/Wee eliminate most of it; total time drops ~9 % on average.
* Fig. 9  — ustm throughput: WS+ +38 %, W+ +58 %, Wee +14 % over S+.
* Fig. 10 — ustm per-transaction cycles: S+ ~54 % fence stall; WS+ and
  W+ cut transaction cycles by ~24 % / ~35 %; Wee only ~11 %.
* Fig. 11 — STAMP execution time: WS+ −7 %, W+ −19 %, Wee −11 %;
  intruder favours W+ over WS+; labyrinth barely moves.
* Fig. 12 — fence-stall ratio vs S+ stays flat from 4 to 32 cores.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.common.params import FenceDesign
from repro.eval import report
from repro.eval.runner import RunSummary, run_matrix
from repro.workloads.base import load_all_workloads, workloads_in_group

#: design order used in every figure (the paper's bar order, left→right
#: is Wee, W+, WS+, S+; we print S+ first as the baseline)
DESIGNS = (
    FenceDesign.S_PLUS,
    FenceDesign.WS_PLUS,
    FenceDesign.W_PLUS,
    FenceDesign.WEE,
)

BASELINE = str(FenceDesign.S_PLUS)


def group_apps(group: str, limit: Optional[int] = None) -> List[str]:
    load_all_workloads()
    names = [cls.name for cls in workloads_in_group(group)]
    return names[:limit] if limit else names


# ---------------------------------------------------------------------------
# Figures 8 and 11 — execution time with cycle breakdown
# ---------------------------------------------------------------------------


def _time_breakdown_data(
    group: str,
    scale: float,
    num_cores: int,
    seed: int,
    apps: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
) -> dict:
    names = list(apps) if apps else group_apps(group)
    runs = run_matrix(names, DESIGNS, num_cores=num_cores, scale=scale,
                      seed=seed, jobs=jobs)
    entries = []
    averages: Dict[str, List[float]] = {str(d): [] for d in DESIGNS}
    stall_fracs: Dict[str, List[float]] = {str(d): [] for d in DESIGNS}
    for name in names:
        base = runs[(name, BASELINE, num_cores)]
        base_cycles = max(1, base.cycles)
        for design in DESIGNS:
            r = runs[(name, str(design), num_cores)]
            norm = r.cycles / base_cycles
            total = max(1.0, r.total)
            entries.append({
                "app": name,
                "design": str(design),
                "normalized_time": norm,
                # category sizes scaled so the bar length equals the
                # normalized execution time (the paper's presentation)
                "busy": norm * r.busy / total,
                "fence_stall": norm * r.fence_stall / total,
                "other_stall": norm * r.other_stall / total,
            })
            averages[str(design)].append(norm)
            stall_fracs[str(design)].append(r.fence_stall / total)
    return {
        "group": group,
        "apps": names,
        "seed": seed,
        "entries": entries,
        "avg_normalized_time": {
            d: report.mean(v) for d, v in averages.items()
        },
        "avg_fence_stall_fraction": {
            d: report.mean(v) for d, v in stall_fracs.items()
        },
    }


def fig8_cilkapps(scale: float = 1.0, num_cores: int = 8, seed: int = 12345,
                  apps: Optional[Sequence[str]] = None,
                  jobs: Optional[int] = None) -> dict:
    """Figure 8: execution time of CilkApps under S+/WS+/W+/Wee."""
    return _time_breakdown_data("cilk", scale, num_cores, seed, apps, jobs)


def fig11_stamp(scale: float = 1.0, num_cores: int = 8, seed: int = 12345,
                apps: Optional[Sequence[str]] = None,
                jobs: Optional[int] = None) -> dict:
    """Figure 11: execution time of STAMP under S+/WS+/W+/Wee."""
    return _time_breakdown_data("stamp", scale, num_cores, seed, apps, jobs)


def render_time_figure(data: dict, figure_name: str, paper_note: str) -> str:
    chart = report.render_breakdown_chart(
        data["entries"],
        f"{figure_name} — execution time of {data['group']} "
        f"(normalized to S+)",
    )
    avg_rows = [
        (d,
         f"{data['avg_normalized_time'][d]:.3f}",
         f"{100 * data['avg_fence_stall_fraction'][d]:.1f}%")
        for d in data["avg_normalized_time"]
    ]
    table = report.format_table(
        ("design", "avg normalized time", "avg fence-stall fraction"),
        avg_rows,
    )
    return f"{chart}\n\n{table}\n\npaper: {paper_note}"


# ---------------------------------------------------------------------------
# Figures 9 and 10 — ustm throughput and per-transaction breakdown
# ---------------------------------------------------------------------------


def fig9_fig10_ustm(scale: float = 1.0, num_cores: int = 8,
                    seed: int = 12345,
                    apps: Optional[Sequence[str]] = None,
                    jobs: Optional[int] = None) -> dict:
    """Figures 9 + 10 share one experiment (same runs, two views)."""
    names = list(apps) if apps else group_apps("ustm")
    runs = run_matrix(names, DESIGNS, num_cores=num_cores, scale=scale,
                      seed=seed, jobs=jobs)
    tput_entries, txn_entries = [], []
    tput_ratio: Dict[str, List[float]] = {str(d): [] for d in DESIGNS}
    txn_ratio: Dict[str, List[float]] = {str(d): [] for d in DESIGNS}
    for name in names:
        base = runs[(name, BASELINE, num_cores)]
        base_tput = max(base.throughput, 1e-9)
        # a commit-less run reports inf cycles/commit; treat it as "no
        # data" (0.0) here so one truncated row can't blow up the ratios
        base_txn = base.txn_cycles_per_commit
        base_txn = max(0.0 if math.isinf(base_txn) else base_txn, 1e-9)
        for design in DESIGNS:
            r = runs[(name, str(design), num_cores)]
            ratio = r.throughput / base_tput
            tput_entries.append({
                "app": name, "design": str(design), "throughput_ratio": ratio,
                "throughput": r.throughput,
                "commits": r.stats.get("txn_commits", 0),
                "aborts": r.stats.get("txn_aborts", 0),
            })
            tput_ratio[str(design)].append(ratio)
            # Fig 10: per-transaction cycles, broken down with the
            # machine-level category fractions (ustm time is almost
            # entirely transactional, see DESIGN.md).
            per_txn = r.txn_cycles_per_commit
            if math.isinf(per_txn):
                per_txn = 0.0
            total = max(1.0, r.total)
            norm = per_txn / base_txn
            entry = {
                "app": name, "design": str(design),
                "normalized_time": norm,
                "busy": norm * r.busy / total,
                "fence_stall": norm * r.fence_stall / total,
                "other_stall": norm * r.other_stall / total,
            }
            if r.attrib:
                # profiler attribution: *which* fence component the
                # stall is (drain vs bounce vs serialize vs recovery),
                # same normalization as the coarse buckets above
                entry["fence_components"] = {
                    path[len("fence_stall."):]: norm * value / total
                    for path, value in sorted(r.attrib.items())
                    if path.startswith("fence_stall.")
                    and not path.endswith(".total") and value
                }
            txn_entries.append(entry)
            txn_ratio[str(design)].append(norm)
    # machine attribution summed per design (fence components only):
    # the Fig.10 companion table naming where fence time actually goes
    fence_attrib: Dict[str, Dict[str, float]] = {}
    for name in names:
        for design in DESIGNS:
            r = runs[(name, str(design), num_cores)]
            if not r.attrib:
                continue
            acc = fence_attrib.setdefault(str(design), {})
            for path, value in r.attrib.items():
                if (path.startswith("fence_stall.")
                        and not path.endswith(".total") and value):
                    key = path[len("fence_stall."):]
                    acc[key] = acc.get(key, 0.0) + value
    return {
        "apps": names,
        "seed": seed,
        "throughput_entries": tput_entries,
        "txn_entries": txn_entries,
        "avg_throughput_ratio": {
            d: report.mean(v) for d, v in tput_ratio.items()
        },
        "avg_txn_cycles_ratio": {
            d: report.mean(v) for d, v in txn_ratio.items()
        },
        "fence_attrib": fence_attrib,
    }


def render_fig9(data: dict) -> str:
    chart = report.render_ratio_chart(
        [
            {"app": e["app"], "design": e["design"],
             "ratio": e["throughput_ratio"]}
            for e in data["throughput_entries"]
        ],
        "Figure 9 — transactional throughput of ustm (normalized to S+)",
        value_key="ratio",
    )
    table = report.format_table(
        ("design", "avg throughput vs S+"),
        [(d, f"{v:.2f}x") for d, v in data["avg_throughput_ratio"].items()],
    )
    return (f"{chart}\n\n{table}\n\n"
            "paper: WS+ +38%, W+ +58%, Wee +14% over S+")


def render_fig10(data: dict) -> str:
    chart = report.render_breakdown_chart(
        data["txn_entries"],
        "Figure 10 — per-transaction cycle breakdown of ustm "
        "(normalized to S+)",
    )
    table = report.format_table(
        ("design", "avg per-txn cycles vs S+"),
        [(d, f"{v:.2f}x") for d, v in data["avg_txn_cycles_ratio"].items()],
    )
    extra = ""
    fence_attrib = data.get("fence_attrib") or {}
    if fence_attrib:
        rows = []
        for design, comps in fence_attrib.items():
            total = sum(comps.values()) or 1.0
            top = sorted(comps.items(), key=lambda kv: -kv[1])[:3]
            rows.append((design, ", ".join(
                f"{k} {v / total:.0%}" for k, v in top)))
        extra = "\n\n" + report.format_table(
            ("design", "fence-stall attribution (top components)"), rows)
    return (f"{chart}\n\n{table}{extra}\n\n"
            "paper: S+ spends 54% of txn time in fence stall; avg txn "
            "takes 24%/35% fewer cycles in WS+/W+; Wee only 11% fewer")


# ---------------------------------------------------------------------------
# Figure 12 — scalability of fence-stall reduction
# ---------------------------------------------------------------------------

#: representative per-group subsets for the (expensive) scaling sweep
FIG12_APPS = {
    "cilk": ("fib", "bucket", "matmul"),
    "ustm": ("ReadNWrite1", "Tree", "MCAS"),
    "stamp": ("intruder", "vacation", "ssca2"),
}

FIG12_CORE_COUNTS = (4, 8, 16, 32)


def fig12_scalability(scale: float = 1.0, seed: int = 12345,
                      core_counts: Sequence[int] = FIG12_CORE_COUNTS,
                      groups: Sequence[str] = ("cilk", "ustm", "stamp"),
                      jobs: Optional[int] = None) -> dict:
    """Figure 12: (design fence-stall / S+ fence-stall) per core count."""
    designs = (FenceDesign.S_PLUS, FenceDesign.WS_PLUS,
               FenceDesign.W_PLUS, FenceDesign.WEE)
    series = []
    for group in groups:
        apps = FIG12_APPS[group]
        runs = run_matrix(apps, designs, scale=scale, seed=seed,
                          core_counts=list(core_counts), jobs=jobs)
        for design in designs[1:]:
            for cores in core_counts:
                ratios = []
                for app in apps:
                    base = runs[(app, BASELINE, cores)]
                    r = runs[(app, str(design), cores)]
                    if base.fence_stall > 0:
                        ratios.append(r.fence_stall / base.fence_stall)
                series.append({
                    "group": group,
                    "design": str(design),
                    "cores": cores,
                    "stall_ratio": report.mean(ratios),
                })
    return {"series": series, "core_counts": list(core_counts),
            "groups": list(groups), "seed": seed}


def render_fig12(data: dict) -> str:
    lines = ["Figure 12 — fence-stall time relative to S+ (%), by core count",
             "  (flat lines = the designs keep their effectiveness as the "
             "machine scales)"]
    by_key: Dict[tuple, Dict[int, float]] = {}
    for s in data["series"]:
        by_key.setdefault((s["group"], s["design"]), {})[s["cores"]] = \
            s["stall_ratio"]
    header = ["group-design"] + [f"P{c}" for c in data["core_counts"]]
    rows = []
    for (group, design), vals in sorted(by_key.items()):
        rows.append(
            [f"{group}-{design}"]
            + [f"{100 * vals.get(c, float('nan')):.0f}%"
               for c in data["core_counts"]]
        )
    lines.append(report.format_table(header, rows))
    lines.append("paper: ratios stay flat or rise only modestly with cores "
                 "(e.g. CilkApps-WS+ ~28% at every core count)")
    return "\n".join(lines)
