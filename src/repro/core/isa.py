"""The operations a simulated thread can yield to its core.

Workloads are Python generator functions.  Each ``yield`` hands the core
one of these operation descriptors; the value the generator receives
back is the operation's result (the loaded value for :class:`Load`, the
old value for :class:`AtomicRMW`, ``None`` otherwise).

Threads must be *deterministic* functions of these results (see
:mod:`repro.core.thread`): W+ rollback re-executes a thread prefix by
replaying the recorded results.

The op classes are hand-written ``__slots__`` value types rather than
frozen dataclasses: one is allocated per simulated operation, and a
frozen dataclass pays an ``object.__setattr__`` per field on every
construction.  They keep dataclass semantics — keyword construction,
field-tuple equality (class-checked), field-tuple hashing — and must be
treated as immutable even though Python no longer enforces it.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.common.params import FenceRole


class Load:
    """Read one word of simulated shared memory."""

    __slots__ = ("addr",)

    def __init__(self, addr: int):
        self.addr = addr

    def __repr__(self):
        return f"Load(addr={self.addr!r})"

    def __eq__(self, other):
        if other.__class__ is Load:
            return self.addr == other.addr
        return NotImplemented

    def __hash__(self):
        return hash((self.addr,))


class Store:
    """Write one word of simulated shared memory (retires into the WB)."""

    __slots__ = ("addr", "value")

    def __init__(self, addr: int, value: int):
        self.addr = addr
        self.value = value

    def __repr__(self):
        return f"Store(addr={self.addr!r}, value={self.value!r})"

    def __eq__(self, other):
        if other.__class__ is Store:
            return (self.addr, self.value) == (other.addr, other.value)
        return NotImplemented

    def __hash__(self):
        return hash((self.addr, self.value))


class Fence:
    """A memory fence, annotated with its asymmetric-group role.

    The active :class:`~repro.common.params.FenceDesign` decides whether
    this executes as an sf or a wf (``flavour_for``).
    """

    __slots__ = ("role",)

    def __init__(self, role: FenceRole = FenceRole.STANDARD):
        self.role = role

    def __repr__(self):
        return f"Fence(role={self.role!r})"

    def __eq__(self, other):
        if other.__class__ is Fence:
            return self.role == other.role
        return NotImplemented

    def __hash__(self):
        return hash((self.role,))


class AtomicRMW:
    """Atomic read-modify-write (exchange, fetch-add, CAS...).

    Executes with fence semantics under TSO: the write buffer drains
    first, then the RMW performs atomically at the memory system.  The
    generator receives the **old** value.

    ``op`` names the update: "xchg" (write operand), "add" (old +
    operand), "cas" (write ``operand[1]`` iff old == ``operand[0]``).
    """

    __slots__ = ("addr", "op", "operand")

    def __init__(self, addr: int, op: str, operand: object = 0):
        self.addr = addr
        self.op = op
        self.operand = operand

    def __repr__(self):
        return (f"AtomicRMW(addr={self.addr!r}, op={self.op!r}, "
                f"operand={self.operand!r})")

    def __eq__(self, other):
        if other.__class__ is AtomicRMW:
            return (self.addr, self.op, self.operand) == \
                (other.addr, other.op, other.operand)
        return NotImplemented

    def __hash__(self):
        return hash((self.addr, self.op, self.operand))

    def apply(self, old: int) -> int:
        if self.op == "xchg":
            return int(self.operand)
        if self.op == "add":
            return old + int(self.operand)
        if self.op == "cas":
            expected, new = self.operand
            return int(new) if old == expected else old
        raise ValueError(f"unknown RMW op {self.op!r}")


class Compute:
    """*instructions* non-memory instructions of local work."""

    __slots__ = ("instructions",)

    def __init__(self, instructions: int):
        self.instructions = instructions

    def __repr__(self):
        return f"Compute(instructions={self.instructions!r})"

    def __eq__(self, other):
        if other.__class__ is Compute:
            return self.instructions == other.instructions
        return NotImplemented

    def __hash__(self):
        return hash((self.instructions,))


class Mark:
    """Zero-time statistics marker (transaction committed, task run...).

    ``kind`` is one of the counters understood by the core:
    ``txn_commit``, ``txn_abort``, ``task_executed``, ``task_stolen``,
    ``txn_cycles_begin`` / ``txn_cycles_end`` (per-transaction cycle
    accounting for Figure 10).
    """

    __slots__ = ("kind", "amount")

    def __init__(self, kind: str, amount: int = 1):
        self.kind = kind
        self.amount = amount

    def __repr__(self):
        return f"Mark(kind={self.kind!r}, amount={self.amount!r})"

    def __eq__(self, other):
        if other.__class__ is Mark:
            return (self.kind, self.amount) == (other.kind, other.amount)
        return NotImplemented

    def __hash__(self):
        return hash((self.kind, self.amount))


class Note:
    """Zero-time, rollback-aware observation channel.

    The core appends ``payload`` to its notes list when the op is
    *dispatched* — replayed prefixes are not re-dispatched, and a W+
    recovery discards notes past the checkpoint.  Thread code must use
    this (never Python-side mutation) for any observable side effect:
    plain list appends would be duplicated by checkpoint replay.
    """

    __slots__ = ("payload",)

    def __init__(self, payload: object):
        self.payload = payload

    def __repr__(self):
        return f"Note(payload={self.payload!r})"

    def __eq__(self, other):
        if other.__class__ is Note:
            return self.payload == other.payload
        return NotImplemented

    def __hash__(self):
        return hash((self.payload,))


#: Operations that access the simulated shared memory.
MEMORY_OPS = (Load, Store, AtomicRMW)
