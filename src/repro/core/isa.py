"""The operations a simulated thread can yield to its core.

Workloads are Python generator functions.  Each ``yield`` hands the core
one of these operation descriptors; the value the generator receives
back is the operation's result (the loaded value for :class:`Load`, the
old value for :class:`AtomicRMW`, ``None`` otherwise).

Threads must be *deterministic* functions of these results (see
:mod:`repro.core.thread`): W+ rollback re-executes a thread prefix by
replaying the recorded results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.common.params import FenceRole


@dataclass(frozen=True)
class Load:
    """Read one word of simulated shared memory."""

    addr: int


@dataclass(frozen=True)
class Store:
    """Write one word of simulated shared memory (retires into the WB)."""

    addr: int
    value: int


@dataclass(frozen=True)
class Fence:
    """A memory fence, annotated with its asymmetric-group role.

    The active :class:`~repro.common.params.FenceDesign` decides whether
    this executes as an sf or a wf (``flavour_for``).
    """

    role: FenceRole = FenceRole.STANDARD


@dataclass(frozen=True)
class AtomicRMW:
    """Atomic read-modify-write (exchange, fetch-add, CAS...).

    Executes with fence semantics under TSO: the write buffer drains
    first, then the RMW performs atomically at the memory system.  The
    generator receives the **old** value.

    ``op`` names the update: "xchg" (write operand), "add" (old +
    operand), "cas" (write ``operand[1]`` iff old == ``operand[0]``).
    """

    addr: int
    op: str
    operand: object = 0

    def apply(self, old: int) -> int:
        if self.op == "xchg":
            return int(self.operand)
        if self.op == "add":
            return old + int(self.operand)
        if self.op == "cas":
            expected, new = self.operand
            return int(new) if old == expected else old
        raise ValueError(f"unknown RMW op {self.op!r}")


@dataclass(frozen=True)
class Compute:
    """*instructions* non-memory instructions of local work."""

    instructions: int


@dataclass(frozen=True)
class Mark:
    """Zero-time statistics marker (transaction committed, task run...).

    ``kind`` is one of the counters understood by the core:
    ``txn_commit``, ``txn_abort``, ``task_executed``, ``task_stolen``,
    ``txn_cycles_begin`` / ``txn_cycles_end`` (per-transaction cycle
    accounting for Figure 10).
    """

    kind: str
    amount: int = 1


@dataclass(frozen=True)
class Note:
    """Zero-time, rollback-aware observation channel.

    The core appends ``payload`` to its notes list when the op is
    *dispatched* — replayed prefixes are not re-dispatched, and a W+
    recovery discards notes past the checkpoint.  Thread code must use
    this (never Python-side mutation) for any observable side effect:
    plain list appends would be duplicated by checkpoint replay.
    """

    payload: object


#: Operations that access the simulated shared memory.
MEMORY_OPS = (Load, Store, AtomicRMW)
