"""The Bypass Set (BS).

Per WeeFence (paper §2.2) and §3.2: when a post-weak-fence access
completes before the fence does, its address enters the core's BS.  The
cache controller checks every incoming coherence request against the BS
**before** the cache (so monitoring survives evictions, §5.1) and, on a
line-granularity match, rejects (bounces) invalidating requests.

* WS+/W+/Wee keep line addresses only.
* SW+ additionally keeps the accessed word mask so Conditional Order
  can distinguish true from false sharing (§3.3.2).

Entries are tagged with the id of the youngest incomplete fence at
insertion time; completing fence *f* clears every entry tagged <= f
(fences complete in order under TSO's FIFO write-buffer drain).

A Bloom-filter front end (mentioned in §3.2 to cut comparison energy)
is modeled functionally: a membership fast-path that can only produce
false positives, backed by the exact entry list.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple


class BloomFilter:
    """Tiny counting-free Bloom filter over line addresses.

    Rebuilt on clears (real hardware would use epochs or counters); the
    exact list below it keeps correctness independent of this filter.
    """

    def __init__(self, bits: int = 256, hashes: int = 2):
        self.bits = bits
        self.hashes = hashes
        self._word = 0

    def _positions(self, line: int) -> Tuple[int, ...]:
        h = line * 0x9E3779B1
        x = h >> 17
        bits = self.bits
        if self.hashes == 2:
            return ((h ^ x) % bits, ((h >> 8) ^ x) % bits)
        return tuple(
            ((h >> (i * 8)) ^ x) % bits for i in range(self.hashes)
        )

    def add(self, line: int) -> None:
        # checked/updated on every incoming coherence request: the
        # common hashes=2 shape is inlined (no tuple, no loop) — same
        # positions as the generic ``_positions`` formula.
        if self.hashes == 2:
            h = line * 0x9E3779B1
            x = h >> 17
            bits = self.bits
            self._word |= (1 << ((h ^ x) % bits)) | (1 << (((h >> 8) ^ x) % bits))
            return
        word = self._word
        for pos in self._positions(line):
            word |= 1 << pos
        self._word = word

    def maybe_contains(self, line: int) -> bool:
        word = self._word
        if self.hashes == 2:
            h = line * 0x9E3779B1
            x = h >> 17
            bits = self.bits
            return (word >> ((h ^ x) % bits)) & 1 == 1 and \
                (word >> (((h >> 8) ^ x) % bits)) & 1 == 1
        for pos in self._positions(line):
            if not word & (1 << pos):
                return False
        return True

    def clear(self) -> None:
        self._word = 0


class BSEntry:
    __slots__ = ("line", "word_mask", "fence_id")

    def __init__(self, line: int, word_mask: int, fence_id: int):
        self.line = line
        self.word_mask = word_mask
        self.fence_id = fence_id


class BypassSet:
    """One core's Bypass Set."""

    def __init__(self, capacity: int, fine_grain: bool = False):
        self.capacity = capacity
        #: keep per-word masks (SW+)
        self.fine_grain = fine_grain
        self._entries: Dict[int, BSEntry] = {}
        self._bloom = BloomFilter()
        #: True if this BS has bounced an external request since the
        #: last clear (one of the two W+ deadlock-suspicion conditions).
        self.bounced_since_clear = False

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    def add(self, line: int, word_mask: int, fence_id: int) -> None:
        """Record a completed post-fence access.

        The caller must check ``full`` first (and stall on overflow, as
        the core does) unless *line* is already tracked.
        """
        entry = self._entries.get(line)
        if entry is None:
            self._entries[line] = BSEntry(line, word_mask, fence_id)
            self._bloom.add(line)
        else:
            entry.word_mask |= word_mask
            # keep the entry alive until the *youngest* covering fence
            entry.fence_id = max(entry.fence_id, fence_id)

    def match_line(self, line: int) -> bool:
        """Line-granularity check applied to incoming coherence requests."""
        if not self._bloom.maybe_contains(line):
            return False
        return line in self._entries

    def true_sharing(self, line: int, word_mask: int) -> bool:
        """Would this request's words overlap the BS's accessed words?

        Only meaningful in fine-grain (SW+) mode; coarse-grain BSs treat
        every line match as potentially true sharing.
        """
        entry = self._entries.get(line)
        if entry is None:
            return False
        if not self.fine_grain:
            return True
        return bool(entry.word_mask & word_mask)

    def note_bounce(self) -> None:
        self.bounced_since_clear = True

    def clear_upto(self, fence_id: int) -> int:
        """Drop entries belonging to fences <= *fence_id*; returns count."""
        doomed = [l for l, e in self._entries.items() if e.fence_id <= fence_id]
        for line in doomed:
            del self._entries[line]
        if doomed:
            self._rebuild_bloom()
        if not self._entries:
            self.bounced_since_clear = False
        return len(doomed)

    def clear_all(self) -> int:
        """Drop everything (W+ recovery).  Returns entries dropped."""
        n = len(self._entries)
        self._entries.clear()
        self._bloom.clear()
        self.bounced_since_clear = False
        return n

    def _rebuild_bloom(self) -> None:
        self._bloom.clear()
        for line in self._entries:
            self._bloom.add(line)

    def lines(self):
        return self._entries.keys()
