"""The core (CPU) model.

Consumes operations from a :class:`~repro.core.thread.SimThread` and
turns them into timed activity against the memory system:

* ``Compute`` — ``n / issue_width`` busy cycles.
* ``Load`` — write-buffer forwarding, L1 hit (fully pipelined: one
  issue slot), or a GetS miss whose latency beyond the issue slot is
  *Other Stall*.  While a weak fence is incomplete, the performed
  load's line enters the Bypass Set (stalling if the BS is full) and
  Wee's RemotePS / directory-confinement checks apply.
* ``Store`` — retires into the TSO write buffer (stall on full =
  *Other Stall*); a drain engine merges entries one at a time, retrying
  bounced transactions with back-off and the design's Order /
  Conditional-Order promotions.
* ``Fence`` — sf: block until the pre-fence stores merge, charging
  *Fence Stall* (+ ``sf_base_cycles``); wf: retire immediately and
  track a :class:`~repro.fences.base.PendingFence` (checkpointing the
  thread under W+).
* ``AtomicRMW`` — drains the write buffer (fence semantics under TSO),
  then read-modify-writes atomically at the memory system.

Timing/accounting invariant: every simulated cycle of a core belongs to
exactly one of Busy / Fence Stall / Other Stall, matching the paper's
stacked bars.

A micro-batch fast path executes runs of purely-local operations
(compute, WB hits, L1 hits with no fence outstanding) inside a single
event to keep the Python event count manageable; `batch_cycles = 0`
disables it for interleaving-exact runs (litmus tests).

W+ recovery uses *epoch guards*: every thread-continuation callback
captures the core's rollback epoch and becomes a no-op if a recovery
intervened, so in-flight load replies cannot resurrect squashed work.
"""

from __future__ import annotations

from math import ceil as _ceil
from typing import Callable, List, Optional

from repro.common.events import EventQueue
from repro.common.params import FenceFlavour, MachineParams
from repro.common.stats import MachineStats
from repro.core import isa
from repro.core.thread import SimThread
from repro.fences.base import FencePolicy, PendingFence, make_policy
from repro.mem.l1controller import L1Controller
from repro.mem.memory import MemoryImage
from repro.mem.writebuffer import StoreEntry, WriteBuffer


def _no_guard(fn: Callable) -> Callable:
    """Identity stand-in for :meth:`Core._guard` on designs without W+
    rollback: the epoch can never advance, so the per-continuation
    guarding closure would always fall through to *fn*."""
    return fn


class _SfWait:
    """Bookkeeping for a blocking wait on write-buffer drain."""

    __slots__ = ("store_id", "callback")

    def __init__(self, store_id: int, callback: Callable[[], None]):
        self.store_id = store_id
        self.callback = callback


class Core:
    """One simulated processor."""

    def __init__(
        self,
        core_id: int,
        params: MachineParams,
        stats: MachineStats,
        queue: EventQueue,
        l1: L1Controller,
        image: MemoryImage,
        machine,
    ):
        self.core_id = core_id
        self.params = params
        self.stats = stats
        self.queue = queue
        self.l1 = l1
        self.image = image
        self.machine = machine
        #: observability hook (repro.obs.Tracer) — None when disabled;
        #: every emit site guards on ``self.tracer is None`` so the
        #: untraced path costs one attribute load + identity test.
        self.tracer = machine.tracer
        #: fault-injection hook (repro.faults.FaultInjector) — cached
        #: like the tracer; None keeps the fault-free path untouched.
        self.faults = machine.faults
        #: protocol-sanitizer hook (repro.sanitizer.Sanitizer) — cached
        #: like the tracer; None keeps the unsanitized path untouched.
        self.sanitizer = machine.sanitizer
        #: cycle-attribution hook (repro.obs.attrib.CycleAttribution) —
        #: cached like the tracer; None keeps the unprofiled path
        #: untouched.  All attrib sites live off the _advance hot loop.
        self.attrib = machine.attrib
        self.amap = l1.amap
        self.bs = l1.bs
        self.wb = WriteBuffer(params.write_buffer_entries)
        self.policy: FencePolicy = make_policy(params.fence_design, self)
        self.thread: Optional[SimThread] = None
        self.finished = True  # no thread bound yet
        #: cached "(thread is None or finished) and wb.empty" — the
        #: machine counts done cores for its wake-on-event stop;
        #: resynced by Machine.run, updated at transitions only.
        self._done = False
        #: a W+ rollback's drain-before-resume window is in progress
        self.recovering = False

        self._issue_slot = 1.0 / params.issue_width
        # address-geometry scalars for inline word/line arithmetic on
        # the per-op fast path (equivalent to amap.word_of/line_of)
        self._word_bytes = self.amap.word_bytes
        self._line_bytes = self.amap.line_bytes
        self._fence_counter = 0
        #: incomplete weak fences, oldest first
        self.pending_fences: List[PendingFence] = []
        self._drain_busy = False
        self._sf_wait: Optional[_SfWait] = None
        self._wb_full_waiter: Optional[Callable[[], None]] = None
        #: (retry_fn, t0) for a load stalled by a Wee check / full BS
        self._stalled_load: Optional[tuple] = None
        #: rollback epoch for guarding stale continuations (W+)
        self._epoch = 0
        #: id of the newest store known to have merged (fence completion)
        self._last_merged_store_id = 0
        self._dl_timer = None
        self._txn_t0: Optional[float] = None
        # single-slot continuation state for the pre-bound fast-path
        # callbacks below.  A core is a sequential machine: at most one
        # control-flow event (batch continuation or slow-path op) is in
        # flight at a time, so the pending op/result can live on the
        # instance instead of in a fresh closure per event.  W+ recovery
        # cancels the pending event outright (see ``_recover``), which
        # replaces the epoch guard for these continuations.
        self._cont_ev = None
        self._cont_result = None
        self._cont_op = None
        self._cb_advance = self._advance_cont
        self._cb_exec_load = self._exec_load_cont
        self._cb_exec_store_blocked = self._exec_store_blocked_cont
        self._cb_exec_fence = self._exec_fence_cont
        self._cb_exec_rmw = self._exec_rmw_cont
        self._cb_drain_merged = self._drain_merged
        self._cb_drain_bounced = self._drain_bounced
        # the flat kernel interns registered callbacks as integer
        # handler ids (table-driven dispatch); the object kernel has no
        # register_handler and stores the callables as-is either way
        register = getattr(queue, "register_handler", None)
        if register is not None:
            for cb in (self._cb_advance, self._cb_exec_load,
                       self._cb_exec_store_blocked, self._cb_exec_fence,
                       self._cb_exec_rmw, self._cb_drain_merged,
                       self._cb_drain_bounced):
                register(cb)
        #: progress signals for the no-progress watchdog
        self.ops_committed = 0
        self.stores_merged = 0
        #: rollback-aware observations collected via ops.Note
        self.notes: List[tuple] = []
        #: (po, kind, delta) journal to reverse Marks on W+ recovery
        self._mark_journal: List[tuple] = []
        #: pending (store_id, table) C-fence registrations to clear
        self._cfence_clears: List[tuple] = []

        if self.policy.needs_deadlock_monitor:
            self.l1.on_bs_bounce = self._check_deadlock_monitor
        if not (self.policy.needs_checkpoint
                or self.policy.needs_deadlock_monitor):
            # only a W+ rollback bumps _epoch; without one every
            # continuation guard is a tautology — skip the closures
            self._guard = _no_guard

    # ------------------------------------------------------------------
    # thread binding / start
    # ------------------------------------------------------------------

    def bind(self, thread: SimThread) -> None:
        self.thread = thread
        self.finished = False

    def start(self) -> None:
        if self.thread is None:
            return
        self.queue.schedule(0, self._guard(lambda: self._advance(None)), "cpu.start")

    # ------------------------------------------------------------------
    # epoch guard (W+ recovery safety)
    # ------------------------------------------------------------------

    def _guard(self, fn: Callable) -> Callable:
        epoch = self._epoch

        def guarded(*args):
            if self._epoch == epoch:
                fn(*args)

        return guarded

    # ------------------------------------------------------------------
    # main execution loop
    # ------------------------------------------------------------------

    def _advance(self, result) -> None:
        """Consume ops until one needs global interaction or the
        micro-batch window closes, then schedule the continuation.

        This is the simulator's innermost loop (one iteration per
        committed operation), so everything it touches repeatedly is
        bound to a local and ops dispatch on exact type — the ISA op
        classes are final, making ``__class__ is`` equivalent to
        ``isinstance`` here.
        """
        elapsed = 0.0
        budget = self.params.batch_cycles
        thread = self.thread
        next_op = thread.next_op
        cid = self.core_id
        stats = self.stats
        instructions = stats.instructions
        breakdown = stats.breakdown[cid]
        issue_slot = self._issue_slot
        pending_fences = self.pending_fences
        wb_forward = self.wb.forward_entry
        wb = self.wb
        wb_cap = wb.capacity
        word_b = self._word_bytes
        line_b = self._line_bytes
        cache_lookup = self.l1.cache.lookup
        image_read = self.image.read
        schedule = self.queue.schedule
        recorder = self.machine.recorder
        Compute = isa.Compute
        Load = isa.Load
        Store = isa.Store
        while True:
            op = next_op(result)
            result = None
            self.ops_committed += 1
            if op is None:
                self._finish_thread(elapsed)
                return

            cls = op.__class__
            if cls is Compute:
                n = op.instructions
                instructions[cid] += n
                cycles = n * issue_slot
                breakdown.busy += cycles
                elapsed += cycles
            elif cls is Load:
                a = op.addr
                word = a - (a % word_b)
                # with a fence outstanding the slow path decides
                # stall-vs-BS-tracked-forward; no fast path applies
                fwd = wb_forward(word) if not pending_fences else None
                if fwd is not None:
                    instructions[cid] += 1
                    breakdown.busy += issue_slot
                    elapsed += 1.0  # store-to-load forwarding latency
                    if recorder is not None:
                        recorder.note_forwarded(
                            cid, thread._ops, fwd.word, fwd.value, fwd.po
                        )
                    result = fwd.value
                elif not pending_fences and \
                        cache_lookup(a - (a % line_b)) is not None:
                    # L1 hit with no fence outstanding: fully pipelined
                    instructions[cid] += 1
                    breakdown.busy += issue_slot
                    stats.l1_hits += 1
                    elapsed += issue_slot
                    if recorder is not None:
                        recorder.note_po(cid, thread._ops)
                    result = image_read(word, cid)
                else:
                    self._cont_op = op
                    self._cont_ev = schedule(
                        _ceil(elapsed), self._cb_exec_load, "cpu.cont")
                    return
            elif cls is Store:
                if len(wb._entries) >= wb_cap:
                    self._cont_op = op
                    self._cont_ev = schedule(
                        _ceil(elapsed), self._cb_exec_store_blocked,
                        "cpu.cont")
                    return
                self._retire_store(op)
                elapsed += issue_slot
            elif cls is isa.Mark:
                self._handle_mark(op, elapsed)
            elif cls is isa.Note:
                self.notes.append((thread._ops, op.payload))
            elif cls is isa.Fence:
                self._cont_op = op
                self._cont_ev = schedule(
                    _ceil(elapsed), self._cb_exec_fence, "cpu.cont")
                return
            elif cls is isa.AtomicRMW:
                self._cont_op = op
                self._cont_ev = schedule(
                    _ceil(elapsed), self._cb_exec_rmw, "cpu.cont")
                return
            else:
                raise TypeError(f"thread {thread.tid} yielded {op!r}")

            if budget and elapsed >= budget:
                self._cont_result = result
                self._cont_ev = schedule(
                    _ceil(elapsed), self._cb_advance, "cpu.cont")
                return
            if not budget:
                # batching disabled: one op per event
                self._cont_result = result
                self._cont_ev = schedule(
                    _ceil(max(elapsed, 1.0)), self._cb_advance, "cpu.cont")
                return

    def _later(self, delay: float, fn: Callable[[], None]) -> None:
        self.queue.schedule(_ceil(delay), self._guard(fn), "cpu.cont")

    # --- pre-bound continuation callbacks (zero-allocation fast path).
    # Each consumes the single-slot state set where it was scheduled.

    def _advance_cont(self) -> None:
        self._cont_ev = None
        result, self._cont_result = self._cont_result, None
        self._advance(result)

    def _exec_load_cont(self) -> None:
        self._cont_ev = None
        op, self._cont_op = self._cont_op, None
        self._exec_load(op)

    def _exec_store_blocked_cont(self) -> None:
        self._cont_ev = None
        op, self._cont_op = self._cont_op, None
        self._exec_store_blocked(op)

    def _exec_fence_cont(self) -> None:
        self._cont_ev = None
        op, self._cont_op = self._cont_op, None
        self._exec_fence(op)

    def _exec_rmw_cont(self) -> None:
        self._cont_ev = None
        op, self._cont_op = self._cont_op, None
        self._exec_rmw(op)

    def _finish_thread(self, elapsed: float) -> None:
        self.finished = True
        self._refresh_done()
        self.queue.schedule(
            _ceil(elapsed),
            lambda: self.machine.thread_finished(self),
            "cpu.done",
        )

    def _refresh_done(self) -> None:
        """Report a done/not-done transition to the machine.

        Called wherever doneness can flip: the thread finishing, the
        write buffer draining its last store, or a W+ rollback
        resurrecting a finished thread.  The machine counts done cores
        and stops the event loop when all of them are (wake-on-event
        replacement for polling ``Machine._all_done`` per event).
        """
        done = (self.thread is None or self.finished) and not self.wb._entries
        if done != self._done:
            self._done = done
            self.machine.core_done_changed(done)

    # ------------------------------------------------------------------
    # marks (zero-time statistics)
    # ------------------------------------------------------------------

    _MARK_COUNTERS = {
        "txn_commit": "txn_commits",
        "txn_abort": "txn_aborts",
        "task_executed": "tasks_executed",
        "task_stolen": "tasks_stolen",
    }

    def _handle_mark(self, op: isa.Mark, elapsed: float) -> None:
        now = self.queue.now + elapsed
        po = self.thread._ops
        journal = self.policy.needs_checkpoint
        if op.kind in self._MARK_COUNTERS:
            attr = self._MARK_COUNTERS[op.kind]
            setattr(self.stats, attr, getattr(self.stats, attr) + op.amount)
            if journal:
                self._mark_journal.append((po, attr, op.amount))
        elif op.kind == "txn_cycles_begin":
            self._txn_t0 = now
        elif op.kind == "txn_cycles_end":
            if self._txn_t0 is not None:
                delta = now - self._txn_t0
                self.stats.txn_cycles += delta
                self._txn_t0 = None
                if journal:
                    self._mark_journal.append((po, "txn_cycles", delta))
        else:
            raise ValueError(f"unknown Mark kind {op.kind!r}")

    # ------------------------------------------------------------------
    # stores and the drain engine
    # ------------------------------------------------------------------

    def _note_po(self, po: int) -> None:
        """Tell the SC-violation recorder (if any) the program-order
        index of the access about to touch the memory image."""
        recorder = self.machine.recorder
        if recorder is not None:
            recorder.note_po(self.core_id, po)

    def _note_forwarded(self, entry: StoreEntry, po: int) -> None:
        """Report a write-buffer-forwarded load to the SCV recorder;
        forwarded loads never reach the memory image observer."""
        recorder = self.machine.recorder
        if recorder is not None:
            recorder.note_forwarded(
                self.core_id, po, entry.word, entry.value, entry.po
            )

    def _retire_store(self, op: isa.Store) -> None:
        a = op.addr
        word = a - (a % self._word_bytes)
        cid = self.core_id
        stats = self.stats
        stats.instructions[cid] += 1
        stats.breakdown[cid].busy += self._issue_slot
        entry = self.wb.push(word, op.value, word - (word % self._line_bytes))
        entry.po = self.thread._ops
        self._kick_drain()

    def _exec_store_blocked(self, op: isa.Store) -> None:
        """Retire a store once a write-buffer slot frees up."""
        t0 = self.queue.now

        def on_slot():
            waited = self.queue.now - t0
            self.stats.add_other_stall(self.core_id, waited)
            if waited:
                if self.attrib is not None:
                    self.attrib.wb_full(self.core_id, waited)
                if self.tracer is not None:
                    self.tracer.wb_full_stall(self.core_id, t0)
            self._retire_store(op)
            self._advance(None)

        if not self.wb.full:
            on_slot()
            return
        self._wb_full_waiter = self._guard(on_slot)
        self._kick_drain()

    def _kick_drain(self) -> None:
        if self._drain_busy or not self.wb._entries:
            return
        self._drain_busy = True
        entry = self.wb._entries[0]
        entry.issued = True
        self._issue_head(entry)

    def _issue_head(self, entry: StoreEntry) -> None:
        # only the head store is ever in flight, so the completion
        # callbacks are pre-bound methods that re-read the head instead
        # of per-issue closures capturing the entry.
        self.l1.issue_store(
            entry,
            on_done=self._cb_drain_merged,
            on_bounce=self._cb_drain_bounced,
        )

    def _drain_merged(self) -> None:
        entry = self.wb.pop_head()
        self._drain_busy = False
        self.stores_merged += 1
        if entry.bouncing:
            if self.tracer is not None:
                self.tracer.store_chain_end(self.core_id, entry.store_id)
            if self.attrib is not None:
                self.attrib.chain_close(self.core_id)
        self._on_store_completed(entry.store_id)
        self._kick_drain()
        self._refresh_done()

    def _drain_bounced(self) -> None:
        entry = self.wb._entries[0]  # the head: the only issued store
        if not entry.bouncing:
            self.stats.bounced_writes += 1
            if self.attrib is not None:
                self.attrib.chain_open(self.core_id)
        entry.bouncing = True
        entry.retries += 1
        self.stats.write_retries += 1
        if self.tracer is not None:
            self.tracer.store_bounce(
                self.core_id, entry.store_id, entry.word, entry.line,
                entry.retries, entry.ordered,
            )
        self.policy.on_pre_store_bounce(entry)
        self._check_deadlock_monitor()
        delay = self.params.bounce_retry_cycles
        if self.faults is not None:
            delay = self.faults.retry_backoff(entry.retries, delay)
        self.queue.schedule(
            delay,
            lambda: self._retry_head(entry),
            "cpu.store_retry",
        )

    def _retry_head(self, entry: StoreEntry) -> None:
        # the entry is still the head (FIFO; it never merged)
        if self.wb.head() is entry:
            self._issue_head(entry)
        else:  # pragma: no cover - defensive
            self._drain_busy = False
            self._kick_drain()

    def _on_store_completed(self, store_id: int) -> None:
        """A store merged: complete fences, wake drain waiters."""
        self._last_merged_store_id = max(self._last_merged_store_id, store_id)
        self._complete_ready_fences()
        if self._cfence_clears:
            due = [t for sid, t in self._cfence_clears if sid <= store_id]
            if due:
                self._cfence_clears = [
                    (sid, t) for sid, t in self._cfence_clears
                    if sid > store_id
                ]
                for table in due:
                    table.clear(self.core_id)
        if not self.pending_fences and self._mark_journal:
            # no rollback can reach behind this point anymore
            self._mark_journal.clear()
        if self._stalled_load is not None:
            self.retry_stalled_load()
        if self._sf_wait is not None and self._sf_wait.store_id <= store_id:
            wait, self._sf_wait = self._sf_wait, None
            wait.callback()
        if self._wb_full_waiter is not None and \
                len(self.wb._entries) < self.wb.capacity:
            waiter, self._wb_full_waiter = self._wb_full_waiter, None
            waiter()

    def _complete_ready_fences(self) -> None:
        while self.pending_fences:
            pf = self.pending_fences[0]
            if pf.last_store_id > self._last_merged_store_id:
                break
            if self.policy.completion_blocked(pf):
                break  # e.g. Wee waiting for its GRT acknowledgment
            self.pending_fences.pop(0)
            self.stats.sample_bs_occupancy(len(self.bs))
            if self.tracer is not None:
                self.tracer.wf_complete(self.core_id, pf.fence_id, len(self.bs))
            self.bs.clear_upto(pf.fence_id)
            self.policy.on_wf_complete(pf)
            if self.sanitizer is not None:
                self.sanitizer.on_core_transition(self)

    def recheck_fence_completion(self) -> None:
        """Re-run fence completion after an external unblock event
        (the Wee GRT acknowledgment arriving)."""
        self._complete_ready_fences()
        if self._stalled_load is not None:
            self.retry_stalled_load()

    # ------------------------------------------------------------------
    # loads (slow path: misses, or any load under an incomplete fence)
    # ------------------------------------------------------------------

    def _exec_load(self, op: isa.Load) -> None:
        word = self.amap.word_of(op.addr)
        reason = self.policy.load_stall_check(op.addr)
        if reason is not None:
            # an sf blocks later loads outright — forwarding past an
            # incomplete fence would leak the load ahead of the drain
            self._stall_load(lambda: self._exec_load(op), reason)
            return
        fwd = self.wb.forward_entry(word)
        if fwd is not None:
            if self.pending_fences:
                # a forwarded post-wf load completes early like any
                # other: its line must enter the BS so conflicting
                # remote writes bounce until the group completes
                line = self.amap.line_of(word)
                if self.bs.full and not self.bs.match_line(line):
                    self.stats.bs_overflow_stalls += 1
                    self._stall_load(lambda: self._exec_load(op), "bs_full")
                    return
                self.bs.add(
                    line,
                    self.amap.word_mask(word),
                    self.pending_fences[-1].fence_id,
                )
                self.stats.bs_insertions += 1
            self.stats.instructions[self.core_id] += 1
            self.stats.breakdown[self.core_id].busy += self._issue_slot
            self._note_forwarded(fwd, self.thread._ops)
            self._cont_result = fwd.value
            self._cont_ev = self.queue.schedule(1, self._cb_advance, "cpu.cont")
            return
        t0 = self.queue.now
        po = self.thread._ops
        self.stats.instructions[self.core_id] += 1
        self.stats.breakdown[self.core_id].busy += self._issue_slot

        def on_done(was_hit: bool) -> None:
            latency = self.queue.now - t0
            stall = latency - self._issue_slot
            if stall < 0.0:
                stall = 0.0
            self.stats.breakdown[self.core_id].other_stall += stall
            if stall > 0.0:
                if self.attrib is not None:
                    self.attrib.mem(self.core_id, stall)
                if self.tracer is not None:
                    self.tracer.mem_stall(self.core_id, t0, stall)
            self._load_performed(op, word, po)

        self.l1.read(op.addr, self._guard(on_done))

    def _load_performed(self, op: isa.Load, word: int, po: int) -> None:
        """The load's data is back; retire it (BS insertion if post-wf)."""
        if self.pending_fences:
            if self.l1.cache.lookup(self.amap.line_of(word), touch=False) is None:
                # an invalidation landed between the load reading the
                # line and the BS insertion becoming visible.  The L1
                # port serializes those in hardware; model it by
                # replaying the load (it re-fetches, and the refetched
                # line enters the BS before any later INV can hit it).
                self.stats.load_replays += 1
                self._exec_load(op)
                return
            if self.bs.full and not self.bs.match_line(self.amap.line_of(word)):
                # cannot track another line: the load waits for a fence
                # to complete and clear BS space (WeeFence behaviour).
                self.stats.bs_overflow_stalls += 1
                self._stall_load(lambda: self._load_performed(op, word, po),
                                 "bs_full")
                return
            self.bs.add(
                self.amap.line_of(word),
                self.amap.word_mask(word),
                self.pending_fences[-1].fence_id,
            )
            self.stats.bs_insertions += 1
        self._note_po(po)
        value = self.image.read(word, self.core_id)
        self._advance(value)

    def _stall_load(self, retry: Callable[[], None],
                    reason: str = "fence") -> None:
        """Park a load until a fence completes (fence-induced stall)."""
        self._stalled_load = (self._guard(retry), self.queue.now, reason)

    def retry_stalled_load(self) -> None:
        """Re-attempt a parked load (fence completed / RemotePS arrived)."""
        if self._stalled_load is None:
            return
        retry, t0, reason = self._stalled_load
        self._stalled_load = None
        self.stats.breakdown[self.core_id].fence_stall += self.queue.now - t0
        if self.tracer is not None:
            self.tracer.load_stall(self.core_id, t0, reason)
        if self.attrib is not None:
            self.attrib.load_stall(self.core_id, reason, self.queue.now - t0)
        retry()

    # ------------------------------------------------------------------
    # fences
    # ------------------------------------------------------------------

    def _exec_fence(self, op: isa.Fence) -> None:
        self.stats.instructions[self.core_id] += 1
        self.stats.breakdown[self.core_id].busy += self._issue_slot
        flavour = self.policy.flavour(op.role)
        if flavour is FenceFlavour.SF:
            self.stats.sf_executed[self.core_id] += 1
            custom = self.policy.custom_strong_fence
            if custom is not None:
                if self.tracer is None:
                    custom(self._guard(lambda: self._advance(None)))
                else:
                    self.tracer.sf_begin(self.core_id)

                    def sf_done():
                        self.tracer.sf_end(self.core_id)
                        self._advance(None)

                    custom(self._guard(sf_done))
                return
            if self.tracer is not None:
                self.tracer.sf_begin(self.core_id)
            if self.attrib is not None:
                self.attrib.sf_begin(self.core_id)
            self._run_strong_fence()
            return
        # weak fence
        if not self.wb._entries:
            # no pending pre-fence stores: the fence completes at
            # retirement for every design (nothing to reorder past).
            self.stats.wf_executed[self.core_id] += 1
            if self.tracer is not None:
                self.tracer.wf_trivial(self.core_id)
            self._cont_ev = self.queue.schedule(1, self._cb_advance, "cpu.cont")
            return
        self._fence_counter += 1
        pf = PendingFence(
            fence_id=self._fence_counter,
            last_store_id=self.wb.newest_store_id(),
        )
        if not self.policy.on_wf_retire(pf):
            # Wee confinement failure: execute as a conventional fence
            self.stats.sf_executed[self.core_id] += 1
            self.stats.wee_sf_conversions[self.core_id] += 1
            if self.tracer is not None:
                self.tracer.sf_begin(self.core_id, demoted=True)
            if self.attrib is not None:
                self.attrib.sf_begin(self.core_id, demoted=True)
            self._run_strong_fence()
            return
        self.stats.wf_executed[self.core_id] += 1
        if self.policy.needs_checkpoint:
            pf.checkpoint = self.thread.checkpoint()
        self.pending_fences.append(pf)
        if self.tracer is not None:
            self.tracer.wf_retire(
                self.core_id, pf.fence_id, len(self.wb._entries)
            )
        if self.sanitizer is not None:
            self.sanitizer.on_core_transition(self)
        self._cont_ev = self.queue.schedule(1, self._cb_advance, "cpu.cont")

    def _run_strong_fence(self) -> None:
        t0 = self.queue.now
        base = self.policy.sf_base_cost()

        def done():
            self.stats.add_fence_stall(
                self.core_id, (self.queue.now - t0) + base
            )
            if self.tracer is not None:
                self.tracer.sf_end(self.core_id, extra=base)
            if self.attrib is not None:
                self.attrib.sf_end(self.core_id, base)
            self._later(base, lambda: self._advance(None))

        self._wait_for_drain(self._guard(done))

    def _wait_for_drain(self, callback: Callable[[], None]) -> None:
        if not self.wb._entries:
            callback()
            return
        assert self._sf_wait is None, "nested drain waits"
        self._sf_wait = _SfWait(self.wb.newest_store_id(), callback)
        self._kick_drain()

    def register_cfence_clear(self, store_id: int, table) -> None:
        """Clear this core's centralized-table entry once the fence's
        pre-fence stores (up to *store_id*) have merged."""
        self._cfence_clears.append((store_id, table))

    def recount_wee_conversion(self) -> None:
        """A Wee wf dynamically converted to sf (post-fence access left
        the confined directory module): fix the Table-4 counts."""
        self.stats.wf_executed[self.core_id] -= 1
        self.stats.sf_executed[self.core_id] += 1
        self.stats.wee_sf_conversions[self.core_id] += 1

    # ------------------------------------------------------------------
    # atomic read-modify-write
    # ------------------------------------------------------------------

    def _exec_rmw(self, op: isa.AtomicRMW) -> None:
        self.stats.instructions[self.core_id] += 1
        self.stats.add_busy(self.core_id, self._issue_slot)
        t0 = self.queue.now
        word = self.amap.word_of(op.addr)
        po = self.thread._ops

        def after_drain():
            def on_done(old: int) -> None:
                stall = (self.queue.now - t0) - self._issue_slot
                if stall < 0.0:
                    stall = 0.0
                self.stats.add_other_stall(self.core_id, stall)
                if stall > 0.0:
                    if self.attrib is not None:
                        self.attrib.rmw(self.core_id, stall)
                    if self.tracer is not None:
                        self.tracer.rmw_stall(self.core_id, t0, stall)
                self._advance(old)

            def on_bounce() -> None:
                self.stats.write_retries += 1
                if self.tracer is not None:
                    self.tracer.rmw_retry(self.core_id, word)
                self.queue.schedule(
                    self.params.bounce_retry_cycles,
                    self._guard(issue),
                    "cpu.rmw_retry",
                )

            def issue() -> None:
                self.l1.issue_rmw(
                    word, op.apply, self._guard(on_done), on_bounce, po
                )

            issue()

        self._wait_for_drain(self._guard(after_drain))

    # ------------------------------------------------------------------
    # W+ deadlock suspicion and recovery
    # ------------------------------------------------------------------

    def _deadlock_suspected(self) -> bool:
        return bool(
            self.pending_fences
            and self.wb.any_bouncing()
            and not self.bs.empty
            and self.bs.bounced_since_clear
        )

    def _check_deadlock_monitor(self) -> None:
        if not self.policy.needs_deadlock_monitor:
            return
        if not self.params.wplus_recovery_enabled:
            return  # naive design (Fig. 3a): let the deadlock stand
        if self._dl_timer is not None:
            return
        if not self._deadlock_suspected():
            return
        self.stats.wplus_timeouts += 1
        delay = (
            self.params.wplus_timeout_cycles
            + self.core_id * self.params.wplus_timeout_jitter_cycles
        )
        if self.faults is not None:
            delay = self.faults.wplus_timeout(delay)
        if self.tracer is not None:
            self.tracer.timeout_armed(self.core_id, delay)
        self._dl_timer = self.queue.schedule(
            delay, self._dl_expired, "cpu.wplus_timeout"
        )

    def _dl_expired(self) -> None:
        self._dl_timer = None
        if self._deadlock_suspected():
            self._recover()
        # conditions cleared on their own: no action, monitor re-arms
        # on the next bounce.

    def _recover(self) -> None:
        """W+ rollback (paper §3.3.3).

        Restore the thread to the oldest incomplete wf, squash the
        not-yet-merged post-fence stores, clear the BS (unblocking the
        remote writer), then drain the write buffer before resuming —
        the wf behaves as an sf this one time.
        """
        self.stats.wplus_recoveries += 1
        self.policy.on_recovery()
        pf = self.pending_fences[0]
        assert pf.checkpoint is not None
        tracer = self.tracer
        fences_unwound = 0
        if tracer is not None:
            # close episode spans the rollback is about to squash
            tracer.sf_abort(self.core_id)
            fences_unwound = tracer.wf_unwind_all(self.core_id)
        if self.attrib is not None:
            # a squashed sf wait was never charged: drop its window
            self.attrib.sf_abort(self.core_id)
        self._epoch += 1  # invalidate in-flight thread continuations
        if self._cont_ev is not None:
            # the fast-path continuations are not epoch-guarded: squash
            # the pending one explicitly instead
            self.queue.cancel(self._cont_ev)
            self._cont_ev = None
            self._cont_result = None
            self._cont_op = None
        self.pending_fences.clear()
        self._sf_wait = None
        self._wb_full_waiter = None
        self._stalled_load = None
        self._txn_t0 = None
        self.thread.rollback(pf.checkpoint)
        self.finished = False
        self.recovering = True
        self._refresh_done()
        dropped_stores = self.wb.drop_after(pf.last_store_id)
        bs_cleared = len(self.bs)
        self.bs.clear_all()
        if tracer is not None:
            tracer.recovery_begin(
                self.core_id, pf.fence_id, pf.checkpoint,
                dropped_stores, bs_cleared, fences_unwound,
            )
        if self.attrib is not None:
            self.attrib.recovery_begin(self.core_id)
        if self.machine.recorder is not None:
            self.machine.recorder.squash(self.core_id, pf.checkpoint)
        # squash side effects of the discarded (post-checkpoint) region:
        # collected notes and already-applied statistics marks.
        self.notes = [n for n in self.notes if n[0] <= pf.checkpoint]
        keep = []
        for po, attr, delta in self._mark_journal:
            if po > pf.checkpoint:
                setattr(self.stats, attr, getattr(self.stats, attr) - delta)
            else:
                keep.append((po, attr, delta))
        self._mark_journal = keep
        if self.sanitizer is not None:
            # rollback state is fully settled here: fences cleared,
            # post-checkpoint stores squashed, BS emptied.
            self.sanitizer.on_core_transition(self)
        t0 = self.queue.now

        def resume():
            self.recovering = False
            if self.sanitizer is not None:
                self.sanitizer.on_recovery_resume(self)
            self.stats.add_fence_stall(
                self.core_id,
                (self.queue.now - t0) + self.params.wplus_recovery_cycles,
            )
            if self.tracer is not None:
                self.tracer.recovery_end(
                    self.core_id, extra=self.params.wplus_recovery_cycles
                )
            if self.attrib is not None:
                self.attrib.recovery_end(
                    self.core_id, self.params.wplus_recovery_cycles
                )
            self._later(
                self.params.wplus_recovery_cycles, lambda: self._advance(None)
            )

        self._wait_for_drain(self._guard(resume))
