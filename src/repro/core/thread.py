"""Replayable simulated threads.

A workload thread is a generator function ``fn(ctx)`` yielding
:mod:`repro.core.isa` operations.  :class:`SimThread` wraps the
generator and keeps a *committed log* of (operation, result) pairs.

That log is the W+ register checkpoint (paper §3.3.3): rolling back to
a checkpoint re-creates the generator and replays the logged prefix —
with zero simulated time — then resumes live execution.  This works
because threads are required to be deterministic functions of the
results the simulator hands back (per-thread RNGs are re-seeded on
every (re)creation via :class:`ThreadContext`).
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Tuple

from repro.common.errors import ThreadReplayError
from repro.core import isa


class ThreadContext:
    """Per-thread facilities handed to the workload generator.

    ``rng`` is re-created from ``seed`` each time the generator is
    (re)constructed, so replayed prefixes draw the same random numbers.
    """

    def __init__(self, tid: int, num_threads: int, seed: int, shared=None):
        self.tid = tid
        self.num_threads = num_threads
        self.seed = seed
        self.shared = shared  # workload-defined shared-state handle
        self.rng = random.Random(seed)

    def _reset_rng(self) -> None:
        self.rng = random.Random(self.seed)


class SimThread:
    """One simulated thread with checkpoint/rollback support."""

    def __init__(self, fn: Callable, ctx: ThreadContext, keep_log: bool = True):
        self._fn = fn
        self.ctx = ctx
        self.tid = ctx.tid
        self.finished = False
        #: the replay log as parallel lists (ops / results) — parallel
        #: rather than (op, result) tuples so the next_op hot path does
        #: two list writes instead of allocating a tuple per op.  Only
        #: W+ ever rolls back; other designs pass ``keep_log=False``
        #: and pay neither the log writes nor the log memory.
        self._keep_log = keep_log
        self._log_ops: List[object] = []
        self._log_results: List[object] = []
        #: committed-op count (always maintained; == len(_log_ops) when
        #: the log is kept)
        self._ops = 0
        self._gen = None
        self._started = False
        self._create_generator()
        #: count of rollbacks performed (stats/debugging)
        self.rollbacks = 0

    def _create_generator(self) -> None:
        self.ctx._reset_rng()
        self._gen = self._fn(self.ctx)
        self._started = False
        # re-arm the first-call path; it swaps ``next_op`` to the
        # keep-log-specialized started path after the first op.
        self.next_op = self._next_op_first

    # --- forward execution -------------------------------------------
    #
    # ``next_op`` is called once per committed operation — the hottest
    # call in the simulator after the event queue — so it is state-
    # specialized: the first call primes the generator and rebinds the
    # instance's ``next_op`` to a started-path variant that skips the
    # started/keep-log branches on every subsequent call.

    def _next_op_first(self, prev_result=None):
        """Advance the generator; returns the next op or None when done.

        *prev_result* is the result of the previously-yielded op; it is
        committed to the replay log together with that op.
        """
        if self._started:
            # caller cached the bound method across the rebind (the
            # core binds ``thread.next_op`` to a local per micro-batch)
            if self._keep_log:
                return self._next_op_log(prev_result)
            return self._next_op_nolog(prev_result)
        if self.finished:
            return None
        try:
            op = next(self._gen)
        except StopIteration:
            self.finished = True
            return None
        self._started = True
        if self._keep_log:
            # provisional log entry; result filled in on the next call
            self._log_ops.append(op)
            self._log_results.append(None)
            self.next_op = self._next_op_log
        else:
            self.next_op = self._next_op_nolog
        self._ops += 1
        return op

    #: class-level default so ``thread.next_op`` resolves before
    #: ``_create_generator`` installs the instance binding
    next_op = _next_op_first

    def _next_op_nolog(self, prev_result=None):
        if self.finished:
            return None
        try:
            op = self._gen.send(prev_result)
        except StopIteration:
            self.finished = True
            return None
        self._ops += 1
        return op

    def _next_op_log(self, prev_result=None):
        if self.finished:
            return None
        try:
            # commit the previous op's result before advancing
            self._log_results[-1] = prev_result
            op = self._gen.send(prev_result)
        except StopIteration:
            self.finished = True
            return None
        self._log_ops.append(op)
        self._log_results.append(None)
        self._ops += 1
        return op

    # --- checkpointing --------------------------------------------------

    def checkpoint(self) -> int:
        """Snapshot the current committed position (cheap: an index).

        Call when the current op (typically a wf) has been *issued*; all
        previously yielded ops are in the log.  The returned token
        restores execution to just after the op most recently yielded.
        """
        if not self._keep_log:
            raise ThreadReplayError(
                f"thread {self.tid}: created without a replay log"
            )
        return len(self._log_ops)

    def rollback(self, token: int) -> None:
        """Discard execution past *token* and replay the prefix.

        Replay is instantaneous in simulated time.  Raises
        :class:`ThreadReplayError` if the thread yields a different
        operation sequence during replay (nondeterminism).
        """
        if token > len(self._log_ops):
            raise ThreadReplayError(
                f"thread {self.tid}: checkpoint {token} beyond log "
                f"({len(self._log_ops)} entries)"
            )
        prefix_ops = self._log_ops[:token]
        prefix_results = self._log_results[:token]
        self._create_generator()
        self._log_ops = []
        self._log_results = []
        self._ops = 0
        self.finished = False
        self.rollbacks += 1
        for i, expected_op in enumerate(prefix_ops):
            op = self.next_op(None if i == 0 else prefix_results[i - 1])
            if op != expected_op:
                raise ThreadReplayError(
                    f"thread {self.tid}: replay divergence at op {i}: "
                    f"expected {expected_op!r}, got {op!r}"
                )
        # the last prefix op has been re-yielded; its result will be
        # supplied by the core when it resumes with next_op(result).

    @property
    def ops_committed(self) -> int:
        return self._ops
