"""Replayable simulated threads.

A workload thread is a generator function ``fn(ctx)`` yielding
:mod:`repro.core.isa` operations.  :class:`SimThread` wraps the
generator and keeps a *committed log* of (operation, result) pairs.

That log is the W+ register checkpoint (paper §3.3.3): rolling back to
a checkpoint re-creates the generator and replays the logged prefix —
with zero simulated time — then resumes live execution.  This works
because threads are required to be deterministic functions of the
results the simulator hands back (per-thread RNGs are re-seeded on
every (re)creation via :class:`ThreadContext`).
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Tuple

from repro.common.errors import ThreadReplayError
from repro.core import isa


class ThreadContext:
    """Per-thread facilities handed to the workload generator.

    ``rng`` is re-created from ``seed`` each time the generator is
    (re)constructed, so replayed prefixes draw the same random numbers.
    """

    def __init__(self, tid: int, num_threads: int, seed: int, shared=None):
        self.tid = tid
        self.num_threads = num_threads
        self.seed = seed
        self.shared = shared  # workload-defined shared-state handle
        self.rng = random.Random(seed)

    def _reset_rng(self) -> None:
        self.rng = random.Random(self.seed)


class SimThread:
    """One simulated thread with checkpoint/rollback support."""

    def __init__(self, fn: Callable, ctx: ThreadContext):
        self._fn = fn
        self.ctx = ctx
        self.tid = ctx.tid
        self.finished = False
        #: committed (op, result) pairs, the replay log
        self._log: List[Tuple[object, object]] = []
        self._gen = None
        self._started = False
        self._create_generator()
        #: count of rollbacks performed (stats/debugging)
        self.rollbacks = 0

    def _create_generator(self) -> None:
        self.ctx._reset_rng()
        self._gen = self._fn(self.ctx)
        self._started = False

    # --- forward execution -------------------------------------------

    def next_op(self, prev_result=None):
        """Advance the generator; returns the next op or None when done.

        *prev_result* is the result of the previously-yielded op; it is
        appended to the committed log together with that op.
        """
        if self.finished:
            return None
        try:
            if not self._started:
                self._started = True
                op = next(self._gen)
            else:
                # commit the previous op's result before advancing
                self._log[-1] = (self._log[-1][0], prev_result)
                op = self._gen.send(prev_result)
        except StopIteration:
            self.finished = True
            return None
        # provisional log entry; result filled in on the next call
        self._log.append((op, None))
        return op

    # --- checkpointing --------------------------------------------------

    def checkpoint(self) -> int:
        """Snapshot the current committed position (cheap: an index).

        Call when the current op (typically a wf) has been *issued*; all
        previously yielded ops are in the log.  The returned token
        restores execution to just after the op most recently yielded.
        """
        return len(self._log)

    def rollback(self, token: int) -> None:
        """Discard execution past *token* and replay the prefix.

        Replay is instantaneous in simulated time.  Raises
        :class:`ThreadReplayError` if the thread yields a different
        operation sequence during replay (nondeterminism).
        """
        if token > len(self._log):
            raise ThreadReplayError(
                f"thread {self.tid}: checkpoint {token} beyond log "
                f"({len(self._log)} entries)"
            )
        prefix = self._log[:token]
        self._create_generator()
        self._log = []
        self.finished = False
        self.rollbacks += 1
        for i, (expected_op, result) in enumerate(prefix):
            op = self.next_op(None if i == 0 else prefix[i - 1][1])
            if op != expected_op:
                raise ThreadReplayError(
                    f"thread {self.tid}: replay divergence at op {i}: "
                    f"expected {expected_op!r}, got {op!r}"
                )
        # the last prefix op has been re-yielded; its result will be
        # supplied by the core when it resumes with next_op(result).

    @property
    def ops_committed(self) -> int:
        return len(self._log)
