"""Self-healing worker pool.

The coordinator keeps *n* worker processes alive for the duration of a
campaign.  Workers are expendable: :meth:`WorkerPool.ensure` respawns
any that exited — cleanly, by exception, or by SIGKILL — under a fresh
worker id, so a kill-happy environment only costs lease timeouts, never
progress.  The pool deliberately does **not** inspect exit codes to
decide whether work was lost; the store's lease protocol is the single
source of truth for that.
"""

from __future__ import annotations

import multiprocessing
from typing import List, Optional

from repro.farm.worker import FarmConfig, worker_main

_CTX = multiprocessing.get_context("fork")


class WorkerPool:
    def __init__(self, db_path: str, campaign: str, size: int,
                 config: Optional[FarmConfig] = None,
                 name_prefix: str = "farm-w"):
        self.db_path = db_path
        self.campaign = campaign
        self.size = size
        self.config = config or FarmConfig()
        self.name_prefix = name_prefix
        self.procs: List[multiprocessing.Process] = []
        #: workers respawned after dying (the self-healing counter)
        self.respawns = 0
        self._serial = 0

    def _spawn(self) -> multiprocessing.Process:
        self._serial += 1
        wid = f"{self.name_prefix}{self._serial}"
        proc = _CTX.Process(
            target=worker_main,
            args=(self.db_path, self.campaign, self.config, wid),
            name=wid,
            daemon=True,
        )
        proc.start()
        return proc

    def start(self) -> None:
        self.procs = [self._spawn() for _ in range(self.size)]

    def ensure(self) -> int:
        """Respawn dead workers; returns how many are alive now."""
        alive: List[multiprocessing.Process] = []
        for proc in self.procs:
            if proc.is_alive():
                alive.append(proc)
            else:
                proc.join(timeout=0)
                self.respawns += 1
                alive.append(self._spawn())
        self.procs = alive
        return len(alive)

    def alive(self) -> int:
        return sum(1 for p in self.procs if p.is_alive())

    def stop(self, timeout: float = 10.0) -> None:
        for proc in self.procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self.procs:
            proc.join(timeout=timeout)
            if proc.is_alive():  # pragma: no cover - last resort
                proc.kill()
                proc.join(timeout=timeout)
        self.procs = []

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
