"""Fault-tolerant experiment farm.

A durable campaign service for the repo's simulation sweeps: jobs are
content-addressed ``(design, workload, config, seed, code-rev)`` rows
in a crash-safe SQLite store, workers lease them (heartbeats, expiry
reassignment, capped-backoff retries, poison-job quarantine), and the
result cache makes identical re-submissions free.  See
``docs/FARM.md``.
"""

from repro.farm.campaign import collect, run_campaign, submit
from repro.farm.spec import CampaignSpec, JobSpec, code_rev
from repro.farm.store import FarmStore, default_worker_id
from repro.farm.worker import FarmConfig, run_worker

__all__ = [
    "CampaignSpec",
    "FarmConfig",
    "FarmStore",
    "JobSpec",
    "code_rev",
    "collect",
    "default_worker_id",
    "run_campaign",
    "run_worker",
    "submit",
]
