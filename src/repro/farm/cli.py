"""``repro farm`` — operate the durable experiment farm.

Subcommands::

    repro farm submit --db farm.sqlite --kind matrix \\
        --workloads fib,Counter --designs all --seeds 3 --cores 4 [--run]
    repro farm status --db farm.sqlite [CAMPAIGN]
    repro farm resume --db farm.sqlite CAMPAIGN --workers 2
    repro farm gc     --db farm.sqlite [--prune-cache]

``submit`` is idempotent (the campaign id is the spec's content
address); ``resume`` restarts the coordinator for a stored campaign —
after a crash, after ``submit`` without ``--run``, or just to throw
more workers at it.  ``gc`` releases expired leases and drops finished
campaigns' job rows; the result cache is kept unless ``--prune-cache``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.common.errors import ConfigError
from repro.common.params import FenceDesign
from repro.farm.campaign import run_campaign, submit
from repro.farm.spec import KINDS, CampaignSpec
from repro.farm.store import FarmStore
from repro.farm.worker import FarmConfig
from repro.farm.clients import default_farm_workers


def _spec_from_args(args, design_parser) -> CampaignSpec:
    if args.designs.strip().lower() == "all":
        from repro.verify.oracles import PAPER_DESIGNS

        designs = list(PAPER_DESIGNS)
    else:
        try:
            designs = [design_parser(n.strip())
                       for n in args.designs.split(",") if n.strip()]
        except argparse.ArgumentTypeError as exc:
            raise ConfigError(str(exc))
    workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    if not workloads:
        raise ConfigError("no workloads/scenarios given")
    config = {}
    if args.kind in ("matrix", "chaos") and args.sanitize:
        config["sanitize"] = args.sanitize
    if args.kind == "perf":
        config["reps"] = args.reps
        config["kernel"] = args.kernel or "object"
    if args.max_events:
        # an event budget is deterministic (unlike wall/RSS), so a
        # degraded row is still bit-identical across workers
        config["budget"] = {"max_events": args.max_events}
    return CampaignSpec.make(
        args.kind, workloads, designs,
        seeds=range(args.seed_base, args.seed_base + args.seeds),
        core_counts=[int(c) for c in str(args.cores).split(",")],
        scale=args.scale, config=config,
    )


def _farm_config(args) -> FarmConfig:
    return FarmConfig(
        lease_secs=args.lease_secs,
        quarantine_after=args.quarantine_after,
        diag_dir=args.diag_dir,
    )


def _print_status(store: FarmStore, campaign: str) -> None:
    st = store.status(campaign)
    spec = store.campaign_spec(campaign)
    desc = spec.describe()
    print(f"{campaign}  [{desc['kind']}]  "
          f"{st['done']}/{st['total']} done, {st['leased']} leased, "
          f"{st['pending']} pending, {st['quarantined']} quarantined  "
          f"(attempts {st['attempts']}, duplicates {st['duplicates']})")
    for q in store.quarantined(campaign):
        print(f"    QUARANTINED {q['key'][:12]} "
              f"{q['spec']['workload']}/{q['spec']['design']}"
              f"/r{q['spec']['seed']}: {q['last_error']}")


def _report_run(db: str, cid: str, rows: dict) -> int:
    """Post-run report; exit 1 unless every job really finished (an
    inline ``--workers 0`` drive leaves a failed-with-backoff job
    pending, and quarantined jobs never produce rows)."""
    with FarmStore(db) as store:
        done = store.campaign_done(cid)
        quarantined = store.status(cid)["quarantined"]
        verdict = ("complete" if done and not quarantined
                   else "INCOMPLETE" if not done else "QUARANTINED")
        print(f"campaign {cid} {verdict}: {len(rows)} row(s)")
        _print_status(store, cid)
    return 0 if done and not quarantined else 1


def cmd_farm(args, design_parser) -> int:
    try:
        if args.farm_cmd == "submit":
            spec = _spec_from_args(args, design_parser)
            cid, counts = submit(args.db, spec, diag_dir=args.diag_dir)
            print(f"campaign {cid}: {counts['jobs']} job(s) "
                  f"({counts['new']} new, {counts['cached']} from cache, "
                  f"{counts['existing']} already submitted)")
            if args.run:
                rows = run_campaign(
                    args.db, spec, workers=_resolve_workers(args),
                    config=_farm_config(args),
                )
                return _report_run(args.db, cid, rows)
            return 0
        if args.farm_cmd == "status":
            with FarmStore(args.db) as store:
                targets = ([args.campaign] if args.campaign
                           else [cid for cid, _ in store.campaigns()])
                if not targets:
                    print("no campaigns")
                    return 0
                for cid in targets:
                    _print_status(store, cid)
                quarantined = sum(
                    store.status(cid)["quarantined"] for cid in targets
                )
            return 1 if quarantined else 0
        if args.farm_cmd == "resume":
            with FarmStore(args.db) as store:
                spec = store.campaign_spec(args.campaign)
            rows = run_campaign(
                args.db, spec, workers=_resolve_workers(args),
                config=_farm_config(args),
            )
            status = _report_run(args.db, args.campaign, rows)
            if args.out and args.out != "-":
                with open(args.out, "w") as fh:
                    json.dump(rows, fh, indent=1, sort_keys=True)
                    fh.write("\n")
                print(f"[rows written to {args.out}]")
            return status
        if args.farm_cmd == "gc":
            with FarmStore(args.db) as store:
                summary = store.gc(prune_cache=args.prune_cache)
            print(f"gc: released {summary['released']} expired lease(s), "
                  f"dropped {summary['campaigns_dropped']} finished "
                  f"campaign(s) ({summary['jobs_dropped']} job row(s)), "
                  f"pruned {summary['results_pruned']} cached result(s)")
            return 0
    except ConfigError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(f"unknown farm subcommand {args.farm_cmd!r}", file=sys.stderr)
    return 2


def add_farm_parser(sub) -> None:
    p = sub.add_parser(
        "farm",
        help="durable experiment farm: leased job queue, self-healing "
             "workers, exactly-once campaign results",
    )
    fsub = p.add_subparsers(dest="farm_cmd", required=True)

    def common(sp, diag=True):
        sp.add_argument("--db",
                        default=os.environ.get("REPRO_FARM_DB")
                        or "benchmarks/out/farm.sqlite",
                        help="farm database path (SQLite, WAL; default "
                             "$REPRO_FARM_DB or benchmarks/out/farm.sqlite)")
        if diag:
            sp.add_argument("--diag-dir", default=None, metavar="DIR",
                            help="quarantine bundles and chaos "
                                 "diagnostics land here")

    p_sub = fsub.add_parser(
        "submit", help="register a campaign (idempotent); --run drives it")
    common(p_sub)
    p_sub.add_argument("--kind", default="matrix", choices=KINDS)
    p_sub.add_argument("--workloads", required=True,
                       help="comma list of workloads (matrix/perf) or "
                            "fault scenarios (chaos)")
    p_sub.add_argument("--designs", default="all",
                       help="'all' (the paper's five) or a comma list")
    p_sub.add_argument("--seeds", type=int, default=1,
                       help="seeds per cell (default 1)")
    p_sub.add_argument("--seed-base", type=int, default=12345)
    p_sub.add_argument("--cores", default="8",
                       help="comma list of core counts (default 8)")
    p_sub.add_argument("--scale", type=float, default=0.5)
    p_sub.add_argument("--sanitize", default=None,
                       choices=("off", "warn", "strict"))
    p_sub.add_argument("--reps", type=int, default=3,
                       help="perf kind: repetitions per case")
    p_sub.add_argument("--kernel", default=None,
                       choices=("object", "flat"),
                       help="perf kind: kernel backend")
    p_sub.add_argument("--max-events", type=int, default=None, metavar="N",
                       help="per-job simulated-event budget (deterministic "
                            "graceful cutoff)")
    p_sub.add_argument("--run", action="store_true",
                       help="drive the campaign to completion now")
    p_sub.add_argument("--workers", type=int, default=None,
                       help="worker processes for --run (default "
                            "$REPRO_FARM_WORKERS or cpu-1; 0 = inline)")
    p_sub.add_argument("--lease-secs", type=float, default=15.0)
    p_sub.add_argument("--quarantine-after", type=int, default=3,
                       help="distinct-worker failures before quarantine")

    p_st = fsub.add_parser("status", help="campaign progress and health")
    common(p_st, diag=False)
    p_st.add_argument("campaign", nargs="?", default=None)

    p_res = fsub.add_parser(
        "resume", help="restart the coordinator for a stored campaign")
    common(p_res)
    p_res.add_argument("campaign")
    p_res.add_argument("--workers", type=int, default=None)
    p_res.add_argument("--lease-secs", type=float, default=15.0)
    p_res.add_argument("--quarantine-after", type=int, default=3)
    p_res.add_argument("--out", default=None, metavar="PATH",
                       help="also dump the campaign's rows as JSON")

    p_gc = fsub.add_parser(
        "gc", help="release expired leases, drop finished campaigns")
    common(p_gc, diag=False)
    p_gc.add_argument("--prune-cache", action="store_true",
                      help="also delete cached results no job references")


def _resolve_workers(args) -> int:
    return (default_farm_workers() if args.workers is None
            else args.workers)
