"""A farm worker: claim → heartbeat → execute → complete, forever.

Workers are crash-only processes.  They hold no state the store does
not: a worker SIGKILLed at *any* point loses at most its current lease,
which expires and the job is reassigned.  While executing, a heartbeat
thread (its own store connection — SQLite connections are not
thread-safe) renews the lease, so a long job under a short lease is
safe as long as the worker is actually alive; a *stalled-but-alive*
worker that stops heartbeating loses the lease, someone else runs the
job, and the content-addressed result store absorbs the duplicate
completion (exactly-once rows).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.farm import store as store_mod
from repro.farm.exec import execute_job
from repro.farm.store import FarmStore


@dataclass(frozen=True)
class FarmConfig:
    """Tuning knobs shared by workers and the coordinator."""

    #: lease duration; heartbeats renew at a third of this
    lease_secs: float = 15.0
    #: idle polling interval when no job is claimable yet
    poll_secs: float = 0.5
    #: distinct-worker failures before quarantine
    quarantine_after: int = store_mod.DEFAULT_QUARANTINE_AFTER
    backoff_base: float = store_mod.DEFAULT_BACKOFF_BASE
    backoff_cap: float = store_mod.DEFAULT_BACKOFF_CAP
    #: where quarantine bundles and chaos diagnostics land
    diag_dir: Optional[str] = None
    db_timeout: float = 30.0

    @property
    def heartbeat_secs(self) -> float:
        return max(0.05, self.lease_secs / 3.0)


@dataclass
class WorkerStats:
    claimed: int = 0
    completed: int = 0
    duplicates: int = 0
    failed: int = 0
    statuses: dict = field(default_factory=dict)


class _Heartbeat:
    """Renews one job's lease from a dedicated connection/thread."""

    def __init__(self, db_path: str, key: str, campaign: str, worker: str,
                 config: FarmConfig):
        self._args = (key, campaign, worker, config.lease_secs)
        self._db_path = db_path
        self._interval = config.heartbeat_secs
        self._timeout = config.db_timeout
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    def _run(self) -> None:
        store = FarmStore(self._db_path, timeout=self._timeout)
        try:
            while not self._stop.wait(self._interval):
                # a lost lease is not fatal: the job may run twice, and
                # completion is idempotent — keep running to the end
                store.heartbeat(*self._args)
        finally:
            store.close()


def run_worker(
    db_path: str,
    campaign: str,
    config: Optional[FarmConfig] = None,
    worker: Optional[str] = None,
    max_jobs: Optional[int] = None,
    once: bool = False,
) -> WorkerStats:
    """Drain jobs from *campaign* until it is done (or *max_jobs*).

    With *once* the worker exits the first time nothing is claimable
    instead of polling — the coordinator's pool uses the polling mode,
    tests and one-shot CLI invocations use *once*.
    """
    config = config or FarmConfig()
    worker = worker or store_mod.default_worker_id()
    stats = WorkerStats()
    store = FarmStore(db_path, timeout=config.db_timeout,
                      diag_dir=config.diag_dir)
    try:
        while True:
            if max_jobs is not None and stats.claimed >= max_jobs:
                return stats
            claimed = store.claim(
                campaign, worker, config.lease_secs,
                quarantine_after=config.quarantine_after,
            )
            if claimed is None:
                if once or store.campaign_done(campaign):
                    return stats
                time.sleep(config.poll_secs)  # backoff-gated retries
                continue
            key, spec = claimed
            stats.claimed += 1
            try:
                with _Heartbeat(db_path, key, campaign, worker, config):
                    row = execute_job(spec, diag_dir=config.diag_dir)
            except BaseException as exc:
                stats.failed += 1
                store.fail(
                    key, campaign, worker,
                    f"{type(exc).__name__}: {exc}",
                    quarantine_after=config.quarantine_after,
                    backoff_base=config.backoff_base,
                    backoff_cap=config.backoff_cap,
                )
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                continue
            status = store.complete(key, campaign, worker, row)
            stats.statuses[status] = stats.statuses.get(status, 0) + 1
            if status == "inserted":
                stats.completed += 1
            else:
                stats.duplicates += 1
    finally:
        store.close()


def worker_main(db_path: str, campaign: str, config: FarmConfig,
                worker: str) -> None:
    """Entry point for pool-spawned worker processes."""
    run_worker(db_path, campaign, config=config, worker=worker)
