"""The durable job store: SQLite (WAL) leases, retries, result cache.

One database file is the whole farm's persistent state.  Every worker
and the coordinator open their own connection (multi-process safe via
WAL + ``BEGIN IMMEDIATE`` claim transactions), so any process — worker
or coordinator — can be SIGKILLed at any point and the farm converges:

* **Lease-based claiming.**  A claim atomically moves a job to
  ``leased`` with an expiry; a worker that dies (or stalls past its
  lease without heartbeating) simply stops renewing, and the job
  becomes claimable again.  The previous owner is recorded as failure
  evidence on the job.
* **Exactly-once results.**  Results are keyed by the job's content
  address.  The *first* completion inserts the row; any later
  completion of the same key (duplicate execution under an expired
  lease) only bumps a ``duplicates`` counter — the row itself is
  immutable, so the result set can never hold two rows for one job.
  Simulations are deterministic, so a duplicate that does not match
  the stored row bit-for-bit is flagged as a ``result-mismatch``
  failure (a real bug, never silently absorbed).
* **Poison-job quarantine.**  A job that accumulates failures from N
  *distinct* workers (exceptions, expired leases) is quarantined with
  a watchdog-style diagnostic bundle instead of wedging the campaign
  in a retry loop.  Retries back off exponentially (capped) via a
  ``not_before`` gate.
* **Crash-safe campaigns.**  A campaign is just rows; restarting the
  coordinator re-reads them.  ``campaign_done`` is a pure function of
  the store, so resume-after-crash finishes exactly the missing work.
"""

from __future__ import annotations

import json
import os
import socket
import sqlite3
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.farm.spec import CampaignSpec, JobSpec, canonical_json

#: distinct-worker failures before a job is quarantined
DEFAULT_QUARANTINE_AFTER = 3
#: capped exponential retry backoff (seconds)
DEFAULT_BACKOFF_BASE = 0.25
DEFAULT_BACKOFF_CAP = 30.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    id         TEXT PRIMARY KEY,
    spec       TEXT NOT NULL,
    created_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    key            TEXT NOT NULL,
    campaign       TEXT NOT NULL,
    spec           TEXT NOT NULL,
    state          TEXT NOT NULL DEFAULT 'pending',
    lease_owner    TEXT,
    lease_expiry   REAL,
    attempts       INTEGER NOT NULL DEFAULT 0,
    not_before     REAL NOT NULL DEFAULT 0,
    failed_workers TEXT NOT NULL DEFAULT '[]',
    last_error     TEXT,
    PRIMARY KEY (key, campaign)
);
CREATE INDEX IF NOT EXISTS idx_jobs_claim
    ON jobs (campaign, state, lease_expiry);
CREATE TABLE IF NOT EXISTS results (
    key        TEXT PRIMARY KEY,
    row        TEXT NOT NULL,
    worker     TEXT,
    created_at REAL NOT NULL,
    duplicates INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS failures (
    key      TEXT NOT NULL,
    campaign TEXT NOT NULL,
    worker   TEXT,
    error    TEXT,
    at       REAL NOT NULL
);
"""

#: job states
PENDING, LEASED, DONE, QUARANTINED = (
    "pending", "leased", "done", "quarantined")


def default_worker_id() -> str:
    return f"{socket.gethostname()}:{os.getpid()}"


class FarmStore:
    """One process's connection to the farm database."""

    def __init__(self, path: str, timeout: float = 30.0,
                 diag_dir: Optional[str] = None):
        self.path = path
        self.diag_dir = diag_dir
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._conn = sqlite3.connect(
            path, timeout=timeout, isolation_level=None)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(f"PRAGMA busy_timeout={int(timeout * 1000)}")
        self._conn.executescript(_SCHEMA)

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "FarmStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- internal ------------------------------------------------------

    def _begin(self) -> None:
        # IMMEDIATE takes the write lock up front, so claim/complete
        # read-modify-write sequences are atomic across processes
        self._conn.execute("BEGIN IMMEDIATE")

    def _one(self, sql: str, args: Sequence = ()) -> Optional[tuple]:
        return self._conn.execute(sql, args).fetchone()

    # -- campaigns -----------------------------------------------------

    def submit_campaign(self, spec: CampaignSpec) -> Tuple[str, Dict[str, int]]:
        """Insert *spec*'s grid; returns ``(campaign_id, counts)``.

        Idempotent: the campaign id is the spec's content address, job
        inserts are ``OR IGNORE``.  Jobs whose content key already has
        a cached result are born ``done`` — a re-submitted sweep
        completes with zero new simulations.
        """
        cid = spec.campaign_id()
        jobs = spec.expand()
        counts = {"jobs": len(jobs), "new": 0, "cached": 0, "existing": 0}
        now = time.time()
        self._begin()
        try:
            self._conn.execute(
                "INSERT OR IGNORE INTO campaigns (id, spec, created_at) "
                "VALUES (?, ?, ?)", (cid, spec.to_json(), now))
            for job in jobs:
                key = job.content_key()
                existing = self._one(
                    "SELECT state FROM jobs WHERE key=? AND campaign=?",
                    (key, cid))
                if existing is not None:
                    counts["existing"] += 1
                    continue
                cached = self._one(
                    "SELECT 1 FROM results WHERE key=?", (key,))
                state = DONE if cached else PENDING
                counts["cached" if cached else "new"] += 1
                self._conn.execute(
                    "INSERT INTO jobs (key, campaign, spec, state) "
                    "VALUES (?, ?, ?, ?)",
                    (key, cid, job.to_json(), state))
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return cid, counts

    def campaign_spec(self, campaign: str) -> CampaignSpec:
        row = self._one("SELECT spec FROM campaigns WHERE id=?", (campaign,))
        if row is None:
            raise ConfigError(f"unknown campaign {campaign!r} in {self.path}")
        return CampaignSpec.from_json(row[0])

    def campaigns(self) -> List[Tuple[str, CampaignSpec]]:
        rows = self._conn.execute(
            "SELECT id, spec FROM campaigns ORDER BY created_at, id"
        ).fetchall()
        return [(cid, CampaignSpec.from_json(spec)) for cid, spec in rows]

    # -- claiming / leases ---------------------------------------------

    def claim(
        self,
        campaign: str,
        worker: str,
        lease_secs: float,
        quarantine_after: int = DEFAULT_QUARANTINE_AFTER,
        now: Optional[float] = None,
    ) -> Optional[Tuple[str, JobSpec]]:
        """Atomically lease the next runnable job, or None.

        Runnable = ``pending`` past its retry backoff, or ``leased``
        with an expired lease (the previous owner is then charged a
        failure — it died or stalled).  A job whose content key gained
        a cached result meanwhile is completed in place; a job whose
        distinct-worker failure count reaches *quarantine_after* is
        quarantined (with a diagnostic bundle) and skipped.
        """
        while True:
            t = time.time() if now is None else now
            self._begin()
            try:
                row = self._one(
                    "SELECT key, spec, state, lease_owner, failed_workers,"
                    " attempts FROM jobs"
                    " WHERE campaign=? AND"
                    "  ((state='pending' AND not_before<=?) OR"
                    "   (state='leased' AND lease_expiry<=?))"
                    " ORDER BY key LIMIT 1",
                    (campaign, t, t))
                if row is None:
                    self._conn.execute("COMMIT")
                    return None
                key, spec_json, state, prev_owner, fw_json, attempts = row
                if self._one("SELECT 1 FROM results WHERE key=?", (key,)):
                    # cache filled in while this job sat queued
                    self._conn.execute(
                        "UPDATE jobs SET state='done', lease_owner=NULL,"
                        " lease_expiry=NULL WHERE key=? AND campaign=?",
                        (key, campaign))
                    self._conn.execute("COMMIT")
                    continue
                failed = json.loads(fw_json)
                if state == LEASED and prev_owner:
                    # expired lease: the owner died or stalled — that
                    # is this job's failure evidence for quarantine
                    failed.append(prev_owner)
                    self._conn.execute(
                        "INSERT INTO failures (key, campaign, worker,"
                        " error, at) VALUES (?, ?, ?, ?, ?)",
                        (key, campaign, prev_owner,
                         "lease-expired: worker died or stalled", t))
                if len(set(failed)) >= quarantine_after:
                    self._quarantine(key, campaign, spec_json, failed, t)
                    self._conn.execute("COMMIT")
                    continue
                self._conn.execute(
                    "UPDATE jobs SET state='leased', lease_owner=?,"
                    " lease_expiry=?, attempts=?, failed_workers=?"
                    " WHERE key=? AND campaign=?",
                    (worker, t + lease_secs, attempts + 1,
                     json.dumps(failed), key, campaign))
                self._conn.execute("COMMIT")
                return key, JobSpec.from_json(spec_json)
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    def heartbeat(self, key: str, campaign: str, worker: str,
                  lease_secs: float) -> bool:
        """Extend *worker*'s lease; False when the lease was lost
        (expired and reassigned) — the worker may keep running, its
        completion is still idempotent."""
        cur = self._conn.execute(
            "UPDATE jobs SET lease_expiry=? WHERE key=? AND campaign=?"
            " AND state='leased' AND lease_owner=?",
            (time.time() + lease_secs, key, campaign, worker))
        return cur.rowcount > 0

    # -- completion / failure ------------------------------------------

    def complete(self, key: str, campaign: str, worker: str,
                 row: dict) -> str:
        """Record a finished job; returns ``inserted`` | ``duplicate``
        | ``mismatch``.

        Exactly-once by content key: the first completion wins, later
        identical completions only count a duplicate.  A later
        completion whose row differs bit-for-bit is a determinism bug
        — kept out of the result set and recorded as a failure.
        """
        row_json = canonical_json(row)
        t = time.time()
        self._begin()
        try:
            existing = self._one(
                "SELECT row FROM results WHERE key=?", (key,))
            if existing is None:
                self._conn.execute(
                    "INSERT INTO results (key, row, worker, created_at)"
                    " VALUES (?, ?, ?, ?)", (key, row_json, worker, t))
                status = "inserted"
            else:
                self._conn.execute(
                    "UPDATE results SET duplicates=duplicates+1"
                    " WHERE key=?", (key,))
                status = "duplicate" if existing[0] == row_json else "mismatch"
                if status == "mismatch":
                    self._conn.execute(
                        "INSERT INTO failures (key, campaign, worker,"
                        " error, at) VALUES (?, ?, ?, ?, ?)",
                        (key, campaign, worker,
                         "result-mismatch: duplicate execution produced a"
                         " different row (non-deterministic job)", t))
            # the result satisfies this key everywhere it appears
            self._conn.execute(
                "UPDATE jobs SET state='done', lease_owner=NULL,"
                " lease_expiry=NULL WHERE key=?", (key,))
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return status

    def fail(
        self,
        key: str,
        campaign: str,
        worker: str,
        error: str,
        quarantine_after: int = DEFAULT_QUARANTINE_AFTER,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
    ) -> str:
        """Record a job failure; returns the job's new state.

        The job goes back to ``pending`` behind a capped-exponential
        ``not_before`` gate, or to ``quarantined`` once failures span
        *quarantine_after* distinct workers.
        """
        t = time.time()
        self._begin()
        try:
            row = self._one(
                "SELECT spec, attempts, failed_workers FROM jobs"
                " WHERE key=? AND campaign=?", (key, campaign))
            if row is None:
                raise ConfigError(f"unknown job {key!r} in {campaign!r}")
            spec_json, attempts, fw_json = row
            failed = json.loads(fw_json)
            failed.append(worker)
            self._conn.execute(
                "INSERT INTO failures (key, campaign, worker, error, at)"
                " VALUES (?, ?, ?, ?, ?)", (key, campaign, worker, error, t))
            if len(set(failed)) >= quarantine_after:
                self._quarantine(key, campaign, spec_json, failed, t,
                                 last_error=error)
                state = QUARANTINED
            else:
                # exponent clamped: past ~2^32 the cap always wins and
                # an unclamped big int would overflow float conversion
                backoff = min(backoff_cap,
                              backoff_base
                              * (2.0 ** min(max(0, attempts - 1), 32)))
                self._conn.execute(
                    "UPDATE jobs SET state='pending', lease_owner=NULL,"
                    " lease_expiry=NULL, not_before=?, failed_workers=?,"
                    " last_error=? WHERE key=? AND campaign=?",
                    (t + backoff, json.dumps(failed), error, key, campaign))
                state = PENDING
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return state

    def _quarantine(self, key: str, campaign: str, spec_json: str,
                    failed: List[str], now: float,
                    last_error: Optional[str] = None) -> None:
        """Park a poison job and write its diagnostic bundle (inside
        the caller's transaction)."""
        self._conn.execute(
            "UPDATE jobs SET state='quarantined', lease_owner=NULL,"
            " lease_expiry=NULL, failed_workers=?, last_error=?"
            " WHERE key=? AND campaign=?",
            (json.dumps(failed), last_error, key, campaign))
        if not self.diag_dir:
            return
        history = self._conn.execute(
            "SELECT worker, error, at FROM failures WHERE key=?"
            " ORDER BY at", (key,)).fetchall()
        bundle = {
            "kind": "farm-quarantine",
            "key": key,
            "campaign": campaign,
            "spec": json.loads(spec_json),
            "distinct_failed_workers": sorted(set(failed)),
            "failures": [
                {"worker": w, "error": e, "at": at} for w, e, at in history
            ],
            "last_error": last_error,
            "quarantined_at": now,
        }
        try:
            os.makedirs(self.diag_dir, exist_ok=True)
            path = os.path.join(self.diag_dir,
                                f"quarantine_{key[:12]}.json")
            with open(path, "w") as fh:
                json.dump(bundle, fh, indent=1, sort_keys=True)
                fh.write("\n")
        except OSError:  # diagnostics never take the farm down
            pass

    # -- progress / results --------------------------------------------

    def status(self, campaign: str) -> Dict[str, object]:
        states = dict(self._conn.execute(
            "SELECT state, COUNT(*) FROM jobs WHERE campaign=?"
            " GROUP BY state", (campaign,)).fetchall())
        total = sum(states.values())
        attempts, = self._one(
            "SELECT COALESCE(SUM(attempts), 0) FROM jobs WHERE campaign=?",
            (campaign,))
        dup_row = self._one(
            "SELECT COALESCE(SUM(r.duplicates), 0) FROM results r"
            " WHERE r.key IN (SELECT key FROM jobs WHERE campaign=?)",
            (campaign,))
        return {
            "campaign": campaign,
            "total": total,
            "pending": states.get(PENDING, 0),
            "leased": states.get(LEASED, 0),
            "done": states.get(DONE, 0),
            "quarantined": states.get(QUARANTINED, 0),
            "attempts": attempts,
            "duplicates": dup_row[0],
        }

    def campaign_done(self, campaign: str) -> bool:
        """No runnable or running work left (all done or quarantined)."""
        row = self._one(
            "SELECT 1 FROM jobs WHERE campaign=? AND state IN"
            " ('pending', 'leased') LIMIT 1", (campaign,))
        return row is None

    def rows(self, campaign: str) -> Dict[str, dict]:
        """``{content_key: result_row}`` for the campaign's done jobs."""
        out: Dict[str, dict] = {}
        for key, row_json in self._conn.execute(
            "SELECT j.key, r.row FROM jobs j JOIN results r ON r.key=j.key"
            " WHERE j.campaign=? AND j.state='done' ORDER BY j.key",
            (campaign,),
        ).fetchall():
            out[key] = json.loads(row_json)
        return out

    def quarantined(self, campaign: str) -> List[Dict[str, object]]:
        rows = self._conn.execute(
            "SELECT key, spec, failed_workers, last_error FROM jobs"
            " WHERE campaign=? AND state='quarantined' ORDER BY key",
            (campaign,)).fetchall()
        return [
            {"key": key, "spec": json.loads(spec),
             "failed_workers": json.loads(fw), "last_error": err}
            for key, spec, fw, err in rows
        ]

    def result_count(self) -> int:
        return self._one("SELECT COUNT(*) FROM results")[0]

    def duplicates_total(self) -> int:
        return self._one(
            "SELECT COALESCE(SUM(duplicates), 0) FROM results")[0]

    # -- gc ------------------------------------------------------------

    def gc(self, prune_cache: bool = False,
           drop_done_campaigns: bool = True) -> Dict[str, int]:
        """Housekeeping: release expired leases, drop finished
        campaigns' job rows, optionally prune unreferenced cache rows.

        The result cache is kept by default — it is the point of the
        farm (re-submitted sweeps are free); ``prune_cache`` removes
        rows no surviving job references.
        """
        t = time.time()
        summary = {"released": 0, "campaigns_dropped": 0, "jobs_dropped": 0,
                   "results_pruned": 0}
        self._begin()
        try:
            cur = self._conn.execute(
                "UPDATE jobs SET state='pending', lease_owner=NULL,"
                " lease_expiry=NULL WHERE state='leased'"
                " AND lease_expiry<=?", (t,))
            summary["released"] = cur.rowcount
            if drop_done_campaigns:
                done = [
                    cid for (cid,) in self._conn.execute(
                        "SELECT id FROM campaigns").fetchall()
                    if self._one(
                        "SELECT 1 FROM jobs WHERE campaign=? AND state IN"
                        " ('pending', 'leased') LIMIT 1", (cid,)) is None
                ]
                for cid in done:
                    cur = self._conn.execute(
                        "DELETE FROM jobs WHERE campaign=?", (cid,))
                    summary["jobs_dropped"] += cur.rowcount
                    self._conn.execute(
                        "DELETE FROM failures WHERE campaign=?", (cid,))
                    self._conn.execute(
                        "DELETE FROM campaigns WHERE id=?", (cid,))
                summary["campaigns_dropped"] = len(done)
            if prune_cache:
                cur = self._conn.execute(
                    "DELETE FROM results WHERE key NOT IN"
                    " (SELECT key FROM jobs)")
                summary["results_pruned"] = cur.rowcount
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        self._conn.execute("VACUUM")
        return summary
