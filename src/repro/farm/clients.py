"""Farm clients: run the existing sweeps as durable campaigns.

Each client translates a legacy grid (``run_matrix``'s workload grid,
the chaos scenario sweep, a perf profile) into a :class:`CampaignSpec`,
drives it through :func:`run_campaign`, and translates the content-
keyed result rows back into exactly the shape the legacy caller
returns — so figure/table/report generators are oblivious to whether a
sweep ran locally or on the farm, and the rows are bit-identical
either way (perf wall timings excepted).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common import journal as journal_mod
from repro.common.errors import ConfigError
from repro.common.params import FenceDesign
from repro.farm.campaign import run_campaign
from repro.farm.spec import CampaignSpec
from repro.farm.worker import FarmConfig


def default_farm_workers() -> int:
    env = os.environ.get("REPRO_FARM_WORKERS")
    if env:
        try:
            return max(0, int(env))
        except ValueError:
            pass
    return max(1, min(4, (os.cpu_count() or 2) - 1))


def _resolve_workers(workers: Optional[int]) -> int:
    return default_farm_workers() if workers is None else workers


# ----------------------------------------------------------------------
# matrix
# ----------------------------------------------------------------------

def farm_run_matrix(
    names: Sequence[str],
    designs: Sequence[FenceDesign],
    num_cores: int = 8,
    scale: float = 1.0,
    seed: int = 12345,
    core_counts: Optional[Sequence[int]] = None,
    db: str = "farm.sqlite",
    workers: Optional[int] = None,
    journal: Optional[str] = None,
    resume: bool = False,
    overwrite_journal: bool = False,
    config: Optional[FarmConfig] = None,
):
    """``run_matrix`` on the farm; same return shape, same rows.

    The journal (if any) is exported from the store afterwards in the
    runner's JSONL format — append-missing, so an existing journal from
    an interrupted local sweep is completed, not rewritten.  The store,
    not the journal, is the source of truth for resumption.
    """
    from repro.eval.runner import RunSummary, _job_key

    counts = list(core_counts) if core_counts else [num_cores]
    spec = CampaignSpec.make(
        "matrix", names, designs, seeds=[seed], core_counts=counts,
        scale=scale,
    )
    journal_mod.prepare(journal, resume=resume, overwrite=overwrite_journal)
    rows = run_campaign(db, spec, workers=_resolve_workers(workers),
                        config=config)
    results: Dict[Tuple[str, str, int], RunSummary] = {}
    exported: List[Tuple[str, dict]] = []
    missing: List[str] = []
    for job in spec.expand():
        row = rows.get(job.content_key())
        if row is None:
            missing.append(job.content_key())
            continue
        summary = RunSummary(**row)
        results[(summary.name, summary.design, summary.num_cores)] = summary
        legacy_key = _job_key(
            (job.workload, job.design, job.cores, job.scale, job.seed))
        exported.append((legacy_key, row))
    if missing:
        raise ConfigError(
            f"farm campaign {spec.campaign_id()} finished with "
            f"{len(missing)} unproduced job(s) (quarantined?): "
            f"{missing[:3]}..."
        )
    if journal:
        have = set(
            journal_mod.load_keyed(
                journal, key=lambda rec: rec.get("_key")).keys()
        ) if os.path.exists(journal) else set()
        with journal_mod.JournalWriter(journal) as writer:
            for legacy_key, row in exported:
                if legacy_key in have:
                    continue
                rec = dict(row)
                rec["_key"] = legacy_key
                writer.append(rec)
    return results


# ----------------------------------------------------------------------
# chaos
# ----------------------------------------------------------------------

def farm_chaos_cases(
    scenarios: Sequence[str],
    designs: Sequence[FenceDesign],
    seeds: Sequence[int],
    db: str = "farm.sqlite",
    workers: Optional[int] = None,
    sanitize: str = "strict",
    diag_dir: Optional[str] = None,
    config: Optional[FarmConfig] = None,
) -> list:
    """The chaos grid as a campaign; :class:`ChaosCase` list in the
    legacy sweep order (scenario-major, then design, then seed)."""
    from repro.faults.chaos import _case_from_record

    spec = CampaignSpec.make(
        "chaos", scenarios, designs, seeds=seeds, core_counts=[0],
        scale=0.0, config={"sanitize": sanitize},
    )
    if config is None:
        config = FarmConfig(diag_dir=diag_dir)
    rows = run_campaign(db, spec, workers=_resolve_workers(workers),
                        config=config)
    cases = []
    missing = []
    # legacy order is scenario > design > seed; the campaign expands
    # workload > design > cores > seed with a single core count, so the
    # orders coincide job-for-job
    for job in spec.expand():
        row = rows.get(job.content_key())
        if row is None:
            missing.append(job.content_key())
            continue
        cases.append(_case_from_record(row))
    if missing:
        raise ConfigError(
            f"farm campaign {spec.campaign_id()} finished with "
            f"{len(missing)} unproduced case(s) (quarantined?): "
            f"{missing[:3]}..."
        )
    return cases


# ----------------------------------------------------------------------
# perf
# ----------------------------------------------------------------------

def farm_perf_cases(
    cases,
    reps: int = 3,
    db: str = "farm.sqlite",
    workers: Optional[int] = None,
    config: Optional[FarmConfig] = None,
) -> List[dict]:
    """Time a perf-profile case list on the farm; snapshot entries in
    input order.

    Wall timings are measured wherever the job lands, so entries are
    *not* bit-identical across runs (the cache still applies: an
    already-timed identical case+rev is reused, which is exactly the
    hermetic-baseline behaviour the perf harness wants within one
    host).  ``sim_cycles``/``events_executed`` remain deterministic.
    """
    from repro.farm.spec import JobSpec

    specs = [
        JobSpec.make(
            "perf", case.workload, case.design, case.seed,
            cores=case.cores, scale=case.scale,
            config={"reps": int(reps), "kernel": case.kernel},
        )
        for case in cases
    ]
    if not specs:
        return []
    base = specs[0]
    grouped = CampaignSpec(
        kind="perf",
        workloads=tuple(dict.fromkeys(s.workload for s in specs)),
        designs=tuple(dict.fromkeys(s.design for s in specs)),
        seeds=tuple(dict.fromkeys(s.seed for s in specs)),
        core_counts=tuple(dict.fromkeys(s.cores for s in specs)),
        scale=base.scale,
        config=base.config,
        code_rev=base.code_rev,
    )
    wanted = {s.content_key() for s in specs}
    grid = {j.content_key() for j in grouped.expand()}
    if wanted != grid:
        raise ConfigError(
            "perf profile is not a dense grid (mixed scales/kernels per "
            "case); run it locally or split the profile per kernel"
        )
    rows = run_campaign(db, grouped, workers=_resolve_workers(workers),
                        config=config)
    out = []
    for s in specs:
        row = rows.get(s.content_key())
        if row is None:
            raise ConfigError(
                f"farm produced no row for perf case {s.workload}/"
                f"{s.design} (quarantined?)"
            )
        out.append(row)
    return out
