"""Execute one :class:`JobSpec` — the farm's kind dispatch table.

Each kind maps onto the existing single-job entry point of its
subsystem, so a farm worker runs *exactly* the same code path as a
local sweep and the produced row is bit-identical to the local one
(perf rows excepted — they carry wall-clock timings by nature; their
simulated ``cycles``/``events`` fields are still deterministic).

Per-job settings ride in ``spec.config`` (canonical JSON, part of the
content key): ``sanitize`` for matrix/chaos, ``reps``/``kernel`` for
perf, and an optional ``budget`` object (:class:`RunBudget` fields) so
a wedged job degrades gracefully instead of wedging its worker.  A
worker-side *diag_dir* is plumbed separately — where diagnostics land
must not change a job's identity.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional

from repro.common.errors import ConfigError
from repro.farm.spec import JobSpec
from repro.sim.governor import RunBudget


def _budget(cfg: dict) -> Optional[RunBudget]:
    """Per-job budget from the config blob, else the environment.

    Prefer event budgets in campaign configs: an event cutoff is
    deterministic, so a degraded row is still bit-identical across
    workers; a wall/RSS cutoff depends on the machine that ran it.
    """
    blob = cfg.get("budget")
    if blob:
        return RunBudget(
            max_wall_secs=blob.get("max_wall_secs"),
            max_events=blob.get("max_events"),
            max_rss_mb=blob.get("max_rss_mb"),
        )
    return RunBudget.from_env()


def _run_matrix_job(spec: JobSpec, diag_dir: Optional[str]) -> dict:
    from repro.eval.runner import run_summary

    cfg = spec.config_dict()
    summary = run_summary(
        spec.workload, spec.design, spec.cores, spec.scale, spec.seed,
        sanitize=cfg.get("sanitize"), budget=_budget(cfg),
    )
    return dataclasses.asdict(summary)


def _run_chaos_job(spec: JobSpec, diag_dir: Optional[str]) -> dict:
    from repro.faults.chaos import run_chaos_case

    cfg = spec.config_dict()
    case = run_chaos_case(
        spec.workload,            # the fault scenario name
        spec.fence_design,
        spec.seed,
        diag_dir=diag_dir,
        sanitize=cfg.get("sanitize", "strict"),
        budget=_budget(cfg),
    )
    return case.to_dict()


def _run_perf_job(spec: JobSpec, diag_dir: Optional[str]) -> dict:
    from repro.perf.harness import PerfCase, _time_case

    cfg = spec.config_dict()
    case = PerfCase(
        workload=spec.workload,
        design=spec.fence_design,
        cores=spec.cores,
        scale=spec.scale,
        seed=spec.seed,
        kernel=cfg.get("kernel", "object"),
    )
    return _time_case(case, reps=int(cfg.get("reps", 3)))


EXECUTORS: Dict[str, Callable[[JobSpec, Optional[str]], dict]] = {
    "matrix": _run_matrix_job,
    "chaos": _run_chaos_job,
    "perf": _run_perf_job,
}


def execute_job(spec: JobSpec, diag_dir: Optional[str] = None) -> dict:
    """Run *spec* and return its JSON-able result row."""
    try:
        runner = EXECUTORS[spec.kind]
    except KeyError:
        raise ConfigError(
            f"no executor for job kind {spec.kind!r}"
        ) from None
    return runner(spec, diag_dir)
