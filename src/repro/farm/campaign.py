"""Campaign coordination: submit a grid, drive it to completion.

The coordinator owns no irreplaceable state — it submits the campaign
(idempotent), supervises a self-healing :class:`WorkerPool`, and polls
the store until no runnable work remains.  Killing the coordinator and
re-running :func:`run_campaign` with the same spec resumes exactly the
unfinished jobs and converges to the same result rows; a *finished*
campaign resubmitted later is served entirely from the result cache
(zero new simulations).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple

from repro.farm.pool import WorkerPool
from repro.farm.spec import CampaignSpec
from repro.farm.store import FarmStore
from repro.farm.worker import FarmConfig, run_worker


def submit(db_path: str, spec: CampaignSpec,
           diag_dir: Optional[str] = None) -> Tuple[str, Dict[str, int]]:
    """Register *spec*'s jobs; returns ``(campaign_id, counts)``."""
    with FarmStore(db_path, diag_dir=diag_dir) as store:
        return store.submit_campaign(spec)


def collect(db_path: str, campaign: str) -> Dict[str, dict]:
    """``{content_key: result_row}`` for the campaign's done jobs."""
    with FarmStore(db_path) as store:
        return store.rows(campaign)


def run_campaign(
    db_path: str,
    spec: CampaignSpec,
    workers: int = 2,
    config: Optional[FarmConfig] = None,
    poll_secs: float = 0.25,
    on_poll: Optional[Callable[[FarmStore, WorkerPool], None]] = None,
    timeout: Optional[float] = None,
) -> Dict[str, dict]:
    """Submit *spec* and drive it to completion; returns its rows.

    ``workers == 0`` runs every job inline in this process (no pool,
    fully deterministic scheduling) — the mode tests and tiny sweeps
    use.  Otherwise a :class:`WorkerPool` of *workers* processes drains
    the campaign while the coordinator supervises: each poll respawns
    any dead worker and calls *on_poll* (the chaos battery's hook for
    killing workers mid-flight).

    Safe to call again after a coordinator crash — submission is
    idempotent and only unfinished jobs run.
    """
    config = config or FarmConfig()
    cid, _counts = submit(db_path, spec, diag_dir=config.diag_dir)
    if workers == 0:
        run_worker(db_path, cid, config=config, once=True)
        return collect(db_path, cid)
    deadline = None if timeout is None else time.monotonic() + timeout
    with FarmStore(db_path, diag_dir=config.diag_dir) as store:
        with WorkerPool(db_path, cid, workers, config=config) as pool:
            while not store.campaign_done(cid):
                if deadline is not None and time.monotonic() > deadline:
                    raise TimeoutError(
                        f"campaign {cid} still unfinished after "
                        f"{timeout}s: {store.status(cid)}"
                    )
                pool.ensure()
                if on_poll is not None:
                    on_poll(store, pool)
                time.sleep(poll_secs)
        return store.rows(cid)
