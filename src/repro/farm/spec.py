"""Job and campaign specifications: content addressing and sharding.

A **job** is one independent simulation, identified entirely by its
content: ``(kind, design, workload, config, seed, code-rev)``.  The
sha256 of that canonical tuple is the job's **content key** — the
primary key of the farm's result cache, so an identical job submitted
twice (same campaign, a later campaign, a re-run after a crash, or a
duplicate execution under an expired lease) resolves to exactly one
result row.

A **campaign** is a deterministic grid of jobs ("all designs ×
workloads × seeds").  Its id is the content address of the spec, so
re-submitting an identical campaign is idempotent and completes from
the cache with zero new simulations.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import subprocess
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.common.params import FenceDesign

#: job kinds the executor knows how to run (repro.farm.exec)
KINDS = ("matrix", "chaos", "perf")

_CODE_REV: Optional[str] = None


def canonical_json(obj) -> str:
    """Stable, whitespace-free JSON — the hashing/equality form."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def code_rev() -> str:
    """The code revision baked into content keys.

    ``REPRO_CODE_REV`` overrides (hermetic builds, CI); otherwise the
    repository's short git revision; ``unknown`` when neither exists.
    Cached per process — fork-spawned workers inherit it.
    """
    global _CODE_REV
    env = os.environ.get("REPRO_CODE_REV")
    if env:
        return env
    if _CODE_REV is None:
        try:
            out = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True, text=True, timeout=5,
                cwd=os.path.dirname(os.path.abspath(__file__)),
            )
            rev = out.stdout.strip()
            _CODE_REV = rev if out.returncode == 0 and rev else "unknown"
        except (OSError, subprocess.TimeoutExpired):
            _CODE_REV = "unknown"
    return _CODE_REV


def _design_name(design) -> str:
    """Canonical design identity: the enum *name* (``S_PLUS``), which
    is also what ``run_matrix`` grids use."""
    if isinstance(design, FenceDesign):
        return design.name
    if design in FenceDesign.__members__:
        return design
    # accept values ("S+") too, normalizing to names
    return FenceDesign(design).name


@dataclass(frozen=True)
class JobSpec:
    """One content-addressed simulation job.

    ``workload`` is the workload name for matrix/perf jobs and the
    fault-scenario name for chaos jobs; ``config`` is canonical JSON of
    everything else that shapes the run (sanitize mode, perf reps,
    kernel backend, ...), so per-job settings flow through the store
    unchanged and participate in the content key.
    """

    kind: str
    workload: str
    design: str  # FenceDesign name, e.g. "S_PLUS"
    seed: int
    cores: int = 0
    scale: float = 0.0
    config: str = "{}"
    code_rev: str = ""

    @staticmethod
    def make(kind: str, workload: str, design, seed: int,
             cores: int = 0, scale: float = 0.0,
             config: Optional[dict] = None,
             rev: Optional[str] = None) -> "JobSpec":
        if kind not in KINDS:
            raise ConfigError(f"unknown job kind {kind!r}; one of {KINDS}")
        return JobSpec(
            kind=kind,
            workload=workload,
            design=_design_name(design),
            seed=int(seed),
            cores=int(cores),
            scale=float(scale),
            config=canonical_json(config or {}),
            code_rev=rev if rev is not None else code_rev(),
        )

    @property
    def fence_design(self) -> FenceDesign:
        return FenceDesign[self.design]

    def config_dict(self) -> dict:
        return json.loads(self.config)

    def content_key(self) -> str:
        blob = canonical_json(dataclasses.asdict(self))
        return hashlib.sha256(blob.encode()).hexdigest()[:40]

    def to_json(self) -> str:
        return canonical_json(dataclasses.asdict(self))

    @staticmethod
    def from_json(blob: str) -> "JobSpec":
        return JobSpec(**json.loads(blob))


@dataclass(frozen=True)
class CampaignSpec:
    """A deterministic grid of jobs.

    ``workloads`` are workload names (matrix/perf) or fault scenarios
    (chaos); ``designs`` are :class:`FenceDesign` names.  ``expand``
    enumerates the grid in a fixed order (workload-major, then design,
    core count, seed) — sharding across workers is emergent from
    lease-based claiming, but the job *set* and every job's identity
    are deterministic, so any interleaving of workers, crashes and
    restarts converges to the same result rows.
    """

    kind: str
    workloads: Tuple[str, ...]
    designs: Tuple[str, ...]
    seeds: Tuple[int, ...]
    core_counts: Tuple[int, ...] = (8,)
    scale: float = 1.0
    config: str = "{}"
    code_rev: str = ""

    @staticmethod
    def make(kind: str, workloads: Sequence[str], designs: Sequence,
             seeds: Sequence[int], core_counts: Sequence[int] = (8,),
             scale: float = 1.0, config: Optional[dict] = None,
             rev: Optional[str] = None) -> "CampaignSpec":
        if kind not in KINDS:
            raise ConfigError(f"unknown job kind {kind!r}; one of {KINDS}")
        return CampaignSpec(
            kind=kind,
            workloads=tuple(workloads),
            designs=tuple(_design_name(d) for d in designs),
            seeds=tuple(int(s) for s in seeds),
            core_counts=tuple(int(c) for c in core_counts),
            scale=float(scale),
            config=canonical_json(config or {}),
            code_rev=rev if rev is not None else code_rev(),
        )

    def expand(self) -> List[JobSpec]:
        jobs: List[JobSpec] = []
        for workload in self.workloads:
            for design in self.designs:
                for cores in self.core_counts:
                    for seed in self.seeds:
                        jobs.append(JobSpec(
                            kind=self.kind,
                            workload=workload,
                            design=design,
                            seed=seed,
                            cores=cores,
                            scale=self.scale,
                            config=self.config,
                            code_rev=self.code_rev,
                        ))
        return jobs

    def campaign_id(self) -> str:
        blob = canonical_json(dataclasses.asdict(self))
        return "c" + hashlib.sha256(blob.encode()).hexdigest()[:16]

    def to_json(self) -> str:
        return canonical_json(dataclasses.asdict(self))

    @staticmethod
    def from_json(blob: str) -> "CampaignSpec":
        d = json.loads(blob)
        return CampaignSpec(
            kind=d["kind"],
            workloads=tuple(d["workloads"]),
            designs=tuple(d["designs"]),
            seeds=tuple(d["seeds"]),
            core_counts=tuple(d.get("core_counts", (8,))),
            scale=d.get("scale", 1.0),
            config=d.get("config", "{}"),
            code_rev=d.get("code_rev", ""),
        )

    def describe(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "workloads": list(self.workloads),
            "designs": [FenceDesign[d].value for d in self.designs],
            "seeds": len(self.seeds),
            "core_counts": list(self.core_counts),
            "scale": self.scale,
            "jobs": (len(self.workloads) * len(self.designs)
                     * len(self.core_counts) * len(self.seeds)),
            "code_rev": self.code_rev,
        }
