"""WS+ — at most one weak fence per fence group (paper §3.3.1).

Because every other fence in a colliding group is an sf (no BS), a
pre-wf write of this core can only be bounced by an *unrelated* wf —
never to prevent an SCV.  Such bouncing is therefore unnecessary, and
the hardware promotes every currently-bouncing pre-wf write to an
**Order** request: the directory invalidates the sharers but keeps the
BS-matching ones as sharers (preserving their monitoring ability) and
merges the update, so the write completes ordered *after* the remote
post-wf read.

Promotion happens (a) when the wf retires, for writes already bouncing,
and (b) when a pre-wf write starts bouncing while a wf is incomplete.
Writes followed by an sf keep bouncing (no special action — the paper
notes sfs belong to non-critical threads).
"""

from __future__ import annotations

from repro.common.params import FenceDesign, FenceFlavour
from repro.fences.base import FencePolicy, PendingFence


class WSPlusPolicy(FencePolicy):
    design = FenceDesign.WS_PLUS
    # synthesis: both flavours expressible, but at most one wf per
    # fence group — more would make Order promotion close an SCV cycle
    synth_flavours = (FenceFlavour.WF, FenceFlavour.SF)
    synth_max_wf = 1

    def on_wf_retire(self, pf: PendingFence) -> bool:
        core = self.core
        promoted = core.wb.mark_ordered_upto(pf.last_store_id)
        if promoted:
            if core.tracer is not None:
                core.tracer.order_promotion(core.core_id, promoted, False)
            if core.attrib is not None:
                core.attrib.note(core.core_id, "order_promotions", promoted)
        return True

    def on_pre_store_bounce(self, entry) -> None:
        if self._is_pre_wf(entry) and not entry.ordered:
            entry.ordered = True
            core = self.core
            if core.tracer is not None:
                core.tracer.order_promotion(core.core_id, 1, False)
            if core.attrib is not None:
                core.attrib.note(core.core_id, "order_promotions")

    def _is_pre_wf(self, entry) -> bool:
        return any(
            entry.store_id <= pf.last_store_id for pf in self.core.pending_fences
        )

    def sanitizer_check(self):
        # Order promotion is only legal for pre-wf stores, and WS+'s
        # BS is line-granularity: a word mask would mean CO machinery
        # (SW+) leaked into this design.
        core = self.core
        pfs = core.pending_fences
        newest = pfs[-1].last_store_id if pfs else 0
        for e in core.wb._entries:
            if e.ordered and e.store_id > newest:
                yield ("order-outside-episode", e.line,
                       f"store {e.store_id} ordered but newest pre-wf "
                       f"store is {newest}")
            if e.word_mask:
                yield ("word-mask-on-coarse-design", e.line,
                       f"store {e.store_id} carries word mask "
                       f"{e.word_mask:#x} on WS+")
