"""Conditional Fences — the second §8 related-work baseline.

An **extension** to the paper's evaluated set.  Per Lin, Nagarajan &
Gupta (PACT'10), fences are statically classified into *associate*
groups — fences that could form a dynamic fence group.  At runtime a
fence consults a **centralized table**: if no associate is currently
executing, the fence imposes no ordering delay at all (an SCV needs a
cycle, and a cycle needs a concurrent associate); otherwise it stalls
conventionally until the associate completes.

We model the conservative classification (every fence is everyone
else's associate — a compiler would refine this) and the centralized
table the paper criticizes: each fence pays a round trip to the table
tile, and the table itself serializes check-and-register, which is
what makes the scheme SCV-free.

Differences from the paper's wfs, visible in the extension bench:
the common (uncontended) case still pays the table round trip, and the
centralized structure is exactly the kind of global hardware the
asymmetric designs exist to avoid.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.common.params import FenceDesign
from repro.fences.base import FencePolicy


class CFenceTable:
    """The centralized associate table (one per machine).

    ``active`` maps core id -> the store id its executing fence waits
    on.  Registration/clearing happen inside single events, so two
    concurrent fences can never both observe an empty table.
    """

    def __init__(self):
        self.active: Dict[int, int] = {}
        self._waiters: List[Callable[[], None]] = []

    def register(self, core_id: int, store_id: int) -> None:
        self.active[core_id] = store_id

    def clear(self, core_id: int) -> None:
        self.active.pop(core_id, None)
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter()

    def associates_of(self, core_id: int) -> List[int]:
        return [c for c in self.active if c != core_id]

    def wait(self, callback: Callable[[], None]) -> None:
        self._waiters.append(callback)


def table_for(machine) -> CFenceTable:
    table = getattr(machine, "_cfence_table", None)
    if table is None:
        table = machine._cfence_table = CFenceTable()
    return table


class CFencePolicy(FencePolicy):
    design = FenceDesign.CFENCE

    def custom_strong_fence(self, resume: Callable[[], None]) -> None:
        """Replace the conventional stall with the C-fence protocol."""
        core = self.core
        table = table_for(core.machine)
        t0 = core.queue.now
        # round trip to the centralized table's tile (tile 0)
        from repro.mem.messages import Msg
        trip = core.l1.noc.latency(core.core_id, 0, Msg.GETS)

        def at_table():
            associates = table.associates_of(core.core_id)
            last_store = core.wb.newest_store_id()
            if not associates:
                # no associate executing: no ordering delay needed.
                # Register until the pre-fence stores drain so a later
                # associate sees us.
                if last_store:
                    table.register(core.core_id, last_store)
                    core.register_cfence_clear(last_store, table)
                core.stats.cfence_skips += 1
                if core.tracer is not None:
                    core.tracer.cfence_decision(core.core_id, True)
                finish()
                return
            core.stats.cfence_stalls += 1
            if core.tracer is not None:
                core.tracer.cfence_decision(core.core_id, False)
            # an associate executes: behave conventionally — drain the
            # write buffer, then wait for the associates to finish.
            core._wait_for_drain(core._guard(lambda: wait_clear()))

        def wait_clear():
            if table.associates_of(core.core_id):
                table.wait(core._guard(wait_clear))
                return
            finish()

        def finish():
            charge = (core.queue.now - t0) + trip
            core.stats.add_fence_stall(core.core_id, charge)
            if core.attrib is not None:
                core.attrib.cfence(core.core_id, charge)
            core.queue.schedule(trip, resume, "cfence.reply")

        core.queue.schedule(trip, core._guard(at_table), "cfence.check")
