"""W+ — all fences may be weak, deadlock handled by recovery (§3.3.3).

No Order promotion, no fine-grain BS, no global state: when multiple
colliding wfs prevent a cycle they simply deadlock — each core has a
pre-wf write being bounced *and* a BS that bounces external requests.
The hardware:

1. takes a register checkpoint when a wf retires (here: the thread's
   replay-log position, see :mod:`repro.core.thread`);
2. starts a timeout once it detects (bouncing ∧ being-bounced);
3. on expiry, rolls back to the checkpoint, clears the BS, waits for
   the write buffer to drain (completing all pre-wf accesses — the wf
   behaves as an sf this once), and resumes.

Under TSO the squashed post-wf accesses are necessarily loads, so the
rollback needs no speculative store buffering (the core discards the
not-yet-merged post-wf write-buffer entries).  Timeouts are staggered
per core to avoid recovery livelock.

All the heavy machinery (epoch-guarded continuations, WB truncation,
drain wait) lives in :meth:`repro.core.cpu.Core._recover`; the policy
only flags what the core must do.
"""

from __future__ import annotations

from collections import deque

from repro.common.params import FenceDesign, FenceFlavour, FenceRole
from repro.fences.base import FencePolicy


class WPlusPolicy(FencePolicy):
    design = FenceDesign.W_PLUS
    needs_checkpoint = True
    needs_deadlock_monitor = True
    # synthesis: every fence is a wf (recovery tolerates all-wf
    # groups); sf behaviour only ever appears dynamically, via the
    # recovery drain or the storm-demotion monitor
    synth_flavours = (FenceFlavour.WF,)

    def __init__(self, core):
        super().__init__(core)
        # recovery-storm monitor (graceful degradation, mirrors Wee's
        # dynamic wf -> sf demotion): K recoveries inside a sliding
        # window demote this core's wfs to sfs for a cooldown period,
        # trading wf overlap for guaranteed progress instead of
        # thrashing through checkpoint rollbacks.  Off by default
        # (``wplus_storm_k == 0``) so baseline W+ timing is untouched.
        self._recovery_times: deque = deque()
        self._demoted_until = -1

    def flavour(self, role: FenceRole) -> FenceFlavour:
        if self.core.queue.now < self._demoted_until:
            return FenceFlavour.SF
        return super().flavour(role)

    def on_recovery(self) -> None:
        core = self.core
        k = core.params.wplus_storm_k
        if k <= 0:
            return
        now = core.queue.now
        times = self._recovery_times
        times.append(now)
        horizon = now - core.params.wplus_storm_window_cycles
        while times and times[0] < horizon:
            times.popleft()
        if len(times) >= k and now >= self._demoted_until:
            self._demoted_until = now + core.params.wplus_storm_cooldown_cycles
            times.clear()
            core.stats.storm_demotions[core.core_id] += 1
            if core.tracer is not None:
                core.tracer.storm_demotion(core.core_id, self._demoted_until)
            if core.attrib is not None:
                core.attrib.note(core.core_id, "storm_demotions")

    def sanitizer_check(self):
        # rollback recovery is W+'s whole correctness story: a pending
        # wf without a checkpoint could never be unwound.
        for pf in self.core.pending_fences:
            if pf.checkpoint is None:
                yield ("wplus-missing-checkpoint", None,
                       f"pending fence {pf.fence_id} has no checkpoint")
