"""W+ — all fences may be weak, deadlock handled by recovery (§3.3.3).

No Order promotion, no fine-grain BS, no global state: when multiple
colliding wfs prevent a cycle they simply deadlock — each core has a
pre-wf write being bounced *and* a BS that bounces external requests.
The hardware:

1. takes a register checkpoint when a wf retires (here: the thread's
   replay-log position, see :mod:`repro.core.thread`);
2. starts a timeout once it detects (bouncing ∧ being-bounced);
3. on expiry, rolls back to the checkpoint, clears the BS, waits for
   the write buffer to drain (completing all pre-wf accesses — the wf
   behaves as an sf this once), and resumes.

Under TSO the squashed post-wf accesses are necessarily loads, so the
rollback needs no speculative store buffering (the core discards the
not-yet-merged post-wf write-buffer entries).  Timeouts are staggered
per core to avoid recovery livelock.

All the heavy machinery (epoch-guarded continuations, WB truncation,
drain wait) lives in :meth:`repro.core.cpu.Core._recover`; the policy
only flags what the core must do.
"""

from __future__ import annotations

from repro.common.params import FenceDesign
from repro.fences.base import FencePolicy


class WPlusPolicy(FencePolicy):
    design = FenceDesign.W_PLUS
    needs_checkpoint = True
    needs_deadlock_monitor = True
