"""SW+ — any asymmetric fence group (paper §3.3.2).

With several wfs in a group, some pre-wf writes *must* keep bouncing to
prevent an SCV (Fig. 3c) — unconditional Order promotion (WS+) would
order the write and close the dependence cycle.  SW+ therefore issues a
**Conditional Order**: the request carries the word bitmask being
written, the BS keeps word-granularity access info, and the directory
completes the operation only when every BS match is due to *false
sharing*.  True-sharing matches make the CO fail and retry — that
bouncing is what prevents the SCV, and it terminates because every
asymmetric group contains at least one sf.
"""

from __future__ import annotations

from repro.common.params import FenceDesign, FenceFlavour
from repro.fences.base import FencePolicy, PendingFence


class SWPlusPolicy(FencePolicy):
    design = FenceDesign.SW_PLUS
    fine_grain_bs = True
    # synthesis: any asymmetric group — several wfs are fine as long
    # as an sf breaks the would-be bounce cycle (the CO termination
    # argument above); all-wf groups need W+'s recovery hardware
    synth_flavours = (FenceFlavour.WF, FenceFlavour.SF)
    synth_needs_sf_with_wf = True

    def on_wf_retire(self, pf: PendingFence) -> bool:
        core = self.core
        promoted = core.wb.mark_ordered_upto(
            pf.last_store_id, word_mask_fn=core.amap.word_mask
        )
        if promoted:
            if core.tracer is not None:
                core.tracer.order_promotion(core.core_id, promoted, True)
            if core.attrib is not None:
                core.attrib.note(core.core_id, "cond_order_promotions",
                                 promoted)
        return True

    def on_pre_store_bounce(self, entry) -> None:
        if self._is_pre_wf(entry) and not entry.ordered:
            entry.ordered = True
            entry.word_mask = self.core.amap.word_mask(entry.word)
            core = self.core
            if core.tracer is not None:
                core.tracer.order_promotion(core.core_id, 1, True)
            if core.attrib is not None:
                core.attrib.note(core.core_id, "cond_order_promotions")

    def _is_pre_wf(self, entry) -> bool:
        return any(
            entry.store_id <= pf.last_store_id for pf in self.core.pending_fences
        )

    def sanitizer_check(self):
        # CO promotion is only legal for pre-wf stores, and every
        # ordered store must carry the word mask its Conditional Order
        # request needs for the false-sharing test.
        core = self.core
        pfs = core.pending_fences
        newest = pfs[-1].last_store_id if pfs else 0
        for e in core.wb._entries:
            if e.ordered and e.store_id > newest:
                yield ("order-outside-episode", e.line,
                       f"store {e.store_id} ordered but newest pre-wf "
                       f"store is {newest}")
            if e.ordered and not e.word_mask:
                yield ("cond-order-missing-mask", e.line,
                       f"ordered store {e.store_id} has an empty word "
                       "mask on SW+")
