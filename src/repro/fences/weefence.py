"""Wee — the WeeFence baseline with its global state (paper §2.2).

WeeFence avoids the wf-only deadlock with the Global Reorder Table
(GRT): a fence deposits its Pending Set (PS — the line addresses of its
not-yet-completed pre-fence stores) at the directory and collects the
PSs of all concurrently-executing fences into a local *Remote PS*.
A post-fence access whose address hits the Remote PS stalls, which
breaks the would-be dependence cycle before any BS bounce can deadlock.

The implementability problem the paper highlights: the PS/BS state must
be confined to a **single** directory module, because collecting a
consistent view across modules is unsolved.  WeeFence therefore demotes
a fence to a conventional sf when confinement fails [8].  We model both
halves of that rule:

* at retirement, if the PS lines map to more than one directory bank,
  the fence executes as an sf (counted in Table 4 cols 12-13);
* while the fence is incomplete, a post-fence load homed at a different
  bank than the deposit (its GRT check would need a second module)
  converts the fence: the load stalls until the fence completes and the
  dynamic fence is re-counted as an sf.

Post-fence loads also stall until the GRT round-trip returns (they must
check the Remote PS before completing) and whenever they hit it.
"""

from __future__ import annotations

from typing import Optional

from repro.common.params import FenceDesign, FenceFlavour
from repro.fences.base import FencePolicy, PendingFence


class WeeFencePolicy(FencePolicy):
    design = FenceDesign.WEE
    # synthesis: WeeFence is placed as a wf everywhere; the GRT
    # confinement rule demotes individual dynamic instances to sf
    synth_flavours = (FenceFlavour.WF,)

    def on_wf_retire(self, pf: PendingFence) -> bool:
        core = self.core
        ps_lines = {e.line for e in core.wb.entries_upto(pf.last_store_id)}
        banks = {core.amap.home_bank(line) for line in ps_lines}
        ideal = core.params.wee_ideal
        if len(banks) > 1 and not ideal:
            if core.attrib is not None:
                core.attrib.note(core.core_id, "wee_demotions")
            return False  # confinement failure: execute as sf
        pf.wee_bank = min(banks)
        pf.wee_remote_ps = None

        def remote_ps_arrived(remote):
            pf.wee_remote_ps = remote
            core.retry_stalled_load()
            core.recheck_fence_completion()

        core.l1.grt_deposit(pf.wee_bank, pf.fence_id, ps_lines,
                            remote_ps_arrived, global_view=ideal)
        return True

    def completion_blocked(self, pf: PendingFence) -> bool:
        # the fence's GRT state must be acknowledged before the fence
        # can retire its bookkeeping (multi-module consistency is the
        # very problem WeeFence cannot solve, §2.3)
        return pf.wee_remote_ps is None

    def on_wf_complete(self, pf: PendingFence) -> None:
        if pf.wee_bank is not None:
            self.core.l1.grt_withdraw(pf.wee_bank, pf.fence_id)

    def load_stall_check(self, addr: int) -> Optional[str]:
        core = self.core
        line = core.amap.line_of(addr)
        for pf in core.pending_fences:
            if pf.wee_bank is None:
                continue  # demoted instance already ran as sf
            if pf.wee_remote_ps is None:
                return "grt_pending"
            if line in pf.wee_remote_ps:
                return "remote_ps"
            if not core.params.wee_ideal and \
                    core.amap.home_bank(line) != pf.wee_bank:
                if not pf.wee_converted:
                    pf.wee_converted = True
                    core.recount_wee_conversion()
                    if core.tracer is not None:
                        core.tracer.wf_convert(core.core_id, pf.fence_id)
                    if core.attrib is not None:
                        core.attrib.note(core.core_id, "wee_conversions")
                return "cross_bank"
        return None

    def sanitizer_check(self):
        # GRT discipline: once the deposit round trip has been
        # acknowledged (wee_remote_ps set), the deposit must sit at the
        # fence's deposit module — and, unless the idealized ablation is
        # on, at no other module (single-module confinement, §2.3).
        core = self.core
        banks = core.l1.banks
        ideal = core.params.wee_ideal
        for pf in core.pending_fences:
            if pf.wee_bank is None:
                continue  # demoted instance already ran as sf
            key = (core.core_id, pf.fence_id)
            holders = [b.bank_id for b in banks if key in b.grt]
            if pf.wee_remote_ps is not None and pf.wee_bank not in holders:
                yield ("grt-missing-deposit", None,
                       f"fence {pf.fence_id} deposit absent from bank "
                       f"{pf.wee_bank}")
            if not ideal and len(holders) > 1:
                yield ("grt-confinement", None,
                       f"fence {pf.fence_id} deposited at banks {holders}")
