"""S+ — the conventional-fence baseline.

Every fence is a Strong Fence: the core stalls at retirement until all
pre-fence stores have drained from the write buffer (TSO: one at a
time), plus a pipeline-serialization constant (``sf_base_cycles``,
calibrated so a fence preceded by several missing writes costs on the
order of the 200 cycles the paper measured on a Xeon E5530).

Speculative execution of post-fence loads (allowed for sfs, §2.1) only
overlaps load latency with the drain; it never changes visibility
order.  We fold that overlap into the calibration constant instead of
modeling a lookahead window (see DESIGN.md).

All the sf timing lives in the core; this policy only pins the mapping
"every role -> SF".
"""

from __future__ import annotations

from repro.common.params import FenceDesign, FenceFlavour, FenceRole
from repro.fences.base import FencePolicy


class StrongOnlyPolicy(FencePolicy):
    design = FenceDesign.S_PLUS

    def flavour(self, role: FenceRole) -> FenceFlavour:
        if self.core.attrib is not None:
            self.core.attrib.note(self.core.core_id, "sf_flavours")
        return FenceFlavour.SF

    def sanitizer_check(self):
        # with every fence an sf there are no wf episodes at all: any
        # pending fence or BS entry is machinery that must not exist
        core = self.core
        if core.pending_fences:
            yield ("sf-only-pending-wf", None,
                   f"{len(core.pending_fences)} pending weak fence(s) "
                   "on an all-sf design")
        if not core.bs.empty:
            line = next(iter(core.bs._entries))
            yield ("sf-only-bs", line,
                   f"{len(core.bs)} BS entr(ies) on an all-sf design")
