"""Location-based Memory Fences — the §8 related-work baseline.

An **extension** to the paper's evaluated set (the paper compares
against l-mf only qualitatively).  Per Ladan-Mozes, Lee & Vyukov
(SPAA'11), an l-mf takes the address of the write that precedes it:

* if the protected location's line is still cached **Exclusive/
  Modified** (no other thread accessed it since), the operation is
  just a cached load + store-conditional — nearly free;
* if a second thread touched the location in the meantime, the SC
  fails and the thread must perform a **conventional fence**.

The paper's four qualitative differences (§8), all visible here:

1. wfs let post-fence accesses complete early; an l-mf never does
   (``flavour_for`` maps l-mf to SF — only the *cost* varies).
2. An l-mf protects one write; a wf protects all pending ones.  We
   bind the l-mf to the newest write-buffer entry at fence retirement.
3. Any remote access to the location downgrades the line and makes the
   next l-mf fall back to a full fence; a wf is insensitive to how
   often the sf side runs.
4. l-mf targets two-thread conflicts; wfs work for any group size.
"""

from __future__ import annotations

from repro.common.params import FenceDesign
from repro.fences.base import FencePolicy

#: cycles of an l-mf whose store-conditional succeeds (a cached
#: load + SC pair)
LMF_FAST_CYCLES = 4


class LocationFencePolicy(FencePolicy):
    design = FenceDesign.LMF

    def sf_base_cost(self) -> int:
        core = self.core
        if core.wb.empty:
            # nothing to order: the SC runs against a quiet line
            core.stats.lmf_fast += 1
            if core.tracer is not None:
                core.tracer.lmf_decision(core.core_id, True)
            return LMF_FAST_CYCLES
        newest = core.wb.snapshot()[-1]
        state = core.l1.cache.lookup(newest.line, touch=False)
        if state is not None and state.writable:
            core.stats.lmf_fast += 1
            if core.tracer is not None:
                core.tracer.lmf_decision(core.core_id, True)
            return LMF_FAST_CYCLES
        core.stats.lmf_fallbacks += 1
        if core.tracer is not None:
            core.tracer.lmf_decision(core.core_id, False)
        return core.params.sf_base_cycles
