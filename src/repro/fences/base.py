"""Fence-design policy interface.

A :class:`FencePolicy` encapsulates, per core, everything that differs
between the paper's five fence environments (Table 1):

====== =============================================================
S+     every fence is an sf (conventional); no BS.
WS+    wf = WeeFence w/o GRT/PS + Order bit/operation (§3.3.1).
SW+    wf = + fine-grain BS info + Conditional Order (§3.3.2).
W+     wf = + checkpoint, bounce/bounced detection, timeout,
       rollback recovery (§3.3.3).
Wee    WeeFence with GRT and PS; falls back to sf when the PS (and,
       dynamically, the BS) cannot be confined to one directory
       module (§2.2/§6).
====== =============================================================

The core (:class:`repro.core.cpu.Core`) calls the hooks; policies never
schedule thread continuations themselves, keeping all timing in one
place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set

from repro.common.params import FenceDesign, FenceFlavour, FenceRole, flavour_for


@dataclass
class PendingFence:
    """An incomplete weak fence outstanding at a core.

    Completes when the newest pre-fence store (``last_store_id``) merges
    with the memory system; BS entries inserted on its behalf are tagged
    with ``fence_id`` and cleared at completion.
    """

    fence_id: int
    last_store_id: int
    #: thread-log checkpoint token (W+ only)
    checkpoint: Optional[int] = None
    #: Wee: directory module holding this fence's GRT deposit
    wee_bank: Optional[int] = None
    #: Wee: remote pending-set lines (None until the GRT reply arrives)
    wee_remote_ps: Optional[Set[int]] = None
    #: Wee: this dynamic fence was re-counted as an sf because a
    #: post-fence access left the confined directory module
    wee_converted: bool = False


class FencePolicy:
    """Per-core strategy for one fence design."""

    design: FenceDesign = FenceDesign.S_PLUS
    #: the BS stores word masks (SW+)
    fine_grain_bs = False
    #: take a thread checkpoint at every wf (W+)
    needs_checkpoint = False
    #: run the deadlock-suspicion monitor (W+)
    needs_deadlock_monitor = False
    #: a callable(resume) replacing the conventional strong-fence stall
    #: (C-fence overrides with its centralized-table protocol)
    custom_strong_fence = None

    # --- static synthesis metadata (repro.synth) ----------------------
    #: fence flavours this design can express at a synthesis site (S+
    #: and the §8 extensions are sf-only; W+/Wee are wf-only)
    synth_flavours = (FenceFlavour.SF,)
    #: max wfs per fence group, or None for unlimited (WS+: one wf per
    #: group, paper §3.3.1)
    synth_max_wf = None
    #: a group with >= 2 wfs must also contain an sf — the termination
    #: argument of SW+'s Conditional Order (§3.3.2); all-wf groups
    #: need W+'s recovery hardware
    synth_needs_sf_with_wf = False

    def __init__(self, core):
        self.core = core

    # --- static mapping ------------------------------------------------

    def flavour(self, role: FenceRole) -> FenceFlavour:
        return flavour_for(self.design, role)

    # --- hooks (no-ops by default) ------------------------------------

    def on_wf_retire(self, pf: PendingFence) -> bool:
        """A wf retired with pending pre-fence stores.

        Return True to proceed as a wf, False to demote this dynamic
        instance to sf behaviour (Wee confinement failure).
        """
        return True

    def on_pre_store_bounce(self, entry) -> None:
        """A buffered store was bounced by a remote BS."""

    def on_wf_complete(self, pf: PendingFence) -> None:
        """All pre-fence stores of *pf* merged; the fence is complete."""

    def on_recovery(self) -> None:
        """A W+ rollback recovery fired on this core (W+ only feeds
        its recovery-storm monitor from here)."""

    def completion_blocked(self, pf: PendingFence) -> bool:
        """May *pf* complete once its pre-fence stores have merged?

        Wee returns True while the GRT deposit round trip is still in
        flight: the fence cannot clear its pending-set bookkeeping (or
        let the BS/RemotePS machinery stand down) before the directory
        module has acknowledged the deposit.
        """
        return False

    def load_stall_check(self, addr: int) -> Optional[str]:
        """Must a post-fence load stall while fences are incomplete?

        Returns a reason string (stall until the oldest pending fence
        completes) or None to let the load proceed.  Only Wee uses this
        (RemotePS hits and directory-module confinement).
        """
        return None

    def sf_base_cost(self) -> int:
        """Pipeline-serialization cycles a strong fence charges on top
        of the write-buffer drain.  l-mf overrides this: cheap while
        the protected location is still exclusively cached."""
        return self.core.params.sf_base_cycles

    def sanitizer_check(self):
        """Design-specific structural invariants (repro.sanitizer).

        Yields ``(invariant, line, detail)`` tuples for any violated
        invariant; the sanitizer reports each with this policy's core.
        Must be side-effect-free — it runs mid-simulation.
        """
        return ()


def _policy_classes():
    """design -> policy class map (imported lazily to keep the package
    import-order simple)."""
    from repro.fences.cfence import CFencePolicy
    from repro.fences.lmf import LocationFencePolicy
    from repro.fences.strong import StrongOnlyPolicy
    from repro.fences.sw_plus import SWPlusPolicy
    from repro.fences.w_plus import WPlusPolicy
    from repro.fences.weefence import WeeFencePolicy
    from repro.fences.ws_plus import WSPlusPolicy

    return {
        FenceDesign.S_PLUS: StrongOnlyPolicy,
        FenceDesign.WS_PLUS: WSPlusPolicy,
        FenceDesign.SW_PLUS: SWPlusPolicy,
        FenceDesign.W_PLUS: WPlusPolicy,
        FenceDesign.WEE: WeeFencePolicy,
        FenceDesign.LMF: LocationFencePolicy,
        FenceDesign.CFENCE: CFencePolicy,
    }


def policy_class(design: FenceDesign):
    """The :class:`FencePolicy` subclass implementing *design*."""
    return _policy_classes()[design]


def make_policy(design: FenceDesign, core) -> FencePolicy:
    """Instantiate the per-core policy for *design*."""
    return policy_class(design)(core)


@dataclass(frozen=True)
class SynthProfile:
    """What the fence synthesizer may place under one design.

    Derived from the policy class's static synthesis metadata; the
    legality predicate encodes Table 1's group taxonomy with the whole
    placement treated as a single fence group (conservative for
    litmus-scale programs, see docs/SYNTHESIS.md).
    """

    design: FenceDesign
    flavours: tuple
    max_wf: Optional[int]
    needs_sf_with_wf: bool

    def legal(self, num_wf: int, num_sf: int) -> bool:
        """May a placement with these flavour counts run under the
        design without violating its group taxonomy?"""
        if num_wf and FenceFlavour.WF not in self.flavours:
            return False
        if num_sf and FenceFlavour.SF not in self.flavours:
            return False
        if self.max_wf is not None and num_wf > self.max_wf:
            return False
        if self.needs_sf_with_wf and num_wf >= 2 and num_sf == 0:
            return False
        return True


def synthesis_profile(design: FenceDesign) -> SynthProfile:
    """Synthesis metadata (expressible flavours, group legality) for
    *design*."""
    cls = policy_class(design)
    return SynthProfile(
        design=design,
        flavours=tuple(cls.synth_flavours),
        max_wf=cls.synth_max_wf,
        needs_sf_with_wf=cls.synth_needs_sf_with_wf,
    )


#: Rows of the paper's Table 1 (taxonomy), for the Table-1 bench target.
TABLE1_ROWS = (
    ("S+", "Fence groups with only sfs", "None (conventional fence)"),
    ("WS+", "Asymmetric groups with at most one wf",
     "BS, Order bit, and Order operation"),
    ("SW+", "Any Asymmetric group",
     "BS, Order bit, fine-grain info, and Conditional Order operation"),
    ("W+", "Any Asymmetric group and wf-only groups",
     "BS, checkpoint, detect bouncing & being bounced, timeout, and recovery"),
    ("Wee", "WeeFence", "BS and global state (GRT and PS)"),
)
