"""Timing cost model: replay placements through the clean simulator.

Two complementary measurements, both taken at jitter-free schedule
points (the paper's machine, default knobs, a small seed sweep):

* **end-to-end cycles** of a whole placement — what the ranked table
  sorts by within a design.  Caveat: on contended kernels this mixes
  fence latency with second-order machine effects (W+ collision
  recoveries, CO bouncing), so an all-wf W+ run can cost *more*
  end-to-end than an all-sf S+ run even though each individual wf is
  cheaper than each sf.
* **per-site marginal probes** — the cycle delta of placing exactly one
  fence of one flavour at one site versus the empty baseline.  This
  isolates the per-fence latency the paper's asymmetry claim is about:
  a wf probe is ~0 (post-fence accesses complete early via the Bypass
  Set) while an sf probe pays the write-buffer drain.

Costs are means over a fixed seed sweep of the default point; the
simulator is deterministic per (program, design, point), so the whole
model is reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Tuple

from repro.common.params import FenceDesign, FenceFlavour
from repro.fences.base import synthesis_profile
from repro.synth.sites import FenceSite, Placement
from repro.verify.generator import LitmusProgram
from repro.verify.oracles import run_program
from repro.verify.perturb import DEFAULT_POINT

#: default machine seeds for the cost sweep (cheap, fixed, clean points)
COST_SEEDS: Tuple[int, ...] = (1, 2, 3)


def cost_points(seeds: Tuple[int, ...] = COST_SEEDS):
    """Jitter-free default-knob points, one per sweep seed."""
    return tuple(replace(DEFAULT_POINT, seed=s) for s in seeds)


def measure_cycles(
    stripped: LitmusProgram,
    placement: Placement,
    design: FenceDesign,
    seeds: Tuple[int, ...] = COST_SEEDS,
    sanitize: str = "off",
) -> Optional[float]:
    """Mean end-to-end cycles of *placement*, or None if any cost run
    failed to complete cleanly (cost of a broken run is meaningless)."""
    program = placement.apply(stripped, design)
    total = 0
    for point in cost_points(seeds):
        run = run_program(program, design, point, sanitize=sanitize)
        if not run.completed or run.error or run.deadlock or run.sanitizer:
            return None
        total += run.cycles
    return total / len(seeds)


def site_probes(
    stripped: LitmusProgram,
    sites: Tuple[FenceSite, ...],
    design: FenceDesign,
    baseline: Optional[float],
    seeds: Tuple[int, ...] = COST_SEEDS,
    sanitize: str = "off",
) -> Dict[str, Dict[str, Optional[float]]]:
    """Marginal cycle cost of one fence per (site, flavour):
    ``probes[site.label()][flavour] = cycles(single fence) - baseline``.

    Only flavours the design can express are probed.  None marks a
    probe whose run did not complete cleanly (or a missing baseline).
    """
    profile = synthesis_profile(design)
    probes: Dict[str, Dict[str, Optional[float]]] = {}
    for site in sites:
        per_site: Dict[str, Optional[float]] = {}
        for flavour in sorted(profile.flavours, key=lambda f: f.value):
            cycles = measure_cycles(
                stripped, Placement.of({site: flavour}), design,
                seeds=seeds, sanitize=sanitize,
            )
            if cycles is None or baseline is None:
                per_site[flavour.value] = None
            else:
                per_site[flavour.value] = round(cycles - baseline, 1)
        probes[site.label()] = per_site
    return probes
