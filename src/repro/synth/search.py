"""The placement search: counterexample-guided lattice enumeration.

Per design, the synthesizer searches the placement lattice of
:mod:`repro.synth.sites` bottom-up (cheapest first) for the minimal
placements that satisfy the SC oracle on every adversary schedule:

* **exhaustive path** (small site counts): enumerate every legal
  placement in ascending strength-score order.  Because the score is a
  strict linear extension of the lattice order, every weakening of a
  candidate has already been visited; a candidate is only *tested* if
  it covers no known passing minimum, so every passer is 1-minimal by
  construction — no post-hoc shrinking needed.
* **ddmin-descent path** (large site counts): verify the strongest
  legal placement, shrink its site set with the generalized
  :func:`repro.verify.shrink.ddmin` under the predicate "this subset
  still passes the oracle", then demote sf→wf one site at a time to a
  local minimum.  Yields one minimum instead of the full antichain.

**Pruning lemma.**  Fences only restrict reordering: if a schedule
breaks placement P (an SCV appears), it also breaks every weakening of
P — removing or demoting fences can only admit more reorderings at the
same schedule point.  The oracle exploits the contrapositive: before
sweeping all points for a candidate C, it first replays the recorded
counterexample points of every known-failing placement that covers C
(C ⊑ P means P's counterexample transfers), plus the most recently
lethal points.  Failing candidates therefore usually die in one
simulator run instead of a full sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.params import FenceDesign, FenceFlavour
from repro.fences.base import SynthProfile, synthesis_profile
from repro.synth.sites import (
    STRENGTH,
    FenceSite,
    Placement,
    all_placements,
    count_legal_placements,
)
from repro.verify.generator import LitmusProgram
from repro.verify.oracles import run_program
from repro.verify.perturb import SchedulePoint
from repro.verify.shrink import ddmin


class BudgetExhausted(Exception):
    """The search ran out of simulator runs or wall-clock budget."""

    def __init__(self, kind: str):
        super().__init__(f"synthesis budget exhausted ({kind})")
        self.kind = kind  # "runs" | "wall"


@dataclass(frozen=True)
class Counterexample:
    """One oracle violation: which adversary point broke a placement."""

    point_index: int
    reason: str


def classify_run(run) -> Optional[str]:
    """The oracle verdict for one run (None = SC-safe and live).

    Stricter than verify's :func:`check_invariants`: an SCV is a
    failure whether or not the candidate carries fences — the whole
    point of synthesis is deciding if the fences are *sufficient*.
    """
    if run.error is not None:
        return f"simulator-error: {run.error}"
    if run.sanitizer is not None:
        return f"sanitizer: {run.sanitizer}"
    if run.deadlock is not None:
        return f"deadlock: {run.deadlock}"
    if not run.completed:
        return f"livelock: cycle cap at {run.cycles} cycles"
    if run.scv_found:
        return f"scv: dependence cycle of length {len(run.scv)}"
    return None


class PlacementOracle:
    """Budgeted judge: does a placement pass on every adversary point?

    Counts every simulator run, reorders points counterexample-first,
    and remembers which point killed which placement so the pruning
    lemma can hand later candidates a lethal point hint.
    """

    def __init__(
        self,
        stripped: LitmusProgram,
        design: FenceDesign,
        points: Tuple[SchedulePoint, ...],
        max_runs: int = 4000,
        sanitize: str = "off",
        deadline: Optional[Callable[[], bool]] = None,
    ):
        self.stripped = stripped
        self.design = design
        self.points = tuple(points)
        self.max_runs = max_runs
        self.sanitize = sanitize
        self.deadline = deadline
        self.runs_used = 0
        #: point indices by recency of a kill (most recent first)
        self._recent_killers: List[int] = []
        #: (failed placement, killer point index), for the lemma hints
        self.failures: List[Tuple[Placement, int]] = []
        #: candidates rejected by a hinted/recent point on the 1st run
        self.prune_hits = 0

    def _run_one(self, program: LitmusProgram,
                 point: SchedulePoint) -> Optional[str]:
        if self.runs_used >= self.max_runs:
            raise BudgetExhausted("runs")
        if self.deadline is not None and self.deadline():
            raise BudgetExhausted("wall")
        self.runs_used += 1
        run = run_program(program, self.design, point,
                          faults=point.injector(), sanitize=self.sanitize)
        return classify_run(run)

    def _point_order(self, placement: Placement) -> List[int]:
        """All point indices, lemma hints and recent killers first."""
        order: List[int] = []
        for failed, idx in reversed(self.failures):
            # C ⊑ P: P's counterexample point transfers to C
            if idx not in order and failed.covers(placement):
                order.append(idx)
        for idx in self._recent_killers:
            if idx not in order:
                order.append(idx)
        hinted = len(order)
        for idx in range(len(self.points)):
            if idx not in order:
                order.append(idx)
        self._hinted = hinted
        return order

    def check(self, placement: Placement) -> Optional[Counterexample]:
        """Run *placement* over every point (counterexample-guided
        order); None = passed all points."""
        program = placement.apply(self.stripped, self.design)
        order = self._point_order(placement)
        for rank, idx in enumerate(order):
            reason = self._run_one(program, self.points[idx])
            if reason is not None:
                if idx in self._recent_killers:
                    self._recent_killers.remove(idx)
                self._recent_killers.insert(0, idx)
                self.failures.append((placement, idx))
                if rank < self._hinted:
                    self.prune_hits += 1
                return Counterexample(point_index=idx, reason=reason)
        return None


@dataclass
class SearchOutcome:
    """What one per-design search produced."""

    design: FenceDesign
    #: the minimal passing placements found (antichain; descent path
    #: yields at most one)
    minima: List[Placement] = field(default_factory=list)
    status: str = "ok"  # ok | no-solution | exhausted-runs | exhausted-wall
    strategy: str = "exhaustive"  # exhaustive | descent
    runs_used: int = 0
    candidates_tested: int = 0
    prune_hits: int = 0
    #: counterexample of the strongest placement (no-solution only)
    failure: Optional[Counterexample] = None


def strongest_placement(sites: Tuple[FenceSite, ...],
                        profile: SynthProfile) -> Placement:
    """The top of the legal lattice: every site fenced, strongest
    expressible flavour (all-sf where available, else all-wf)."""
    flavour = max(profile.flavours, key=lambda f: STRENGTH[f])
    return Placement.of({site: flavour for site in sites})


def synthesize(
    stripped: LitmusProgram,
    sites: Tuple[FenceSite, ...],
    design: FenceDesign,
    points: Tuple[SchedulePoint, ...],
    max_runs: int = 4000,
    sanitize: str = "off",
    exhaustive_cap: int = 512,
    shrink_budget: int = 200,
    deadline: Optional[Callable[[], bool]] = None,
) -> SearchOutcome:
    """Find minimal SC-safe placements of *design* over *sites*."""
    profile = synthesis_profile(design)
    oracle = PlacementOracle(stripped, design, points, max_runs=max_runs,
                             sanitize=sanitize, deadline=deadline)
    outcome = SearchOutcome(design=design)
    try:
        if count_legal_placements(len(sites), profile) <= exhaustive_cap:
            _exhaustive(oracle, sites, profile, outcome)
        else:
            _descent(oracle, sites, profile, outcome,
                     shrink_budget=shrink_budget)
    except BudgetExhausted as exc:
        outcome.status = f"exhausted-{exc.kind}"
    outcome.runs_used = oracle.runs_used
    outcome.prune_hits = oracle.prune_hits
    return outcome


def _exhaustive(oracle: PlacementOracle, sites, profile: SynthProfile,
                outcome: SearchOutcome) -> None:
    outcome.strategy = "exhaustive"
    last_failure: Optional[Counterexample] = None
    for candidate in all_placements(sites, profile):
        if any(candidate.covers(m) for m in outcome.minima):
            continue  # strengthening of a known minimum: never minimal
        outcome.candidates_tested += 1
        ce = oracle.check(candidate)
        if ce is None:
            outcome.minima.append(candidate)
        else:
            last_failure = ce
    if not outcome.minima:
        outcome.status = "no-solution"
        outcome.failure = last_failure


def _descent(oracle: PlacementOracle, sites, profile: SynthProfile,
             outcome: SearchOutcome, shrink_budget: int) -> None:
    outcome.strategy = "descent"
    top_flavour = max(profile.flavours, key=lambda f: STRENGTH[f])
    top = strongest_placement(sites, profile)
    outcome.candidates_tested += 1
    ce = oracle.check(top)
    if ce is not None:
        outcome.status = "no-solution"
        outcome.failure = ce
        return

    def keeps_passing(subset: list) -> bool:
        placement = Placement.of({s: top_flavour for s in subset})
        outcome.candidates_tested += 1
        return oracle.check(placement) is None

    kept, _dd_runs = ddmin(list(sites), predicate=keeps_passing,
                           max_runs=shrink_budget)
    current = Placement.of({s: top_flavour for s in kept})

    # demotion descent: one sf -> wf at a time, to a local minimum
    if FenceFlavour.WF in profile.flavours and top_flavour is FenceFlavour.SF:
        changed = True
        while changed:
            changed = False
            for site, flavour in current.assignment:
                if flavour is not FenceFlavour.SF:
                    continue
                mapping = dict(current.assignment)
                mapping[site] = FenceFlavour.WF
                demoted = Placement.of(mapping)
                if not demoted.legal(profile):
                    continue
                outcome.candidates_tested += 1
                if oracle.check(demoted) is None:
                    current = demoted
                    changed = True
                    break
    outcome.minima.append(current)
