"""Cost-aware asymmetric fence synthesis (``repro synth``).

Given a litmus/workload program with its fences stripped (or carrying
only user ``@order`` annotations), search the space of per-site
{none, wf, sf} assignments for the minimal-cost placements that pass
the SC oracle across the jitter-armed schedule explorer — for each of
the paper's five designs — then rank survivors by replayed cycle cost.

Layers: :mod:`~repro.synth.sites` (site extraction, placement
lattice), :mod:`~repro.synth.programs` (canonical inputs),
:mod:`~repro.synth.search` (CE-guided lattice search),
:mod:`~repro.synth.cost` (timing replay),
:mod:`~repro.synth.engine` (audit + ranking + report).
"""

from repro.synth.engine import SynthConfig, SynthReport, run_synthesis
from repro.synth.programs import NAMED_PROGRAMS, program_for_spec
from repro.synth.search import PlacementOracle, SearchOutcome, synthesize
from repro.synth.sites import FenceSite, Placement, extract_sites

__all__ = [
    "SynthConfig",
    "SynthReport",
    "run_synthesis",
    "NAMED_PROGRAMS",
    "program_for_spec",
    "PlacementOracle",
    "SearchOutcome",
    "synthesize",
    "FenceSite",
    "Placement",
    "extract_sites",
]
