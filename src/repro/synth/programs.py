"""Canonical synthesis inputs and the ``--program`` spec parser.

The named programs are fixed (seed-independent) litmus kernels carrying
their textbook fence annotations; the synthesizer strips them and
searches the annotated sites.  Beyond the named set, ``shape:SEED``
(e.g. ``random:7``) draws a program from the verify generator — the
random-program battery and the Hypothesis property tests use this.

``sb`` deliberately gives each thread one *cold private pad store*
before the racy store: the pad stretches the write-buffer drain so the
fence episode is long enough for wf machinery (BS bounces, Order
promotion, W+ collisions) to matter, and — combined with the jitter-
armed adversary points — makes the single-fence placements fail
observably, so the synthesized minimum is the textbook one.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.common.errors import ConfigError
from repro.common.params import FenceRole
from repro.core import isa as ops
from repro.verify.generator import SHAPES, LitmusProgram, generate_program

#: names accepted by ``repro synth --program`` (plus ``shape:SEED``)
NAMED_PROGRAMS = ("sb", "sb3", "mp", "iriw")

_STD = FenceRole.STANDARD


def _sb_canonical() -> LitmusProgram:
    """2-thread store buffering with cold private pads (Fig. 1d)."""
    threads = (
        (ops.Store(2, 7), ops.Store(0, 1), ops.Fence(_STD), ops.Load(1)),
        (ops.Store(3, 9), ops.Store(1, 1), ops.Fence(_STD), ops.Load(0)),
    )
    return LitmusProgram(name="sb", shape="sb", num_vars=4,
                         threads=threads, warm_vars=(0, 1), seed=0)


def _sb3_canonical() -> LitmusProgram:
    """3-thread store-buffering ring with cold private pads."""
    threads = tuple(
        (ops.Store(3 + i, 7), ops.Store(i, 1), ops.Fence(_STD),
         ops.Load((i + 1) % 3))
        for i in range(3)
    )
    return LitmusProgram(name="sb3", shape="sb", num_vars=6,
                         threads=threads, warm_vars=(0, 1, 2), seed=0)


def _mp_canonical() -> LitmusProgram:
    """Message passing, annotated at the textbook fence positions.

    TSO never reorders store→store or load→load, so the expected
    synthesis result is the *empty* placement: the machine needs no
    fences here, and the synthesizer proves it.
    """
    threads = (
        (ops.Store(0, 42), ops.Fence(_STD), ops.Store(1, 1)),
        (ops.Load(1), ops.Fence(_STD), ops.Load(0)),
    )
    return LitmusProgram(name="mp", shape="mp", num_vars=2,
                         threads=threads, warm_vars=(0, 1), seed=0)


def _iriw_canonical() -> LitmusProgram:
    """Independent reads of independent writes, reader fences
    annotated.

    The forbidden IRIW outcome needs non-multi-copy-atomic stores,
    which this machine (single memory image) never produces — expected
    synthesis result: the empty placement.
    """
    threads = (
        (ops.Store(0, 1),),
        (ops.Store(1, 1),),
        (ops.Load(0), ops.Fence(_STD), ops.Load(1)),
        (ops.Load(1), ops.Fence(_STD), ops.Load(0)),
    )
    return LitmusProgram(name="iriw", shape="iriw", num_vars=2,
                         threads=threads, warm_vars=(0, 1), seed=0)


_BUILDERS = {
    "sb": _sb_canonical,
    "sb3": _sb3_canonical,
    "mp": _mp_canonical,
    "iriw": _iriw_canonical,
}


def program_for_spec(spec: str, seed: int = 1) -> LitmusProgram:
    """Resolve a ``--program`` spec to an (annotated) litmus program.

    Named canonical programs ignore *seed*; ``shape:SEED`` draws from
    the verify generator (``shape:`` alone uses *seed*).
    """
    spec = spec.strip()
    if spec in _BUILDERS:
        return _BUILDERS[spec]()
    if ":" in spec:
        shape, _, tail = spec.partition(":")
        shape = shape.strip()
        if shape not in SHAPES:
            raise ConfigError(
                f"unknown program shape {shape!r}; choose from "
                f"{', '.join(SHAPES)}"
            )
        gen_seed = int(tail) if tail.strip() else seed
        return generate_program(gen_seed, shape=shape)
    raise ConfigError(
        f"unknown program {spec!r}; choose from "
        f"{', '.join(NAMED_PROGRAMS)} or 'shape:SEED' with shape in "
        f"{', '.join(SHAPES)}"
    )
