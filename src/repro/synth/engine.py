"""The synthesis engine: search + audit + cost, per design.

:func:`run_synthesis` drives the whole ``repro synth`` pipeline for one
program across a set of fence designs:

1. extract the fence sites (:mod:`repro.synth.sites`) and strip the
   program;
2. search the placement lattice for the minimal SC-safe placements
   over the jitter-armed adversary points (:mod:`repro.synth.search`);
3. **audit** every minimum at ``audit_factor`` × the search schedule
   budget (the adversary stream is prefix-stable, so the audit points
   strictly extend the search points); an audit *rejection* feeds the
   killer point back into the search set and re-searches (CEGAR, up to
   ``max_refinements`` rounds), so surviving minima pass the full
   audit set, and every expressible one-step weakening must fail on at
   least one audit point;
4. replay survivors through the clean timing simulator
   (:mod:`repro.synth.cost`) and rank them.

The report is deterministic for a fixed (program, designs, seed,
config): no timestamps, no environment leakage, stable ordering.  A
:class:`~repro.sim.governor.RunBudget` bounds the whole synthesis by
wall-clock and RSS (event budgets are a per-run concept and are not
consulted here); on breach the affected design is marked
``exhausted-wall`` and later designs are skipped, never half-reported.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common import journal as journal_mod
from repro.common.params import FenceDesign
from repro.sim.governor import RunBudget, _rss_mb
from repro.synth import cost as cost_mod
from repro.synth.programs import program_for_spec
from repro.synth.search import (
    BudgetExhausted,
    Counterexample,
    PlacementOracle,
    SearchOutcome,
    synthesize,
)
from repro.synth.sites import (
    FenceSite,
    Placement,
    count_legal_placements,
    extract_sites,
)
from repro.fences.base import synthesis_profile
from repro.verify.generator import LitmusProgram
from repro.verify.oracles import PAPER_DESIGNS
from repro.verify.perturb import adversary_points

SCHEMA = "repro-synth-report/v1"


@dataclass(frozen=True)
class SynthConfig:
    """Everything that determines a synthesis run (and its report)."""

    program: str = "sb"
    designs: Tuple[FenceDesign, ...] = PAPER_DESIGNS
    seed: int = 1
    #: adversary schedule points per search
    num_points: int = 12
    #: fence-site extraction: "annotated" | "auto" | None (= annotated
    #: when the program carries fences, else auto)
    site_mode: Optional[str] = None
    #: simulator-run budget per design (search and audit separately)
    max_runs: int = 4000
    #: at most this many legal placements → exhaustive search;
    #: above it, ddmin-descent
    exhaustive_cap: int = 512
    #: ddmin property-evaluation budget on the descent path
    shrink_budget: int = 200
    audit: bool = True
    #: audit at this multiple of the search schedule budget
    audit_factor: int = 2
    #: CEGAR rounds: when the audit rejects a minimum, its killer
    #: point joins the search set and the search re-runs.  Each round
    #: adds a distinct point from the finite audit set, so the loop
    #: terminates; this cap only bounds the worst case.
    max_refinements: int = 8
    #: machine seeds for the clean cost sweep
    cost_seeds: Tuple[int, ...] = cost_mod.COST_SEEDS
    sanitize: str = "off"

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "designs": [d.value for d in self.designs],
            "seed": self.seed,
            "num_points": self.num_points,
            "site_mode": self.site_mode,
            "max_runs": self.max_runs,
            "exhaustive_cap": self.exhaustive_cap,
            "shrink_budget": self.shrink_budget,
            "audit": self.audit,
            "audit_factor": self.audit_factor,
            "max_refinements": self.max_refinements,
            "cost_seeds": list(self.cost_seeds),
            "sanitize": self.sanitize,
        }

    def checkpoint_key(self) -> str:
        """Stable digest of everything that determines per-design
        results *except* the design list — a journaled design entry is
        reusable across invocations that only changed which designs
        run (checkpoint rows carry it so a resume can never splice
        entries from a different configuration)."""
        blob = {k: v for k, v in self.to_dict().items() if k != "designs"}
        return hashlib.sha256(
            json.dumps(blob, sort_keys=True).encode()
        ).hexdigest()[:16]


@dataclass
class SynthReport:
    """The full ``repro synth`` result: one entry per design."""

    config: SynthConfig
    program_info: dict
    #: design.value -> per-design result dict, in config.designs order
    designs: "Dict[str, dict]" = field(default_factory=dict)
    total_runs: int = 0

    @property
    def ok(self) -> bool:
        """Every design found a minimum, every minimum survived its
        audit, and every expressible weakening failed."""
        for entry in self.designs.values():
            if entry["status"] != "ok" or not entry["placements"]:
                return False
            for placement in entry["placements"]:
                audit = placement.get("audit")
                if audit is None:
                    continue
                if not audit["passed"] or not audit["minimal"]:
                    return False
        return True

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "config": self.config.to_dict(),
            "program": self.program_info,
            "designs": self.designs,
            "total_runs": self.total_runs,
            "ok": self.ok,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")


def _ce_dict(ce: Optional[Counterexample]) -> Optional[dict]:
    if ce is None:
        return None
    return {"point_index": ce.point_index, "reason": ce.reason}


def _expressible(placement: Placement, design: FenceDesign) -> bool:
    """May *design* actually execute this placement?  Flavour
    expressibility and group legality in one predicate: S+ cannot run
    a wf at all, and SW+ cannot run an all-wf group (the taxonomy's
    termination argument) — either way the placement is not a real
    alternative, so it does not count against minimality."""
    return placement.legal(synthesis_profile(design))


def _audit_minimum(
    oracle: PlacementOracle,
    minimum: Placement,
    design: FenceDesign,
) -> dict:
    """Re-verify *minimum* on the extended point set and demand that
    every *legal* one-step weakening fails somewhere on it.

    Minimality is relative to the design's legal placement space: a
    weakening the design cannot execute (wf under S+, an all-wf group
    under SW+) is reported ``expressible: false`` and skipped, exactly
    as the search never enumerated it."""
    ce = oracle.check(minimum)
    weakenings: List[dict] = []
    minimal = True
    for weaker in minimum.weakenings():
        entry = {
            "placement": weaker.key(),
            "expressible": _expressible(weaker, design),
            "failed": None,
            "counterexample": None,
        }
        if entry["expressible"]:
            w_ce = oracle.check(weaker)
            entry["failed"] = w_ce is not None
            entry["counterexample"] = _ce_dict(w_ce)
            if w_ce is None:
                minimal = False
        weakenings.append(entry)
    return {
        "points": len(oracle.points),
        "passed": ce is None,
        "counterexample": _ce_dict(ce),
        "weakenings": weakenings,
        "minimal": minimal,
    }


def _placement_entry(placement: Placement, cycles: Optional[float],
                     baseline: Optional[float]) -> dict:
    overhead = None
    if cycles is not None and baseline is not None:
        overhead = round(cycles - baseline, 1)
    return {
        "placement": placement.key(),
        "fences": [
            {"site": site.label(), "flavour": flavour.value}
            for site, flavour in placement.assignment
        ],
        "num_fences": placement.num_fences,
        "num_wf": placement.num_wf,
        "num_sf": placement.num_sf,
        "cycles": cycles,
        "overhead_cycles": overhead,
        "sc_safe": True,  # search only emits oracle-passing placements
    }


def _rank_key(entry: dict):
    cycles = entry["cycles"]
    return (
        cycles is None,  # unmeasurable placements sink to the bottom
        cycles if cycles is not None else 0.0,
        entry["num_sf"],
        entry["num_fences"],
        entry["placement"],
    )


def _synth_one_design(
    design: FenceDesign,
    stripped: LitmusProgram,
    sites: Tuple[FenceSite, ...],
    config: SynthConfig,
    deadline,
) -> Tuple[dict, int]:
    """Search + audit + cost for one design; returns (entry, runs).

    The search and the audit are a CEGAR loop: a minimum the search
    accepts but the double-budget audit rejects means the search's
    point set was too weak — the audit's killer point joins the search
    set and the search re-runs.  Every round adds a distinct point
    from the finite audit set, so on a clean exit every reported
    minimum passes the *full* audit set.
    """
    audit_points = adversary_points(
        config.seed, config.num_points * config.audit_factor)
    points = list(adversary_points(config.seed, config.num_points))
    runs = 0
    refinements = 0
    audit_oracle = None
    while True:
        outcome = synthesize(
            stripped, sites, design, tuple(points),
            max_runs=config.max_runs,
            sanitize=config.sanitize,
            exhaustive_cap=config.exhaustive_cap,
            shrink_budget=config.shrink_budget,
            deadline=deadline,
        )
        runs += outcome.runs_used
        if outcome.status != "ok" or not config.audit:
            break
        audit_oracle = PlacementOracle(
            stripped, design, tuple(audit_points),
            max_runs=config.max_runs, sanitize=config.sanitize,
            deadline=deadline,
        )
        try:
            killers = [audit_oracle.check(m) for m in outcome.minima]
        except BudgetExhausted as exc:
            outcome.status = f"exhausted-{exc.kind}"
            runs += audit_oracle.runs_used
            break
        new_points = [
            audit_points[ce.point_index] for ce in killers
            if ce is not None
            and audit_points[ce.point_index] not in points
        ]
        if not new_points or refinements >= config.max_refinements:
            break
        runs += audit_oracle.runs_used
        points.extend(dict.fromkeys(new_points))  # ordered, deduped
        refinements += 1

    entry: dict = {
        "status": outcome.status,
        "strategy": outcome.strategy,
        "search_points": len(points),
        "refinements": refinements,
        "num_sites": len(sites),
        "num_legal_placements": count_legal_placements(
            len(sites), synthesis_profile(design)),
        "search_runs": outcome.runs_used,
        "candidates_tested": outcome.candidates_tested,
        "prune_hits": outcome.prune_hits,
        "failure": _ce_dict(outcome.failure),
        "baseline_cycles": None,
        "site_probes": {},
        "placements": [],
    }
    if outcome.status != "ok" or not outcome.minima:
        return entry, runs

    baseline = cost_mod.measure_cycles(
        stripped, Placement.empty(), design,
        seeds=config.cost_seeds, sanitize=config.sanitize)
    entry["baseline_cycles"] = baseline
    entry["site_probes"] = cost_mod.site_probes(
        stripped, sites, design, baseline,
        seeds=config.cost_seeds, sanitize=config.sanitize)

    try:
        for minimum in outcome.minima:
            cycles = cost_mod.measure_cycles(
                stripped, minimum, design,
                seeds=config.cost_seeds, sanitize=config.sanitize)
            placement_entry = _placement_entry(minimum, cycles, baseline)
            if audit_oracle is not None:
                placement_entry["audit"] = _audit_minimum(
                    audit_oracle, minimum, design)
            entry["placements"].append(placement_entry)
    except BudgetExhausted as exc:
        entry["status"] = f"exhausted-{exc.kind}"
        entry["placements"] = []
    if audit_oracle is not None:
        runs += audit_oracle.runs_used
        entry["audit_runs"] = audit_oracle.runs_used
    entry["placements"].sort(key=_rank_key)
    for rank, placement_entry in enumerate(entry["placements"], start=1):
        placement_entry["rank"] = rank
    return entry, runs


def _deadline_from_budget(budget: Optional[RunBudget]):
    """A whole-synthesis cutoff check from a RunBudget (wall + RSS)."""
    if budget is None or not budget.enabled:
        return None
    start = time.monotonic()

    def out_of_budget() -> bool:
        if budget.max_wall_secs is not None:
            if time.monotonic() - start >= budget.max_wall_secs:
                return True
        if budget.max_rss_mb is not None:
            rss = _rss_mb()
            if rss is not None and rss >= budget.max_rss_mb:
                return True
        return False

    return out_of_budget


def run_synthesis(
    config: SynthConfig,
    budget: Optional[RunBudget] = None,
    progress=None,
    journal: Optional[str] = None,
    resume: bool = False,
    overwrite_journal: bool = False,
) -> SynthReport:
    """Synthesize minimal fence placements for every configured design.

    *budget* defaults from the ``REPRO_MAX_*`` environment (CI
    inheritance); *progress* is an optional ``callable(design_value,
    entry)`` fired as each design completes.

    With *journal* set, each finished design entry is checkpointed to
    a JSONL file (:mod:`repro.common.journal`: fsync-per-record, torn
    tail tolerated, repeated designs last-writer-wins); *resume* skips
    designs already journaled under an identical configuration, so a
    long multi-design synthesis killed mid-way re-runs only what is
    missing.  An existing journal without *resume* requires
    *overwrite_journal* and rotates to ``.bak``.
    """
    if budget is None:
        budget = RunBudget.from_env()
    deadline = _deadline_from_budget(budget)

    journal_mod.prepare(journal, resume=resume, overwrite=overwrite_journal)
    ckpt_key = config.checkpoint_key()
    done: Dict[str, dict] = {}
    if journal and resume:
        for design_value, rec in journal_mod.load_keyed(
            journal, key=lambda r: r.get("design")
        ).items():
            # exhausted entries are retried on resume, not replayed
            if (rec.get("checkpoint_key") == ckpt_key
                    and not str(rec["entry"]["status"]).startswith(
                        "exhausted")):
                done[design_value] = rec
    writer = journal_mod.JournalWriter(journal) if journal else None

    program = program_for_spec(config.program, seed=config.seed)
    site_mode = config.site_mode
    if site_mode is None:
        site_mode = "annotated" if program.has_fences else "auto"
    sites = extract_sites(program, mode=site_mode)
    stripped = program.stripped()

    report = SynthReport(
        config=config,
        program_info={
            "name": program.name,
            "shape": program.shape,
            "num_threads": program.num_threads,
            "num_vars": program.num_vars,
            "ops": program.describe(),
            "stripped_ops": stripped.describe(),
            "site_mode": site_mode,
            "sites": [s.label() for s in sites],
        },
    )
    try:
        for design in config.designs:
            if design.value in done:
                rec = done[design.value]
                report.designs[design.value] = rec["entry"]
                report.total_runs += rec.get("runs", 0)
                if progress is not None:
                    progress(design.value, rec["entry"])
                continue
            if deadline is not None and deadline():
                report.designs[design.value] = {
                    "status": "exhausted-wall",
                    "strategy": None,
                    "placements": [],
                    "site_probes": {},
                    "baseline_cycles": None,
                    "failure": None,
                }
                continue
            entry, runs = _synth_one_design(
                design, stripped, sites, config, deadline)
            report.designs[design.value] = entry
            report.total_runs += runs
            if writer is not None:
                writer.append({
                    "design": design.value,
                    "checkpoint_key": ckpt_key,
                    "entry": entry,
                    "runs": runs,
                })
            if progress is not None:
                progress(design.value, entry)
    finally:
        if writer is not None:
            writer.close()
    return report
