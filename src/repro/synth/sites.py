"""Fence sites and placements: the search space of the synthesizer.

A **site** is a position in a fence-stripped program where a fence may
be inserted: ``FenceSite(tid, idx)`` puts the fence immediately before
op ``idx`` of thread ``tid``.  Under TSO the only reordering a fence
can forbid is a load overtaking a buffered store, so the ``auto``
extractor emits exactly the Shasha–Snir store→load boundaries: one
site before the first load that follows an (uncovered) store.  The
``annotated`` extractor instead takes the positions of the fences the
input program already carries — the "user ``@order`` annotation" mode:
strip a fenced program and synthesize over its own fence positions.

A **placement** assigns each chosen site a concrete flavour (wf or
sf).  Placements form a finite lattice under per-site strength
``none < wf < sf``; the synthesizer searches it bottom-up and reports
the minimal elements that satisfy the SC oracle (see
:mod:`repro.synth.search`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple

from repro.common.errors import ConfigError
from repro.common.params import FenceDesign, FenceFlavour, role_for_flavour
from repro.core import isa as ops
from repro.fences.base import SynthProfile
from repro.verify.generator import LitmusProgram

#: per-site strength score: the lattice order and the cost heuristic
#: (an sf is never cheaper than a wf at the same site)
STRENGTH = {None: 0, FenceFlavour.WF: 1, FenceFlavour.SF: 2}


class FenceSite(NamedTuple):
    """One candidate fence position: before op *idx* of thread *tid*
    in the fence-stripped program."""

    tid: int
    idx: int

    def label(self) -> str:
        return f"t{self.tid}.i{self.idx}"


def extract_sites(program: LitmusProgram,
                  mode: str = "auto") -> Tuple[FenceSite, ...]:
    """Candidate fence sites of *program*.

    ``auto``       store→load boundaries of the *stripped* program;
    ``annotated``  the positions of the program's own fences, mapped
                   to stripped-program indices (the program must carry
                   at least one fence).
    """
    if mode == "auto":
        return _auto_sites(program.stripped())
    if mode == "annotated":
        return _annotated_sites(program)
    raise ConfigError(f"unknown site mode {mode!r}; use auto|annotated")


def _auto_sites(stripped: LitmusProgram) -> Tuple[FenceSite, ...]:
    sites: List[FenceSite] = []
    for tid, body in enumerate(stripped.threads):
        pending_store = False
        for idx, op in enumerate(body):
            if isinstance(op, (ops.Store, ops.AtomicRMW)):
                pending_store = True
            elif isinstance(op, ops.Load) and pending_store:
                sites.append(FenceSite(tid, idx))
                pending_store = False
    return tuple(sites)


def _annotated_sites(program: LitmusProgram) -> Tuple[FenceSite, ...]:
    sites: List[FenceSite] = []
    for tid, body in enumerate(program.threads):
        stripped_idx = 0
        for op in body:
            if isinstance(op, ops.Fence):
                site = FenceSite(tid, stripped_idx)
                if site not in sites:  # adjacent fences collapse
                    sites.append(site)
            else:
                stripped_idx += 1
    if not sites:
        raise ConfigError(
            f"program {program.name!r} carries no fence annotations; "
            "use site mode 'auto'"
        )
    return tuple(sites)


@dataclass(frozen=True)
class Placement:
    """One (site -> flavour) assignment, canonically ordered."""

    #: ((FenceSite, FenceFlavour), ...) sorted by site
    assignment: Tuple[Tuple[FenceSite, FenceFlavour], ...]

    @classmethod
    def of(cls, mapping: Dict[FenceSite, FenceFlavour]) -> "Placement":
        return cls(tuple(sorted(mapping.items())))

    @classmethod
    def empty(cls) -> "Placement":
        return cls(())

    @property
    def num_fences(self) -> int:
        return len(self.assignment)

    @property
    def num_sf(self) -> int:
        return sum(1 for _, f in self.assignment if f is FenceFlavour.SF)

    @property
    def num_wf(self) -> int:
        return sum(1 for _, f in self.assignment if f is FenceFlavour.WF)

    @property
    def score(self) -> int:
        """Total strength: a strict linear extension of the lattice
        order (weakening strictly lowers it)."""
        return sum(STRENGTH[f] for _, f in self.assignment)

    def flavour_at(self, site: FenceSite) -> Optional[FenceFlavour]:
        for s, f in self.assignment:
            if s == site:
                return f
        return None

    def key(self) -> str:
        """Stable human/JSON-readable identity, e.g.
        ``"t0.i2=sf,t1.i2=wf"`` (empty placement: ``"-"``)."""
        if not self.assignment:
            return "-"
        return ",".join(f"{s.label()}={f.value}" for s, f in self.assignment)

    def covers(self, other: "Placement") -> bool:
        """Lattice order: self is site-wise at least as strong as
        *other* (``none < wf < sf`` per site)."""
        mine = dict(self.assignment)
        return all(
            STRENGTH[mine.get(site)] >= STRENGTH[flavour]
            for site, flavour in other.assignment
        )

    def weakenings(self) -> Iterator["Placement"]:
        """Every one-step-weaker placement: drop one fence, or demote
        one sf to wf.  (Legality under a given design is the caller's
        concern — the audit skips weakenings the design cannot legally
        execute, since they were never real alternatives.)"""
        for i, (site, flavour) in enumerate(self.assignment):
            rest = self.assignment[:i] + self.assignment[i + 1:]
            yield Placement(rest)
            if flavour is FenceFlavour.SF:
                demoted = self.assignment[:i] + ((site, FenceFlavour.WF),) \
                    + self.assignment[i + 1:]
                yield Placement(demoted)

    def legal(self, profile: SynthProfile) -> bool:
        return profile.legal(self.num_wf, self.num_sf)

    def apply(self, stripped: LitmusProgram,
              design: FenceDesign) -> LitmusProgram:
        """Realize this placement on *stripped* as role-annotated
        Fence ops the given *design* executes with these flavours."""
        by_thread: Dict[int, List[Tuple[int, FenceFlavour]]] = {}
        for site, flavour in self.assignment:
            by_thread.setdefault(site.tid, []).append((site.idx, flavour))
        threads = [list(body) for body in stripped.threads]
        for tid, inserts in by_thread.items():
            if tid >= len(threads):
                raise ConfigError(
                    f"site thread {tid} out of range for "
                    f"{stripped.name!r} ({len(threads)} threads)"
                )
            for idx, flavour in sorted(inserts, reverse=True):
                role = role_for_flavour(design, flavour)
                if role is None:
                    raise ConfigError(
                        f"design {design} cannot express flavour "
                        f"{flavour.value} (site t{tid}.i{idx})"
                    )
                threads[tid].insert(idx, ops.Fence(role))
        placed = stripped.with_threads(threads)
        return placed  # keeps name/shape/vars; has_fences now True


def all_placements(sites: Tuple[FenceSite, ...],
                   profile: SynthProfile) -> Iterator[Placement]:
    """Every *legal* placement over *sites* under *profile*, in
    ascending (score, key) order — a linear extension of the lattice,
    so the bottom-up search visits every weakening of a placement
    before the placement itself."""
    import itertools

    choices: Tuple[Optional[FenceFlavour], ...] = (None,) + tuple(
        sorted(profile.flavours, key=lambda f: STRENGTH[f])
    )
    candidates = []
    for combo in itertools.product(choices, repeat=len(sites)):
        mapping = {s: f for s, f in zip(sites, combo) if f is not None}
        placement = Placement.of(mapping)
        if placement.legal(profile):
            candidates.append(placement)
    candidates.sort(key=lambda p: (p.score, p.key()))
    return iter(candidates)


def count_legal_placements(num_sites: int, profile: SynthProfile) -> int:
    """|legal assignments| without materializing them (routing guard
    between the exhaustive and the ddmin-descent search paths)."""
    from math import comb

    has_wf = FenceFlavour.WF in profile.flavours
    has_sf = FenceFlavour.SF in profile.flavours
    if not has_wf:
        return 2 ** num_sites
    if not has_sf:
        return 2 ** num_sites
    total = 0
    for wf in range(num_sites + 1):
        if profile.max_wf is not None and wf > profile.max_wf:
            break
        for sf in range(num_sites - wf + 1):
            if profile.needs_sf_with_wf and wf >= 2 and sf == 0:
                continue
            total += comb(num_sites, wf) * comb(num_sites - wf, sf)
    return total
