"""Schedule-exploration verification engine.

Systematically hunts for sequential-consistency violations (SCVs) and
deadlocks across the fence designs:

* :mod:`repro.verify.generator` — randomized litmus programs
  (store-buffering, IRIW, message-passing and random shapes) emitted as
  :mod:`repro.core.isa` op lists with symbolic addresses;
* :mod:`repro.verify.perturb` — schedule perturbation via
  :class:`~repro.common.params.MachineParams` sweeps (seeds, NoC
  latency, write-buffer depth, BS capacity);
* :mod:`repro.verify.oracles` — runs a program under a design and
  checks the paper's invariants (SC-acyclicity with correct fences, W+
  recovery soundness, no livelock);
* :mod:`repro.verify.shrink` — minimizes a violating program to the
  smallest op list that still reproduces;
* :mod:`repro.verify.engine` — the budgeted exploration loop and the
  machine-readable report (``repro verify`` CLI).
"""

from repro.verify.engine import VerifyConfig, VerifyReport, run_verification
from repro.verify.generator import LitmusProgram, generate_program
from repro.verify.oracles import ProgramRun, run_program
from repro.verify.perturb import SchedulePoint, schedule_points
from repro.verify.shrink import shrink_program

__all__ = [
    "LitmusProgram",
    "ProgramRun",
    "SchedulePoint",
    "VerifyConfig",
    "VerifyReport",
    "generate_program",
    "run_program",
    "run_verification",
    "schedule_points",
    "shrink_program",
]
